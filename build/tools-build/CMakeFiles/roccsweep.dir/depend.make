# Empty dependencies file for roccsweep.
# This may be replaced when dependencies are built.
