file(REMOVE_RECURSE
  "../tools/roccsweep"
  "../tools/roccsweep.pdb"
  "CMakeFiles/roccsweep.dir/roccsweep.cpp.o"
  "CMakeFiles/roccsweep.dir/roccsweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
