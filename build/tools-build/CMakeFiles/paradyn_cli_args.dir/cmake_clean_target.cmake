file(REMOVE_RECURSE
  "libparadyn_cli_args.a"
)
