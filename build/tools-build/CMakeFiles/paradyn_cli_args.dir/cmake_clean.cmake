file(REMOVE_RECURSE
  "CMakeFiles/paradyn_cli_args.dir/cli_args.cpp.o"
  "CMakeFiles/paradyn_cli_args.dir/cli_args.cpp.o.d"
  "libparadyn_cli_args.a"
  "libparadyn_cli_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
