# Empty dependencies file for paradyn_cli_args.
# This may be replaced when dependencies are built.
