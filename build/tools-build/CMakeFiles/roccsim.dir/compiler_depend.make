# Empty compiler generated dependencies file for roccsim.
# This may be replaced when dependencies are built.
