file(REMOVE_RECURSE
  "../tools/roccsim"
  "../tools/roccsim.pdb"
  "CMakeFiles/roccsim.dir/roccsim.cpp.o"
  "CMakeFiles/roccsim.dir/roccsim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roccsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
