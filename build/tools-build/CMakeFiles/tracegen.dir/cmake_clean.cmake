file(REMOVE_RECURSE
  "../tools/tracegen"
  "../tools/tracegen.pdb"
  "CMakeFiles/tracegen.dir/tracegen.cpp.o"
  "CMakeFiles/tracegen.dir/tracegen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
