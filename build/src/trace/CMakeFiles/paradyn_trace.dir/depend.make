# Empty dependencies file for paradyn_trace.
# This may be replaced when dependencies are built.
