
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/characterize.cpp" "src/trace/CMakeFiles/paradyn_trace.dir/characterize.cpp.o" "gcc" "src/trace/CMakeFiles/paradyn_trace.dir/characterize.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/paradyn_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/paradyn_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/paradyn_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/paradyn_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/paradyn_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/paradyn_trace.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
