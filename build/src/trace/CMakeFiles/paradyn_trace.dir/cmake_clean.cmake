file(REMOVE_RECURSE
  "CMakeFiles/paradyn_trace.dir/characterize.cpp.o"
  "CMakeFiles/paradyn_trace.dir/characterize.cpp.o.d"
  "CMakeFiles/paradyn_trace.dir/generator.cpp.o"
  "CMakeFiles/paradyn_trace.dir/generator.cpp.o.d"
  "CMakeFiles/paradyn_trace.dir/io.cpp.o"
  "CMakeFiles/paradyn_trace.dir/io.cpp.o.d"
  "CMakeFiles/paradyn_trace.dir/record.cpp.o"
  "CMakeFiles/paradyn_trace.dir/record.cpp.o.d"
  "libparadyn_trace.a"
  "libparadyn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
