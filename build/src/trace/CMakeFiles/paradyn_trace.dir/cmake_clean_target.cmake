file(REMOVE_RECURSE
  "libparadyn_trace.a"
)
