# Empty compiler generated dependencies file for paradyn_des.
# This may be replaced when dependencies are built.
