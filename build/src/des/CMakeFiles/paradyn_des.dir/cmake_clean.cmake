file(REMOVE_RECURSE
  "CMakeFiles/paradyn_des.dir/engine.cpp.o"
  "CMakeFiles/paradyn_des.dir/engine.cpp.o.d"
  "CMakeFiles/paradyn_des.dir/event_queue.cpp.o"
  "CMakeFiles/paradyn_des.dir/event_queue.cpp.o.d"
  "CMakeFiles/paradyn_des.dir/random.cpp.o"
  "CMakeFiles/paradyn_des.dir/random.cpp.o.d"
  "libparadyn_des.a"
  "libparadyn_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
