file(REMOVE_RECURSE
  "libparadyn_des.a"
)
