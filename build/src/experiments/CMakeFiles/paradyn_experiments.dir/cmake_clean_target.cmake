file(REMOVE_RECURSE
  "libparadyn_experiments.a"
)
