# Empty dependencies file for paradyn_experiments.
# This may be replaced when dependencies are built.
