file(REMOVE_RECURSE
  "CMakeFiles/paradyn_experiments.dir/runner.cpp.o"
  "CMakeFiles/paradyn_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/paradyn_experiments.dir/table.cpp.o"
  "CMakeFiles/paradyn_experiments.dir/table.cpp.o.d"
  "libparadyn_experiments.a"
  "libparadyn_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
