# Empty compiler generated dependencies file for paradyn_rocc.
# This may be replaced when dependencies are built.
