file(REMOVE_RECURSE
  "CMakeFiles/paradyn_rocc.dir/app_process.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/app_process.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/background.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/background.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/barrier.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/barrier.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/config.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/config.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/cost_model.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/cost_model.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/cpu.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/cpu.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/daemon.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/daemon.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/main_paradyn.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/main_paradyn.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/network.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/network.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/pipe.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/pipe.cpp.o.d"
  "CMakeFiles/paradyn_rocc.dir/simulation.cpp.o"
  "CMakeFiles/paradyn_rocc.dir/simulation.cpp.o.d"
  "libparadyn_rocc.a"
  "libparadyn_rocc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_rocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
