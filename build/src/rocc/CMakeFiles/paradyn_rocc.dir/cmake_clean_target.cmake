file(REMOVE_RECURSE
  "libparadyn_rocc.a"
)
