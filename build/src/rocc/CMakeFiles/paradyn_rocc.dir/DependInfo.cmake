
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rocc/app_process.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/app_process.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/app_process.cpp.o.d"
  "/root/repo/src/rocc/background.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/background.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/background.cpp.o.d"
  "/root/repo/src/rocc/barrier.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/barrier.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/barrier.cpp.o.d"
  "/root/repo/src/rocc/config.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/config.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/config.cpp.o.d"
  "/root/repo/src/rocc/cost_model.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/cost_model.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/cost_model.cpp.o.d"
  "/root/repo/src/rocc/cpu.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/cpu.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/cpu.cpp.o.d"
  "/root/repo/src/rocc/daemon.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/daemon.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/daemon.cpp.o.d"
  "/root/repo/src/rocc/main_paradyn.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/main_paradyn.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/main_paradyn.cpp.o.d"
  "/root/repo/src/rocc/network.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/network.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/network.cpp.o.d"
  "/root/repo/src/rocc/pipe.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/pipe.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/pipe.cpp.o.d"
  "/root/repo/src/rocc/simulation.cpp" "src/rocc/CMakeFiles/paradyn_rocc.dir/simulation.cpp.o" "gcc" "src/rocc/CMakeFiles/paradyn_rocc.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/paradyn_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
