# Empty dependencies file for paradyn_analytic.
# This may be replaced when dependencies are built.
