file(REMOVE_RECURSE
  "libparadyn_analytic.a"
)
