file(REMOVE_RECURSE
  "CMakeFiles/paradyn_analytic.dir/operational.cpp.o"
  "CMakeFiles/paradyn_analytic.dir/operational.cpp.o.d"
  "libparadyn_analytic.a"
  "libparadyn_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
