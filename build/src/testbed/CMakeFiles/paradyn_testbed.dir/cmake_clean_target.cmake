file(REMOVE_RECURSE
  "libparadyn_testbed.a"
)
