
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/channel.cpp" "src/testbed/CMakeFiles/paradyn_testbed.dir/channel.cpp.o" "gcc" "src/testbed/CMakeFiles/paradyn_testbed.dir/channel.cpp.o.d"
  "/root/repo/src/testbed/cpu_timer.cpp" "src/testbed/CMakeFiles/paradyn_testbed.dir/cpu_timer.cpp.o" "gcc" "src/testbed/CMakeFiles/paradyn_testbed.dir/cpu_timer.cpp.o.d"
  "/root/repo/src/testbed/experiment.cpp" "src/testbed/CMakeFiles/paradyn_testbed.dir/experiment.cpp.o" "gcc" "src/testbed/CMakeFiles/paradyn_testbed.dir/experiment.cpp.o.d"
  "/root/repo/src/testbed/workload.cpp" "src/testbed/CMakeFiles/paradyn_testbed.dir/workload.cpp.o" "gcc" "src/testbed/CMakeFiles/paradyn_testbed.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
