file(REMOVE_RECURSE
  "CMakeFiles/paradyn_testbed.dir/channel.cpp.o"
  "CMakeFiles/paradyn_testbed.dir/channel.cpp.o.d"
  "CMakeFiles/paradyn_testbed.dir/cpu_timer.cpp.o"
  "CMakeFiles/paradyn_testbed.dir/cpu_timer.cpp.o.d"
  "CMakeFiles/paradyn_testbed.dir/experiment.cpp.o"
  "CMakeFiles/paradyn_testbed.dir/experiment.cpp.o.d"
  "CMakeFiles/paradyn_testbed.dir/workload.cpp.o"
  "CMakeFiles/paradyn_testbed.dir/workload.cpp.o.d"
  "libparadyn_testbed.a"
  "libparadyn_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
