# Empty dependencies file for paradyn_testbed.
# This may be replaced when dependencies are built.
