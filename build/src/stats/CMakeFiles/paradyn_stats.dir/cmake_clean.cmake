file(REMOVE_RECURSE
  "CMakeFiles/paradyn_stats.dir/confidence.cpp.o"
  "CMakeFiles/paradyn_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/distributions.cpp.o"
  "CMakeFiles/paradyn_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/empirical.cpp.o"
  "CMakeFiles/paradyn_stats.dir/empirical.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/factorial.cpp.o"
  "CMakeFiles/paradyn_stats.dir/factorial.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/fitting.cpp.o"
  "CMakeFiles/paradyn_stats.dir/fitting.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/matrix.cpp.o"
  "CMakeFiles/paradyn_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/pca.cpp.o"
  "CMakeFiles/paradyn_stats.dir/pca.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/special_functions.cpp.o"
  "CMakeFiles/paradyn_stats.dir/special_functions.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/summary.cpp.o"
  "CMakeFiles/paradyn_stats.dir/summary.cpp.o.d"
  "CMakeFiles/paradyn_stats.dir/timeseries.cpp.o"
  "CMakeFiles/paradyn_stats.dir/timeseries.cpp.o.d"
  "libparadyn_stats.a"
  "libparadyn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
