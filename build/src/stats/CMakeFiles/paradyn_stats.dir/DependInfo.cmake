
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/empirical.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/empirical.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/empirical.cpp.o.d"
  "/root/repo/src/stats/factorial.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/factorial.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/factorial.cpp.o.d"
  "/root/repo/src/stats/fitting.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/fitting.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/fitting.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/pca.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/special_functions.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/paradyn_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/paradyn_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
