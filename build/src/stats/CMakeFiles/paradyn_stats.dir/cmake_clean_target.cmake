file(REMOVE_RECURSE
  "libparadyn_stats.a"
)
