# Empty dependencies file for paradyn_stats.
# This may be replaced when dependencies are built.
