file(REMOVE_RECURSE
  "CMakeFiles/paradyn_consultant.dir/consultant.cpp.o"
  "CMakeFiles/paradyn_consultant.dir/consultant.cpp.o.d"
  "libparadyn_consultant.a"
  "libparadyn_consultant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_consultant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
