file(REMOVE_RECURSE
  "libparadyn_consultant.a"
)
