# Empty compiler generated dependencies file for paradyn_consultant.
# This may be replaced when dependencies are built.
