# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/des_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/rocc_tests[1]_include.cmake")
include("/root/repo/build/tests/analytic_tests[1]_include.cmake")
include("/root/repo/build/tests/testbed_tests[1]_include.cmake")
include("/root/repo/build/tests/experiments_tests[1]_include.cmake")
include("/root/repo/build/tests/consultant_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
