file(REMOVE_RECURSE
  "CMakeFiles/des_tests.dir/des/engine_test.cpp.o"
  "CMakeFiles/des_tests.dir/des/engine_test.cpp.o.d"
  "CMakeFiles/des_tests.dir/des/event_queue_test.cpp.o"
  "CMakeFiles/des_tests.dir/des/event_queue_test.cpp.o.d"
  "CMakeFiles/des_tests.dir/des/random_test.cpp.o"
  "CMakeFiles/des_tests.dir/des/random_test.cpp.o.d"
  "CMakeFiles/des_tests.dir/des/stress_test.cpp.o"
  "CMakeFiles/des_tests.dir/des/stress_test.cpp.o.d"
  "des_tests"
  "des_tests.pdb"
  "des_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
