# Empty dependencies file for des_tests.
# This may be replaced when dependencies are built.
