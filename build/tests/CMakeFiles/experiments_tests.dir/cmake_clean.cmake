file(REMOVE_RECURSE
  "CMakeFiles/experiments_tests.dir/experiments/runner_test.cpp.o"
  "CMakeFiles/experiments_tests.dir/experiments/runner_test.cpp.o.d"
  "CMakeFiles/experiments_tests.dir/experiments/table_test.cpp.o"
  "CMakeFiles/experiments_tests.dir/experiments/table_test.cpp.o.d"
  "experiments_tests"
  "experiments_tests.pdb"
  "experiments_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
