# Empty compiler generated dependencies file for experiments_tests.
# This may be replaced when dependencies are built.
