
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/characterize_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/characterize_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/characterize_test.cpp.o.d"
  "/root/repo/tests/trace/generator_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/generator_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/generator_test.cpp.o.d"
  "/root/repo/tests/trace/io_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/io_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/io_test.cpp.o.d"
  "/root/repo/tests/trace/record_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/paradyn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
