
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testbed/channel_test.cpp" "tests/CMakeFiles/testbed_tests.dir/testbed/channel_test.cpp.o" "gcc" "tests/CMakeFiles/testbed_tests.dir/testbed/channel_test.cpp.o.d"
  "/root/repo/tests/testbed/experiment_test.cpp" "tests/CMakeFiles/testbed_tests.dir/testbed/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/testbed_tests.dir/testbed/experiment_test.cpp.o.d"
  "/root/repo/tests/testbed/workload_test.cpp" "tests/CMakeFiles/testbed_tests.dir/testbed/workload_test.cpp.o" "gcc" "tests/CMakeFiles/testbed_tests.dir/testbed/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/paradyn_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
