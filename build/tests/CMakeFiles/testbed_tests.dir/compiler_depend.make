# Empty compiler generated dependencies file for testbed_tests.
# This may be replaced when dependencies are built.
