file(REMOVE_RECURSE
  "CMakeFiles/testbed_tests.dir/testbed/channel_test.cpp.o"
  "CMakeFiles/testbed_tests.dir/testbed/channel_test.cpp.o.d"
  "CMakeFiles/testbed_tests.dir/testbed/experiment_test.cpp.o"
  "CMakeFiles/testbed_tests.dir/testbed/experiment_test.cpp.o.d"
  "CMakeFiles/testbed_tests.dir/testbed/workload_test.cpp.o"
  "CMakeFiles/testbed_tests.dir/testbed/workload_test.cpp.o.d"
  "testbed_tests"
  "testbed_tests.pdb"
  "testbed_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
