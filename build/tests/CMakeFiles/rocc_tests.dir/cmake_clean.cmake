file(REMOVE_RECURSE
  "CMakeFiles/rocc_tests.dir/rocc/barrier_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/barrier_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/config_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/config_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/cost_model_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/cost_model_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/cpu_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/cpu_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/daemon_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/daemon_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/network_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/network_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/pipe_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/pipe_test.cpp.o.d"
  "CMakeFiles/rocc_tests.dir/rocc/simulation_test.cpp.o"
  "CMakeFiles/rocc_tests.dir/rocc/simulation_test.cpp.o.d"
  "rocc_tests"
  "rocc_tests.pdb"
  "rocc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
