# Empty dependencies file for rocc_tests.
# This may be replaced when dependencies are built.
