file(REMOVE_RECURSE
  "CMakeFiles/consultant_tests.dir/consultant/consultant_test.cpp.o"
  "CMakeFiles/consultant_tests.dir/consultant/consultant_test.cpp.o.d"
  "consultant_tests"
  "consultant_tests.pdb"
  "consultant_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consultant_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
