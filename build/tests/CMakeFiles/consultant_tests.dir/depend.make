# Empty dependencies file for consultant_tests.
# This may be replaced when dependencies are built.
