file(REMOVE_RECURSE
  "CMakeFiles/analytic_tests.dir/analytic/operational_test.cpp.o"
  "CMakeFiles/analytic_tests.dir/analytic/operational_test.cpp.o.d"
  "analytic_tests"
  "analytic_tests.pdb"
  "analytic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
