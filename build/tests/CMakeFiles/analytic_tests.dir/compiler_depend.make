# Empty compiler generated dependencies file for analytic_tests.
# This may be replaced when dependencies are built.
