
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/confidence_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o.d"
  "/root/repo/tests/stats/distributions_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/distributions_test.cpp.o.d"
  "/root/repo/tests/stats/empirical_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o.d"
  "/root/repo/tests/stats/factorial_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/factorial_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/factorial_test.cpp.o.d"
  "/root/repo/tests/stats/fitting_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/fitting_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/fitting_test.cpp.o.d"
  "/root/repo/tests/stats/matrix_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/matrix_test.cpp.o.d"
  "/root/repo/tests/stats/pca_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/pca_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/pca_test.cpp.o.d"
  "/root/repo/tests/stats/special_functions_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/timeseries_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
