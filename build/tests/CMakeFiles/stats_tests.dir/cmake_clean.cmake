file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/distributions_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/distributions_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/factorial_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/factorial_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/fitting_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/fitting_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/matrix_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/matrix_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/pca_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/pca_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
