file(REMOVE_RECURSE
  "../examples/testbed_demo"
  "../examples/testbed_demo.pdb"
  "CMakeFiles/testbed_demo.dir/testbed_demo.cpp.o"
  "CMakeFiles/testbed_demo.dir/testbed_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
