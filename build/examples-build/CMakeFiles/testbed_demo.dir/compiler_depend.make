# Empty compiler generated dependencies file for testbed_demo.
# This may be replaced when dependencies are built.
