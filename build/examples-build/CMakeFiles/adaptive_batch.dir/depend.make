# Empty dependencies file for adaptive_batch.
# This may be replaced when dependencies are built.
