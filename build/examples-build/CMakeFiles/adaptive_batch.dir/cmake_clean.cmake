file(REMOVE_RECURSE
  "../examples/adaptive_batch"
  "../examples/adaptive_batch.pdb"
  "CMakeFiles/adaptive_batch.dir/adaptive_batch.cpp.o"
  "CMakeFiles/adaptive_batch.dir/adaptive_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
