# Empty compiler generated dependencies file for steady_state_analysis.
# This may be replaced when dependencies are built.
