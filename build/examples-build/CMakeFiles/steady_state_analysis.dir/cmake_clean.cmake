file(REMOVE_RECURSE
  "../examples/steady_state_analysis"
  "../examples/steady_state_analysis.pdb"
  "CMakeFiles/steady_state_analysis.dir/steady_state_analysis.cpp.o"
  "CMakeFiles/steady_state_analysis.dir/steady_state_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steady_state_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
