file(REMOVE_RECURSE
  "../examples/workload_characterization"
  "../examples/workload_characterization.pdb"
  "CMakeFiles/workload_characterization.dir/workload_characterization.cpp.o"
  "CMakeFiles/workload_characterization.dir/workload_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
