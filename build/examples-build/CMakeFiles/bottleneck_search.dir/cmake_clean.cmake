file(REMOVE_RECURSE
  "../examples/bottleneck_search"
  "../examples/bottleneck_search.pdb"
  "CMakeFiles/bottleneck_search.dir/bottleneck_search.cpp.o"
  "CMakeFiles/bottleneck_search.dir/bottleneck_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
