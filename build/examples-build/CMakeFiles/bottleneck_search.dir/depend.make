# Empty dependencies file for bottleneck_search.
# This may be replaced when dependencies are built.
