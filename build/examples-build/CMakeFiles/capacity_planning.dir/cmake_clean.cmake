file(REMOVE_RECURSE
  "../examples/capacity_planning"
  "../examples/capacity_planning.pdb"
  "CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o"
  "CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
