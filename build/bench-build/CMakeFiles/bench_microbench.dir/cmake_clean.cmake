file(REMOVE_RECURSE
  "../bench/bench_microbench"
  "../bench/bench_microbench.pdb"
  "CMakeFiles/bench_microbench.dir/bench_microbench.cpp.o"
  "CMakeFiles/bench_microbench.dir/bench_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
