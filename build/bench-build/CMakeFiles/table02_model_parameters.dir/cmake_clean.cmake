file(REMOVE_RECURSE
  "../bench/table02_model_parameters"
  "../bench/table02_model_parameters.pdb"
  "CMakeFiles/table02_model_parameters.dir/table02_model_parameters.cpp.o"
  "CMakeFiles/table02_model_parameters.dir/table02_model_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_model_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
