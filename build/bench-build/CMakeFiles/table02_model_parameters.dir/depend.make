# Empty dependencies file for table02_model_parameters.
# This may be replaced when dependencies are built.
