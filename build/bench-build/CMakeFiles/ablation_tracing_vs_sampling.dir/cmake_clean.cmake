file(REMOVE_RECURSE
  "../bench/ablation_tracing_vs_sampling"
  "../bench/ablation_tracing_vs_sampling.pdb"
  "CMakeFiles/ablation_tracing_vs_sampling.dir/ablation_tracing_vs_sampling.cpp.o"
  "CMakeFiles/ablation_tracing_vs_sampling.dir/ablation_tracing_vs_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracing_vs_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
