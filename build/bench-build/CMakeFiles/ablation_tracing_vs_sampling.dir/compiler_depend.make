# Empty compiler generated dependencies file for ablation_tracing_vs_sampling.
# This may be replaced when dependencies are built.
