# Empty compiler generated dependencies file for fig12_analytic_smp_sampling.
# This may be replaced when dependencies are built.
