file(REMOVE_RECURSE
  "../bench/fig12_analytic_smp_sampling"
  "../bench/fig12_analytic_smp_sampling.pdb"
  "CMakeFiles/fig12_analytic_smp_sampling.dir/fig12_analytic_smp_sampling.cpp.o"
  "CMakeFiles/fig12_analytic_smp_sampling.dir/fig12_analytic_smp_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_analytic_smp_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
