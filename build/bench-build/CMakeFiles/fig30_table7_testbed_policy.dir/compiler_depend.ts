# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig30_table7_testbed_policy.
