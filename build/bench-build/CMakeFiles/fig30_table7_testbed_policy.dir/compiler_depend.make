# Empty compiler generated dependencies file for fig30_table7_testbed_policy.
# This may be replaced when dependencies are built.
