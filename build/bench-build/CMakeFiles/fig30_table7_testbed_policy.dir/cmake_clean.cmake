file(REMOVE_RECURSE
  "../bench/fig30_table7_testbed_policy"
  "../bench/fig30_table7_testbed_policy.pdb"
  "CMakeFiles/fig30_table7_testbed_policy.dir/fig30_table7_testbed_policy.cpp.o"
  "CMakeFiles/fig30_table7_testbed_policy.dir/fig30_table7_testbed_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_table7_testbed_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
