# Empty dependencies file for fig18_now_global.
# This may be replaced when dependencies are built.
