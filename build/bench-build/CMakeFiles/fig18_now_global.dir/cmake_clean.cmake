file(REMOVE_RECURSE
  "../bench/fig18_now_global"
  "../bench/fig18_now_global.pdb"
  "CMakeFiles/fig18_now_global.dir/fig18_now_global.cpp.o"
  "CMakeFiles/fig18_now_global.dir/fig18_now_global.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_now_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
