file(REMOVE_RECURSE
  "../bench/ablation_network_contention"
  "../bench/ablation_network_contention.pdb"
  "CMakeFiles/ablation_network_contention.dir/ablation_network_contention.cpp.o"
  "CMakeFiles/ablation_network_contention.dir/ablation_network_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
