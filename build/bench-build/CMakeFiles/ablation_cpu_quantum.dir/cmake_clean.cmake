file(REMOVE_RECURSE
  "../bench/ablation_cpu_quantum"
  "../bench/ablation_cpu_quantum.pdb"
  "CMakeFiles/ablation_cpu_quantum.dir/ablation_cpu_quantum.cpp.o"
  "CMakeFiles/ablation_cpu_quantum.dir/ablation_cpu_quantum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
