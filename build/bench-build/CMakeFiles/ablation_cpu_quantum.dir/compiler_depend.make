# Empty compiler generated dependencies file for ablation_cpu_quantum.
# This may be replaced when dependencies are built.
