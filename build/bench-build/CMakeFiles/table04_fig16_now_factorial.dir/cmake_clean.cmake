file(REMOVE_RECURSE
  "../bench/table04_fig16_now_factorial"
  "../bench/table04_fig16_now_factorial.pdb"
  "CMakeFiles/table04_fig16_now_factorial.dir/table04_fig16_now_factorial.cpp.o"
  "CMakeFiles/table04_fig16_now_factorial.dir/table04_fig16_now_factorial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_fig16_now_factorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
