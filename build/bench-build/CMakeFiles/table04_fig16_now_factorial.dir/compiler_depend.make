# Empty compiler generated dependencies file for table04_fig16_now_factorial.
# This may be replaced when dependencies are built.
