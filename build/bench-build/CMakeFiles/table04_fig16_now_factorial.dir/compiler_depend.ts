# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table04_fig16_now_factorial.
