# Empty dependencies file for table05_fig20_smp_factorial.
# This may be replaced when dependencies are built.
