file(REMOVE_RECURSE
  "../bench/table05_fig20_smp_factorial"
  "../bench/table05_fig20_smp_factorial.pdb"
  "CMakeFiles/table05_fig20_smp_factorial.dir/table05_fig20_smp_factorial.cpp.o"
  "CMakeFiles/table05_fig20_smp_factorial.dir/table05_fig20_smp_factorial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_fig20_smp_factorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
