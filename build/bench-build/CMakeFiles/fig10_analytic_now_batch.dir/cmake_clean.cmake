file(REMOVE_RECURSE
  "../bench/fig10_analytic_now_batch"
  "../bench/fig10_analytic_now_batch.pdb"
  "CMakeFiles/fig10_analytic_now_batch.dir/fig10_analytic_now_batch.cpp.o"
  "CMakeFiles/fig10_analytic_now_batch.dir/fig10_analytic_now_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_analytic_now_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
