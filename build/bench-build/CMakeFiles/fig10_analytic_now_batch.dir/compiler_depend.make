# Empty compiler generated dependencies file for fig10_analytic_now_batch.
# This may be replaced when dependencies are built.
