# Empty dependencies file for fig27_mpp_nodes.
# This may be replaced when dependencies are built.
