file(REMOVE_RECURSE
  "../bench/fig27_mpp_nodes"
  "../bench/fig27_mpp_nodes.pdb"
  "CMakeFiles/fig27_mpp_nodes.dir/fig27_mpp_nodes.cpp.o"
  "CMakeFiles/fig27_mpp_nodes.dir/fig27_mpp_nodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_mpp_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
