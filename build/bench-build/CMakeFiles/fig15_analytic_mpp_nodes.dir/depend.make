# Empty dependencies file for fig15_analytic_mpp_nodes.
# This may be replaced when dependencies are built.
