file(REMOVE_RECURSE
  "../bench/fig15_analytic_mpp_nodes"
  "../bench/fig15_analytic_mpp_nodes.pdb"
  "CMakeFiles/fig15_analytic_mpp_nodes.dir/fig15_analytic_mpp_nodes.cpp.o"
  "CMakeFiles/fig15_analytic_mpp_nodes.dir/fig15_analytic_mpp_nodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_analytic_mpp_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
