
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_analytic_mpp_nodes.cpp" "bench-build/CMakeFiles/fig15_analytic_mpp_nodes.dir/fig15_analytic_mpp_nodes.cpp.o" "gcc" "bench-build/CMakeFiles/fig15_analytic_mpp_nodes.dir/fig15_analytic_mpp_nodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/paradyn_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/paradyn_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/paradyn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/paradyn_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/rocc/CMakeFiles/paradyn_rocc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/paradyn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/paradyn_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
