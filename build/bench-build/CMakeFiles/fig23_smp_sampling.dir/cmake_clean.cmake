file(REMOVE_RECURSE
  "../bench/fig23_smp_sampling"
  "../bench/fig23_smp_sampling.pdb"
  "CMakeFiles/fig23_smp_sampling.dir/fig23_smp_sampling.cpp.o"
  "CMakeFiles/fig23_smp_sampling.dir/fig23_smp_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_smp_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
