# Empty dependencies file for fig23_smp_sampling.
# This may be replaced when dependencies are built.
