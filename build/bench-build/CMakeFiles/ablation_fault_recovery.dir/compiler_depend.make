# Empty compiler generated dependencies file for ablation_fault_recovery.
# This may be replaced when dependencies are built.
