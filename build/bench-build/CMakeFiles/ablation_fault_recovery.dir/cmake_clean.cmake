file(REMOVE_RECURSE
  "../bench/ablation_fault_recovery"
  "../bench/ablation_fault_recovery.pdb"
  "CMakeFiles/ablation_fault_recovery.dir/ablation_fault_recovery.cpp.o"
  "CMakeFiles/ablation_fault_recovery.dir/ablation_fault_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
