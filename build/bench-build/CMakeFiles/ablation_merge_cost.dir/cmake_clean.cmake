file(REMOVE_RECURSE
  "../bench/ablation_merge_cost"
  "../bench/ablation_merge_cost.pdb"
  "CMakeFiles/ablation_merge_cost.dir/ablation_merge_cost.cpp.o"
  "CMakeFiles/ablation_merge_cost.dir/ablation_merge_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
