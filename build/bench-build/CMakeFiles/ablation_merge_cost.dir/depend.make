# Empty dependencies file for ablation_merge_cost.
# This may be replaced when dependencies are built.
