file(REMOVE_RECURSE
  "../bench/fig09_analytic_now"
  "../bench/fig09_analytic_now.pdb"
  "CMakeFiles/fig09_analytic_now.dir/fig09_analytic_now.cpp.o"
  "CMakeFiles/fig09_analytic_now.dir/fig09_analytic_now.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_analytic_now.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
