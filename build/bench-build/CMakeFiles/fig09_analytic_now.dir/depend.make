# Empty dependencies file for fig09_analytic_now.
# This may be replaced when dependencies are built.
