# Empty dependencies file for fig26_mpp_sampling.
# This may be replaced when dependencies are built.
