file(REMOVE_RECURSE
  "../bench/fig26_mpp_sampling"
  "../bench/fig26_mpp_sampling.pdb"
  "CMakeFiles/fig26_mpp_sampling.dir/fig26_mpp_sampling.cpp.o"
  "CMakeFiles/fig26_mpp_sampling.dir/fig26_mpp_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_mpp_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
