file(REMOVE_RECURSE
  "../bench/fig17_now_local"
  "../bench/fig17_now_local.pdb"
  "CMakeFiles/fig17_now_local.dir/fig17_now_local.cpp.o"
  "CMakeFiles/fig17_now_local.dir/fig17_now_local.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_now_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
