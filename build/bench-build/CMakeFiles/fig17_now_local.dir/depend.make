# Empty dependencies file for fig17_now_local.
# This may be replaced when dependencies are built.
