# Empty compiler generated dependencies file for table06_fig25_mpp_factorial.
# This may be replaced when dependencies are built.
