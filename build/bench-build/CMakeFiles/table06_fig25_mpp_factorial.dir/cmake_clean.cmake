file(REMOVE_RECURSE
  "../bench/table06_fig25_mpp_factorial"
  "../bench/table06_fig25_mpp_factorial.pdb"
  "CMakeFiles/table06_fig25_mpp_factorial.dir/table06_fig25_mpp_factorial.cpp.o"
  "CMakeFiles/table06_fig25_mpp_factorial.dir/table06_fig25_mpp_factorial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_fig25_mpp_factorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
