file(REMOVE_RECURSE
  "../bench/fig08_distribution_fitting"
  "../bench/fig08_distribution_fitting.pdb"
  "CMakeFiles/fig08_distribution_fitting.dir/fig08_distribution_fitting.cpp.o"
  "CMakeFiles/fig08_distribution_fitting.dir/fig08_distribution_fitting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_distribution_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
