# Empty compiler generated dependencies file for fig08_distribution_fitting.
# This may be replaced when dependencies are built.
