# Empty compiler generated dependencies file for fig13_analytic_smp_appprocs.
# This may be replaced when dependencies are built.
