file(REMOVE_RECURSE
  "../bench/fig13_analytic_smp_appprocs"
  "../bench/fig13_analytic_smp_appprocs.pdb"
  "CMakeFiles/fig13_analytic_smp_appprocs.dir/fig13_analytic_smp_appprocs.cpp.o"
  "CMakeFiles/fig13_analytic_smp_appprocs.dir/fig13_analytic_smp_appprocs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_analytic_smp_appprocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
