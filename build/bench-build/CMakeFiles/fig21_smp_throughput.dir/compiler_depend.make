# Empty compiler generated dependencies file for fig21_smp_throughput.
# This may be replaced when dependencies are built.
