file(REMOVE_RECURSE
  "../bench/fig21_smp_throughput"
  "../bench/fig21_smp_throughput.pdb"
  "CMakeFiles/fig21_smp_throughput.dir/fig21_smp_throughput.cpp.o"
  "CMakeFiles/fig21_smp_throughput.dir/fig21_smp_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_smp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
