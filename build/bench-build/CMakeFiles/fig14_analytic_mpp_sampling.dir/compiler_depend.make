# Empty compiler generated dependencies file for fig14_analytic_mpp_sampling.
# This may be replaced when dependencies are built.
