file(REMOVE_RECURSE
  "../bench/fig14_analytic_mpp_sampling"
  "../bench/fig14_analytic_mpp_sampling.pdb"
  "CMakeFiles/fig14_analytic_mpp_sampling.dir/fig14_analytic_mpp_sampling.cpp.o"
  "CMakeFiles/fig14_analytic_mpp_sampling.dir/fig14_analytic_mpp_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_analytic_mpp_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
