file(REMOVE_RECURSE
  "../bench/ablation_adaptive_cost_model"
  "../bench/ablation_adaptive_cost_model.pdb"
  "CMakeFiles/ablation_adaptive_cost_model.dir/ablation_adaptive_cost_model.cpp.o"
  "CMakeFiles/ablation_adaptive_cost_model.dir/ablation_adaptive_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
