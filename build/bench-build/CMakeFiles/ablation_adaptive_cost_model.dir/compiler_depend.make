# Empty compiler generated dependencies file for ablation_adaptive_cost_model.
# This may be replaced when dependencies are built.
