file(REMOVE_RECURSE
  "../bench/fig28_mpp_barrier"
  "../bench/fig28_mpp_barrier.pdb"
  "CMakeFiles/fig28_mpp_barrier.dir/fig28_mpp_barrier.cpp.o"
  "CMakeFiles/fig28_mpp_barrier.dir/fig28_mpp_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_mpp_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
