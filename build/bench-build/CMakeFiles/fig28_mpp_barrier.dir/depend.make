# Empty dependencies file for fig28_mpp_barrier.
# This may be replaced when dependencies are built.
