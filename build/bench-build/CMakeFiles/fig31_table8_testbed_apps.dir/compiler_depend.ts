# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig31_table8_testbed_apps.
