file(REMOVE_RECURSE
  "../bench/fig31_table8_testbed_apps"
  "../bench/fig31_table8_testbed_apps.pdb"
  "CMakeFiles/fig31_table8_testbed_apps.dir/fig31_table8_testbed_apps.cpp.o"
  "CMakeFiles/fig31_table8_testbed_apps.dir/fig31_table8_testbed_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig31_table8_testbed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
