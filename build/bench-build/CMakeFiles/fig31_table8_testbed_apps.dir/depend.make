# Empty dependencies file for fig31_table8_testbed_apps.
# This may be replaced when dependencies are built.
