file(REMOVE_RECURSE
  "../bench/ablation_pipe_capacity"
  "../bench/ablation_pipe_capacity.pdb"
  "CMakeFiles/ablation_pipe_capacity.dir/ablation_pipe_capacity.cpp.o"
  "CMakeFiles/ablation_pipe_capacity.dir/ablation_pipe_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipe_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
