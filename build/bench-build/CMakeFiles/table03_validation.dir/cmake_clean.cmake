file(REMOVE_RECURSE
  "../bench/table03_validation"
  "../bench/table03_validation.pdb"
  "CMakeFiles/table03_validation.dir/table03_validation.cpp.o"
  "CMakeFiles/table03_validation.dir/table03_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
