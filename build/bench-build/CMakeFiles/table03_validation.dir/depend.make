# Empty dependencies file for table03_validation.
# This may be replaced when dependencies are built.
