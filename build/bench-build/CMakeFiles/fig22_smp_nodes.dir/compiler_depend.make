# Empty compiler generated dependencies file for fig22_smp_nodes.
# This may be replaced when dependencies are built.
