file(REMOVE_RECURSE
  "../bench/fig22_smp_nodes"
  "../bench/fig22_smp_nodes.pdb"
  "CMakeFiles/fig22_smp_nodes.dir/fig22_smp_nodes.cpp.o"
  "CMakeFiles/fig22_smp_nodes.dir/fig22_smp_nodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_smp_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
