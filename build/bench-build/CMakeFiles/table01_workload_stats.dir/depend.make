# Empty dependencies file for table01_workload_stats.
# This may be replaced when dependencies are built.
