file(REMOVE_RECURSE
  "../bench/table01_workload_stats"
  "../bench/table01_workload_stats.pdb"
  "CMakeFiles/table01_workload_stats.dir/table01_workload_stats.cpp.o"
  "CMakeFiles/table01_workload_stats.dir/table01_workload_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
