file(REMOVE_RECURSE
  "../bench/fig24_smp_appprocs"
  "../bench/fig24_smp_appprocs.pdb"
  "CMakeFiles/fig24_smp_appprocs.dir/fig24_smp_appprocs.cpp.o"
  "CMakeFiles/fig24_smp_appprocs.dir/fig24_smp_appprocs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_smp_appprocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
