# Empty compiler generated dependencies file for fig24_smp_appprocs.
# This may be replaced when dependencies are built.
