file(REMOVE_RECURSE
  "../bench/fig19_now_batchsize"
  "../bench/fig19_now_batchsize.pdb"
  "CMakeFiles/fig19_now_batchsize.dir/fig19_now_batchsize.cpp.o"
  "CMakeFiles/fig19_now_batchsize.dir/fig19_now_batchsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_now_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
