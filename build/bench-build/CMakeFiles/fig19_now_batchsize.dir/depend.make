# Empty dependencies file for fig19_now_batchsize.
# This may be replaced when dependencies are built.
