#include "cli_args.hpp"

#include <cstdlib>

#include "util/suggest.hpp"

namespace paradyn::tools {

CliArgs::CliArgs(int argc, const char* const argv[], std::set<std::string> known_flags,
                 std::size_t max_positionals) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (positionals_.size() < max_positionals) {
        positionals_.push_back(std::move(arg));
        continue;
      }
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value = "true";  // bare switch
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (known_flags.count(arg) == 0) {
      std::string message = "unknown flag: --" + arg;
      const std::string close = util::suggestion(arg, known_flags);
      if (!close.empty()) message += " (did you mean --" + close + "?)";
      message += "; see --help";
      throw std::invalid_argument(message);
    }
    values_[arg] = value;
  }
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not a number: " + it->second);
  }
  return v;
}

long CliArgs::get_long(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + it->second);
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + it->second);
}

}  // namespace paradyn::tools
