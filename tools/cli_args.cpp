#include "cli_args.hpp"

#include <algorithm>
#include <cstdlib>

namespace paradyn::tools {
namespace {

/// Levenshtein distance, small-string edition (flag names are short).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Closest known flag within an edit distance of 2, or empty.
std::string suggestion(const std::string& arg, const std::set<std::string>& known) {
  std::string best;
  std::size_t best_dist = 3;  // only suggest close matches
  for (const std::string& k : known) {
    const std::size_t d = edit_distance(arg, k);
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return best;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const argv[], std::set<std::string> known_flags,
                 std::size_t max_positionals) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (positionals_.size() < max_positionals) {
        positionals_.push_back(std::move(arg));
        continue;
      }
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value = "true";  // bare switch
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (known_flags.count(arg) == 0) {
      std::string message = "unknown flag: --" + arg;
      const std::string close = suggestion(arg, known_flags);
      if (!close.empty()) message += " (did you mean --" + close + "?)";
      message += "; see --help";
      throw std::invalid_argument(message);
    }
    values_[arg] = value;
  }
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not a number: " + it->second);
  }
  return v;
}

long CliArgs::get_long(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + it->second);
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + it->second);
}

}  // namespace paradyn::tools
