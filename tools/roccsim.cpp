// roccsim — run a ROCC instrumentation-system simulation from the shell.
//
//   roccsim --arch now --nodes 8 --sampling-ms 40 --batch 32 --seconds 10
//   roccsim --arch smp --nodes 16 --apps 32 --daemons 2 --batch 1
//   roccsim --arch mpp --nodes 256 --topology tree --batch 32
//
// Prints the paper's metrics for the configuration; --reps N adds 90%
// confidence intervals over seed-varied replications.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "consultant/fault_detector.hpp"
#include "experiments/report_json.hpp"
#include "experiments/runner.hpp"
#include "experiments/shard_executor.hpp"
#include "experiments/table.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/repro.hpp"
#include "obs/trace.hpp"
#include "rocc/config.hpp"
#include "rocc/simulation.hpp"

namespace {

void print_help() {
  std::puts(
      "roccsim — Paradyn IS / ROCC model simulator\n"
      "\n"
      "  --arch now|smp|mpp      architecture (default now)\n"
      "  --nodes N               nodes (NOW/MPP) or CPUs (SMP); default 8\n"
      "  --apps N                app processes per node (SMP: total); default 1\n"
      "  --daemons N             Paradyn daemons (SMP only); default 1\n"
      "  --sampling-ms X         sampling period in ms; default 40\n"
      "  --batch N               batch size (1 = CF); default 1\n"
      "  --topology direct|tree  MPP forwarding configuration; default direct\n"
      "  --barrier-ms X          application barrier period in ms; default off\n"
      "  --pipe N                pipe capacity in samples; default 64\n"
      "  --seconds X             simulated seconds; default 10\n"
      "  --warmup X              warm-up seconds excluded from metrics; default 0\n"
      "  --shards N              partition the model into N conservative-window DES\n"
      "                          shards (PDES); results are bit-identical for every N.\n"
      "                          Default 0 = the classic single-engine path\n"
      "  --uplink-ms X           daemon uplink delivery latency in ms — the cross-shard\n"
      "                          lookahead; default 0 (0.5 when --shards is given)\n"
      "  --adaptive-budget X     enable the dynamic cost model with an IS overhead\n"
      "                          budget of X%% of CPU capacity; default off\n"
      "  --fault SPEC            inject perturbations; SPEC is ';'-joined entries like\n"
      "                          daemon_stall:daemon=0,start=1s,dur=500ms\n"
      "                          (types: daemon_stall daemon_crash link_slow\n"
      "                          sample_drop pipe_backpressure; see EXPERIMENTS.md).\n"
      "                          Detection/recovery latency is measured per fault.\n"
      "                          Windows may be stochastic (start=exp:2s) and stall /\n"
      "                          crash faults may cascade (cascade=0.5)\n"
      "  --repair SPEC           close the loop: repair detected faults; SPEC is\n"
      "                          ';'-joined actions like\n"
      "                          restart_daemon:timeout=500ms,max_retries=3,backoff=exp:200ms\n"
      "                          (actions: restart_daemon reroute_link reset_pipe;\n"
      "                          keys: timeout max_retries backoff jitter success_p\n"
      "                          penalty threshold; see EXPERIMENTS.md).\n"
      "                          Reports time-to-repair, attempts, and gave_up per fault\n"
      "  --adaptive-sampling [X] closed-loop per-daemon sampling throttle; optional X\n"
      "                          = predicted-perturbation budget in %% (default 5)\n"
      "  --seed N                RNG seed; default 1\n"
      "  --reference-rng         draw variates with the pre-ziggurat reference\n"
      "                          backend (bit-reproduces pre-PR-5 streams)\n"
      "  --batch-sampling [N]    prefill-buffer batch sampling: hot sites draw\n"
      "                          from per-site buffers refilled N variates at a\n"
      "                          time through the SIMD batch kernels (default\n"
      "                          N=256).  Deterministic across --jobs/--shards and\n"
      "                          block sizes, but a different stream than the\n"
      "                          default; incompatible with --reference-rng\n"
      "  --reps N                replications with 90% CIs; default 1\n"
      "  --jobs N                worker threads for the replications; default: all\n"
      "                          hardware threads, 1 = serial (results identical)\n"
      "  --uninstrumented        disable the IS (baseline run)\n"
      "  --dedicated-main        host main Paradyn on its own workstation\n"
      "\n"
      "observability:\n"
      "  --trace FILE            record a Chrome trace (open in Perfetto /\n"
      "                          chrome://tracing); with --reps, one process per rep\n"
      "  --trace-events N        per-run trace ring capacity in events; default 262144\n"
      "                          (oldest events drop once exceeded)\n"
      "  --metrics FILE          probe time-series CSV (queue depths, busy fractions);\n"
      "                          with --reps, probes attach to the first rep only\n"
      "  --metrics-tick-ms X     probe period in simulated ms; default 100\n"
      "  --progress              heartbeat lines on stderr as replications finish\n"
      "  --report-json FILE      full SimulationResult of every run as JSON\n"
      "  --profile               profile the run inline: per-hop latency decomposition,\n"
      "                          critical paths, and W3 bottleneck hypotheses (records\n"
      "                          an in-memory trace when --trace is absent); adds a\n"
      "                          bottlenecks[] block to --report-json\n"
      "  --metrics-json FILE     metrics registry (histograms + probe series) as JSON\n"
      "  --help                  this text\n");
}

/// Open an output file or die with a clear message (a silently unwritable
/// --trace must not discard the run).
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}

/// One line per fault: injection window plus measured latencies and — when a
/// repair policy is armed — the repair outcome.
void print_fault_outcomes(const std::vector<paradyn::rocc::FaultOutcome>& outcomes) {
  if (outcomes.empty()) return;
  std::printf("\n  faults:\n");
  for (const auto& o : outcomes) {
    std::string line = "    " + o.spec.describe() + ": ";
    line += o.injected ? "injected" : "not injected";
    if (o.cascaded_from >= 0) {
      line += " (cascaded from fault " + std::to_string(o.cascaded_from) + ")";
    }
    char buf[96];
    if (o.detected) {
      std::snprintf(buf, sizeof(buf), ", detected +%.1f ms", o.detection_latency_us / 1e3);
      line += buf;
      if (o.recovered) {
        std::snprintf(buf, sizeof(buf), ", recovered +%.1f ms", o.recovery_latency_us / 1e3);
        line += buf;
      } else {
        line += ", not recovered";
      }
    } else {
      line += ", not detected";
    }
    if (o.repair_attempted) {
      if (o.repaired) {
        std::snprintf(buf, sizeof(buf), ", repaired +%.1f ms (%u attempt(s)",
                      o.time_to_repair_us / 1e3, o.repair_attempts);
        line += buf;
        if (o.repair_backoff_us > 0.0) {
          std::snprintf(buf, sizeof(buf), ", %.1f ms backoff", o.repair_backoff_us / 1e3);
          line += buf;
        }
        line += ")";
      } else if (o.gave_up) {
        std::snprintf(buf, sizeof(buf), ", repair gave up after %u attempt(s)",
                      o.repair_attempts);
        line += buf;
      } else {
        std::snprintf(buf, sizeof(buf), ", repair abandoned (%u attempt(s), fault lifted)",
                      o.repair_attempts);
        line += buf;
      }
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(
        argc, argv,
        {"arch", "nodes", "apps", "daemons", "sampling-ms", "batch", "topology", "barrier-ms",
         "pipe", "seconds", "warmup", "shards", "uplink-ms", "seed", "reference-rng",
         "batch-sampling", "reps",
         "jobs", "uninstrumented", "dedicated-main",
         "adaptive-budget", "fault", "repair", "adaptive-sampling", "trace", "trace-events",
         "metrics",
         "metrics-tick-ms", "progress", "report-json", "profile", "metrics-json", "help"});
    if (args.get_bool("help")) {
      print_help();
      return 0;
    }

    const std::string arch = args.get_string("arch", "now");
    const auto nodes = static_cast<std::int32_t>(args.get_long("nodes", 8));
    const auto apps = static_cast<std::int32_t>(args.get_long("apps", arch == "smp" ? nodes : 1));
    const auto daemons = static_cast<std::int32_t>(args.get_long("daemons", 1));
    const std::string topology = args.get_string("topology", "direct");

    rocc::SystemConfig cfg = [&] {
      if (arch == "now") return rocc::SystemConfig::now(nodes);
      if (arch == "smp") return rocc::SystemConfig::smp(nodes, apps, daemons);
      if (arch == "mpp") {
        return rocc::SystemConfig::mpp(nodes, topology == "tree"
                                                  ? rocc::ForwardingTopology::BinaryTree
                                                  : rocc::ForwardingTopology::Direct);
      }
      throw std::invalid_argument("unknown --arch: " + arch);
    }();
    if (arch != "smp") cfg.app_processes_per_node = apps;
    cfg.sampling_period_us = args.get_double("sampling-ms", 40.0) * 1'000.0;
    cfg.batch_size = static_cast<std::int32_t>(args.get_long("batch", 1));
    cfg.barrier_period_us = args.get_double("barrier-ms", 0.0) * 1'000.0;
    cfg.pipe_capacity = static_cast<std::int32_t>(args.get_long("pipe", 64));
    cfg.duration_us = args.get_double("seconds", 10.0) * 1e6;
    cfg.warmup_us = args.get_double("warmup", 0.0) * 1e6;
    cfg.shards = static_cast<std::int32_t>(args.get_long("shards", 0));
    // The uplink latency doubles as the cross-shard lookahead, so sharded
    // runs need one; half the default daemon net occupancy is a sensible
    // floor when the user asked for shards but said nothing about uplinks.
    cfg.uplink_latency_us =
        args.get_double("uplink-ms", cfg.shards > 0 ? 0.5 : 0.0) * 1'000.0;
    if (args.has("adaptive-budget")) {
      cfg.adaptive.enabled = true;
      cfg.adaptive.overhead_budget_pct = args.get_double("adaptive-budget", 1.0);
    }
    if (args.has("fault")) cfg.faults = rocc::FaultPlan::parse(args.get_string("fault", ""));
    consultant::RepairPolicy repair_policy;
    if (args.has("repair")) {
      repair_policy = consultant::RepairPolicy::parse(args.get_string("repair", ""));
      if (cfg.faults.empty()) {
        throw std::invalid_argument("--repair requires --fault (nothing to repair)");
      }
    }
    if (args.has("adaptive-sampling")) {
      cfg.adaptive_throttle.enabled = true;
      // Bare switch uses the default budget; --adaptive-sampling=X sets it.
      if (args.get_string("adaptive-sampling", "true") != "true") {
        cfg.adaptive_throttle.perturbation_budget_pct = args.get_double("adaptive-sampling", 5.0);
      }
    }
    cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
    cfg.reference_rng = args.get_bool("reference-rng");
    if (args.has("batch-sampling")) {
      cfg.batch.enabled = true;
      // Bare switch keeps the default block; --batch-sampling=N sets it.
      if (args.get_string("batch-sampling", "true") != "true") {
        cfg.batch.block = static_cast<std::int32_t>(args.get_long("batch-sampling", 256));
      }
    }
    cfg.instrumentation_enabled = !args.get_bool("uninstrumented");
    cfg.main_on_dedicated_host = args.get_bool("dedicated-main");
    cfg.validate();

    const auto reps = static_cast<std::size_t>(args.get_long("reps", 1));
    const auto jobs = static_cast<std::size_t>(args.get_long("jobs", 0));  // 0 = all hw threads

    const std::string trace_file = args.get_string("trace", "");
    const auto trace_events =
        static_cast<std::size_t>(args.get_long("trace-events", 1L << 18));
    const std::string metrics_file = args.get_string("metrics", "");
    const double metrics_tick_us = args.get_double("metrics-tick-ms", 100.0) * 1'000.0;
    const std::string report_file = args.get_string("report-json", "");
    const bool profile = args.get_bool("profile");
    const std::string metrics_json_file = args.get_string("metrics-json", "");
    // --metrics-json wants the probes armed even without a CSV destination.
    const bool want_metrics = !metrics_file.empty() || !metrics_json_file.empty();
    if (cfg.shards > 0 && want_metrics) {
      throw std::invalid_argument(
          "--metrics/--metrics-json are not supported with --shards (the probes read "
          "cross-shard state mid-run); drop --shards or the metrics flags");
    }
    if (args.get_bool("progress")) experiments::set_progress_stream(&std::cerr);

    obs::ReproStamp stamp;
    stamp.tool = "roccsim";
    stamp.config = cfg.summary();
    stamp.seed = cfg.seed;
    stamp.has_seed = true;
    stamp.jobs = reps >= 2 ? (jobs == 0 ? experiments::default_jobs() : jobs) : 1;
    std::ostringstream stamp_text;
    stamp.write(stamp_text);
    std::fputs(stamp_text.str().c_str(), stdout);

    std::printf("roccsim: %s, %d node(s), SP=%.1f ms, %s(batch %d), %.1f s simulated, %zu rep(s)\n\n",
                rocc::to_string(cfg.arch), cfg.nodes, cfg.sampling_period_us / 1e3,
                rocc::to_string(cfg.policy()), cfg.batch_size, cfg.duration_us / 1e6, reps);

    // --profile piggybacks on the trace recorder: when no --trace file was
    // asked for, the ring stays in memory and is only fed to the profiler.
    std::optional<obs::TraceRecorder> recorder;
    if (!trace_file.empty() || profile) recorder.emplace(trace_events);
    obs::MetricsRegistry registry;
    std::optional<obs::ProfileReport> profile_report;

    // One replication set reused across metrics when reps >= 2.
    if (reps >= 2) {
      // The hook runs on worker threads: each rep writes its own tracer
      // slot, and only rep 0 (seed == base seed) carries the metrics probes
      // — a registry belongs to a single simulation.
      std::vector<obs::Tracer> tracers(reps);
      // Per-rep detection harnesses (each owns a consultant fed by that
      // rep's delivered samples); slots are disjoint so no lock is needed.
      std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
      const experiments::RunHook hook = [&](rocc::Simulation& sim, std::size_t /*cell*/,
                                            std::size_t rep) {
        if (recorder) {
          if (cfg.shards > 0) {
            // Partitioned runs trace one tracer per shard ("shard s"
            // process names); attach the recorder to rep 0 only so the
            // shard names stay unambiguous across replications.
            if (rep == 0) sim.set_trace_recorder(*recorder);
          } else {
            tracers[rep] = recorder->create_tracer("rep " + std::to_string(rep));
            sim.set_tracer(&tracers[rep]);
          }
        }
        if (want_metrics && rep == 0) sim.enable_metrics(registry, metrics_tick_us);
        // No-op when the effective fault plan is empty.
        harnesses[rep] =
            std::make_unique<consultant::DetectionHarness>(sim, consultant::DetectorConfig{},
                                                           repair_policy);
      };
      const experiments::ReplicationSet rs(cfg, reps, jobs, hook);
      const auto row = [&](const char* label, const experiments::MetricFn& fn, int digits) {
        const auto ci = rs.metric(fn);
        std::printf("  %-36s %s\n", label,
                    experiments::fmt_ci(ci.mean, ci.half_width, digits).c_str());
      };
      row("Pd CPU time/node (s)", experiments::pd_cpu_time_sec, 4);
      row("Pd CPU utilization/node (%)",
          [](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }, 3);
      row("main Paradyn CPU utilization (%)",
          [](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }, 3);
      row("application CPU utilization/node (%)",
          [](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }, 3);
      row("monitoring latency/sample (ms)", experiments::latency_ms, 3);
      row("throughput (samples/s)", experiments::throughput, 1);
      // Detection/recovery latencies live in the harnesses; fold them into
      // a finalized copy of the results for the report and the summary.
      std::vector<rocc::SimulationResult> finalized = rs.results();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        if (harnesses[rep]) harnesses[rep]->finalize(finalized[rep]);
      }
      if (!finalized.empty() && !finalized.front().fault_outcomes.empty()) {
        row("samples dropped by faults",
            [](const rocc::SimulationResult& r) {
              return static_cast<double>(r.samples_dropped);
            },
            1);
        // Per-fault rows aggregate the *plan* faults only: cascade-induced
        // rows are appended per rep and their count can vary with the seed.
        std::size_t nfaults = finalized.front().fault_outcomes.size();
        for (const auto& r : finalized) nfaults = std::min(nfaults, r.fault_outcomes.size());
        std::printf("\n  per-fault detection latency, mean over %zu rep(s) (ms):\n", reps);
        double mttd_sum = 0.0;
        std::size_t mttd_n = 0;
        double mttr_sum = 0.0;
        std::size_t mttr_n = 0;
        std::size_t gave_up_n = 0;
        bool any_repair = false;
        for (std::size_t f = 0; f < nfaults; ++f) {
          double det_sum = 0.0;
          double rec_sum = 0.0;
          double rep_sum = 0.0;
          std::size_t det_n = 0;
          std::size_t rec_n = 0;
          std::size_t rep_n = 0;
          std::size_t gu_n = 0;
          for (const auto& r : finalized) {
            const auto& o = r.fault_outcomes[f];
            if (o.detected) {
              det_sum += o.detection_latency_us;
              ++det_n;
            }
            if (o.recovered) {
              rec_sum += o.recovery_latency_us;
              ++rec_n;
            }
            if (o.repair_attempted) any_repair = true;
            if (o.repaired) {
              rep_sum += o.time_to_repair_us;
              ++rep_n;
            }
            if (o.gave_up) ++gu_n;
          }
          mttd_sum += det_sum;
          mttd_n += det_n;
          mttr_sum += rep_sum;
          mttr_n += rep_n;
          gave_up_n += gu_n;
          std::printf("    %s: detected %zu/%zu", finalized.front().fault_outcomes[f].spec.describe().c_str(),
                      det_n, reps);
          if (det_n > 0) std::printf(", mean +%.1f ms", det_sum / static_cast<double>(det_n) / 1e3);
          std::printf(", recovered %zu/%zu", rec_n, reps);
          if (rec_n > 0) std::printf(", mean +%.1f ms", rec_sum / static_cast<double>(rec_n) / 1e3);
          if (rep_n > 0 || gu_n > 0) {
            std::printf(", repaired %zu/%zu", rep_n, reps);
            if (rep_n > 0) {
              std::printf(", mean TTR +%.1f ms", rep_sum / static_cast<double>(rep_n) / 1e3);
            }
            if (gu_n > 0) std::printf(", gave up %zu/%zu", gu_n, reps);
          }
          std::printf("\n");
        }
        if (any_repair) {
          char mttd[32] = "n/a";
          char mttr[32] = "n/a";
          if (mttd_n > 0) {
            std::snprintf(mttd, sizeof(mttd), "%.1f",
                          mttd_sum / static_cast<double>(mttd_n) / 1e3);
          }
          if (mttr_n > 0) {
            std::snprintf(mttr, sizeof(mttr), "%.1f",
                          mttr_sum / static_cast<double>(mttr_n) / 1e3);
          }
          std::printf("\n  MTTD (ms): %s   MTTR (ms): %s   gave up: %zu\n", mttd, mttr,
                      gave_up_n);
        }
      }
      if (cfg.adaptive_throttle.enabled) {
        row("max sampling throttle factor",
            [](const rocc::SimulationResult& r) { return r.max_throttle_factor; }, 2);
      }
      rs.report().print(std::cerr, "roccsim");
      if (profile) profile_report = obs::profile_recorder(*recorder);
      if (!report_file.empty()) {
        auto os = open_or_throw(report_file);
        experiments::write_report_json(os, stamp, finalized, &rs.report(),
                                       profile_report ? &*profile_report : nullptr);
      }
    } else {
      rocc::Simulation sim(cfg);
      // Fan the shard window loop over a pool when the hardware has room;
      // the executor never changes results (bit-identical by contract).
      std::optional<experiments::ThreadPool> shard_pool;
      if (cfg.shards > 1) {
        const std::size_t lanes = std::min<std::size_t>(
            static_cast<std::size_t>(cfg.shards), experiments::ThreadPool::hardware_jobs());
        if (lanes > 1) {
          shard_pool.emplace(lanes - 1);  // the caller thread is lane 0
          sim.set_shard_executor(experiments::shard_pool_executor(*shard_pool, lanes));
        }
      }
      obs::Tracer tracer;
      if (recorder) {
        if (cfg.shards > 0) {
          sim.set_trace_recorder(*recorder);
        } else {
          tracer = recorder->create_tracer();
          sim.set_tracer(&tracer);
        }
      }
      if (want_metrics) sim.enable_metrics(registry, metrics_tick_us);
      // No-op when the effective fault plan is empty.
      const consultant::DetectionHarness harness(sim, consultant::DetectorConfig{},
                                                 repair_policy);
      auto r = sim.run();
      harness.finalize(r);
      std::printf("  %-36s %.4f\n", "Pd CPU time/node (s)", r.pd_cpu_time_sec());
      std::printf("  %-36s %.3f\n", "Pd CPU utilization/node (%)", r.pd_cpu_util_pct);
      std::printf("  %-36s %.3f\n", "main Paradyn CPU utilization (%)", r.main_cpu_util_pct);
      std::printf("  %-36s %.3f\n", "application CPU utilization/node (%)", r.app_cpu_util_pct);
      std::printf("  %-36s %.3f\n", "monitoring latency/sample (ms)", r.latency_sec() * 1e3);
      std::printf("  %-36s %.1f\n", "throughput (samples/s)", r.throughput_samples_per_sec);
      std::printf("  %-36s %llu / %llu\n", "samples delivered / generated",
                  static_cast<unsigned long long>(r.samples_delivered),
                  static_cast<unsigned long long>(r.samples_generated));
      if (cfg.adaptive.enabled) {
        std::printf("  %-36s %.2f\n", "final sampling period (ms)",
                    r.final_sampling_period_us / 1e3);
      }
      if (!r.fault_outcomes.empty()) {
        std::printf("  %-36s %llu\n", "samples dropped by faults",
                    static_cast<unsigned long long>(r.samples_dropped));
      }
      if (cfg.adaptive_throttle.enabled) {
        std::printf("  %-36s %.2f (%llu adjustment(s))\n", "max sampling throttle factor",
                    r.max_throttle_factor,
                    static_cast<unsigned long long>(r.throttle_adjustments));
      }
      print_fault_outcomes(r.fault_outcomes);
      if (profile) profile_report = obs::profile_recorder(*recorder);
      if (!report_file.empty()) {
        auto os = open_or_throw(report_file);
        experiments::write_report_json(os, stamp, {r}, nullptr,
                                       profile_report ? &*profile_report : nullptr);
      }
    }

    if (profile_report) {
      std::printf("\n");
      obs::print_profile_report(std::cout, *profile_report);
    }

    if (recorder && !trace_file.empty()) {
      auto os = open_or_throw(trace_file);
      recorder->write_chrome_json(os);
      std::fprintf(stderr, "roccsim: wrote %llu trace event(s) to %s (%llu dropped)\n",
                   static_cast<unsigned long long>(recorder->recorded() - recorder->dropped()),
                   trace_file.c_str(), static_cast<unsigned long long>(recorder->dropped()));
    }
    if (!metrics_file.empty()) {
      auto os = open_or_throw(metrics_file);
      stamp.write(os);
      registry.write_csv(os);
      std::fprintf(stderr, "roccsim: wrote %zu metrics row(s) to %s\n", registry.rows(),
                   metrics_file.c_str());
    }
    if (!metrics_json_file.empty()) {
      auto os = open_or_throw(metrics_json_file);
      experiments::write_metrics_json(os, registry);
      std::fprintf(stderr, "roccsim: wrote %zu metrics row(s) to %s\n", registry.rows(),
                   metrics_json_file.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roccsim: %s\n(try --help)\n", e.what());
    return 1;
  }
}
