// Minimal command-line flag parser shared by the CLI tools.
//
// Supports --name value and --name=value forms, plus boolean switches.
// Unknown flags are an error; every tool prints its own --help.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace paradyn::tools {

class CliArgs {
 public:
  /// Parse argv.  `known_flags` lists the accepted --names (without the
  /// leading dashes); anything else throws std::invalid_argument.
  CliArgs(int argc, const char* const argv[], std::set<std::string> known_flags);

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) != 0; }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace paradyn::tools
