// Minimal command-line flag parser shared by the CLI tools.
//
// Supports --name value and --name=value forms, plus boolean switches.
// Unknown flags are an error with a "did you mean --X?" suggestion when a
// known flag is close — a mistyped --trce must fail loudly, not silently
// run untraced.  Positional arguments are rejected unless the tool opts in
// via `max_positionals`; every tool prints its own --help.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace paradyn::tools {

class CliArgs {
 public:
  /// Parse argv.  `known_flags` lists the accepted --names (without the
  /// leading dashes); anything else throws std::invalid_argument.  Up to
  /// `max_positionals` non-flag arguments are collected into positionals()
  /// (0, the default, rejects them).
  CliArgs(int argc, const char* const argv[], std::set<std::string> known_flags,
          std::size_t max_positionals = 0);

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) != 0; }

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace paradyn::tools
