// roccsweep — sweep one ROCC parameter and emit figure-ready CSV.
//
//   roccsweep --axis sampling-ms --values 1,2,5,10,20,40 --arch now --nodes 8
//   roccsweep --axis batch --values 1,2,4,8,16,32,64,128 --sampling-ms 1
//   roccsweep --axis nodes --values 2,4,8,16,32 --batch 32 --reps 3 > fig.csv
//
// Columns: the axis, then pd_util, main_util, app_util, latency_ms,
// throughput (means over --reps seed-varied replications).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "consultant/fault_detector.hpp"
#include "experiments/report_json.hpp"
#include "experiments/runner.hpp"
#include "experiments/shard_executor.hpp"
#include "experiments/table.hpp"
#include "obs/repro.hpp"
#include "rocc/config.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace {

/// Per-simulation PDES wiring (installs the shard executor); empty when the
/// sweep runs unsharded or the clamp left only one lane per job.
using ShardSetup = std::function<void(paradyn::rocc::Simulation&)>;

void print_help() {
  std::puts(
      "roccsweep — one-axis parameter sweep, CSV on stdout\n"
      "\n"
      "  --axis NAME        sampling-ms | batch | nodes | apps | daemons | pipe |\n"
      "                     barrier-ms\n"
      "                     (--axis nodes sweeps node count on NOW/MPP; on SMP it\n"
      "                     sweeps cpus_per_node, the machine's CPU count)\n"
      "  --values a,b,c     sweep points (required)\n"
      "  --arch now|smp|mpp --nodes N --apps N --daemons N --sampling-ms X\n"
      "  --batch N --topology direct|tree --seconds X --reps N --seed N\n"
      "  --shards N         partition every run into N conservative-window DES\n"
      "                     shards (PDES); results are bit-identical for every N\n"
      "  --uplink-ms X      daemon uplink latency in ms (the cross-shard lookahead);\n"
      "                     default 0 (0.5 when --shards is given)\n"
      "  --reference-rng    pre-ziggurat variate backend (pre-PR-5 streams)\n"
      "  --batch-sampling [N]  prefill-buffer batch sampling (block N, default\n"
      "                     256); deterministic across --jobs/--shards, but a\n"
      "                     different stream than the default\n"
      "  --jobs N           worker threads per replication set; default: all\n"
      "                     hardware threads, 1 = serial (results identical).\n"
      "                     Shard workers are clamped per job so --jobs x --shards\n"
      "                     never oversubscribes the machine\n"
      "  --progress         heartbeat lines on stderr as runs finish\n"
      "  --report-json FILE full SimulationResult of every run as JSON\n"
      "  --fault-grid       instead of an axis sweep, run the canonical fault grid\n"
      "                     (every fault type at two severities + a fault-free\n"
      "                     baseline) and emit a detection/recovery-latency CSV\n"
      "  --repair-grid      instead of an axis sweep, cross every repairable fault\n"
      "                     flavor with the canonical repair policies (off, eager,\n"
      "                     flaky, hopeless) and emit a repair/MTTR CSV\n"
      "  --help             this text\n");
}

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  if (out.empty()) throw std::invalid_argument("--values: no sweep points");
  return out;
}

void apply_axis(paradyn::rocc::SystemConfig& cfg, const std::string& axis, double value) {
  using paradyn::rocc::Architecture;
  if (axis == "sampling-ms") {
    cfg.sampling_period_us = value * 1'000.0;
  } else if (axis == "batch") {
    cfg.batch_size = static_cast<std::int32_t>(value);
  } else if (axis == "nodes") {
    if (cfg.arch == Architecture::Smp) {
      cfg.cpus_per_node = static_cast<std::int32_t>(value);
    } else {
      cfg.nodes = static_cast<std::int32_t>(value);
    }
  } else if (axis == "apps") {
    cfg.app_processes_per_node = static_cast<std::int32_t>(value);
  } else if (axis == "daemons") {
    cfg.daemons = static_cast<std::int32_t>(value);
  } else if (axis == "pipe") {
    cfg.pipe_capacity = static_cast<std::int32_t>(value);
  } else if (axis == "barrier-ms") {
    cfg.barrier_period_us = value * 1'000.0;
  } else {
    throw std::invalid_argument("unknown --axis: " + axis);
  }
}

/// One row of the fault grid: a label plus the --fault spec string (empty
/// = the fault-free baseline).
struct GridEntry {
  std::string label;
  std::string spec;
};

/// The canonical fault grid (Tables 4-6 style): every fault type at a mild
/// and a severe setting, windows placed relative to the simulated length.
std::vector<GridEntry> fault_grid(double duration_us) {
  const double start = 0.4 * duration_us;
  const double dur = 0.2 * duration_us;
  const auto window = [&](const char* extra) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "start=%.0f,dur=%.0f%s", start, dur, extra);
    return std::string(buf);
  };
  return {
      {"none", ""},
      {"daemon_stall", "daemon_stall:daemon=0," + window("")},
      {"daemon_crash", "daemon_crash:daemon=0," + window("")},
      {"link_slow_x4", "link_slow:" + window(",factor=4")},
      {"link_slow_x16", "link_slow:" + window(",factor=16")},
      {"sample_drop_10", "sample_drop:node=all," + window(",p=0.1")},
      {"sample_drop_50", "sample_drop:node=all," + window(",p=0.5")},
      {"pipe_backpressure", "pipe_backpressure:daemon=0," + window(",capacity=1")},
  };
}

/// Run the grid and print a CSV of per-fault detection/recovery metrics.
void run_fault_grid(const paradyn::rocc::SystemConfig& base, std::size_t reps, std::size_t jobs,
                    const std::string& report_file, const paradyn::obs::ReproStamp& stamp,
                    const ShardSetup& shard_setup) {
  using namespace paradyn;
  std::printf("fault,detected_frac,detection_ms,recovered_frac,recovery_ms,dropped,delivered,latency_ms\n");
  std::vector<rocc::SimulationResult> all_results;
  experiments::RunReport grid_report;
  for (const GridEntry& entry : fault_grid(base.duration_us)) {
    rocc::SystemConfig cfg = base;
    if (!entry.spec.empty()) cfg.faults = rocc::FaultPlan::parse(entry.spec);
    cfg.validate();
    std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
    const experiments::RunHook hook = [&](rocc::Simulation& sim, std::size_t, std::size_t rep) {
      if (shard_setup) shard_setup(sim);
      harnesses[rep] = std::make_unique<consultant::DetectionHarness>(sim);
    };
    const experiments::ReplicationSet rs(cfg, reps, jobs, hook);
    grid_report += rs.report();
    std::vector<rocc::SimulationResult> finalized = rs.results();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      if (harnesses[rep]) harnesses[rep]->finalize(finalized[rep]);
    }

    double det_sum = 0.0;
    double rec_sum = 0.0;
    double dropped = 0.0;
    double delivered = 0.0;
    double latency_ms = 0.0;
    std::size_t det_n = 0;
    std::size_t rec_n = 0;
    for (const auto& r : finalized) {
      for (const auto& o : r.fault_outcomes) {
        if (o.detected) {
          det_sum += o.detection_latency_us;
          ++det_n;
        }
        if (o.recovered) {
          rec_sum += o.recovery_latency_us;
          ++rec_n;
        }
      }
      dropped += static_cast<double>(r.samples_dropped);
      delivered += static_cast<double>(r.samples_delivered);
      latency_ms += r.latency_us.count() ? r.latency_us.mean() / 1e3 : 0.0;
    }
    const auto n = static_cast<double>(reps);
    const std::size_t outcome_slots = finalized.front().fault_outcomes.size() * reps;
    std::printf("%s,%.2f,%.3f,%.2f,%.3f,%.1f,%.1f,%.3f\n", entry.label.c_str(),
                outcome_slots ? static_cast<double>(det_n) / static_cast<double>(outcome_slots) : 0.0,
                det_n ? det_sum / static_cast<double>(det_n) / 1e3 : -1.0,
                outcome_slots ? static_cast<double>(rec_n) / static_cast<double>(outcome_slots) : 0.0,
                rec_n ? rec_sum / static_cast<double>(rec_n) / 1e3 : -1.0, dropped / n,
                delivered / n, latency_ms / n);
    if (!report_file.empty()) {
      all_results.insert(all_results.end(), finalized.begin(), finalized.end());
    }
  }
  grid_report.print(std::cerr, "roccsweep --fault-grid");
  if (!report_file.empty()) {
    std::ofstream os(report_file);
    if (!os) throw std::runtime_error("cannot open for writing: " + report_file);
    experiments::write_report_json(os, stamp, all_results, &grid_report);
  }
}

/// The canonical repair grid: every repairable fault flavor crossed with a
/// policy ladder from "no repair" through "never succeeds", so MTTR and
/// gave_up rates are comparable across fault types the way the fault grid
/// makes detection latency comparable.
struct RepairGridEntry {
  std::string fault_label;
  std::string fault_spec;
  std::string policy_label;
  std::string policy_spec;
};

std::vector<RepairGridEntry> repair_grid(double duration_us) {
  const double start = 0.4 * duration_us;
  const double dur = 0.4 * duration_us;
  const auto window = [&](const char* extra) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "start=%.0f,dur=%.0f%s", start, dur, extra);
    return std::string(buf);
  };
  const std::vector<std::pair<std::string, std::string>> faults = {
      {"daemon_stall", "daemon_stall:daemon=0," + window("")},
      {"daemon_crash", "daemon_crash:daemon=0," + window("")},
      {"link_slow_x4", "link_slow:" + window(",factor=4")},
      {"pipe_backpressure", "pipe_backpressure:daemon=0," + window(",capacity=1")},
  };
  // Per-fault matching action; timeout/backoff scale with the window so the
  // grid stays meaningful at any --seconds value.
  const auto action_for = [](const std::string& label) {
    if (label.rfind("daemon", 0) == 0) return std::string("restart_daemon");
    if (label.rfind("link", 0) == 0) return std::string("reroute_link");
    return std::string("reset_pipe");
  };
  const double timeout = 0.02 * duration_us;
  const double backoff = 0.01 * duration_us;
  const auto policy = [&](const std::string& action, const char* extra) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s:timeout=%.0f,max_retries=3,backoff=exp:%.0f%s",
                  action.c_str(), timeout, backoff, extra);
    return std::string(buf);
  };
  std::vector<RepairGridEntry> grid;
  for (const auto& [flabel, fspec] : faults) {
    const std::string action = action_for(flabel);
    grid.push_back({flabel, fspec, "off", ""});
    grid.push_back({flabel, fspec, "eager", policy(action, "")});
    grid.push_back({flabel, fspec, "flaky", policy(action, ",success_p=0.5")});
    grid.push_back({flabel, fspec, "hopeless", policy(action, ",success_p=0")});
  }
  return grid;
}

/// Run the repair grid and print a CSV of per-cell repair/MTTR metrics.
void run_repair_grid(const paradyn::rocc::SystemConfig& base, std::size_t reps, std::size_t jobs,
                     const std::string& report_file, const paradyn::obs::ReproStamp& stamp,
                     const ShardSetup& shard_setup) {
  using namespace paradyn;
  std::printf(
      "fault,policy,detected_frac,detection_ms,repaired_frac,ttr_ms,gave_up_frac,"
      "attempts_mean,backoff_ms,dropped\n");
  std::vector<rocc::SimulationResult> all_results;
  experiments::RunReport grid_report;
  for (const RepairGridEntry& entry : repair_grid(base.duration_us)) {
    rocc::SystemConfig cfg = base;
    cfg.faults = rocc::FaultPlan::parse(entry.fault_spec);
    cfg.validate();
    consultant::RepairPolicy policy;
    if (!entry.policy_spec.empty()) policy = consultant::RepairPolicy::parse(entry.policy_spec);
    std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
    const experiments::RunHook hook = [&](rocc::Simulation& sim, std::size_t, std::size_t rep) {
      if (shard_setup) shard_setup(sim);
      harnesses[rep] =
          std::make_unique<consultant::DetectionHarness>(sim, consultant::DetectorConfig{},
                                                         policy);
    };
    const experiments::ReplicationSet rs(cfg, reps, jobs, hook);
    grid_report += rs.report();
    std::vector<rocc::SimulationResult> finalized = rs.results();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      if (harnesses[rep]) harnesses[rep]->finalize(finalized[rep]);
    }

    double det_sum = 0.0;
    double ttr_sum = 0.0;
    double backoff_sum = 0.0;
    double attempts_sum = 0.0;
    double dropped = 0.0;
    std::size_t det_n = 0;
    std::size_t rep_n = 0;
    std::size_t gave_up_n = 0;
    std::size_t attempted_n = 0;
    std::size_t slots = 0;
    for (const auto& r : finalized) {
      for (const auto& o : r.fault_outcomes) {
        if (o.cascaded_from >= 0) continue;  // induced rows have no policy row
        ++slots;
        if (o.detected) {
          det_sum += o.detection_latency_us;
          ++det_n;
        }
        if (o.repair_attempted) {
          ++attempted_n;
          attempts_sum += o.repair_attempts;
          backoff_sum += o.repair_backoff_us;
        }
        if (o.repaired) {
          ttr_sum += o.time_to_repair_us;
          ++rep_n;
        }
        if (o.gave_up) ++gave_up_n;
      }
      dropped += static_cast<double>(r.samples_dropped);
    }
    const auto frac = [&](std::size_t k) {
      return slots ? static_cast<double>(k) / static_cast<double>(slots) : 0.0;
    };
    std::printf("%s,%s,%.2f,%.3f,%.2f,%.3f,%.2f,%.2f,%.3f,%.1f\n", entry.fault_label.c_str(),
                entry.policy_label.c_str(), frac(det_n),
                det_n ? det_sum / static_cast<double>(det_n) / 1e3 : -1.0, frac(rep_n),
                rep_n ? ttr_sum / static_cast<double>(rep_n) / 1e3 : -1.0, frac(gave_up_n),
                attempted_n ? attempts_sum / static_cast<double>(attempted_n) : 0.0,
                attempted_n ? backoff_sum / static_cast<double>(attempted_n) / 1e3 : 0.0,
                dropped / static_cast<double>(reps));
    if (!report_file.empty()) {
      all_results.insert(all_results.end(), finalized.begin(), finalized.end());
    }
  }
  grid_report.print(std::cerr, "roccsweep --repair-grid");
  if (!report_file.empty()) {
    std::ofstream os(report_file);
    if (!os) throw std::runtime_error("cannot open for writing: " + report_file);
    experiments::write_report_json(os, stamp, all_results, &grid_report);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(
        argc, argv,
        {"axis", "values", "arch", "nodes", "apps", "daemons", "sampling-ms", "batch",
         "topology", "seconds", "reps", "seed", "shards", "uplink-ms", "reference-rng",
         "batch-sampling", "jobs",
         "progress", "report-json", "fault-grid", "repair-grid", "help"});
    const bool grid_mode = args.get_bool("fault-grid");
    const bool repair_grid_mode = args.get_bool("repair-grid");
    if (args.get_bool("help") ||
        (!grid_mode && !repair_grid_mode && (!args.has("axis") || !args.has("values")))) {
      print_help();
      return args.get_bool("help") ? 0 : 1;
    }
    if (grid_mode && repair_grid_mode) {
      throw std::invalid_argument("--fault-grid and --repair-grid are mutually exclusive");
    }

    const std::string axis = args.get_string("axis", "");
    const auto values = grid_mode || repair_grid_mode
                            ? std::vector<double>{}
                            : parse_values(args.get_string("values", ""));
    const std::string arch = args.get_string("arch", "now");
    const auto nodes = static_cast<std::int32_t>(args.get_long("nodes", 8));
    const auto apps = static_cast<std::int32_t>(args.get_long("apps", arch == "smp" ? nodes : 1));
    const auto daemons = static_cast<std::int32_t>(args.get_long("daemons", 1));
    const auto reps = static_cast<std::size_t>(args.get_long("reps", 1));
    const auto jobs = static_cast<std::size_t>(args.get_long("jobs", 0));  // 0 = all hw threads

    rocc::SystemConfig base = [&] {
      if (arch == "now") return rocc::SystemConfig::now(nodes);
      if (arch == "smp") return rocc::SystemConfig::smp(nodes, apps, daemons);
      if (arch == "mpp") {
        return rocc::SystemConfig::mpp(
            nodes, args.get_string("topology", "direct") == "tree"
                       ? rocc::ForwardingTopology::BinaryTree
                       : rocc::ForwardingTopology::Direct);
      }
      throw std::invalid_argument("unknown --arch: " + arch);
    }();
    if (arch != "smp") base.app_processes_per_node = apps;
    base.sampling_period_us = args.get_double("sampling-ms", 40.0) * 1'000.0;
    base.batch_size = static_cast<std::int32_t>(args.get_long("batch", 1));
    base.duration_us = args.get_double("seconds", 5.0) * 1e6;
    base.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
    base.shards = static_cast<std::int32_t>(args.get_long("shards", 0));
    base.uplink_latency_us =
        args.get_double("uplink-ms", base.shards > 0 ? 0.5 : 0.0) * 1'000.0;
    base.reference_rng = args.get_bool("reference-rng");
    if (args.has("batch-sampling")) {
      base.batch.enabled = true;
      if (args.get_string("batch-sampling", "true") != "true") {
        base.batch.block = static_cast<std::int32_t>(args.get_long("batch-sampling", 256));
      }
    }

    if (args.get_bool("progress")) experiments::set_progress_stream(&std::cerr);
    const std::string report_file = args.get_string("report-json", "");

    // Every replication job runs its own sharded simulation, so unclamped
    // PDES lanes would put --jobs x --shards threads on the machine at
    // once.  Clamp lanes per job to the hardware budget (warn once); the
    // executor choice never changes results, so the clamp is free.
    const std::size_t effective_jobs = jobs == 0 ? experiments::default_jobs() : jobs;
    std::optional<experiments::ThreadPool> shard_pool;
    ShardSetup shard_setup;
    if (base.shards > 1) {
      const std::size_t hw = experiments::ThreadPool::hardware_jobs();
      auto lanes = static_cast<std::size_t>(base.shards);
      if (effective_jobs * lanes > hw) {
        lanes = std::min(static_cast<std::size_t>(base.shards),
                         std::max<std::size_t>(1, hw / effective_jobs));
        std::fprintf(stderr,
                     "roccsweep: clamping shard workers to %zu per job (--jobs %zu x --shards "
                     "%d exceeds %zu hardware thread(s)); results are unchanged\n",
                     lanes, effective_jobs, base.shards, hw);
      }
      if (lanes > 1) {
        shard_pool.emplace(effective_jobs * (lanes - 1));
        shard_setup = [&pool = *shard_pool, lanes](rocc::Simulation& sim) {
          sim.set_shard_executor(experiments::shard_pool_executor(pool, lanes));
        };
      }
    }

    obs::ReproStamp stamp;
    stamp.tool = "roccsweep";
    stamp.config = base.summary();
    stamp.seed = base.seed;
    stamp.has_seed = true;
    stamp.jobs = jobs == 0 ? experiments::default_jobs() : jobs;
    stamp.extra = grid_mode ? "fault-grid reps=" + std::to_string(reps)
                  : repair_grid_mode
                      ? "repair-grid reps=" + std::to_string(reps)
                      : "axis=" + axis + " values=" + args.get_string("values", "") +
                            " reps=" + std::to_string(reps);
    // '#'-prefixed header on the CSV itself: plotting scripts skip it,
    // humans can always trace the file back to the run that made it.
    stamp.write(std::cout);

    if (grid_mode) {
      run_fault_grid(base, reps, jobs, report_file, stamp, shard_setup);
      return 0;
    }
    if (repair_grid_mode) {
      run_repair_grid(base, reps, jobs, report_file, stamp, shard_setup);
      return 0;
    }

    std::vector<std::vector<double>> series(5);
    std::vector<rocc::SimulationResult> all_results;
    experiments::RunReport sweep_report;
    for (const double v : values) {
      rocc::SystemConfig cfg = base;
      apply_axis(cfg, axis, v);
      cfg.validate();
      const experiments::RunHook hook = [&](rocc::Simulation& sim, std::size_t, std::size_t) {
        if (shard_setup) shard_setup(sim);
      };
      const experiments::ReplicationSet rs(cfg, reps, jobs, hook);
      sweep_report += rs.report();
      if (!report_file.empty()) {
        all_results.insert(all_results.end(), rs.results().begin(), rs.results().end());
      }
      series[0].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      series[1].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
      series[2].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      series[3].push_back(rs.mean(experiments::latency_ms));
      series[4].push_back(rs.mean(experiments::throughput));
    }

    experiments::write_series_csv(
        std::cout, axis, values,
        {"pd_util_pct", "main_util_pct", "app_util_pct", "latency_ms", "throughput_per_s"},
        series);
    sweep_report.print(std::cerr, "roccsweep");
    if (!report_file.empty()) {
      std::ofstream os(report_file);
      if (!os) throw std::runtime_error("cannot open for writing: " + report_file);
      experiments::write_report_json(os, stamp, all_results, &sweep_report);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roccsweep: %s\n(try --help)\n", e.what());
    return 1;
  }
}
