// tracegen — generate, inspect, and characterize AIX-style traces.
//
//   tracegen --seconds 30 --nodes 1 --out trace.csv      # synthesize
//   tracegen --in trace.csv --stats                      # Table 1 view
//   tracegen --in trace.csv --fit                        # Table 2 view
//   tracegen --seconds 10 --stats --fit                  # all in memory
#include <cstdio>
#include <exception>
#include <iostream>

#include "cli_args.hpp"
#include "experiments/table.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace {

void print_help() {
  std::puts(
      "tracegen — synthetic SP-2 trace generator / workload characterizer\n"
      "\n"
      "  --seconds X      generate X seconds of trace (default 10)\n"
      "  --nodes N        nodes to trace (default 1)\n"
      "  --seed N         RNG seed (default 1)\n"
      "  --reference-rng  pre-ziggurat variate backend (pre-PR-5 streams)\n"
      "  --out FILE       write the generated trace as CSV\n"
      "  --in FILE        read a trace CSV instead of generating\n"
      "  --stats          print Table 1-style occupancy statistics\n"
      "  --fit            print Table 2-style fitted distributions\n"
      "  --help           this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(
        argc, argv,
        {"seconds", "nodes", "seed", "reference-rng", "out", "in", "stats", "fit", "help"});
    if (args.get_bool("help")) {
      print_help();
      return 0;
    }

    std::vector<trace::TraceRecord> records;
    if (args.has("in")) {
      records = trace::read_csv_file(args.get_string("in", ""));
      std::printf("read %zu records from %s\n", records.size(),
                  args.get_string("in", "").c_str());
    } else {
      const double seconds = args.get_double("seconds", 10.0);
      const auto nodes = static_cast<std::int32_t>(args.get_long("nodes", 1));
      const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
      trace::Sp2TraceModel model = trace::Sp2TraceModel::paper_pvmbt(seconds * 1e6);
      if (args.get_bool("reference-rng")) model.backend = stats::SamplerBackend::Reference;
      records = trace::generate_trace(model, nodes, seed);
      std::printf("generated %zu records (%.1f s, %d node(s), seed %llu)\n", records.size(),
                  seconds, nodes, static_cast<unsigned long long>(seed));
    }

    if (args.has("out")) {
      trace::write_csv_file(args.get_string("out", ""), records);
      std::printf("wrote %s\n", args.get_string("out", "").c_str());
    }

    if (args.get_bool("stats")) {
      experiments::TablePrinter table("occupancy statistics (microseconds)",
                                      {"process", "CPU n", "CPU mean", "CPU sd", "net n",
                                       "net mean", "net sd"});
      for (const auto& row : trace::occupancy_statistics(records)) {
        table.add_row({std::string(trace::to_string(row.pclass)),
                       std::to_string(row.cpu.count()), experiments::fmt(row.cpu.mean(), 1),
                       experiments::fmt(row.cpu.stddev(), 1), std::to_string(row.network.count()),
                       experiments::fmt(row.network.mean(), 1),
                       experiments::fmt(row.network.stddev(), 1)});
      }
      table.print(std::cout);
    }

    if (args.get_bool("fit")) {
      const auto model = trace::characterize(records);
      experiments::TablePrinter table("fitted workload model",
                                      {"process", "CPU length", "net length",
                                       "CPU inter-arrival (us)"});
      for (const auto& [pclass, w] : model.classes) {
        table.add_row({std::string(trace::to_string(pclass)),
                       w.cpu_length ? w.cpu_length->describe() : "-",
                       w.net_length ? w.net_length->describe() : "-",
                       w.cpu_interarrival_mean ? experiments::fmt(*w.cpu_interarrival_mean, 0)
                                               : "-"});
      }
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracegen: %s\n(try --help)\n", e.what());
    return 1;
  }
}
