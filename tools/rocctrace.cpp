// rocctrace — summarize a Chrome trace recorded by roccsim --trace.
//
//   roccsim --arch now --nodes 8 --trace out.json
//   rocctrace out.json
//   rocctrace out.json --top 10
//   rocctrace out.json --event sample --cat pipe
//
// Prints the top event types by total time and count, and the latency
// percentiles of every async chain (e.g. the sample generation-to-delivery
// lifecycle).  Accepts any conforming trace-event JSON file, not only ours.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "cli_args.hpp"
#include "obs/trace_read.hpp"
#include "util/suggest.hpp"

namespace {

void print_help() {
  std::puts(
      "rocctrace — summarize a Chrome trace-event JSON file\n"
      "\n"
      "  rocctrace FILE [--top N] [--event NAME] [--cat NAME]\n"
      "\n"
      "  FILE          trace produced by roccsim/roccsweep --trace (or any\n"
      "                chrome://tracing-compatible JSON)\n"
      "  --top N       event types to list; default 20\n"
      "  --event NAME  only event types / async chains with this name\n"
      "  --cat NAME    only event types / async chains in this category\n"
      "  --help        this text\n");
}

/// Keep only the rows matching the --event / --cat filters.  A filter value
/// that matches nothing in the trace is a loud error with a did-you-mean
/// over the names the trace actually contains — a typo must not silently
/// print an empty summary.
paradyn::obs::TraceSummary filter_summary(paradyn::obs::TraceSummary summary,
                                          const std::string& event, const std::string& cat) {
  std::set<std::string> names;
  std::set<std::string> cats;
  for (const auto& t : summary.types) {
    names.insert(t.name);
    cats.insert(t.cat);
  }
  for (const auto& c : summary.chains) {
    names.insert(c.name);
    cats.insert(c.cat);
  }
  if (!event.empty() && names.count(event) == 0) {
    throw std::invalid_argument("no event named '" + event + "' in this trace" +
                                paradyn::util::did_you_mean(event, names));
  }
  if (!cat.empty() && cats.count(cat) == 0) {
    throw std::invalid_argument("no category named '" + cat + "' in this trace" +
                                paradyn::util::did_you_mean(cat, cats));
  }
  const auto keep = [&](const std::string& n, const std::string& c) {
    return (event.empty() || n == event) && (cat.empty() || c == cat);
  };
  std::erase_if(summary.types, [&](const auto& t) { return !keep(t.name, t.cat); });
  std::erase_if(summary.chains, [&](const auto& c) { return !keep(c.name, c.cat); });
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(argc, argv, {"top", "event", "cat", "help"},
                              /*max_positionals=*/1);
    if (args.get_bool("help") || args.positionals().empty()) {
      print_help();
      return args.get_bool("help") ? 0 : 1;
    }

    const std::string& path = args.positionals().front();
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "rocctrace: cannot open %s\n", path.c_str());
      return 1;
    }
    const auto trace = obs::read_chrome_trace(is);
    const auto summary = filter_summary(obs::summarize_trace(trace),
                                        args.get_string("event", ""),
                                        args.get_string("cat", ""));
    std::cout << path << ":\n";
    obs::print_trace_summary(std::cout, summary,
                             static_cast<std::size_t>(args.get_long("top", 20)));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rocctrace: %s\n(try --help)\n", e.what());
    return 1;
  }
}
