// rocctrace — summarize a Chrome trace recorded by roccsim --trace.
//
//   roccsim --arch now --nodes 8 --trace out.json
//   rocctrace out.json
//   rocctrace out.json --top 10
//
// Prints the top event types by total time and count, and the latency
// percentiles of every async chain (e.g. the sample generation-to-delivery
// lifecycle).  Accepts any conforming trace-event JSON file, not only ours.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>

#include "cli_args.hpp"
#include "obs/trace_read.hpp"

namespace {

void print_help() {
  std::puts(
      "rocctrace — summarize a Chrome trace-event JSON file\n"
      "\n"
      "  rocctrace FILE [--top N]\n"
      "\n"
      "  FILE      trace produced by roccsim/roccsweep --trace (or any\n"
      "            chrome://tracing-compatible JSON)\n"
      "  --top N   event types to list; default 20\n"
      "  --help    this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(argc, argv, {"top", "help"}, /*max_positionals=*/1);
    if (args.get_bool("help") || args.positionals().empty()) {
      print_help();
      return args.get_bool("help") ? 0 : 1;
    }

    const std::string& path = args.positionals().front();
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "rocctrace: cannot open %s\n", path.c_str());
      return 1;
    }
    const auto trace = obs::read_chrome_trace(is);
    const auto summary = obs::summarize_trace(trace);
    std::cout << path << ":\n";
    obs::print_trace_summary(std::cout, summary,
                             static_cast<std::size_t>(args.get_long("top", 20)));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rocctrace: %s\n(try --help)\n", e.what());
    return 1;
  }
}
