// roccprof — critical-path profiler and W3-style bottleneck attribution
// for Chrome traces recorded by roccsim --trace.
//
//   roccsim --arch now --nodes 8 --trace out.json
//   roccprof out.json
//   roccprof out.json --hypotheses
//   roccprof out.json --top-paths 10 --json profile.json --folded out.folded
//
// Streams the trace through the obs::Profiler (O(1) parser memory) and
// prints the per-hop latency decomposition of the sample lifecycle, the
// per-resource utilization timelines, the slowest critical paths, and the
// W3 hypothesis verdicts (ExcessiveCPU, ExcessivePipeBackpressure,
// ExcessiveNetworkDelay, StarvedDaemon).
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_args.hpp"
#include "obs/profile.hpp"

namespace {

void print_help() {
  std::puts(
      "roccprof — critical-path profiler for roccsim Chrome traces\n"
      "\n"
      "  roccprof FILE [options]\n"
      "\n"
      "  FILE            trace produced by roccsim/roccsweep --trace (or any\n"
      "                  chrome://tracing-compatible JSON)\n"
      "  --top-paths N   slowest sample chains to list; default 5\n"
      "  --window-ms X   W3 hypothesis window width in simulated ms; default 100\n"
      "  --hypotheses    print only the W3 bottleneck verdicts\n"
      "  --json FILE     write the full report as JSON (schema roccprof-v1)\n"
      "  --csv FILE      write the per-hop decomposition as CSV\n"
      "  --folded FILE   write flamegraph-folded stacks (feed to flamegraph.pl)\n"
      "  --help          this text\n");
}

/// Open an output file or die with a clear message (a silently unwritable
/// --json must not discard the analysis).
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradyn;
  try {
    const tools::CliArgs args(argc, argv,
                              {"top-paths", "window-ms", "hypotheses", "json", "csv", "folded",
                               "help"},
                              /*max_positionals=*/1);
    if (args.get_bool("help") || args.positionals().empty()) {
      print_help();
      return args.get_bool("help") ? 0 : 1;
    }

    const std::string& path = args.positionals().front();
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "roccprof: cannot open %s\n", path.c_str());
      return 1;
    }

    obs::ProfileOptions options;
    options.top_paths = static_cast<std::size_t>(args.get_long("top-paths", 5));
    options.window_us = args.get_double("window-ms", 100.0) * 1'000.0;
    const obs::ProfileReport report = obs::profile_trace_stream(is, options);

    std::cout << path << ":\n";
    obs::print_profile_report(std::cout, report, args.get_bool("hypotheses"));

    if (args.has("json")) {
      auto os = open_or_throw(args.get_string("json", ""));
      obs::write_profile_json(os, report);
    }
    if (args.has("csv")) {
      auto os = open_or_throw(args.get_string("csv", ""));
      obs::write_profile_csv(os, report);
    }
    if (args.has("folded")) {
      auto os = open_or_throw(args.get_string("folded", ""));
      obs::write_profile_folded(os, report);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roccprof: %s\n(try --help)\n", e.what());
    return 1;
  }
}
