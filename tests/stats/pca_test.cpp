#include "stats/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

TEST(Pca, PerfectlyCorrelatedVariables) {
  // y = 2x: one principal component should explain everything.
  Matrix data(100, 2);
  des::RngStream rng(1, 1);
  for (std::size_t r = 0; r < 100; ++r) {
    const double x = rng.next_double() * 10.0;
    data(r, 0) = x;
    data(r, 1) = 2.0 * x;
  }
  const auto result = pca(data, /*standardize=*/true);
  EXPECT_NEAR(result.explained_fraction[0], 1.0, 1e-9);
  EXPECT_NEAR(result.explained_fraction[1], 0.0, 1e-9);
  // Standardized loading vector of PC1 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(result.components(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(result.components(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(Pca, IndependentVariablesSplitEvenly) {
  Matrix data(5000, 2);
  des::RngStream rng(2, 2);
  for (std::size_t r = 0; r < 5000; ++r) {
    data(r, 0) = rng.next_double();
    data(r, 1) = rng.next_double();
  }
  const auto result = pca(data, /*standardize=*/true);
  EXPECT_NEAR(result.explained_fraction[0], 0.5, 0.05);
  EXPECT_NEAR(result.explained_fraction[1], 0.5, 0.05);
}

TEST(Pca, ExplainedFractionsSumToOne) {
  Matrix data(200, 4);
  des::RngStream rng(3, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.next_double() * (c + 1.0);
  }
  const auto result = pca(data, /*standardize=*/false);
  double sum = 0.0;
  for (const double f : result.explained_fraction) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Eigenvalues descending.
  for (std::size_t i = 1; i < result.eigenvalues.size(); ++i) {
    EXPECT_GE(result.eigenvalues[i - 1], result.eigenvalues[i] - 1e-12);
  }
}

TEST(Pca, CovarianceModeCapturesDominantVariance) {
  // Column 1 has 100x the variance of column 0: un-standardized PCA puts
  // PC1 almost entirely on column 1.
  Matrix data(2000, 2);
  des::RngStream rng(4, 4);
  for (std::size_t r = 0; r < 2000; ++r) {
    data(r, 0) = rng.next_double();
    data(r, 1) = rng.next_double() * 100.0;
  }
  const auto result = pca(data, /*standardize=*/false);
  EXPECT_GT(result.explained_fraction[0], 0.99);
  EXPECT_GT(std::fabs(result.components(1, 0)), 0.99);
}

TEST(PcaProject, CentersAndProjects) {
  Matrix data(50, 2);
  for (std::size_t r = 0; r < 50; ++r) {
    data(r, 0) = static_cast<double>(r);
    data(r, 1) = static_cast<double>(r) * 3.0 + 5.0;
  }
  const auto model = pca(data, /*standardize=*/false);
  // The mean observation projects to the origin.
  const auto at_mean = pca_project(model, {model.column_means[0], model.column_means[1]}, 2);
  EXPECT_NEAR(at_mean[0], 0.0, 1e-9);
  EXPECT_NEAR(at_mean[1], 0.0, 1e-9);
  EXPECT_THROW((void)pca_project(model, {1.0}, 1), std::invalid_argument);
}

TEST(Pca, Validation) {
  Matrix tiny(1, 2);
  EXPECT_THROW((void)pca(tiny), std::invalid_argument);
  Matrix empty_cols(10, 0);
  EXPECT_THROW((void)pca(empty_cols), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::stats
