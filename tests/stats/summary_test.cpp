#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryStats, SinglePoint) {
  SummaryStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(SummaryStats, KnownSmallSample) {
  // Data {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  SummaryStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, MergeEqualsPooledComputation) {
  des::RngStream rng(3, 3);
  SummaryStats all;
  SummaryStats a;
  SummaryStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmptySides) {
  SummaryStats a;
  SummaryStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  SummaryStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
}

TEST(SummaryStats, NumericallyStableAroundLargeOffset) {
  SummaryStats s;
  const double offset = 1e12;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {0.5, 1.5, 1.6, 3.0, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 3u);  // bin width 2: [0,2) holds 0.5, 1.5, 1.6
  EXPECT_EQ(h.count(1), 1u);  // [2,4) holds 3.0
  EXPECT_EQ(h.count(4), 1u);  // [8,10) holds 9.9
  EXPECT_EQ(h.bin_count(), 5u);
  double mass = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) mass += h.density(b) * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram, BinAssignmentAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);  // clamped into first bin
  h.add(100.0);   // clamped into last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(EmpiricalQuantile, InterpolatesSortedData) {
  const std::vector<double> data{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(data, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(data, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(data, 0.5), 25.0);
  EXPECT_NEAR(empirical_quantile(data, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(EmpiricalQuantile, Validation) {
  const std::vector<double> empty;
  EXPECT_THROW((void)empirical_quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)empirical_quantile(one, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(empirical_quantile(one, 0.5), 1.0);
}

TEST(QqPlot, PerfectFitLiesOnDiagonal) {
  // Data sampled exactly at the quantiles of the distribution itself.
  Exponential e(100.0);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(e.quantile((i + 0.5) / 2000.0));
  }
  const auto points = qq_plot(data, e, 40);
  ASSERT_EQ(points.size(), 40u);
  EXPECT_LT(qq_deviation(points), 0.01);
}

TEST(QqPlot, WrongFamilyDeviates) {
  // Lognormal data against an exponential model should bend away from y=x.
  const auto ln = Lognormal::from_mean_stddev(100.0, 300.0);
  std::vector<double> data;
  des::RngStream rng(17, 1);
  for (int i = 0; i < 5000; ++i) data.push_back(ln.sample(rng));
  Exponential wrong(100.0);
  const auto points = qq_plot(data, wrong, 40);
  EXPECT_GT(qq_deviation(points), 0.2);
}

TEST(QqPlot, Validation) {
  Exponential e(1.0);
  const std::vector<double> empty;
  EXPECT_THROW((void)qq_plot(empty, e), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)qq_plot(one, e, 0), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::stats
