#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "des/random.hpp"
#include "stats/summary.hpp"

namespace paradyn::stats {
namespace {

// ----------------------------------------------------------------- unit tests

TEST(Exponential, Moments) {
  Exponential e(223.0);
  EXPECT_DOUBLE_EQ(e.mean(), 223.0);
  EXPECT_DOUBLE_EQ(e.variance(), 223.0 * 223.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 223.0);
}

TEST(Exponential, PdfCdfKnownValues) {
  Exponential e(1.0);
  EXPECT_NEAR(e.pdf(0.0), 1.0, 1e-12);
  EXPECT_NEAR(e.pdf(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Lognormal, FromMeanStddevRoundTrips) {
  const auto ln = Lognormal::from_mean_stddev(2213.0, 3034.0);
  EXPECT_NEAR(ln.mean(), 2213.0, 1e-6);
  EXPECT_NEAR(ln.stddev(), 3034.0, 1e-6);
}

TEST(Lognormal, MedianIsExpMu) {
  Lognormal ln(1.5, 0.75);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(1.5), 1e-9);
  EXPECT_NEAR(ln.cdf(std::exp(1.5)), 0.5, 1e-12);
}

TEST(Lognormal, PdfZeroBelowSupport) {
  Lognormal ln(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ln.pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.pdf(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
}

TEST(Weibull, ShapeOneIsExponential) {
  Weibull w(1.0, 200.0);
  Exponential e(200.0);
  for (const double x : {1.0, 50.0, 200.0, 1000.0}) {
    EXPECT_NEAR(w.pdf(x), e.pdf(x), 1e-12);
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
  EXPECT_NEAR(w.mean(), 200.0, 1e-9);
}

TEST(Weibull, MomentsAgainstGammaFormulas) {
  Weibull w(2.0, 100.0);
  EXPECT_NEAR(w.mean(), 100.0 * std::tgamma(1.5), 1e-9);
  const double g1 = std::tgamma(1.5);
  const double g2 = std::tgamma(2.0);
  EXPECT_NEAR(w.variance(), 100.0 * 100.0 * (g2 - g1 * g1), 1e-9);
}

TEST(Uniform, BasicProperties) {
  Uniform u(10.0, 30.0);
  EXPECT_DOUBLE_EQ(u.mean(), 20.0);
  EXPECT_NEAR(u.variance(), 400.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(u.cdf(10.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(30.0), 1.0);
  EXPECT_DOUBLE_EQ(u.cdf(20.0), 0.5);
  EXPECT_DOUBLE_EQ(u.pdf(20.0), 0.05);
  EXPECT_DOUBLE_EQ(u.pdf(31.0), 0.0);
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Deterministic, AlwaysSameValue) {
  Deterministic d(42.0);
  des::RngStream rng(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 42.0);
  EXPECT_DOUBLE_EQ(d.mean(), 42.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(41.9), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(42.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.3), 42.0);
}

TEST(Distribution, DescribeMentionsFamily) {
  EXPECT_NE(Exponential(5.0).describe().find("exponential"), std::string::npos);
  EXPECT_NE(Lognormal(0.0, 1.0).describe().find("lognormal"), std::string::npos);
  EXPECT_NE(Weibull(2.0, 3.0).describe().find("weibull"), std::string::npos);
}

TEST(Distribution, LogLikelihoodMinusInfinityOutsideSupport) {
  Exponential e(1.0);
  const std::vector<double> data{1.0, -1.0};
  EXPECT_TRUE(std::isinf(e.log_likelihood(data)));
  EXPECT_LT(e.log_likelihood(data), 0.0);
}

TEST(Distribution, LogPdfSurvivesWherePdfUnderflows) {
  // A sample far in the tail: pdf underflows to 0 (log would give -inf),
  // but the analytic log-density is a perfectly finite large negative
  // number.  This is the Figure 8 fitting failure the log-space
  // log_likelihood fixes.
  const Exponential e(1.0);
  const double far = 1e4;
  EXPECT_EQ(e.pdf(far), 0.0);  // underflow
  EXPECT_NEAR(e.log_pdf(far), -far, 1e-6);
  EXPECT_TRUE(std::isfinite(e.log_pdf(far)));

  const Lognormal ln(0.0, 1.0);
  const double huge = 1e120;
  EXPECT_EQ(ln.pdf(huge), 0.0);
  EXPECT_TRUE(std::isfinite(ln.log_pdf(huge)));
}

TEST(Distribution, LogLikelihoodFiniteOnExtremeData) {
  // 600 tail observations: the product of pdfs underflows to 0 long before
  // the end, but the log-space sum is exact.
  const Exponential e(1.0);
  const std::vector<double> data(600, 400.0);
  const double ll = e.log_likelihood(data);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_NEAR(ll, -600.0 * 400.0, 1e-6);
}

TEST(Distribution, LogPdfMinusInfinityOutsideSupport) {
  EXPECT_TRUE(std::isinf(Exponential(1.0).log_pdf(-1.0)));
  EXPECT_TRUE(std::isinf(Lognormal(0.0, 1.0).log_pdf(0.0)));
  EXPECT_TRUE(std::isinf(Uniform(0.0, 1.0).log_pdf(2.0)));
  EXPECT_LT(Uniform(0.0, 1.0).log_pdf(2.0), 0.0);
}

TEST(SampleStandardNormal, MeanAndVariance) {
  des::RngStream rng(7, 7);
  SummaryStats s;
  for (int i = 0; i < 200000; ++i) s.add(sample_standard_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

// ------------------------------------------------------ property-based sweeps

struct DistCase {
  std::string name;
  DistributionPtr dist;
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, CdfIsMonotoneNonDecreasing) {
  const auto& d = *GetParam().dist;
  double prev = 0.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = static_cast<double>(i) * d.mean() / 20.0;
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12) << "x=" << x;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x), p, 1e-8) << "p=" << p;
  }
}

TEST_P(DistributionProperty, SampleMomentsMatchTheory) {
  const auto& d = *GetParam().dist;
  des::RngStream rng(11, des::hash_label(GetParam().name));
  SummaryStats s;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), d.mean(), 6.0 * d.stddev() / std::sqrt(double(kN)))
      << GetParam().name;
  // Variance is noisier, especially for the heavy-tailed lognormal.
  EXPECT_NEAR(s.stddev(), d.stddev(), 0.15 * d.stddev() + 1e-9) << GetParam().name;
}

TEST_P(DistributionProperty, SamplesInsideSupport) {
  const auto& d = *GetParam().dist;
  des::RngStream rng(13, des::hash_label(GetParam().name));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(d.sample(rng), 0.0);
  }
}

TEST_P(DistributionProperty, LogPdfMatchesLogOfPdfInsideSupport) {
  const auto& d = *GetParam().dist;
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = d.quantile(p);
    const double pdf = d.pdf(x);
    ASSERT_GT(pdf, 0.0) << "p=" << p;
    EXPECT_NEAR(d.log_pdf(x), std::log(pdf), 1e-9 * std::abs(std::log(pdf)) + 1e-9)
        << GetParam().name << " p=" << p;
  }
}

TEST_P(DistributionProperty, PdfIntegratesToApproximatelyOne) {
  const auto& d = *GetParam().dist;
  // Trapezoidal integration between the 0.1th and 99.99th percentiles
  // (the lower cutoff avoids the pole at 0 of a shape<1 Weibull pdf).
  const double lo = d.quantile(0.001);
  const double hi = d.quantile(0.9999);
  constexpr int kSteps = 20000;
  const double h = (hi - lo) / kSteps;
  double integral = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double x0 = lo + i * h;
    const double x1 = x0 + h;
    integral += 0.5 * (d.pdf(x0) + d.pdf(x1)) * h;
  }
  EXPECT_NEAR(integral, 0.9989, 5e-3) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperDistributions, DistributionProperty,
    ::testing::Values(
        DistCase{"exp_223", std::make_shared<Exponential>(223.0)},
        DistCase{"exp_40000", std::make_shared<Exponential>(40'000.0)},
        DistCase{"lognormal_app_cpu",
                 std::make_shared<Lognormal>(Lognormal::from_mean_stddev(2213.0, 3034.0))},
        DistCase{"lognormal_main_cpu",
                 std::make_shared<Lognormal>(Lognormal::from_mean_stddev(3208.0, 3287.0))},
        DistCase{"weibull_1p5", std::make_shared<Weibull>(1.5, 300.0)},
        DistCase{"weibull_0p8", std::make_shared<Weibull>(0.8, 100.0)},
        DistCase{"uniform", std::make_shared<Uniform>(0.0, 500.0)}),
    [](const ::testing::TestParamInfo<DistCase>& info) { return info.param.name; });

}  // namespace
}  // namespace paradyn::stats
