// Unit tests of FrozenSampler: devirtualization of the known families,
// bit-exact reproduction of historical streams under the Reference backend,
// distributional agreement of the Ziggurat backend, and rejection of
// unknown Distribution subclasses (the retired virtual fallback).
#include "stats/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"
#include "stats/ks_test.hpp"

namespace paradyn::stats {
namespace {

/// The Table 2 families plus uniform/deterministic.
std::vector<DistributionPtr> known_families() {
  return {
      std::make_shared<Exponential>(223.0),
      std::make_shared<Lognormal>(Lognormal::from_mean_stddev(2213.0, 3034.0)),
      std::make_shared<Weibull>(0.8, 250.0),
      std::make_shared<Uniform>(10.0, 50.0),
      std::make_shared<Deterministic>(7.5),
  };
}

TEST(FrozenSampler, KnownFamiliesCompileToInlineDispatch) {
  for (const auto& dist : known_families()) {
    for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
      EXPECT_TRUE(FrozenSampler::compile(dist, backend).devirtualized()) << dist->describe();
    }
  }
}

TEST(FrozenSampler, CompileRejectsNull) {
  EXPECT_THROW((void)FrozenSampler::compile(nullptr), std::invalid_argument);
}

TEST(FrozenSampler, DefaultConstructedDrawsZeroWithoutConsumingRandomness) {
  const FrozenSampler sampler;
  des::RngStream rng(1, 1);
  const auto before = rng;
  EXPECT_EQ(sampler(rng), 0.0);
  EXPECT_EQ(rng.next_u64(), des::RngStream(before).next_u64());
}

// The Reference backend exists so --reference-rng replays pre-ziggurat
// experiments exactly: each draw must bit-match the virtual sample().
TEST(FrozenSampler, ReferenceBackendBitMatchesVirtualSample) {
  for (const auto& dist : known_families()) {
    const auto sampler = FrozenSampler::compile(dist, SamplerBackend::Reference);
    des::RngStream rng_frozen(5, 17);
    des::RngStream rng_virtual(5, 17);
    for (int i = 0; i < 1'000; ++i) {
      ASSERT_EQ(sampler(rng_frozen), dist->sample(rng_virtual))
          << dist->describe() << " draw " << i;
    }
  }
}

// The Ziggurat backend draws a different sequence but must still follow
// the compiled distribution.
TEST(FrozenSampler, ZigguratBackendPassesKsAgainstDistributionCdf) {
  for (const auto& dist : known_families()) {
    if (dist->name() == "deterministic") continue;  // cdf is a step function
    const auto sampler = FrozenSampler::compile(dist, SamplerBackend::Ziggurat);
    des::RngStream rng(29, 3);
    std::vector<double> xs(100'000);
    for (double& x : xs) x = sampler(rng);
    const auto result = ks_test(xs, *dist);
    EXPECT_GT(result.p_value, 0.001) << dist->describe() << " D = " << result.statistic;
  }
}

TEST(FrozenSampler, BothBackendsAgreeWithAnalyticMoments) {
  constexpr std::size_t kDraws = 200'000;
  for (const auto& dist : known_families()) {
    for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
      const auto sampler = FrozenSampler::compile(dist, backend);
      des::RngStream rng(31, 7);
      double sum = 0.0;
      for (std::size_t i = 0; i < kDraws; ++i) sum += sampler(rng);
      const double mean = sum / static_cast<double>(kDraws);
      // 5 sigma of the sample-mean estimator.
      const double tol =
          5.0 * std::sqrt(dist->variance() / static_cast<double>(kDraws)) + 1e-12;
      EXPECT_NEAR(mean, dist->mean(), tol) << dist->describe() << " " << to_string(backend);
    }
  }
}

TEST(FrozenSampler, UniformStaysInRange) {
  const auto sampler =
      FrozenSampler::compile(std::make_shared<Uniform>(10.0, 50.0), SamplerBackend::Ziggurat);
  des::RngStream rng(3, 3);
  for (int i = 0; i < 10'000; ++i) {
    const double x = sampler(rng);
    ASSERT_GE(x, 10.0);
    ASSERT_LT(x, 50.0);
  }
}

// Empirical under the Reference backend keeps the historical inline
// inverse-CDF and must bit-match the virtual Distribution::sample() stream
// — the --reference-rng oracle.  (The Ziggurat backend switched to the
// Walker alias table, a different stream; see the tests below and the
// stat_equiv suite.)
TEST(FrozenSampler, EmpiricalReferenceBackendBitMatchesVirtualSample) {
  const std::vector<double> data{1.0, 2.0, 4.0, 8.0, 16.0};
  const DistributionPtr dist = std::make_shared<Empirical>(data);
  const auto sampler = FrozenSampler::compile(dist, SamplerBackend::Reference);
  EXPECT_TRUE(sampler.devirtualized());
  des::RngStream rng_frozen(9, 9);
  des::RngStream rng_virtual(9, 9);
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_EQ(sampler(rng_frozen), dist->sample(rng_virtual)) << " draw " << i;
  }
}

// The Ziggurat backend's alias table is the same mixture of CDF segments
// as the quantile path: values stay inside the sample's hull and the mean
// agrees with the distribution (full KS gate lives in stat_equiv).
TEST(FrozenSampler, EmpiricalZigguratBackendAliasAgreesWithMoments) {
  const std::vector<double> data{1.0, 2.0, 2.0, 4.0, 8.0, 16.0, 16.0, 31.0};
  const DistributionPtr dist = std::make_shared<Empirical>(data);
  const auto sampler = FrozenSampler::compile(dist, SamplerBackend::Ziggurat);
  des::RngStream rng(9, 9);
  constexpr std::size_t kDraws = 200'000;
  double sum = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double x = sampler(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 31.0);
    sum += x;
  }
  // The interpolated-CDF distribution both paths sample has mean equal to
  // the average segment midpoint (NOT the sample mean — the extreme order
  // statistics carry half weight).
  double mixture_mean = 0.0;
  for (std::size_t i = 0; i + 1 < data.size(); ++i) mixture_mean += (data[i] + data[i + 1]) / 2.0;
  mixture_mean /= static_cast<double>(data.size() - 1);
  const double tol = 5.0 * std::sqrt(dist->variance() / static_cast<double>(kDraws));
  EXPECT_NEAR(sum / static_cast<double>(kDraws), mixture_mean, tol);
}

// The compiled table is a snapshot: the sampler stays valid after the
// source Distribution is destroyed.
TEST(FrozenSampler, EmpiricalTableOutlivesSourceDistribution) {
  FrozenSampler sampler;
  {
    const std::vector<double> data{3.0, 1.0, 2.0};
    sampler = FrozenSampler::compile(std::make_shared<Empirical>(data));
  }
  des::RngStream rng(11, 4);
  for (int i = 0; i < 100; ++i) {
    const double x = sampler(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 3.0);
  }
}

// fill() is defined as the batch form of n scalar draws: for every family,
// both backends, and both batch dispatch arms, the block must bit-match
// the scalar loop and leave the RNG in the identical state.
TEST(FrozenSampler, FillBitMatchesScalarLoopAllFamiliesAllDispatchArms) {
  auto families = known_families();
  families.push_back(std::make_shared<Empirical>(std::vector<double>{1.0, 2.0, 2.0, 5.0, 9.0}));
  // Odd size: exercises the vector body and the scalar tail.
  constexpr std::size_t kN = 1003;
  for (const auto dispatch :
       {BatchDispatch::Auto, BatchDispatch::CapAvx2, BatchDispatch::ForceScalar}) {
    set_batch_dispatch(dispatch);
    for (const auto& dist : families) {
      for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
        const auto sampler = FrozenSampler::compile(dist, backend);
        des::RngStream rng_fill(41, 13);
        des::RngStream rng_scalar(41, 13);
        std::vector<double> batch(kN);
        sampler.fill(rng_fill, batch);
        for (std::size_t i = 0; i < kN; ++i) {
          const double want = sampler(rng_scalar);
          ASSERT_EQ(batch[i], want) << dist->describe() << " " << to_string(backend)
                                    << " dispatch=" << batch_dispatch_active() << " i=" << i;
        }
        ASSERT_EQ(rng_fill.next_u64(), rng_scalar.next_u64())
            << dist->describe() << " " << to_string(backend) << ": RNG state diverged";
      }
    }
  }
  set_batch_dispatch(BatchDispatch::Auto);
}

// A Distribution subclass outside the known families is a configuration
// error, not something to silently slow-path.
TEST(FrozenSampler, UnknownSubclassIsRejected) {
  class Mystery final : public Distribution {
   public:
    [[nodiscard]] std::string name() const override { return "mystery"; }
    [[nodiscard]] std::string describe() const override { return "mystery()"; }
    [[nodiscard]] double mean() const override { return 0.0; }
    [[nodiscard]] double variance() const override { return 1.0; }
    [[nodiscard]] double pdf(double) const override { return 0.0; }
    [[nodiscard]] double cdf(double) const override { return 0.5; }
    [[nodiscard]] double quantile(double) const override { return 0.0; }
    [[nodiscard]] double sample(des::Pcg32&) const override { return 0.0; }
  };
  for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
    EXPECT_THROW((void)FrozenSampler::compile(std::make_shared<Mystery>(), backend),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace paradyn::stats
