#include "stats/factorial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace paradyn::stats {
namespace {

TEST(FactorialDesign, MaskLabels) {
  EXPECT_EQ(FactorialDesign::mask_label(0), "mean");
  EXPECT_EQ(FactorialDesign::mask_label(0b0001), "A");
  EXPECT_EQ(FactorialDesign::mask_label(0b0010), "B");
  EXPECT_EQ(FactorialDesign::mask_label(0b0011), "AB");
  EXPECT_EQ(FactorialDesign::mask_label(0b1101), "ACD");
}

TEST(FactorialDesign, ValidatesConstruction) {
  EXPECT_THROW(FactorialDesign({}, 1), std::invalid_argument);
  EXPECT_THROW(FactorialDesign({"A"}, 0), std::invalid_argument);
}

TEST(FactorialDesign, CompletionTracking) {
  FactorialDesign d({"A", "B"}, 2);
  EXPECT_FALSE(d.complete());
  EXPECT_THROW((void)d.analyze(), std::logic_error);
  for (unsigned cell = 0; cell < 4; ++cell) {
    for (std::size_t rep = 0; rep < 2; ++rep) d.set_response(cell, rep, 1.0);
  }
  EXPECT_TRUE(d.complete());
  EXPECT_THROW(d.set_response(4, 0, 1.0), std::out_of_range);
  EXPECT_THROW(d.set_response(0, 2, 1.0), std::out_of_range);
}

TEST(FactorialDesign, TextbookTwoFactorExample) {
  // Jain ch.17: memory (A: 4MB/16MB) x cache (B: 1KB/2KB), responses
  // 15, 45, 25, 75.  q0=40, qA=20, qB=10, qAB=5.
  // Variations: A: 1600/2100 ~ 76%, B: 400/2100 ~ 19%, AB: 100/2100 ~ 5%.
  FactorialDesign d({"memory", "cache"}, 1);
  d.set_response(0b00, 0, 15.0);
  d.set_response(0b01, 0, 45.0);  // A high
  d.set_response(0b10, 0, 25.0);  // B high
  d.set_response(0b11, 0, 75.0);
  const auto a = d.analyze();
  EXPECT_DOUBLE_EQ(a.grand_mean, 40.0);
  EXPECT_DOUBLE_EQ(a.effect("A").effect, 20.0);
  EXPECT_DOUBLE_EQ(a.effect("B").effect, 10.0);
  EXPECT_DOUBLE_EQ(a.effect("AB").effect, 5.0);
  EXPECT_NEAR(a.effect("A").variation_fraction, 1600.0 / 2100.0, 1e-12);
  EXPECT_NEAR(a.effect("B").variation_fraction, 400.0 / 2100.0, 1e-12);
  EXPECT_NEAR(a.effect("AB").variation_fraction, 100.0 / 2100.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.sse, 0.0);
  // Sorted by descending variation: A first.
  EXPECT_EQ(a.effects.front().label, "A");
}

TEST(FactorialDesign, ReplicatedDesignAllocatesError) {
  // Jain ch.18 example (2^2 with r=3):
  // (1): 15,18,12  a: 45,48,51  b: 25,28,19  ab: 75,75,81
  FactorialDesign d({"A", "B"}, 3);
  const double y00[] = {15, 18, 12};
  const double y01[] = {45, 48, 51};
  const double y10[] = {25, 28, 19};
  const double y11[] = {75, 75, 81};
  for (int r = 0; r < 3; ++r) {
    d.set_response(0b00, static_cast<std::size_t>(r), y00[r]);
    d.set_response(0b01, static_cast<std::size_t>(r), y01[r]);
    d.set_response(0b10, static_cast<std::size_t>(r), y10[r]);
    d.set_response(0b11, static_cast<std::size_t>(r), y11[r]);
  }
  const auto a = d.analyze();
  // Jain's results: q0=41, qA=21.5, qB=9.5, qAB=5, SSE=102.
  EXPECT_NEAR(a.grand_mean, 41.0, 1e-12);
  EXPECT_NEAR(a.effect("A").effect, 21.5, 1e-12);
  EXPECT_NEAR(a.effect("B").effect, 9.5, 1e-12);
  EXPECT_NEAR(a.effect("AB").effect, 5.0, 1e-12);
  EXPECT_NEAR(a.sse, 102.0, 1e-9);
  // SST = SSA+SSB+SSAB+SSE = 5547+1083+300+102 = 7032.
  EXPECT_NEAR(a.sst, 7032.0, 1e-9);
  EXPECT_NEAR(a.effect("A").variation_fraction, 5547.0 / 7032.0, 1e-12);
  EXPECT_NEAR(a.error_fraction, 102.0 / 7032.0, 1e-12);
}

TEST(FactorialDesign, PureNoiseGoesToError) {
  // Identical cell means, within-cell noise only: all variation is SSE.
  FactorialDesign d({"A", "B", "C"}, 2);
  for (unsigned cell = 0; cell < 8; ++cell) {
    d.set_response(cell, 0, 10.0 - 1.0);
    d.set_response(cell, 1, 10.0 + 1.0);
  }
  const auto a = d.analyze();
  EXPECT_NEAR(a.error_fraction, 1.0, 1e-12);
  for (const auto& e : a.effects) EXPECT_NEAR(e.variation_fraction, 0.0, 1e-12);
}

TEST(FactorialDesign, SingleFactorSignConvention) {
  // Low level 10, high level 30: effect = +10 (half the difference).
  FactorialDesign d({"A"}, 1);
  d.set_response(0, 0, 10.0);
  d.set_response(1, 0, 30.0);
  const auto a = d.analyze();
  EXPECT_DOUBLE_EQ(a.grand_mean, 20.0);
  EXPECT_DOUBLE_EQ(a.effect("A").effect, 10.0);
  EXPECT_NEAR(a.effect("A").variation_fraction, 1.0, 1e-12);
}

TEST(FactorialDesign, FourFactorsSixteenEffects) {
  FactorialDesign d({"A", "B", "C", "D"}, 1);
  for (unsigned cell = 0; cell < 16; ++cell) {
    d.set_response(cell, 0, static_cast<double>(cell));
  }
  const auto a = d.analyze();
  EXPECT_EQ(a.effects.size(), 15u);  // 2^4 - 1 (mean excluded)
  double total = a.error_fraction;
  for (const auto& e : a.effects) total += e.variation_fraction;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Response = 8*D + 4*C + 2*B + A with cell-bit weights: main effects only.
  EXPECT_NEAR(a.effect("D").variation_fraction, 64.0 / 85.0, 1e-9);
  EXPECT_NEAR(a.effect("AB").variation_fraction, 0.0, 1e-12);
}

TEST(FactorialAnalysis, UnknownLabelThrows) {
  FactorialDesign d({"A"}, 1);
  d.set_response(0, 0, 1.0);
  d.set_response(1, 0, 2.0);
  const auto a = d.analyze();
  EXPECT_THROW((void)a.effect("Z"), std::out_of_range);
}

}  // namespace
}  // namespace paradyn::stats
