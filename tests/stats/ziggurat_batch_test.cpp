// Differential tests of the batch ziggurat kernels: every fill must
// bit-match the scalar loop — values AND final RNG state — on both
// dispatch arms, across sizes that hit the vector body, the scalar tail,
// and rejected (slow-path) blocks.
#include "stats/ziggurat.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

using FillFn = void (*)(des::Pcg32&, double*, std::size_t);
using ScalarFn = double (*)(des::Pcg32&);

void expect_fill_matches_scalar(FillFn fill, ScalarFn scalar, std::uint64_t seed,
                                std::uint64_t stream, std::size_t n) {
  des::RngStream rng_fill(seed, stream);
  des::RngStream rng_scalar(seed, stream);
  std::vector<double> batch(n + 1, -1.0);  // +1 canary past the end
  fill(rng_fill, batch.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double want = scalar(rng_scalar);
    ASSERT_EQ(batch[i], want) << "dispatch=" << batch_dispatch_active() << " n=" << n
                              << " i=" << i;
  }
  EXPECT_EQ(batch[n], -1.0) << "fill wrote past out[n)";
  // Same final state: the streams must produce identical continuations.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(rng_fill.next_u64(), rng_scalar.next_u64()) << "state diverged after fill";
  }
}

// Sizes: empty, sub-block, exact blocks, odd tails, and a span long enough
// (40k normals ≈ 770 expected slow-path draws) to hit rejection replay
// many times on every seed.
constexpr std::size_t kSizes[] = {0, 1, 3, 4, 5, 8, 17, 256, 1000, 40'000};

class ZigguratBatchDispatch : public ::testing::TestWithParam<BatchDispatch> {
 protected:
  void SetUp() override { set_batch_dispatch(GetParam()); }
  void TearDown() override { set_batch_dispatch(BatchDispatch::Auto); }
};

TEST_P(ZigguratBatchDispatch, NormalFillBitMatchesScalarLoop) {
  for (const std::size_t n : kSizes) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      expect_fill_matches_scalar(&ziggurat_normal_fill, &ziggurat_normal, seed, 7 * seed, n);
    }
  }
}

TEST_P(ZigguratBatchDispatch, ExponentialFillBitMatchesScalarLoop) {
  for (const std::size_t n : kSizes) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      expect_fill_matches_scalar(&ziggurat_exponential_fill, &ziggurat_exponential, seed,
                                 11 * seed, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArms, ZigguratBatchDispatch,
                         ::testing::Values(BatchDispatch::Auto, BatchDispatch::CapAvx2,
                                           BatchDispatch::ForceScalar),
                         [](const auto& info) {
                           switch (info.param) {
                             case BatchDispatch::Auto:
                               return "Auto";
                             case BatchDispatch::CapAvx2:
                               return "CapAvx2";
                             default:
                               return "ForceScalar";
                           }
                         });

TEST(ZigguratBatch, DispatchReportsKnownArm) {
  set_batch_dispatch(BatchDispatch::ForceScalar);
  EXPECT_STREQ(batch_dispatch_active(), "scalar");
  set_batch_dispatch(BatchDispatch::CapAvx2);
  const std::string capped = batch_dispatch_active();
  EXPECT_TRUE(capped == "avx2" || capped == "scalar") << capped;
  set_batch_dispatch(BatchDispatch::Auto);
  const std::string arm = batch_dispatch_active();
  EXPECT_TRUE(arm == "avx512" || arm == "avx2" || arm == "scalar") << arm;
}

// Every arm must agree with every other even when Auto resolves to a SIMD
// tier (on scalar-only hosts the tiers degenerate to scalar-vs-scalar,
// which is fine — the CI matrix forces the arms via
// PARADYN_BATCH_DISPATCH).
TEST(ZigguratBatch, ArmsProduceIdenticalStreams) {
  std::vector<double> scalar(10'000);
  set_batch_dispatch(BatchDispatch::ForceScalar);
  des::RngStream rng_scalar(97, 3);
  ziggurat_normal_fill(rng_scalar, scalar.data(), scalar.size());
  for (const auto dispatch : {BatchDispatch::Auto, BatchDispatch::CapAvx2}) {
    set_batch_dispatch(dispatch);
    std::vector<double> simd(10'000);
    des::RngStream rng_simd(97, 3);
    ziggurat_normal_fill(rng_simd, simd.data(), simd.size());
    EXPECT_EQ(simd, scalar) << batch_dispatch_active();
  }
  set_batch_dispatch(BatchDispatch::Auto);
}

}  // namespace
}  // namespace paradyn::stats
