#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

std::vector<double> iid_series(std::size_t n, std::uint64_t seed) {
  des::RngStream rng(seed, 1);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.next_double());
  return out;
}

/// AR(1) process x_t = phi x_{t-1} + e_t: lag-k autocorrelation is phi^k.
std::vector<double> ar1_series(std::size_t n, double phi, std::uint64_t seed) {
  des::RngStream rng(seed, 2);
  std::vector<double> out;
  out.reserve(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + (rng.next_double() - 0.5);
    out.push_back(x);
  }
  return out;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto s = iid_series(100, 1);
  EXPECT_DOUBLE_EQ(autocorrelation(s, 0), 1.0);
}

TEST(Autocorrelation, IidSeriesNearZero) {
  const auto s = iid_series(50'000, 2);
  for (const std::size_t lag : {1u, 2u, 5u}) {
    EXPECT_NEAR(autocorrelation(s, lag), 0.0, 0.02) << "lag " << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  const double phi = 0.8;
  const auto s = ar1_series(100'000, phi, 3);
  EXPECT_NEAR(autocorrelation(s, 1), phi, 0.02);
  EXPECT_NEAR(autocorrelation(s, 2), phi * phi, 0.03);
  EXPECT_NEAR(autocorrelation(s, 4), std::pow(phi, 4), 0.04);
}

TEST(Autocorrelation, Validation) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW((void)autocorrelation(tiny, 2), std::invalid_argument);
  const std::vector<double> constant{3.0, 3.0, 3.0};
  EXPECT_THROW((void)autocorrelation(constant, 1), std::invalid_argument);
}

TEST(Autocorrelations, ReturnsRequestedLags) {
  const auto s = ar1_series(10'000, 0.5, 4);
  const auto acf = autocorrelations(s, 5);
  ASSERT_EQ(acf.size(), 5u);
  for (std::size_t k = 1; k < acf.size(); ++k) {
    EXPECT_LT(std::fabs(acf[k]), std::fabs(acf[k - 1]) + 0.05);  // decaying
  }
}

TEST(BatchMeans, PartitionsAndAverages) {
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) s.push_back(static_cast<double>(i));
  const auto result = batch_means(s, 10);
  EXPECT_EQ(result.batch_count, 10u);
  EXPECT_EQ(result.batch_size, 10u);
  EXPECT_DOUBLE_EQ(result.batch_means[0], 4.5);
  EXPECT_DOUBLE_EQ(result.batch_means[9], 94.5);
  EXPECT_NEAR(result.ci.mean, 49.5, 1e-9);
}

TEST(BatchMeans, DropsRemainder) {
  std::vector<double> s(103, 1.0);
  const auto result = batch_means(s, 10);
  EXPECT_EQ(result.batch_size, 10u);  // 3 observations dropped
}

TEST(BatchMeans, Validation) {
  std::vector<double> s(10, 1.0);
  EXPECT_THROW((void)batch_means(s, 1), std::invalid_argument);
  EXPECT_THROW((void)batch_means(s, 20), std::invalid_argument);
}

TEST(BatchMeans, CorrelatedSeriesWidensIntervalVsNaive) {
  // The naive IID interval on an AR(1) series is too narrow; batch means
  // with few large batches must be wider.
  const auto s = ar1_series(20'000, 0.9, 5);
  const auto naive = mean_confidence_interval(s, 0.90);
  const auto batched = batch_means(s, 20, 0.90);
  EXPECT_GT(batched.ci.half_width, 2.0 * naive.half_width);
}

TEST(BatchMeans, IndependenceHeuristic) {
  // Large batches of an AR(1) process decorrelate...
  const auto s = ar1_series(50'000, 0.7, 6);
  const auto good = batch_means(s, 10);
  EXPECT_TRUE(batches_look_independent(good, 0.5));
  // ... while tiny batches stay correlated.
  const auto bad = batch_means(s, 10'000);
  EXPECT_FALSE(batches_look_independent(bad, 0.2));
}

}  // namespace
}  // namespace paradyn::stats
