// Unit tests of the Walker/Vose alias table over empirical CDF segments:
// construction (tie merging, atoms, degenerate samples), draw-path
// invariants (hull containment, one u64 per draw), and distributional
// agreement with the quantile path it replaces (full KS gate at 1e6 draws
// lives in stat_equiv_test.cpp).
#include "stats/alias_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

TEST(AliasTable, MergesTiedSegmentsIntoColumns) {
  // Segments: (1,2) (2,2)=atom (2,2)=atom (2,5) -> atoms merge: 3 columns.
  const AliasTable t = AliasTable::from_sorted_values({1.0, 2.0, 2.0, 2.0, 5.0});
  EXPECT_EQ(t.columns(), 3U);
  EXPECT_FALSE(t.degenerate());
}

TEST(AliasTable, SingleValueIsDegenerate) {
  const AliasTable t = AliasTable::from_sorted_values({4.5});
  EXPECT_TRUE(t.degenerate());
  des::RngStream rng(1, 1);
  const auto before = rng;
  EXPECT_EQ(t(rng), 4.5);
  // Degenerate draws consume no randomness.
  EXPECT_EQ(rng.next_u64(), des::RngStream(before).next_u64());
}

TEST(AliasTable, EmptySampleRejected) {
  EXPECT_THROW((void)AliasTable::from_sorted_values({}), std::invalid_argument);
}

TEST(AliasTable, DrawsStayInsideHull) {
  const AliasTable t = AliasTable::from_sorted_values({1.0, 2.0, 2.0, 4.0, 9.0});
  des::RngStream rng(3, 5);
  for (int i = 0; i < 50'000; ++i) {
    const double x = t(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 9.0);
  }
}

TEST(AliasTable, OneU64PerDraw) {
  for (const auto& data : std::vector<std::vector<double>>{
           {1.0, 2.0},                      // single column, no alias test
           {1.0, 2.0, 4.0, 8.0},            // multi-column
           {1.0, 1.0, 1.0, 2.0, 2.0, 3.0},  // ties / atoms
       }) {
    const AliasTable t = AliasTable::from_sorted_values(data);
    des::RngStream rng_draw(7, 7);
    des::RngStream rng_count(7, 7);
    for (int i = 0; i < 1'000; ++i) {
      (void)t(rng_draw);
      (void)rng_count.next_u64();
    }
    ASSERT_EQ(rng_draw.next_u64(), rng_count.next_u64()) << "columns=" << t.columns();
  }
}

// The alias table samples the same mixture the quantile path does: each of
// the n-1 segments with weight 1/(n-1), uniform inside.  Check the mean
// (average segment midpoint) and an atom's point mass.
TEST(AliasTable, MatchesQuantilePathMixtureMoments) {
  const std::vector<double> data{1.0, 2.0, 2.0, 2.0, 4.0, 8.0, 32.0};
  const AliasTable t = AliasTable::from_sorted_values(data);
  double mixture_mean = 0.0;
  for (std::size_t i = 0; i + 1 < data.size(); ++i) mixture_mean += (data[i] + data[i + 1]) / 2.0;
  mixture_mean /= static_cast<double>(data.size() - 1);

  des::RngStream rng(11, 13);
  constexpr std::size_t kDraws = 400'000;
  double sum = 0.0;
  std::size_t atoms = 0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double x = t(rng);
    sum += x;
    if (x == 2.0) ++atoms;
  }
  EXPECT_NEAR(sum / static_cast<double>(kDraws), mixture_mean, 0.05);
  // Two degenerate (2,2) segments out of six -> P(X == 2) = 1/3 (the
  // continuous segments contribute measure-zero mass at the point).
  const double atom_prob = static_cast<double>(atoms) / static_cast<double>(kDraws);
  EXPECT_NEAR(atom_prob, 1.0 / 3.0, 0.005);
}

TEST(AliasTable, FillMatchesScalarDraws) {
  const AliasTable t = AliasTable::from_sorted_values({1.0, 2.0, 4.0, 8.0, 16.0});
  des::RngStream rng_fill(17, 19);
  des::RngStream rng_scalar(17, 19);
  std::vector<double> batch(1003);
  t.fill(rng_fill, batch.data(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i], t(rng_scalar)) << i;
  }
  EXPECT_EQ(rng_fill.next_u64(), rng_scalar.next_u64());
}

}  // namespace
}  // namespace paradyn::stats
