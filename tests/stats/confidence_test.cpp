#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/random.hpp"
#include "stats/distributions.hpp"

namespace paradyn::stats {
namespace {

TEST(ConfidenceInterval, KnownSmallSample) {
  // {1,2,3,4,5}: mean 3, s = sqrt(2.5), n = 5, t_{0.95,4} = 2.131847.
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci = mean_confidence_interval(data, 0.90);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.131847 * std::sqrt(2.5) / std::sqrt(5.0), 1e-5);
  EXPECT_TRUE(ci.contains(3.0));
  EXPECT_NEAR(ci.lower() + ci.upper(), 2.0 * ci.mean, 1e-12);
}

TEST(ConfidenceInterval, HigherLevelIsWider) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const auto ci90 = mean_confidence_interval(data, 0.90);
  const auto ci99 = mean_confidence_interval(data, 0.99);
  EXPECT_GT(ci99.half_width, ci90.half_width);
}

TEST(ConfidenceInterval, Validation) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)mean_confidence_interval(one, 0.9), std::invalid_argument);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)mean_confidence_interval(two, 0.0), std::invalid_argument);
  EXPECT_THROW((void)mean_confidence_interval(two, 1.0), std::invalid_argument);
}

TEST(ConfidenceInterval, RelativeHalfWidth) {
  const std::vector<double> data{10.0, 10.0, 10.0, 10.0};
  const auto ci = mean_confidence_interval(data, 0.90);
  EXPECT_DOUBLE_EQ(ci.relative_half_width(), 0.0);  // zero variance
}

TEST(ConfidenceInterval, CoverageNearNominal) {
  // Repeated experiment: 90% CI on the mean of Exponential(100) with n=50
  // (the paper's replication count) should cover the true mean ~90% of the
  // time.
  Exponential truth(100.0);
  des::RngStream rng(99, 1);
  int covered = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 50; ++i) sample.push_back(truth.sample(rng));
    if (mean_confidence_interval(sample, 0.90).contains(100.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GT(coverage, 0.85);
  EXPECT_LT(coverage, 0.95);
}

}  // namespace
}  // namespace paradyn::stats
