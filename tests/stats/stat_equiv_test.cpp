// Statistical-equivalence acceptance tests for the ziggurat engine
// (ISSUE 5): at n = 1e6 per family, a one-sample KS test against the
// analytic CDF must not reject at the 1% level, and the first two sample
// moments must agree with the analytic moments within 5 standard errors.
//
// These run under the `stat_equiv` ctest label in the Release-mode CI job
// (they draw tens of millions of variates, too slow for the sanitizer
// matrix but cheap with optimization on).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"
#include "stats/ks_test.hpp"
#include "stats/sampler.hpp"
#include "stats/ziggurat.hpp"

namespace paradyn::stats {
namespace {

constexpr std::size_t kDraws = 1'000'000;
constexpr double kAlpha = 0.01;

double standard_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

void expect_ks_accepts(const std::vector<double>& xs, const CdfFn& cdf, const char* what) {
  const auto result = ks_test(xs, cdf);
  EXPECT_GT(result.p_value, kAlpha) << what << ": D = " << result.statistic << " at n = "
                                    << result.n;
}

void expect_moments(const std::vector<double>& xs, double mean, double variance,
                    const char* what) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double m = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double v = ss / static_cast<double>(xs.size() - 1);
  // 5 standard errors of each estimator (variance s.e. approximated for a
  // heavy-tailed family by a generous sqrt(2) Gaussian formula times 10).
  const double se_mean = std::sqrt(variance / static_cast<double>(xs.size()));
  const double se_var = 10.0 * variance * std::sqrt(2.0 / static_cast<double>(xs.size()));
  EXPECT_NEAR(m, mean, 5.0 * se_mean) << what;
  EXPECT_NEAR(v, variance, 5.0 * se_var) << what;
}

TEST(StatEquiv, ZigguratNormalMatchesAnalyticCdf) {
  des::RngStream rng(101, 1);
  std::vector<double> xs(kDraws);
  for (double& x : xs) x = ziggurat_normal(rng);
  expect_ks_accepts(xs, standard_normal_cdf, "ziggurat normal");
  expect_moments(xs, 0.0, 1.0, "ziggurat normal");
}

TEST(StatEquiv, ZigguratExponentialMatchesAnalyticCdf) {
  des::RngStream rng(101, 2);
  std::vector<double> xs(kDraws);
  for (double& x : xs) x = ziggurat_exponential(rng);
  expect_ks_accepts(xs, CdfFn([](double x) { return 1.0 - std::exp(-x); }),
                    "ziggurat exponential");
  expect_moments(xs, 1.0, 1.0, "ziggurat exponential");
}

/// Every continuous family, both backends, against its own CDF.
TEST(StatEquiv, FrozenSamplerMatchesDistributionCdfUnderBothBackends) {
  const std::vector<DistributionPtr> families = {
      std::make_shared<Exponential>(223.0),
      std::make_shared<Lognormal>(Lognormal::from_mean_stddev(2213.0, 3034.0)),
      std::make_shared<Weibull>(0.8, 250.0),
      std::make_shared<Uniform>(10.0, 50.0),
  };
  for (const auto& dist : families) {
    for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
      const auto sampler = FrozenSampler::compile(dist, backend);
      des::RngStream rng(103, backend == SamplerBackend::Ziggurat ? 1u : 2u);
      std::vector<double> xs(kDraws);
      for (double& x : xs) x = sampler(rng);
      const std::string what = dist->describe() + " / " + to_string(backend);
      expect_ks_accepts(xs, [&dist](double x) { return dist->cdf(x); }, what.c_str());
      expect_moments(xs, dist->mean(), dist->variance(), what.c_str());
    }
  }
}

/// Empirical via the Walker alias table (ISSUE 10): the O(1) batched
/// sampler replaced PR-6's inline quantile search on the Ziggurat backend,
/// changing the consumed stream, so the new path re-proves itself against
/// the interpolated empirical CDF — the distribution BOTH paths sample.
/// Distinct order statistics keep the CDF continuous (a KS requirement).
TEST(StatEquiv, EmpiricalAliasTableMatchesInterpolatedCdf) {
  std::vector<double> data;
  des::RngStream seed_rng(211, 1);
  for (int i = 0; i < 64; ++i) {
    // A spread-out, irregular, strictly increasing sample (jittered
    // quadratic gaps) — exercises unequal segment widths in the table.
    data.push_back(10.0 * i + 0.2 * i * i + seed_rng.next_double());
  }
  const auto dist = std::make_shared<Empirical>(data);

  // Mixture moments: the interpolated CDF is a uniform mixture of the
  // n-1 segments, NOT the sample distribution, so derive mean/variance
  // from the segments analytically (segment uniform: m + w^2/12).
  double mix_mean = 0.0;
  double mix_second = 0.0;
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    const double mid = 0.5 * (data[i] + data[i + 1]);
    const double width = data[i + 1] - data[i];
    mix_mean += mid;
    mix_second += mid * mid + width * width / 12.0;
  }
  mix_mean /= static_cast<double>(data.size() - 1);
  mix_second /= static_cast<double>(data.size() - 1);
  const double mix_var = mix_second - mix_mean * mix_mean;

  for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
    const auto sampler = FrozenSampler::compile(dist, backend);
    des::RngStream rng(211, backend == SamplerBackend::Ziggurat ? 2u : 3u);
    std::vector<double> xs(kDraws);
    const std::string what =
        std::string("empirical / ") + to_string(backend) +
        (backend == SamplerBackend::Ziggurat ? " (alias table)" : " (quantile)");
    if (backend == SamplerBackend::Ziggurat) {
      // Drive the batched fill() path — the production consumer.
      sampler.fill(rng, xs);
    } else {
      for (double& x : xs) x = sampler(rng);
    }
    expect_ks_accepts(xs, [&dist](double x) { return dist->cdf(x); }, what.c_str());
    expect_moments(xs, mix_mean, mix_var, what.c_str());
  }
}

/// The two backends must agree with each other distributionally: pooled
/// two-backend comparison via each backend against the shared model CDF is
/// covered above; here the sample means must be within joint noise.
TEST(StatEquiv, BackendsAgreeOnSampleMean) {
  const auto dist =
      std::make_shared<Lognormal>(Lognormal::from_mean_stddev(2213.0, 3034.0));
  double means[2] = {0.0, 0.0};
  int slot = 0;
  for (const auto backend : {SamplerBackend::Ziggurat, SamplerBackend::Reference}) {
    const auto sampler = FrozenSampler::compile(dist, backend);
    des::RngStream rng(107, 5);
    double sum = 0.0;
    for (std::size_t i = 0; i < kDraws; ++i) sum += sampler(rng);
    means[slot++] = sum / static_cast<double>(kDraws);
  }
  const double se = std::sqrt(2.0 * dist->variance() / static_cast<double>(kDraws));
  EXPECT_NEAR(means[0], means[1], 5.0 * se);
}

}  // namespace
}  // namespace paradyn::stats
