#include "stats/fitting.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "des/random.hpp"

namespace paradyn::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  des::RngStream rng(seed, 1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

TEST(FitExponential, RecoversMean) {
  Exponential truth(223.0);
  const auto data = draw(truth, 50000, 1);
  const auto fit = fit_exponential(data);
  EXPECT_NEAR(fit.mean(), 223.0, 223.0 * 0.03);
}

TEST(FitExponential, RejectsBadData) {
  const std::vector<double> empty;
  EXPECT_THROW((void)fit_exponential(empty), std::invalid_argument);
  const std::vector<double> nonpos{1.0, 0.0};
  EXPECT_THROW((void)fit_exponential(nonpos), std::invalid_argument);
}

TEST(FitLognormal, RecoversParameters) {
  const auto truth = Lognormal::from_mean_stddev(2213.0, 3034.0);
  const auto data = draw(truth, 50000, 2);
  const auto fit = fit_lognormal(data);
  EXPECT_NEAR(fit.mu(), truth.mu(), 0.03);
  EXPECT_NEAR(fit.sigma(), truth.sigma(), 0.03);
}

TEST(FitWeibull, RecoversShapeAndScale) {
  Weibull truth(1.7, 500.0);
  const auto data = draw(truth, 50000, 3);
  const auto fit = fit_weibull(data);
  EXPECT_NEAR(fit.shape(), 1.7, 0.05);
  EXPECT_NEAR(fit.scale(), 500.0, 15.0);
}

TEST(FitWeibull, ShapeBelowOne) {
  Weibull truth(0.7, 100.0);
  const auto data = draw(truth, 50000, 4);
  const auto fit = fit_weibull(data);
  EXPECT_NEAR(fit.shape(), 0.7, 0.03);
  EXPECT_NEAR(fit.scale(), 100.0, 5.0);
}

TEST(KsStatistic, SmallForTrueModelLargeForWrong) {
  Exponential truth(100.0);
  const auto data = draw(truth, 20000, 5);
  EXPECT_LT(ks_statistic(data, truth), 0.02);
  const auto wrong = Lognormal::from_mean_stddev(100.0, 300.0);
  EXPECT_GT(ks_statistic(data, wrong), 0.05);
}

TEST(KsStatistic, ExactOnTinySample) {
  // Single point at the median of Exponential(1): D = 0.5.
  Exponential e(1.0);
  const std::vector<double> data{e.quantile(0.5)};
  EXPECT_NEAR(ks_statistic(data, e), 0.5, 1e-12);
}

TEST(FitBest, SelectsLognormalForPaperCpuData) {
  // The paper finds lognormal best for application CPU requests (Fig 8a).
  const auto truth = Lognormal::from_mean_stddev(2213.0, 3034.0);
  const auto data = draw(truth, 20000, 6);
  const auto best = fit_best(data);
  EXPECT_EQ(best.distribution->name(), "lognormal");
}

TEST(FitBest, SelectsExponentialForPaperNetworkData) {
  // ... and exponential best for application network requests (Fig 8b).
  // Note: Weibull nests the exponential (shape == 1), so on finite samples
  // the Weibull MLE can edge out the exponential by likelihood; accept
  // either as long as the fitted law is effectively exponential.
  Exponential truth(223.0);
  const auto data = draw(truth, 20000, 7);
  const auto best = fit_best(data);
  if (best.distribution->name() == "weibull") {
    const auto& w = dynamic_cast<const Weibull&>(*best.distribution);
    EXPECT_NEAR(w.shape(), 1.0, 0.03);
  } else {
    EXPECT_EQ(best.distribution->name(), "exponential");
  }
  EXPECT_NEAR(best.distribution->mean(), 223.0, 223.0 * 0.05);
}

TEST(FitCandidates, ReturnsAllThreeSortedByLikelihood) {
  Exponential truth(50.0);
  const auto data = draw(truth, 5000, 8);
  const auto fits = fit_candidates(data);
  ASSERT_EQ(fits.size(), 3u);
  EXPECT_GE(fits[0].log_likelihood, fits[1].log_likelihood);
  EXPECT_GE(fits[1].log_likelihood, fits[2].log_likelihood);
  for (const auto& f : fits) {
    EXPECT_GT(f.ks, 0.0);
    EXPECT_LE(f.ks, 1.0);
  }
}

TEST(ChiSquare, AcceptsTrueModel) {
  Exponential truth(100.0);
  const auto data = draw(truth, 10000, 20);
  const auto r = chi_square_test(data, truth, 20, 0);
  EXPECT_EQ(r.bins, 20u);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 19.0);
  // Under H0 the statistic is ~chi^2(19): p should not be extreme.
  EXPECT_GT(r.p_value, 0.01);
}

TEST(ChiSquare, RejectsWrongModel) {
  const auto truth = Lognormal::from_mean_stddev(100.0, 300.0);
  const auto data = draw(truth, 10000, 21);
  const Exponential wrong(100.0);
  const auto r = chi_square_test(data, wrong, 20, 0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 100.0);
}

TEST(ChiSquare, DegreesOfFreedomAccountForFitting) {
  Exponential truth(50.0);
  const auto data = draw(truth, 5000, 22);
  const auto fitted = fit_exponential(data);
  const auto r = chi_square_test(data, fitted, 10, 1);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 8.0);
}

TEST(ChiSquare, Validation) {
  Exponential e(1.0);
  const auto data = draw(e, 100, 23);
  EXPECT_THROW((void)chi_square_test(data, e, 1), std::invalid_argument);
  EXPECT_THROW((void)chi_square_test(data, e, 50), std::invalid_argument);  // < 5/bin
  const auto big = draw(e, 1000, 24);
  EXPECT_THROW((void)chi_square_test(big, e, 10, 9), std::invalid_argument);  // df = 0
}

class FitRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(FitRoundTrip, ExponentialMeanSweep) {
  const double mean = GetParam();
  Exponential truth(mean);
  const auto data = draw(truth, 20000, 100 + static_cast<std::uint64_t>(mean));
  EXPECT_NEAR(fit_exponential(data).mean(), mean, mean * 0.05);
}

INSTANTIATE_TEST_SUITE_P(PaperMeans, FitRoundTrip,
                         ::testing::Values(58.0, 71.0, 92.0, 223.0, 6485.0, 31485.0));

}  // namespace
}  // namespace paradyn::stats
