#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "des/random.hpp"
#include "stats/summary.hpp"

namespace paradyn::stats {
namespace {

TEST(Empirical, Validation) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(Empirical{one}, std::invalid_argument);
}

TEST(Empirical, MomentsMatchData) {
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Empirical e(data);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  EXPECT_NEAR(e.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(e.observations(), 8u);
  EXPECT_DOUBLE_EQ(e.min(), 2.0);
  EXPECT_DOUBLE_EQ(e.max(), 9.0);
}

TEST(Empirical, CdfInterpolatesOrderStatistics) {
  const std::vector<double> data{0.0, 10.0, 20.0};
  const Empirical e(data);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(5.0), 0.25);   // halfway to x_(1) = half of 1/2
  EXPECT_DOUBLE_EQ(e.cdf(10.0), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(15.0), 0.75);
  EXPECT_DOUBLE_EQ(e.cdf(20.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(21.0), 1.0);
}

TEST(Empirical, QuantileInvertsCdf) {
  const std::vector<double> data{0.0, 10.0, 20.0, 40.0};
  const Empirical e(data);
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_NEAR(e.cdf(e.quantile(p)), p, 1e-12) << "p=" << p;
  }
  EXPECT_THROW((void)e.quantile(1.5), std::invalid_argument);
}

TEST(Empirical, PdfIsPiecewiseDensity) {
  const std::vector<double> data{0.0, 10.0, 20.0};
  const Empirical e(data);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.pdf(5.0), 0.05);   // (1/2) / 10
  EXPECT_DOUBLE_EQ(e.pdf(15.0), 0.05);
  EXPECT_DOUBLE_EQ(e.pdf(25.0), 0.0);
}

TEST(Empirical, SamplesStayInRangeAndMatchMean) {
  Exponential truth(223.0);
  des::RngStream gen(5, 1);
  std::vector<double> data;
  for (int i = 0; i < 20'000; ++i) data.push_back(truth.sample(gen));
  const Empirical e(data);

  des::RngStream rng(6, 2);
  SummaryStats s;
  for (int i = 0; i < 50'000; ++i) {
    const double x = e.sample(rng);
    ASSERT_GE(x, e.min());
    ASSERT_LE(x, e.max());
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 223.0, 223.0 * 0.05);
  EXPECT_NEAR(s.stddev(), 223.0, 223.0 * 0.1);
}

TEST(Empirical, TiedObservationsSupported) {
  const std::vector<double> data{5.0, 5.0, 5.0, 10.0};
  const Empirical e(data);
  EXPECT_DOUBLE_EQ(e.cdf(5.0), 0.0);  // left edge of support
  EXPECT_DOUBLE_EQ(e.cdf(7.5), 2.0 / 3.0 + 0.5 / 3.0);
  des::RngStream rng(7, 3);
  for (int i = 0; i < 100; ++i) {
    const double x = e.sample(rng);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(Empirical, DescribeMentionsFamilyAndSize) {
  const std::vector<double> data{1.0, 2.0};
  const Empirical e(data);
  EXPECT_NE(e.describe().find("empirical"), std::string::npos);
  EXPECT_NE(e.describe().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace paradyn::stats
