#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace paradyn::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(NormalQuantile, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.95), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(NormalQuantile, RejectsOutOfDomain) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(RegularizedGammaP, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.5, 0.0), 0.0);
  // Chi-squared CDF with 2 dof at x: P(1, x/2).
  EXPECT_NEAR(regularized_gamma_p(1.0, 3.0), 0.950212931632136, 1e-10);
}

TEST(RegularizedBeta, SymmetryAndEdges) {
  EXPECT_DOUBLE_EQ(regularized_beta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_beta(1.0, 2.0, 3.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (const double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(regularized_beta(x, 2.0, 5.0), 1.0 - regularized_beta(1.0 - x, 5.0, 2.0), 1e-12);
  }
  // I_x(1,1) = x.
  EXPECT_NEAR(regularized_beta(0.42, 1.0, 1.0), 0.42, 1e-12);
}

TEST(StudentT, CdfSymmetricAboutZero) {
  for (const double df : {1.0, 5.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
    for (const double t : {0.5, 1.0, 2.0}) {
      EXPECT_NEAR(student_t_cdf(t, df) + student_t_cdf(-t, df), 1.0, 1e-12);
    }
  }
}

TEST(StudentT, QuantileMatchesClassicTables) {
  // Two-sided 90% CI critical values t_{0.95, df}.
  EXPECT_NEAR(student_t_quantile(0.95, 4.0), 2.131846786, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.95, 9.0), 1.833112933, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.95, 49.0), 1.676550893, 1e-6);
  // 97.5% values.
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.228138852, 1e-6);
}

TEST(StudentT, QuantileApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-4);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (const double df : {3.0, 12.0, 60.0}) {
    for (const double p : {0.05, 0.25, 0.5, 0.8, 0.99}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, df), df), p, 1e-9);
    }
  }
}

}  // namespace
}  // namespace paradyn::stats
