// Unit tests of the ziggurat variate engine: moments, distributional
// agreement (KS), tail coverage, and draw determinism.  The heavyweight
// n = 1e6 equivalence tests live in stat_equiv_test.cpp (Release-mode CI
// label); these stay cheap enough for the regular suite.
#include "stats/ziggurat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "des/random.hpp"
#include "stats/ks_test.hpp"

namespace paradyn::stats {
namespace {

constexpr std::size_t kDraws = 200'000;

double standard_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

std::vector<double> draw_normals(std::uint64_t seed, std::size_t n = kDraws) {
  des::RngStream rng(seed, 1);
  std::vector<double> xs(n);
  for (double& x : xs) x = ziggurat_normal(rng);
  return xs;
}

std::vector<double> draw_exponentials(std::uint64_t seed, std::size_t n = kDraws) {
  des::RngStream rng(seed, 2);
  std::vector<double> xs(n);
  for (double& x : xs) x = ziggurat_exponential(rng);
  return xs;
}

void expect_moments(const std::vector<double>& xs, double mean, double variance, double tol) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double m = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double v = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(m, mean, tol);
  EXPECT_NEAR(v, variance, 3.0 * tol);
}

TEST(Ziggurat, NormalMomentsMatchStandardNormal) {
  expect_moments(draw_normals(42), 0.0, 1.0, 0.01);
}

TEST(Ziggurat, ExponentialMomentsMatchUnitMean) {
  expect_moments(draw_exponentials(42), 1.0, 1.0, 0.01);
}

TEST(Ziggurat, NormalPassesKsAgainstAnalyticCdf) {
  const auto xs = draw_normals(7);
  const auto result = ks_test(xs, CdfFn(standard_normal_cdf));
  EXPECT_GT(result.p_value, 0.001) << "D = " << result.statistic;
}

TEST(Ziggurat, ExponentialPassesKsAgainstAnalyticCdf) {
  const auto xs = draw_exponentials(7);
  const auto result = ks_test(xs, CdfFn([](double x) { return 1.0 - std::exp(-x); }));
  EXPECT_GT(result.p_value, 0.001) << "D = " << result.statistic;
}

TEST(Ziggurat, NormalTailBeyondBaseLayerIsReached) {
  // P(|X| > r = 3.654) ~= 2.6e-4: 200k draws should exercise the tail
  // rejection path ~50 times.
  const auto xs = draw_normals(3);
  const double max_abs = std::abs(*std::max_element(
      xs.begin(), xs.end(), [](double a, double b) { return std::abs(a) < std::abs(b); }));
  EXPECT_GT(max_abs, detail::kNormalZigR);
}

TEST(Ziggurat, ExponentialTailBeyondBaseLayerIsReached) {
  // P(X > r = 7.697) ~= 4.5e-4.
  const auto xs = draw_exponentials(3);
  EXPECT_GT(*std::max_element(xs.begin(), xs.end()), detail::kExpZigR);
}

TEST(Ziggurat, NormalIsSymmetric) {
  const auto xs = draw_normals(11);
  const auto negatives = static_cast<std::size_t>(
      std::count_if(xs.begin(), xs.end(), [](double x) { return x < 0.0; }));
  const double frac = static_cast<double>(negatives) / static_cast<double>(xs.size());
  EXPECT_NEAR(frac, 0.5, 0.005);
}

TEST(Ziggurat, ExponentialIsNonNegative) {
  for (double x : draw_exponentials(13)) ASSERT_GE(x, 0.0);
}

TEST(Ziggurat, DrawsAreDeterministicPerSeed) {
  EXPECT_EQ(draw_normals(99, 1'000), draw_normals(99, 1'000));
  EXPECT_NE(draw_normals(99, 1'000), draw_normals(100, 1'000));
}

}  // namespace
}  // namespace paradyn::stats
