#include "stats/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace paradyn::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(Matrix, IdentityAndMultiply) {
  const auto eye = Matrix::identity(3);
  Matrix m(3, 3);
  int v = 1;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const auto lhs = eye.multiply(m);
  const auto rhs = m.multiply(eye);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(lhs(r, c), m(r, c));
      EXPECT_DOUBLE_EQ(rhs(r, c), m(r, c));
    }
  }
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;  b(0, 1) = 8;
  b(1, 0) = 9;  b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const auto p = a.multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
  EXPECT_THROW((void)b.multiply(b), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = -2.0;
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
  const auto back = t.transpose();
  EXPECT_DOUBLE_EQ(back(0, 1), 5.0);
}

TEST(Matrix, SymmetryCheck) {
  Matrix s(2, 2);
  s(0, 1) = 3.0;
  s(1, 0) = 3.0;
  EXPECT_TRUE(s.is_symmetric());
  s(1, 0) = 3.1;
  EXPECT_FALSE(s.is_symmetric(1e-3));
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.is_symmetric());
}

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 5.0;
  d(2, 2) = 3.0;
  const auto eig = jacobi_eigen(d);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2,
  // (1,-1)/sqrt2.
  Matrix m(2, 2);
  m(0, 0) = 2.0; m(0, 1) = 1.0;
  m(1, 0) = 1.0; m(1, 1) = 2.0;
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(eig.vectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  // A = V diag(L) V^T must reproduce the input.
  Matrix m(4, 4);
  const double vals[4][4] = {{4, 1, 0.5, 0.2},
                             {1, 3, 0.3, 0.1},
                             {0.5, 0.3, 2, 0.4},
                             {0.2, 0.1, 0.4, 1}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = vals[r][c];
  }
  const auto eig = jacobi_eigen(m);
  Matrix diag(4, 4);
  for (std::size_t i = 0; i < 4; ++i) diag(i, i) = eig.values[i];
  const auto rebuilt = eig.vectors.multiply(diag).multiply(eig.vectors.transpose());
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(rebuilt(r, c), m(r, c), 1e-8);
  }
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  Matrix m(3, 3);
  m(0, 0) = 2; m(0, 1) = 1; m(0, 2) = 0;
  m(1, 0) = 1; m(1, 1) = 2; m(1, 2) = 1;
  m(2, 0) = 0; m(2, 1) = 1; m(2, 2) = 2;
  const auto eig = jacobi_eigen(m);
  const auto gram = eig.vectors.transpose().multiply(eig.vectors);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(gram(r, c), r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiEigen, RejectsNonSymmetric) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  EXPECT_THROW((void)jacobi_eigen(m), std::invalid_argument);
  Matrix rect(2, 3);
  EXPECT_THROW((void)jacobi_eigen(rect), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::stats
