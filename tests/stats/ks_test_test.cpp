// Unit tests of the one-sample Kolmogorov-Smirnov test: the Kolmogorov
// survival function, hand-checked D statistics, and accept/reject behavior
// on matched and mismatched models.
#include "stats/ks_test.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/random.hpp"
#include "stats/distributions.hpp"
#include "stats/fitting.hpp"

namespace paradyn::stats {
namespace {

TEST(KolmogorovQ, BoundaryAndMonotonicity) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.1), 1.0);  // series region cutoff
  double prev = 1.0;
  for (double lambda = 0.3; lambda < 3.0; lambda += 0.1) {
    const double q = kolmogorov_q(lambda);
    EXPECT_LE(q, prev + 1e-12) << "lambda = " << lambda;
    EXPECT_GE(q, 0.0);
    prev = q;
  }
  EXPECT_LT(kolmogorov_q(3.0), 1e-6);
}

TEST(KolmogorovQ, MatchesTabulatedValues) {
  // Classical table values of P(K >= lambda).
  EXPECT_NEAR(kolmogorov_q(1.0), 0.2700, 0.001);
  EXPECT_NEAR(kolmogorov_q(1.36), 0.0491, 0.001);
  EXPECT_NEAR(kolmogorov_q(1.63), 0.0100, 0.0005);
}

TEST(KsTest, HandComputedStatistic) {
  // Against U(0,1): F(x) = x.  For {0.1, 0.4, 0.7} the empirical CDF steps
  // at heights {1/3, 2/3, 1}; sup deviation is at x = 0.7 (|2/3 - 0.7| vs
  // |1 - 0.7| = 0.3).
  const std::vector<double> data{0.1, 0.4, 0.7};
  const auto result = ks_test(data, CdfFn([](double x) { return x; }));
  EXPECT_NEAR(result.statistic, 0.3, 1e-12);
  EXPECT_EQ(result.n, 3u);
}

TEST(KsTest, UnsortedInputGivesSameResult) {
  const std::vector<double> sorted{0.1, 0.4, 0.7};
  const std::vector<double> shuffled{0.7, 0.1, 0.4};
  const CdfFn cdf = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(ks_test(sorted, cdf).statistic, ks_test(shuffled, cdf).statistic);
}

TEST(KsTest, AcceptsMatchedModel) {
  const Exponential dist(100.0);
  des::RngStream rng(17, 1);
  std::vector<double> xs(20'000);
  for (double& x : xs) x = dist.sample(rng);
  const auto result = ks_test(xs, dist);
  EXPECT_FALSE(result.reject(0.01)) << "p = " << result.p_value;
}

TEST(KsTest, RejectsMismatchedModel) {
  const Exponential actual(100.0);
  const Uniform claimed(0.0, 200.0);
  des::RngStream rng(17, 2);
  std::vector<double> xs(5'000);
  for (double& x : xs) x = actual.sample(rng);
  const auto result = ks_test(xs, claimed);
  EXPECT_TRUE(result.reject(0.01));
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, StatisticMatchesFittingKsStatistic) {
  const auto dist = Lognormal::from_mean_stddev(500.0, 300.0);
  des::RngStream rng(23, 5);
  std::vector<double> xs(2'000);
  for (double& x : xs) x = dist.sample(rng);
  EXPECT_DOUBLE_EQ(ks_test(xs, dist).statistic, ks_statistic(xs, dist));
}

TEST(KsTest, PValueFallsWithSampleSizeAtFixedD) {
  EXPECT_GT(kolmogorov_p_value(0.05, 100), kolmogorov_p_value(0.05, 1'000));
  EXPECT_GT(kolmogorov_p_value(0.05, 1'000), kolmogorov_p_value(0.05, 10'000));
}

}  // namespace
}  // namespace paradyn::stats
