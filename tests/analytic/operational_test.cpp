#include "analytic/operational.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace paradyn::analytic {
namespace {

TEST(ArrivalRate, Equation1) {
  Scenario s;
  s.sampling_period_us = 40'000.0;
  s.batch_size = 1;
  s.app_processes = 1;
  EXPECT_DOUBLE_EQ(arrival_rate_per_node(s), 1.0 / 40'000.0);
  s.batch_size = 32;
  EXPECT_DOUBLE_EQ(arrival_rate_per_node(s), 1.0 / (40'000.0 * 32.0));
  s.app_processes = 4;
  EXPECT_DOUBLE_EQ(arrival_rate_per_node(s), 4.0 / (40'000.0 * 32.0));
}

TEST(ArrivalRate, Validation) {
  Scenario s;
  s.sampling_period_us = 0.0;
  EXPECT_THROW((void)arrival_rate_per_node(s), std::invalid_argument);
  s = Scenario{};
  s.batch_size = 0;
  EXPECT_THROW((void)arrival_rate_per_node(s), std::invalid_argument);
  s = Scenario{};
  s.nodes = 0;
  EXPECT_THROW((void)now_metrics(s), std::invalid_argument);
}

TEST(NowMetrics, UtilizationLawHandChecked) {
  // lambda = 1/40000, D_pd = 267: mu = 0.006675.
  Scenario s;
  s.sampling_period_us = 40'000.0;
  s.nodes = 8;
  const auto m = now_metrics(s);
  EXPECT_NEAR(m.pd_cpu_utilization, 267.0 / 40'000.0, 1e-12);
  // Network: n * lambda * 71.
  EXPECT_NEAR(m.network_utilization, 8.0 * 71.0 / 40'000.0, 1e-12);
  // Main: n * lambda * 3208.
  EXPECT_NEAR(m.main_cpu_utilization, 8.0 * 3208.0 / 40'000.0, 1e-12);
  // Latency (eq 4): D/(1-u) for both resources.
  const double expected = 267.0 / (1.0 - m.pd_cpu_utilization) +
                          71.0 / (1.0 - m.network_utilization);
  EXPECT_NEAR(m.monitoring_latency_us, expected, 1e-9);
  // Eq (6).
  EXPECT_NEAR(m.app_cpu_utilization, 1.0 - m.pd_cpu_utilization, 1e-12);
  EXPECT_FALSE(m.saturated);
}

TEST(NowMetrics, BatchingReducesOverheadHyperbolically) {
  Scenario s;
  s.sampling_period_us = 5'000.0;
  s.nodes = 2;  // keep every station unsaturated so latencies are finite
  Scenario s32 = s;
  s32.batch_size = 32;
  const auto m1 = now_metrics(s);
  const auto m32 = now_metrics(s32);
  EXPECT_NEAR(m32.pd_cpu_utilization, m1.pd_cpu_utilization / 32.0, 1e-12);
  EXPECT_LT(m32.monitoring_latency_us, m1.monitoring_latency_us);
}

TEST(NowMetrics, SaturationFlaggedAtHighRates) {
  // 64 app processes sampled every 1 ms: lambda*D = 64*267/1000 >> 1.
  Scenario s;
  s.sampling_period_us = 1'000.0;
  s.app_processes = 64;
  const auto m = now_metrics(s);
  EXPECT_TRUE(m.saturated);
  EXPECT_DOUBLE_EQ(m.pd_cpu_utilization, 1.0);
}

TEST(NowMetrics, MainUtilizationGrowsWithNodes) {
  // Unsaturated range: 8 * 3208/40000 = 0.64.
  Scenario s2;
  s2.nodes = 2;
  Scenario s8 = s2;
  s8.nodes = 8;
  EXPECT_NEAR(now_metrics(s8).main_cpu_utilization,
              4.0 * now_metrics(s2).main_cpu_utilization, 1e-12);
  // Pd per-node utilization does not depend on node count (localized).
  EXPECT_DOUBLE_EQ(now_metrics(s2).pd_cpu_utilization, now_metrics(s8).pd_cpu_utilization);
}

TEST(SmpMetrics, DemandsDividedByCpuCount) {
  Scenario s;
  s.nodes = 16;  // CPUs
  s.app_processes = 32;
  s.daemons = 2;
  s.sampling_period_us = 40'000.0;
  const auto m = smp_metrics(s);
  const double lambda = 2.0 * 32.0 / 40'000.0;
  EXPECT_NEAR(m.pd_cpu_utilization, lambda * 267.0 / 16.0, 1e-12);
  EXPECT_NEAR(m.main_cpu_utilization, lambda * 3208.0 / 16.0, 1e-12);
  // Eq (9): pooled IS utilization.
  EXPECT_NEAR(m.is_cpu_utilization,
              (2.0 * m.pd_cpu_utilization + m.main_cpu_utilization) / 3.0, 1e-12);
  // Eq (10).
  EXPECT_NEAR(m.app_cpu_utilization, 1.0 - m.is_cpu_utilization, 1e-12);
  // Eq (11): bus utilization does not divide by n.
  EXPECT_NEAR(m.network_utilization, lambda * 71.0, 1e-12);
}

TEST(SmpMetrics, MoreCpusLowerLatency) {
  Scenario a;
  a.nodes = 2;
  a.app_processes = 8;
  Scenario b = a;
  b.nodes = 16;
  EXPECT_GT(smp_metrics(a).monitoring_latency_us, smp_metrics(b).monitoring_latency_us);
}

TEST(MppTree, MatchesEquations13Through16) {
  Scenario s;
  s.nodes = 8;
  s.sampling_period_us = 40'000.0;
  const Demands d;
  const double lambda = 1.0 / 40'000.0;
  const auto m = mpp_tree_metrics(s, d);
  const double leaf = lambda * d.pd_cpu_us;
  const double interior = lambda * d.pd_cpu_us + 2.0 * lambda * d.pdm_cpu_us;
  const double single = lambda * d.pdm_cpu_us;
  const double expected_pd = (4.0 * leaf + 3.0 * interior + single) / 8.0;
  EXPECT_NEAR(m.pd_cpu_utilization, expected_pd, 1e-12);
  EXPECT_NEAR(m.main_cpu_utilization, 2.0 * lambda * d.main_cpu_us, 1e-12);
  const double expected_lat =
      (d.pd_cpu_us + d.pdm_cpu_us) / (1.0 - m.pd_cpu_utilization) +
      d.pd_net_us / (1.0 - m.network_utilization);
  EXPECT_NEAR(m.monitoring_latency_us, expected_lat, 1e-9);
}

TEST(MppTree, CostsMoreCpuThanDirect) {
  Scenario s;
  s.nodes = 256;
  s.sampling_period_us = 40'000.0;
  const auto tree = mpp_tree_metrics(s);
  const auto direct = mpp_direct_metrics(s);
  // Interior merge work makes tree forwarding more expensive per node
  // (Figure 27) while per-node direct utilization is flat.
  EXPECT_GT(tree.pd_cpu_utilization, direct.pd_cpu_utilization);
  EXPECT_GT(tree.monitoring_latency_us, direct.monitoring_latency_us);
}

TEST(MppTree, MainLoadIndependentOfNodeCount) {
  Scenario a;
  a.nodes = 16;
  a.batch_size = 128;  // keep the direct case unsaturated up to 256 nodes
  Scenario b = a;
  b.nodes = 256;
  // Under tree forwarding the main process sees only its two children.
  EXPECT_DOUBLE_EQ(mpp_tree_metrics(a).main_cpu_utilization,
                   mpp_tree_metrics(b).main_cpu_utilization);
  // Under direct forwarding it scales with n.
  EXPECT_GT(mpp_direct_metrics(b).main_cpu_utilization,
            mpp_direct_metrics(a).main_cpu_utilization);
}

TEST(Mva, SingleCustomerHasNoQueueing) {
  // With one customer, residence == demand at every station.
  const std::vector<MvaStation> stations{{100.0, false}, {50.0, true}};
  const auto r = mva_closed(stations, 1);
  EXPECT_DOUBLE_EQ(r.cycle_time_us, 150.0);
  EXPECT_DOUBLE_EQ(r.throughput_per_us, 1.0 / 150.0);
  EXPECT_NEAR(r.utilization[0], 100.0 / 150.0, 1e-12);
}

TEST(Mva, TextbookTwoStationExample) {
  // Lazowska et al. style check: D = {5, 4}, N = 3 — exact MVA recursion
  // computed by hand: X(3) = 0.22857..., R = 13.125.
  const std::vector<MvaStation> stations{{5.0, false}, {4.0, false}};
  const auto r = mva_closed(stations, 3);
  // n=1: R={5,4}, X=1/9, Q={5/9,4/9}
  // n=2: R={5(1+5/9), 4(1+4/9)} = {70/9, 52/9}, X=2*9/122=18/122, Q={...}
  // Validate against a fresh manual recursion:
  double q1 = 0.0;
  double q2 = 0.0;
  double x = 0.0;
  for (int n = 1; n <= 3; ++n) {
    const double r1 = 5.0 * (1.0 + q1);
    const double r2 = 4.0 * (1.0 + q2);
    x = n / (r1 + r2);
    q1 = x * r1;
    q2 = x * r2;
  }
  EXPECT_NEAR(r.throughput_per_us, x, 1e-12);
  EXPECT_NEAR(r.mean_queue_length[0], q1, 1e-12);
  EXPECT_NEAR(r.mean_queue_length[1], q2, 1e-12);
}

TEST(Mva, ThroughputMonotoneAndBounded) {
  const std::vector<MvaStation> stations{{2213.0, false}, {223.0, true}};
  double prev = 0.0;
  for (int n = 1; n <= 32; n *= 2) {
    const auto r = mva_closed(stations, n);
    // Non-decreasing, converging to the bottleneck bound X <= 1 / D_max.
    EXPECT_GE(r.throughput_per_us, prev - 1e-15);
    EXPECT_LE(r.throughput_per_us, 1.0 / 2213.0 + 1e-12);
    prev = r.throughput_per_us;
  }
  // Strictly increasing while unsaturated.
  EXPECT_GT(mva_closed(stations, 2).throughput_per_us,
            mva_closed(stations, 1).throughput_per_us);
}

TEST(Mva, QueueLengthsSumToPopulation) {
  const std::vector<MvaStation> stations{{10.0, false}, {20.0, false}, {5.0, true}};
  const auto r = mva_closed(stations, 7);
  double total = 0.0;
  for (const double q : r.mean_queue_length) total += q;
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST(Mva, Validation) {
  EXPECT_THROW((void)mva_closed({}, 1), std::invalid_argument);
  EXPECT_THROW((void)mva_closed({{1.0, false}}, 0), std::invalid_argument);
  EXPECT_THROW((void)mva_closed({{-1.0, false}}, 1), std::invalid_argument);
}

TEST(Mva, ApplicationMvaIsBlindToIsParameters) {
  // The paper's Section 3 objection: the closed-model application CPU
  // utilization does not respond to any IS parameter.  One customer on the
  // Table 2 demands gives U_cpu = 2213/2436 ~ 0.908 regardless of sampling
  // period or policy (which do not even appear in the inputs).
  const auto r = application_mva(1);
  EXPECT_NEAR(r.utilization[0], 2213.0 / (2213.0 + 223.0), 1e-9);
  // More app processes saturate the CPU.
  const auto r4 = application_mva(4);
  EXPECT_GT(r4.utilization[0], 0.99);
}

class SamplingPeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingPeriodSweep, OverheadMonotoneInSamplingRate) {
  // Shorter sampling period -> strictly higher Pd utilization, for both
  // policies and all three architectures.
  const double period = GetParam();
  Scenario fast;
  fast.sampling_period_us = period;
  Scenario slow;
  slow.sampling_period_us = period * 2.0;
  EXPECT_GE(now_metrics(fast).pd_cpu_utilization, now_metrics(slow).pd_cpu_utilization);
  fast.app_processes = slow.app_processes = 16;
  fast.nodes = slow.nodes = 16;
  EXPECT_GE(smp_metrics(fast).is_cpu_utilization, smp_metrics(slow).is_cpu_utilization);
  fast.app_processes = slow.app_processes = 1;
  EXPECT_GE(mpp_tree_metrics(fast).pd_cpu_utilization,
            mpp_tree_metrics(slow).pd_cpu_utilization);
}

INSTANTIATE_TEST_SUITE_P(PaperPeriods, SamplingPeriodSweep,
                         ::testing::Values(1'000.0, 2'000.0, 5'000.0, 10'000.0, 40'000.0,
                                           64'000.0));

}  // namespace
}  // namespace paradyn::analytic
