#include "trace/characterize.hpp"

#include <gtest/gtest.h>

#include "des/random.hpp"
#include "stats/empirical.hpp"
#include "trace/generator.hpp"

namespace paradyn::trace {
namespace {

std::vector<TraceRecord> paper_trace(double duration_us = 30e6) {
  return generate_trace(Sp2TraceModel::paper_pvmbt(duration_us), 1, 77);
}

TEST(OccupancyExtract, GroupsByClassAndResource) {
  const std::vector<TraceRecord> records{
      {0.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 10.0},
      {5.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 20.0},
      {7.0, 0, 2, ProcessClass::ParadynDaemon, ResourceKind::Network, 30.0},
  };
  const OccupancyExtract ex(records);
  EXPECT_EQ(ex.lengths(ProcessClass::Application, ResourceKind::Cpu).size(), 2u);
  EXPECT_EQ(ex.lengths(ProcessClass::ParadynDaemon, ResourceKind::Network).size(), 1u);
  EXPECT_TRUE(ex.lengths(ProcessClass::Other, ResourceKind::Cpu).empty());
}

TEST(OccupancyExtract, InterarrivalsPerStream) {
  // Two pids interleaved: inter-arrivals must be computed per pid.
  const std::vector<TraceRecord> records{
      {0.0, 0, 1, ProcessClass::PvmDaemon, ResourceKind::Cpu, 1.0},
      {10.0, 0, 2, ProcessClass::PvmDaemon, ResourceKind::Cpu, 1.0},
      {30.0, 0, 1, ProcessClass::PvmDaemon, ResourceKind::Cpu, 1.0},
      {50.0, 0, 2, ProcessClass::PvmDaemon, ResourceKind::Cpu, 1.0},
  };
  const OccupancyExtract ex(records);
  const auto& ia = ex.interarrivals(ProcessClass::PvmDaemon, ResourceKind::Cpu);
  ASSERT_EQ(ia.size(), 2u);
  EXPECT_DOUBLE_EQ(ia[0], 30.0);  // pid 1: 30 - 0
  EXPECT_DOUBLE_EQ(ia[1], 40.0);  // pid 2: 50 - 10
}

TEST(OccupancyStatistics, ReproducesTable1Shape) {
  const auto rows = occupancy_statistics(paper_trace());
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kNumProcessClasses));

  // Find the application row and check it against Table 1.
  const OccupancyStatsRow* app = nullptr;
  const OccupancyStatsRow* pd = nullptr;
  for (const auto& r : rows) {
    if (r.pclass == ProcessClass::Application) app = &r;
    if (r.pclass == ProcessClass::ParadynDaemon) pd = &r;
  }
  ASSERT_NE(app, nullptr);
  ASSERT_NE(pd, nullptr);
  EXPECT_NEAR(app->cpu.mean(), 2213.0, 2213.0 * 0.1);
  EXPECT_NEAR(app->cpu.stddev(), 3034.0, 3034.0 * 0.25);
  EXPECT_NEAR(app->network.mean(), 223.0, 223.0 * 0.1);
  EXPECT_NEAR(pd->cpu.mean(), 267.0, 267.0 * 0.15);
  EXPECT_NEAR(pd->network.mean(), 71.0, 71.0 * 0.15);
}

TEST(Characterize, SelectsPaperFamilies) {
  const auto model = characterize(paper_trace());
  ASSERT_TRUE(model.has(ProcessClass::Application));
  const auto& app = model.at(ProcessClass::Application);
  ASSERT_TRUE(app.cpu_length);
  ASSERT_TRUE(app.net_length);
  // Lognormal wins for application CPU (Figure 8a).
  EXPECT_EQ(app.cpu_length->name(), "lognormal");
  EXPECT_NEAR(app.cpu_length->mean(), 2213.0, 2213.0 * 0.1);
  // Exponential-shaped for application network (Figure 8b) — accept the
  // nested Weibull with shape ~1.
  EXPECT_NEAR(app.net_length->mean(), 223.0, 223.0 * 0.1);
}

TEST(Characterize, InterarrivalMeansRecovered) {
  const auto model = characterize(paper_trace());
  ASSERT_TRUE(model.has(ProcessClass::PvmDaemon));
  const auto& pvmd = model.at(ProcessClass::PvmDaemon);
  ASSERT_TRUE(pvmd.cpu_interarrival_mean.has_value());
  EXPECT_NEAR(*pvmd.cpu_interarrival_mean, 6485.0, 6485.0 * 0.15);

  ASSERT_TRUE(model.has(ProcessClass::Other));
  const auto& other = model.at(ProcessClass::Other);
  ASSERT_TRUE(other.cpu_interarrival_mean.has_value());
  EXPECT_NEAR(*other.cpu_interarrival_mean, 31485.0, 31485.0 * 0.15);
}

TEST(CharacterizeEmpirical, ReplaysObservedRange) {
  const auto records = paper_trace(10e6);
  const auto model = characterize_empirical(records);
  ASSERT_TRUE(model.has(ProcessClass::Application));
  const auto& app = model.at(ProcessClass::Application);
  ASSERT_TRUE(app.cpu_length);
  EXPECT_EQ(app.cpu_length->name(), "empirical");
  EXPECT_NEAR(app.cpu_length->mean(), 2213.0, 2213.0 * 0.15);
  // Samples never leave the observed support.
  const auto& emp = dynamic_cast<const stats::Empirical&>(*app.cpu_length);
  des::RngStream rng(3, 3);
  for (int i = 0; i < 1000; ++i) {
    const double x = app.cpu_length->sample(rng);
    EXPECT_GE(x, emp.min());
    EXPECT_LE(x, emp.max());
  }
}

TEST(CharacterizeEmpirical, SkipsSparseClasses) {
  const std::vector<TraceRecord> records{
      {0.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 10.0},
  };
  const auto model = characterize_empirical(records);
  EXPECT_FALSE(model.has(ProcessClass::Application));  // only one observation
}

TEST(Characterize, MissingClassThrows) {
  const std::vector<TraceRecord> records{
      {0.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 10.0},
      {5.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 12.0},
  };
  const auto model = characterize(records);
  EXPECT_TRUE(model.has(ProcessClass::Application));
  EXPECT_FALSE(model.has(ProcessClass::PvmDaemon));
  EXPECT_THROW((void)model.at(ProcessClass::PvmDaemon), std::out_of_range);
}

TEST(Characterize, EmptyTraceYieldsEmptyModel) {
  const auto model = characterize({});
  for (int i = 0; i < kNumProcessClasses; ++i) {
    EXPECT_FALSE(model.has(static_cast<ProcessClass>(i)));
  }
}

}  // namespace
}  // namespace paradyn::trace
