#include "trace/record.hpp"

#include <gtest/gtest.h>

namespace paradyn::trace {
namespace {

TEST(ProcessClass, StringRoundTrip) {
  for (int i = 0; i < kNumProcessClasses; ++i) {
    const auto c = static_cast<ProcessClass>(i);
    EXPECT_EQ(process_class_from_string(to_string(c)), c);
  }
}

TEST(ProcessClass, RejectsUnknownString) {
  EXPECT_THROW((void)process_class_from_string("bogus"), std::invalid_argument);
  EXPECT_THROW((void)process_class_from_string(""), std::invalid_argument);
}

TEST(ResourceKind, StringRoundTrip) {
  EXPECT_EQ(resource_kind_from_string(to_string(ResourceKind::Cpu)), ResourceKind::Cpu);
  EXPECT_EQ(resource_kind_from_string(to_string(ResourceKind::Network)), ResourceKind::Network);
  EXPECT_THROW((void)resource_kind_from_string("disk"), std::invalid_argument);
}

TEST(ProcessClass, NamesMatchPaperTerminology) {
  EXPECT_EQ(to_string(ProcessClass::Application), "application");
  EXPECT_EQ(to_string(ProcessClass::ParadynDaemon), "paradyn_daemon");
  EXPECT_EQ(to_string(ProcessClass::PvmDaemon), "pvm_daemon");
  EXPECT_EQ(to_string(ProcessClass::Other), "other");
  EXPECT_EQ(to_string(ProcessClass::MainParadyn), "main_paradyn");
}

}  // namespace
}  // namespace paradyn::trace
