#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/generator.hpp"

namespace paradyn::trace {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      {0.0, 0, 1, ProcessClass::Application, ResourceKind::Cpu, 2213.5},
      {100.25, 1, 2, ProcessClass::ParadynDaemon, ResourceKind::Network, 71.0},
      {250.0, 0, 3, ProcessClass::MainParadyn, ResourceKind::Cpu, 3208.0},
  };
}

TEST(TraceIo, StreamRoundTrip) {
  const auto in = sample_records();
  std::stringstream ss;
  write_csv(ss, in);
  const auto out = read_csv(ss);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].timestamp_us, in[i].timestamp_us);
    EXPECT_EQ(out[i].node, in[i].node);
    EXPECT_EQ(out[i].pid, in[i].pid);
    EXPECT_EQ(out[i].pclass, in[i].pclass);
    EXPECT_EQ(out[i].resource, in[i].resource);
    EXPECT_DOUBLE_EQ(out[i].duration_us, in[i].duration_us);
  }
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  std::stringstream ss;
  write_csv(ss, {});
  EXPECT_TRUE(read_csv(ss).empty());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("1,2,3\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream ss;
  ss << "timestamp_us,node,pid,process_class,resource,duration_us\n";
  ss << "1.0,0,1,application,cpu\n";  // five fields
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBadNumericField) {
  std::stringstream ss;
  ss << "timestamp_us,node,pid,process_class,resource,duration_us\n";
  ss << "abc,0,1,application,cpu,5.0\n";
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownClass) {
  std::stringstream ss;
  ss << "timestamp_us,node,pid,process_class,resource,duration_us\n";
  ss << "1.0,0,1,martian,cpu,5.0\n";
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream ss;
  ss << "timestamp_us,node,pid,process_class,resource,duration_us\n";
  ss << "1.0,0,1,application,cpu,5.0\n\n";
  EXPECT_EQ(read_csv(ss).size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "paradyn_trace_io_test.csv";
  const auto model = Sp2TraceModel::paper_pvmbt(0.5e6);
  const auto in = generate_trace(model, 2, 3);
  write_csv_file(path.string(), in);
  const auto out = read_csv_file(path.string());
  EXPECT_EQ(out.size(), in.size());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/definitely/missing.csv"), std::runtime_error);
}

}  // namespace
}  // namespace paradyn::trace
