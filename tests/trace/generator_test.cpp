#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/summary.hpp"

namespace paradyn::trace {
namespace {

TEST(Generator, Deterministic) {
  const auto model = Sp2TraceModel::paper_pvmbt(1e6);
  const auto a = generate_trace(model, 2, 42);
  const auto b = generate_trace(model, 2, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].timestamp_us, b[i].timestamp_us);
    EXPECT_DOUBLE_EQ(a[i].duration_us, b[i].duration_us);
    EXPECT_EQ(a[i].pid, b[i].pid);
  }
}

TEST(Generator, SeedChangesTrace) {
  const auto model = Sp2TraceModel::paper_pvmbt(1e6);
  const auto a = generate_trace(model, 1, 1);
  const auto b = generate_trace(model, 1, 2);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Same structure, different draws.
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i].duration_us != b[i].duration_us) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, RecordsSortedAndWithinDuration) {
  const auto model = Sp2TraceModel::paper_pvmbt(2e6);
  const auto records = generate_trace(model, 3, 7);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp_us, records[i].timestamp_us);
  }
  for (const auto& r : records) {
    EXPECT_GE(r.timestamp_us, 0.0);
    EXPECT_LT(r.timestamp_us, 2e6);
    EXPECT_GT(r.duration_us, 0.0);
    EXPECT_GE(r.node, 0);
    EXPECT_LT(r.node, 3);
  }
}

TEST(Generator, AllFiveProcessClassesPresent) {
  const auto model = Sp2TraceModel::paper_pvmbt(20e6);
  const auto records = generate_trace(model, 1, 11);
  std::set<ProcessClass> seen;
  for (const auto& r : records) seen.insert(r.pclass);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumProcessClasses));
}

TEST(Generator, MainParadynOnlyOnNodeZero) {
  const auto model = Sp2TraceModel::paper_pvmbt(5e6);
  const auto records = generate_trace(model, 4, 13);
  for (const auto& r : records) {
    if (r.pclass == ProcessClass::MainParadyn) EXPECT_EQ(r.node, 0);
  }
}

TEST(Generator, ApplicationStatisticsMatchTable1) {
  // Application CPU occupancy should have mean ~2213 us (Table 1).
  const auto model = Sp2TraceModel::paper_pvmbt(50e6);
  const auto records = generate_trace(model, 1, 21);
  stats::SummaryStats cpu;
  stats::SummaryStats net;
  for (const auto& r : records) {
    if (r.pclass != ProcessClass::Application) continue;
    (r.resource == ResourceKind::Cpu ? cpu : net).add(r.duration_us);
  }
  ASSERT_GT(cpu.count(), 1000u);
  EXPECT_NEAR(cpu.mean(), 2213.0, 2213.0 * 0.1);
  EXPECT_NEAR(net.mean(), 223.0, 223.0 * 0.1);
}

TEST(Generator, AlternatingProcessInterleavesCpuAndNetwork) {
  const auto model = Sp2TraceModel::paper_pvmbt(2e6);
  const auto records = generate_trace(model, 1, 5);
  ResourceKind expected = ResourceKind::Cpu;
  for (const auto& r : records) {
    if (r.pclass != ProcessClass::Application) continue;
    EXPECT_EQ(r.resource, expected);
    expected = (expected == ResourceKind::Cpu) ? ResourceKind::Network : ResourceKind::Cpu;
  }
}

TEST(Generator, Validation) {
  const auto model = Sp2TraceModel::paper_pvmbt(1e6);
  EXPECT_THROW((void)generate_trace(model, 0, 1), std::invalid_argument);
  auto bad = model;
  bad.duration_us = 0.0;
  EXPECT_THROW((void)generate_trace(bad, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::trace
