// Unit and integration tests of the fault/perturbation injection
// subsystem: spec parsing, plan validation, the sample-drop gate, and the
// observable effect of each fault type on an assembled simulation.
#include "rocc/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rocc/simulation.hpp"

namespace paradyn::rocc {
namespace {

SystemConfig quick_now(std::int32_t nodes, std::int32_t batch) {
  auto c = SystemConfig::now(nodes);
  c.batch_size = batch;
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  return c;
}

TEST(FaultSpecParse, DaemonStallWithUnits) {
  const auto f = FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s,dur=500ms");
  EXPECT_EQ(f.type, FaultType::DaemonStall);
  EXPECT_EQ(f.target, 0);
  EXPECT_DOUBLE_EQ(f.start_us, 1e6);
  EXPECT_DOUBLE_EQ(f.duration_us, 5e5);
  EXPECT_DOUBLE_EQ(f.end_us(), 1.5e6);
}

TEST(FaultSpecParse, BareNumbersAreMicroseconds) {
  const auto f = FaultPlan::parse_spec("daemon_crash:daemon=1,start=250000,dur=125us");
  EXPECT_EQ(f.type, FaultType::DaemonCrash);
  EXPECT_DOUBLE_EQ(f.start_us, 250'000.0);
  EXPECT_DOUBLE_EQ(f.duration_us, 125.0);
}

TEST(FaultSpecParse, LinkSlowFactorAndAllTargets) {
  const auto f = FaultPlan::parse_spec("link_slow:start=2s,dur=1s,factor=8");
  EXPECT_EQ(f.type, FaultType::LinkSlowdown);
  EXPECT_DOUBLE_EQ(f.magnitude, 8.0);

  const auto d = FaultPlan::parse_spec("sample_drop:node=all,start=1s,dur=2s,p=0.25");
  EXPECT_EQ(d.type, FaultType::SampleDrop);
  EXPECT_EQ(d.target, -1);
  EXPECT_DOUBLE_EQ(d.magnitude, 0.25);

  const auto b = FaultPlan::parse_spec("pipe_backpressure:daemon=0,start=1s,dur=1s,capacity=2");
  EXPECT_EQ(b.type, FaultType::PipeBackpressure);
  EXPECT_DOUBLE_EQ(b.magnitude, 2.0);
}

TEST(FaultSpecParse, SemicolonJoinsSpecs) {
  const auto plan =
      FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=100ms;link_slow:start=0,dur=1s,factor=2");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].type, FaultType::DaemonStall);
  EXPECT_EQ(plan.faults[1].type, FaultType::LinkSlowdown);
}

TEST(FaultSpecParse, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse_spec(""), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("bogus_type:start=0,dur=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall"), std::invalid_argument);
  // Missing required start/dur.
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s"),
               std::invalid_argument);
  // Unknown key and unparsable value.
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:start=1s,dur=1s,frobnicate=3"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=x,start=1s,dur=1s"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(""), std::invalid_argument);
}

TEST(FaultPlanValidate, WindowAndTargetChecks) {
  FaultPlan plan;
  FaultSpec f;
  f.type = FaultType::DaemonStall;
  f.target = 0;
  f.start_us = 1e6;
  f.duration_us = 1e5;
  plan.faults = {f};
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));

  // Start at/after sim end can never fire.
  plan.faults[0].start_us = 2e6;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  // Degenerate window.
  plan.faults[0].start_us = 0.0;
  plan.faults[0].duration_us = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  // Daemon target out of range; and no daemons at all when
  // instrumentation is disabled.
  plan.faults[0].duration_us = 1e5;
  plan.faults[0].target = 2;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].target = 0;
  EXPECT_THROW(plan.validate(0, 2, 2e6, 16), std::invalid_argument);

  // sample_drop: p must be in (0, 1], node must exist.
  plan.faults[0].type = FaultType::SampleDrop;
  plan.faults[0].magnitude = 0.5;
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));
  plan.faults[0].magnitude = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 1.5;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 0.5;
  plan.faults[0].target = 7;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);

  // link_slow: factor >= 1.
  plan.faults[0] = f;
  plan.faults[0].type = FaultType::LinkSlowdown;
  plan.faults[0].magnitude = 0.5;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);

  // pipe_backpressure: clamped capacity in [1, pipe_capacity).
  plan.faults[0].type = FaultType::PipeBackpressure;
  plan.faults[0].magnitude = 16.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 2.0;
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));
}

TEST(FaultSpecParse, StochasticWindows) {
  const auto f = FaultPlan::parse_spec("daemon_stall:daemon=0,start=exp:1s,dur=uniform:200ms:800ms");
  EXPECT_TRUE(f.stochastic());
  ASSERT_NE(f.start_dist, nullptr);
  ASSERT_NE(f.duration_dist, nullptr);

  const auto g = FaultPlan::parse_spec("link_slow:start=1s,dur=lognormal:500ms:100ms,factor=4");
  EXPECT_TRUE(g.stochastic());
  EXPECT_EQ(g.start_dist, nullptr);
  EXPECT_DOUBLE_EQ(g.start_us, 1e6);

  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0,start=exp:,dur=1s"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0,start=zipf:2,dur=1s"),
               std::invalid_argument);
}

TEST(FaultPlan, ResolveDrawsAndClampsStochasticWindows) {
  auto plan = FaultPlan::parse(
      "daemon_stall:daemon=0,start=exp:100ms,dur=exp:50ms;"
      "daemon_crash:daemon=0,start=1s,dur=200ms");
  EXPECT_TRUE(plan.any_stochastic());
  // Stochastic windows skip the static timing checks at validate time.
  EXPECT_NO_THROW(plan.validate(1, 1, 2e6, 16));

  des::Pcg32 rng = des::RngStream(7, 0, kFaultWindowRngTag);
  plan.resolve(rng, stats::SamplerBackend::Ziggurat);
  EXPECT_FALSE(plan.any_stochastic());
  EXPECT_GE(plan.faults[0].start_us, 0.0);
  EXPECT_GE(plan.faults[0].duration_us, 1.0);  // clamped to a non-degenerate window
  // Fixed windows pass through untouched.
  EXPECT_DOUBLE_EQ(plan.faults[1].start_us, 1e6);
  EXPECT_DOUBLE_EQ(plan.faults[1].duration_us, 2e5);

  // Same seed, same draw: the resolved plan is deterministic.
  auto again = FaultPlan::parse(
      "daemon_stall:daemon=0,start=exp:100ms,dur=exp:50ms;"
      "daemon_crash:daemon=0,start=1s,dur=200ms");
  des::Pcg32 rng2 = des::RngStream(7, 0, kFaultWindowRngTag);
  again.resolve(rng2, stats::SamplerBackend::Ziggurat);
  EXPECT_DOUBLE_EQ(again.faults[0].start_us, plan.faults[0].start_us);
  EXPECT_DOUBLE_EQ(again.faults[0].duration_us, plan.faults[0].duration_us);
}

TEST(FaultSpecParse, CascadeClause) {
  const auto f = FaultPlan::parse_spec(
      "daemon_stall:daemon=0,start=1s,dur=500ms,cascade=0.5,cascade_delay=100ms,"
      "cascade_hops=2,cascade_factor=8");
  EXPECT_DOUBLE_EQ(f.cascade_p, 0.5);
  EXPECT_DOUBLE_EQ(f.cascade_delay_us, 1e5);
  EXPECT_EQ(f.cascade_hops, 2);
  EXPECT_DOUBLE_EQ(f.cascade_factor, 8.0);
}

TEST(FaultPlanValidate, CascadeChecks) {
  // Cascades need a stall/crash with a concrete daemon target and sane
  // parameters; the shape checks live in validate() (parse is per-clause
  // and cannot see the target/type combination rules).
  const auto reject = [](const std::string& spec) {
    const auto plan = FaultPlan::parse(spec);
    EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument) << spec;
  };
  reject("link_slow:start=1s,dur=1s,factor=2,cascade=0.5");
  reject("daemon_stall:daemon=all,start=1s,dur=1s,cascade=0.5");
  reject("daemon_stall:daemon=0,start=1s,dur=1s,cascade=1.5");
  reject("daemon_stall:daemon=0,start=1s,dur=1s,cascade=-0.5");
  reject("daemon_stall:daemon=0,start=1s,dur=1s,cascade=0.5,cascade_delay=0");
  reject("daemon_stall:daemon=0,start=1s,dur=1s,cascade=0.5,cascade_factor=0.5");

  const auto ok = FaultPlan::parse(
      "daemon_crash:daemon=1,start=1s,dur=500ms,cascade=1,cascade_hops=2");
  EXPECT_NO_THROW(ok.validate(2, 2, 2e6, 16));
}

TEST(FaultSpecParse, ErrorsNameClauseAndPositionWithSuggestion) {
  try {
    (void)FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=1s;deamon_crash:start=1s,dur=1s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("clause 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("char"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("daemon_crash"), std::string::npos) << msg;
  }
  try {
    (void)FaultPlan::parse_spec("daemon_stall:daemon=0,strat=1s,dur=1s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("did you mean 'start'"), std::string::npos) << msg;
  }
}

TEST(FaultPlan, SchedulePointsInDeclarationOrder) {
  const auto plan = FaultPlan::parse(
      "daemon_stall:daemon=0,start=1s,dur=100ms;link_slow:start=500ms,dur=1s,factor=2");
  const auto pts = plan.schedule_points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0], 1e6);
  EXPECT_DOUBLE_EQ(pts[1], 1.1e6);
  EXPECT_DOUBLE_EQ(pts[2], 5e5);
  EXPECT_DOUBLE_EQ(pts[3], 1.5e6);
}

TEST(FaultGate, DrawsOnlyInsideWindowsAndRespectsTarget) {
  FaultGate gate(des::RngStream(7, 0, 8));
  EXPECT_FALSE(gate.active());

  gate.add_drop(/*node=*/1, /*probability=*/1.0);
  EXPECT_TRUE(gate.active());
  EXPECT_TRUE(gate.should_drop(1));
  EXPECT_FALSE(gate.should_drop(0));  // other node untouched

  gate.remove_drop(1, 1.0);
  EXPECT_FALSE(gate.active());

  // node -1 covers everyone.
  gate.add_drop(-1, 1.0);
  EXPECT_TRUE(gate.should_drop(0));
  EXPECT_TRUE(gate.should_drop(3));
}

TEST(FaultGate, BernoulliRateTracksProbability) {
  FaultGate gate(des::RngStream(11, 0, 8));
  gate.add_drop(-1, 0.25);
  int dropped = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    if (gate.should_drop(0)) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultDescribe, MentionsTypeAndWindow) {
  const auto f = FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s,dur=500ms");
  const std::string d = f.describe();
  EXPECT_NE(d.find("daemon_stall"), std::string::npos) << d;
  EXPECT_NE(d.find('0'), std::string::npos) << d;
}

// ---- Integration: each fault type produces its observable signature. ----

TEST(FaultSimulation, SampleDropReducesDeliveryAndCountsDrops) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse("sample_drop:node=all,start=0,dur=2s,p=0.5");
  const auto rf = run_simulation(c);
  auto h = quick_now(2, 1);
  const auto rh = run_simulation(h);

  EXPECT_GT(rf.samples_dropped, 0u);
  EXPECT_LT(rf.samples_delivered, rh.samples_delivered);
  ASSERT_EQ(rf.fault_outcomes.size(), 1u);
  EXPECT_TRUE(rf.fault_outcomes[0].injected);
  // Roughly half the healthy volume survives (generous band).
  const auto delivered = static_cast<double>(rf.samples_delivered);
  const auto healthy = static_cast<double>(rh.samples_delivered);
  EXPECT_GT(delivered, 0.35 * healthy);
  EXPECT_LT(delivered, 0.65 * healthy);
}

TEST(FaultSimulation, DaemonCrashLosesBufferedSamples) {
  auto c = quick_now(1, 8);  // batching so the daemon holds state to lose
  c.pipe_capacity = 64;
  // Two crashes so the destroyed pending batches cannot hide inside one
  // batch's worth of end-of-run in-flight slack.
  c.faults = FaultPlan::parse(
      "daemon_crash:daemon=0,start=600ms,dur=200ms;daemon_crash:daemon=0,start=1200ms,dur=200ms");
  const auto rf = run_simulation(c);

  EXPECT_GT(rf.samples_dropped, 0u);  // in-memory batches destroyed
  // Dropped samples are really gone: they are not also counted delivered.
  EXPECT_LE(rf.samples_delivered + rf.samples_dropped, rf.samples_generated);
  // The daemon restarts: delivery resumes after both windows.
  EXPECT_GT(rf.samples_delivered, 100u);
}

TEST(FaultSimulation, LinkSlowdownStretchesLatencyThenRecovers) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse("link_slow:start=500ms,dur=1s,factor=32");
  const auto rf = run_simulation(c);
  const auto rh = run_simulation(quick_now(2, 1));

  EXPECT_GT(rf.latency_us.max(), rh.latency_us.max());
  // The window ends inside the run, so delivery continues afterwards.
  EXPECT_GT(rf.samples_delivered, 0.5 * static_cast<double>(rh.samples_delivered));
}

TEST(FaultSimulation, PipeBackpressureThrottlesProducer) {
  // Stall the daemon mid-run in both configurations; the clamped pipe
  // buffers 1 sample during the stall where the healthy pipe buffers 8,
  // so the producer blocks earlier and generates strictly less.
  auto base = quick_now(1, 1);
  base.pipe_capacity = 8;
  base.faults = FaultPlan::parse("daemon_stall:daemon=0,start=500ms,dur=500ms");
  auto clamped = base;
  clamped.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=500ms;"
      "pipe_backpressure:daemon=0,start=0,dur=2s,capacity=1");
  const auto rf = run_simulation(clamped);
  const auto rh = run_simulation(base);

  EXPECT_LT(rf.samples_generated, rh.samples_generated);
  ASSERT_EQ(rf.fault_outcomes.size(), 2u);
  EXPECT_TRUE(rf.fault_outcomes[1].injected);
}

// ---- Overlap normalization: same-target windows compose predictably. ----

TEST(FaultOverlap, SameTargetStallsExtendToMaxDeadline) {
  // Two overlapping stalls on the same daemon behave as their union: the
  // daemon stays stalled until the later deadline, then delivery resumes.
  auto c = quick_now(1, 1);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=400ms;"
      "daemon_stall:daemon=0,start=700ms,dur=400ms");
  const auto r = run_simulation(c);
  ASSERT_EQ(r.fault_outcomes.size(), 2u);
  EXPECT_TRUE(r.fault_outcomes[0].injected);
  EXPECT_TRUE(r.fault_outcomes[1].injected);
  // The first window's end (900 ms) must not wake the daemon early: the
  // run delivers the same as a single union-window stall.
  auto u = quick_now(1, 1);
  u.faults = FaultPlan::parse("daemon_stall:daemon=0,start=500ms,dur=600ms");
  const auto ru = run_simulation(u);
  EXPECT_EQ(r.samples_delivered, ru.samples_delivered);
  EXPECT_DOUBLE_EQ(r.latency_us.max(), ru.latency_us.max());
}

TEST(FaultOverlap, SlowdownFactorsMultiply) {
  // Two fully-overlapping x4 slowdowns == one x16 slowdown over the same
  // window: the composed effective factor is the product.
  auto two = quick_now(2, 1);
  two.faults = FaultPlan::parse(
      "link_slow:start=500ms,dur=1s,factor=4;link_slow:start=500ms,dur=1s,factor=4");
  auto one = quick_now(2, 1);
  one.faults = FaultPlan::parse("link_slow:start=500ms,dur=1s,factor=16");
  const auto rt = run_simulation(two);
  const auto ro = run_simulation(one);
  EXPECT_DOUBLE_EQ(rt.latency_us.mean(), ro.latency_us.mean());
  EXPECT_DOUBLE_EQ(rt.latency_us.max(), ro.latency_us.max());
  EXPECT_EQ(rt.samples_delivered, ro.samples_delivered);
}

TEST(FaultOverlap, DeclarationOrderIsBehaviorNeutral) {
  // Reordering clauses must not change the modeled behavior (the
  // documented overlap contract): effects are commutative per target.
  auto fwd = quick_now(2, 1);
  fwd.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=400ms,dur=600ms;"
      "link_slow:start=600ms,dur=500ms,factor=4;"
      "pipe_backpressure:daemon=0,start=500ms,dur=800ms,capacity=2");
  auto rev = quick_now(2, 1);
  rev.faults = FaultPlan::parse(
      "pipe_backpressure:daemon=0,start=500ms,dur=800ms,capacity=2;"
      "link_slow:start=600ms,dur=500ms,factor=4;"
      "daemon_stall:daemon=0,start=400ms,dur=600ms");
  const auto rf = run_simulation(fwd);
  const auto rr = run_simulation(rev);
  EXPECT_EQ(rf.samples_generated, rr.samples_generated);
  EXPECT_EQ(rf.samples_delivered, rr.samples_delivered);
  EXPECT_DOUBLE_EQ(rf.latency_us.mean(), rr.latency_us.mean());
  EXPECT_DOUBLE_EQ(rf.pd_cpu_time_per_node_us, rr.pd_cpu_time_per_node_us);
}

TEST(FaultOverlap, NestedPipeClampsTakeTheMin) {
  // An inner capacity=1 clamp nested in an outer capacity=4 window must win
  // while it is active: the stalled pipe holds 1 sample instead of 4, so
  // fewer samples are generated; reverting the inner clamp afterwards
  // restores the outer one.  The inner window opens before the stall so the
  // pipe is already tight when delivery stops.
  auto nested = quick_now(1, 1);
  nested.pipe_capacity = 8;
  nested.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=1s;"
      "pipe_backpressure:daemon=0,start=0,dur=2s,capacity=4;"
      "pipe_backpressure:daemon=0,start=400ms,dur=1200ms,capacity=1");
  auto outer_only = quick_now(1, 1);
  outer_only.pipe_capacity = 8;
  outer_only.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=1s;"
      "pipe_backpressure:daemon=0,start=0,dur=2s,capacity=4");
  const auto rn = run_simulation(nested);
  const auto ro = run_simulation(outer_only);
  EXPECT_LT(rn.samples_generated, ro.samples_generated);
}

TEST(FaultPlanValidate, ZeroLengthWindowRejected) {
  const auto plan = FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=0");
  EXPECT_THROW(plan.validate(1, 1, 2e6, 16), std::invalid_argument);
  // A zero *drawn* duration is clamped at resolve time instead.
  auto st = FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=uniform:0:0.5");
  des::Pcg32 rng = des::RngStream(3, 0, kFaultWindowRngTag);
  st.resolve(rng, stats::SamplerBackend::Ziggurat);
  EXPECT_GE(st.faults[0].duration_us, 1.0);
}

// ---- Cascading faults: topology-aware secondary link degradation. ----

TEST(FaultCascade, StallPropagatesToNeighborsAndAppendsInducedOutcomes) {
  auto c = quick_now(4, 1);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=500ms,dur=1s,cascade=1,cascade_delay=50ms,cascade_factor=8");
  const auto r = run_simulation(c);
  // p = 1 on a direct chain: both neighbors (daemons 0 and 2) are hit, so
  // two induced rows are appended after the plan's single row.
  ASSERT_EQ(r.fault_outcomes.size(), 3u);
  EXPECT_EQ(r.fault_outcomes[0].cascaded_from, -1);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(r.fault_outcomes[i].cascaded_from, 0);
    EXPECT_EQ(r.fault_outcomes[i].spec.type, FaultType::LinkSlowdown);
    EXPECT_TRUE(r.fault_outcomes[i].injected);
    EXPECT_DOUBLE_EQ(r.fault_outcomes[i].spec.magnitude, 8.0);
    // Induced windows open at the hop delay and close with the parent.
    EXPECT_DOUBLE_EQ(r.fault_outcomes[i].spec.start_us, 550'000.0);
    EXPECT_DOUBLE_EQ(r.fault_outcomes[i].spec.end_us(), 1'500'000.0);
  }
  // The degraded neighbor uplinks stretch delivery latency beyond the
  // stall-only run.
  auto nc = quick_now(4, 1);
  nc.faults = FaultPlan::parse("daemon_stall:daemon=1,start=500ms,dur=1s");
  const auto rn = run_simulation(nc);
  ASSERT_EQ(rn.fault_outcomes.size(), 1u);
  EXPECT_GT(r.latency_us.mean(), rn.latency_us.mean());
}

TEST(FaultCascade, CascadeRunsAreDeterministic) {
  auto c = quick_now(4, 1);
  c.faults = FaultPlan::parse(
      "daemon_crash:daemon=0,start=400ms,dur=800ms,cascade=0.5,cascade_hops=2");
  const auto a = run_simulation(c);
  const auto b = run_simulation(c);
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t i = 0; i < a.fault_outcomes.size(); ++i) {
    EXPECT_EQ(a.fault_outcomes[i].cascaded_from, b.fault_outcomes[i].cascaded_from);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[i].spec.start_us, b.fault_outcomes[i].spec.start_us);
  }
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
}

TEST(FaultSimulation, FaultRunsAreDeterministic) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse(
      "sample_drop:node=all,start=250ms,dur=1s,p=0.3;link_slow:start=1s,dur=500ms,factor=4");
  const auto a = run_simulation(c);
  const auto b = run_simulation(c);
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
}

TEST(FaultSimulation, FaultFreeStreamsUntouchedByFaultMachinery) {
  // A plan whose windows never cover any node must reproduce the healthy
  // run bit-for-bit: the fault RNG stream is dedicated, and no model
  // stream advances differently because faults exist.
  auto c = quick_now(2, 1);
  const auto rh = run_simulation(c);
  c.faults = FaultPlan::parse("sample_drop:node=1,start=1s,dur=1ms,p=1e-9");
  const auto rf = run_simulation(c);
  EXPECT_EQ(rf.samples_generated, rh.samples_generated);
  EXPECT_DOUBLE_EQ(rf.latency_us.mean(), rh.latency_us.mean());
  EXPECT_DOUBLE_EQ(rf.app_cpu_time_per_node_us, rh.app_cpu_time_per_node_us);
}

TEST(FaultSimulation, AdaptiveThrottleSlowsSamplingUnderBudget) {
  auto c = quick_now(2, 1);
  c.sampling_period_us = 2'000.0;  // aggressive sampling -> perturbation
  c.adaptive_throttle.enabled = true;
  c.adaptive_throttle.perturbation_budget_pct = 0.5;  // tight budget
  const auto rt = run_simulation(c);
  auto h = quick_now(2, 1);
  h.sampling_period_us = 2'000.0;
  const auto rh = run_simulation(h);

  EXPECT_GT(rt.max_throttle_factor, 1.0);
  EXPECT_GT(rt.throttle_adjustments, 0u);
  EXPECT_LT(rt.samples_generated, rh.samples_generated);
}

TEST(FaultSimulation, ThrottleDisabledByDefault) {
  const auto r = run_simulation(quick_now(1, 1));
  EXPECT_DOUBLE_EQ(r.max_throttle_factor, 1.0);
  EXPECT_EQ(r.throttle_adjustments, 0u);
  EXPECT_TRUE(r.throttle_factors.empty());
}

}  // namespace
}  // namespace paradyn::rocc
