// Unit and integration tests of the fault/perturbation injection
// subsystem: spec parsing, plan validation, the sample-drop gate, and the
// observable effect of each fault type on an assembled simulation.
#include "rocc/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rocc/simulation.hpp"

namespace paradyn::rocc {
namespace {

SystemConfig quick_now(std::int32_t nodes, std::int32_t batch) {
  auto c = SystemConfig::now(nodes);
  c.batch_size = batch;
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  return c;
}

TEST(FaultSpecParse, DaemonStallWithUnits) {
  const auto f = FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s,dur=500ms");
  EXPECT_EQ(f.type, FaultType::DaemonStall);
  EXPECT_EQ(f.target, 0);
  EXPECT_DOUBLE_EQ(f.start_us, 1e6);
  EXPECT_DOUBLE_EQ(f.duration_us, 5e5);
  EXPECT_DOUBLE_EQ(f.end_us(), 1.5e6);
}

TEST(FaultSpecParse, BareNumbersAreMicroseconds) {
  const auto f = FaultPlan::parse_spec("daemon_crash:daemon=1,start=250000,dur=125us");
  EXPECT_EQ(f.type, FaultType::DaemonCrash);
  EXPECT_DOUBLE_EQ(f.start_us, 250'000.0);
  EXPECT_DOUBLE_EQ(f.duration_us, 125.0);
}

TEST(FaultSpecParse, LinkSlowFactorAndAllTargets) {
  const auto f = FaultPlan::parse_spec("link_slow:start=2s,dur=1s,factor=8");
  EXPECT_EQ(f.type, FaultType::LinkSlowdown);
  EXPECT_DOUBLE_EQ(f.magnitude, 8.0);

  const auto d = FaultPlan::parse_spec("sample_drop:node=all,start=1s,dur=2s,p=0.25");
  EXPECT_EQ(d.type, FaultType::SampleDrop);
  EXPECT_EQ(d.target, -1);
  EXPECT_DOUBLE_EQ(d.magnitude, 0.25);

  const auto b = FaultPlan::parse_spec("pipe_backpressure:daemon=0,start=1s,dur=1s,capacity=2");
  EXPECT_EQ(b.type, FaultType::PipeBackpressure);
  EXPECT_DOUBLE_EQ(b.magnitude, 2.0);
}

TEST(FaultSpecParse, SemicolonJoinsSpecs) {
  const auto plan =
      FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=100ms;link_slow:start=0,dur=1s,factor=2");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].type, FaultType::DaemonStall);
  EXPECT_EQ(plan.faults[1].type, FaultType::LinkSlowdown);
}

TEST(FaultSpecParse, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse_spec(""), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("bogus_type:start=0,dur=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall"), std::invalid_argument);
  // Missing required start/dur.
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s"),
               std::invalid_argument);
  // Unknown key and unparsable value.
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:start=1s,dur=1s,frobnicate=3"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse_spec("daemon_stall:daemon=x,start=1s,dur=1s"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(""), std::invalid_argument);
}

TEST(FaultPlanValidate, WindowAndTargetChecks) {
  FaultPlan plan;
  FaultSpec f;
  f.type = FaultType::DaemonStall;
  f.target = 0;
  f.start_us = 1e6;
  f.duration_us = 1e5;
  plan.faults = {f};
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));

  // Start at/after sim end can never fire.
  plan.faults[0].start_us = 2e6;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  // Degenerate window.
  plan.faults[0].start_us = 0.0;
  plan.faults[0].duration_us = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  // Daemon target out of range; and no daemons at all when
  // instrumentation is disabled.
  plan.faults[0].duration_us = 1e5;
  plan.faults[0].target = 2;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].target = 0;
  EXPECT_THROW(plan.validate(0, 2, 2e6, 16), std::invalid_argument);

  // sample_drop: p must be in (0, 1], node must exist.
  plan.faults[0].type = FaultType::SampleDrop;
  plan.faults[0].magnitude = 0.5;
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));
  plan.faults[0].magnitude = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 1.5;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 0.5;
  plan.faults[0].target = 7;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);

  // link_slow: factor >= 1.
  plan.faults[0] = f;
  plan.faults[0].type = FaultType::LinkSlowdown;
  plan.faults[0].magnitude = 0.5;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);

  // pipe_backpressure: clamped capacity in [1, pipe_capacity).
  plan.faults[0].type = FaultType::PipeBackpressure;
  plan.faults[0].magnitude = 16.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 0.0;
  EXPECT_THROW(plan.validate(2, 2, 2e6, 16), std::invalid_argument);
  plan.faults[0].magnitude = 2.0;
  EXPECT_NO_THROW(plan.validate(2, 2, 2e6, 16));
}

TEST(FaultPlan, SchedulePointsInDeclarationOrder) {
  const auto plan = FaultPlan::parse(
      "daemon_stall:daemon=0,start=1s,dur=100ms;link_slow:start=500ms,dur=1s,factor=2");
  const auto pts = plan.schedule_points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0], 1e6);
  EXPECT_DOUBLE_EQ(pts[1], 1.1e6);
  EXPECT_DOUBLE_EQ(pts[2], 5e5);
  EXPECT_DOUBLE_EQ(pts[3], 1.5e6);
}

TEST(FaultGate, DrawsOnlyInsideWindowsAndRespectsTarget) {
  FaultGate gate(des::RngStream(7, 0, 8));
  EXPECT_FALSE(gate.active());

  gate.add_drop(/*node=*/1, /*probability=*/1.0);
  EXPECT_TRUE(gate.active());
  EXPECT_TRUE(gate.should_drop(1));
  EXPECT_FALSE(gate.should_drop(0));  // other node untouched

  gate.remove_drop(1, 1.0);
  EXPECT_FALSE(gate.active());

  // node -1 covers everyone.
  gate.add_drop(-1, 1.0);
  EXPECT_TRUE(gate.should_drop(0));
  EXPECT_TRUE(gate.should_drop(3));
}

TEST(FaultGate, BernoulliRateTracksProbability) {
  FaultGate gate(des::RngStream(11, 0, 8));
  gate.add_drop(-1, 0.25);
  int dropped = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    if (gate.should_drop(0)) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultDescribe, MentionsTypeAndWindow) {
  const auto f = FaultPlan::parse_spec("daemon_stall:daemon=0,start=1s,dur=500ms");
  const std::string d = f.describe();
  EXPECT_NE(d.find("daemon_stall"), std::string::npos) << d;
  EXPECT_NE(d.find('0'), std::string::npos) << d;
}

// ---- Integration: each fault type produces its observable signature. ----

TEST(FaultSimulation, SampleDropReducesDeliveryAndCountsDrops) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse("sample_drop:node=all,start=0,dur=2s,p=0.5");
  const auto rf = run_simulation(c);
  auto h = quick_now(2, 1);
  const auto rh = run_simulation(h);

  EXPECT_GT(rf.samples_dropped, 0u);
  EXPECT_LT(rf.samples_delivered, rh.samples_delivered);
  ASSERT_EQ(rf.fault_outcomes.size(), 1u);
  EXPECT_TRUE(rf.fault_outcomes[0].injected);
  // Roughly half the healthy volume survives (generous band).
  const auto delivered = static_cast<double>(rf.samples_delivered);
  const auto healthy = static_cast<double>(rh.samples_delivered);
  EXPECT_GT(delivered, 0.35 * healthy);
  EXPECT_LT(delivered, 0.65 * healthy);
}

TEST(FaultSimulation, DaemonCrashLosesBufferedSamples) {
  auto c = quick_now(1, 8);  // batching so the daemon holds state to lose
  c.pipe_capacity = 64;
  // Two crashes so the destroyed pending batches cannot hide inside one
  // batch's worth of end-of-run in-flight slack.
  c.faults = FaultPlan::parse(
      "daemon_crash:daemon=0,start=600ms,dur=200ms;daemon_crash:daemon=0,start=1200ms,dur=200ms");
  const auto rf = run_simulation(c);

  EXPECT_GT(rf.samples_dropped, 0u);  // in-memory batches destroyed
  // Dropped samples are really gone: they are not also counted delivered.
  EXPECT_LE(rf.samples_delivered + rf.samples_dropped, rf.samples_generated);
  // The daemon restarts: delivery resumes after both windows.
  EXPECT_GT(rf.samples_delivered, 100u);
}

TEST(FaultSimulation, LinkSlowdownStretchesLatencyThenRecovers) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse("link_slow:start=500ms,dur=1s,factor=32");
  const auto rf = run_simulation(c);
  const auto rh = run_simulation(quick_now(2, 1));

  EXPECT_GT(rf.latency_us.max(), rh.latency_us.max());
  // The window ends inside the run, so delivery continues afterwards.
  EXPECT_GT(rf.samples_delivered, 0.5 * static_cast<double>(rh.samples_delivered));
}

TEST(FaultSimulation, PipeBackpressureThrottlesProducer) {
  // Stall the daemon mid-run in both configurations; the clamped pipe
  // buffers 1 sample during the stall where the healthy pipe buffers 8,
  // so the producer blocks earlier and generates strictly less.
  auto base = quick_now(1, 1);
  base.pipe_capacity = 8;
  base.faults = FaultPlan::parse("daemon_stall:daemon=0,start=500ms,dur=500ms");
  auto clamped = base;
  clamped.faults = FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=500ms;"
      "pipe_backpressure:daemon=0,start=0,dur=2s,capacity=1");
  const auto rf = run_simulation(clamped);
  const auto rh = run_simulation(base);

  EXPECT_LT(rf.samples_generated, rh.samples_generated);
  ASSERT_EQ(rf.fault_outcomes.size(), 2u);
  EXPECT_TRUE(rf.fault_outcomes[1].injected);
}

TEST(FaultSimulation, FaultRunsAreDeterministic) {
  auto c = quick_now(2, 1);
  c.faults = FaultPlan::parse(
      "sample_drop:node=all,start=250ms,dur=1s,p=0.3;link_slow:start=1s,dur=500ms,factor=4");
  const auto a = run_simulation(c);
  const auto b = run_simulation(c);
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
}

TEST(FaultSimulation, FaultFreeStreamsUntouchedByFaultMachinery) {
  // A plan whose windows never cover any node must reproduce the healthy
  // run bit-for-bit: the fault RNG stream is dedicated, and no model
  // stream advances differently because faults exist.
  auto c = quick_now(2, 1);
  const auto rh = run_simulation(c);
  c.faults = FaultPlan::parse("sample_drop:node=1,start=1s,dur=1ms,p=1e-9");
  const auto rf = run_simulation(c);
  EXPECT_EQ(rf.samples_generated, rh.samples_generated);
  EXPECT_DOUBLE_EQ(rf.latency_us.mean(), rh.latency_us.mean());
  EXPECT_DOUBLE_EQ(rf.app_cpu_time_per_node_us, rh.app_cpu_time_per_node_us);
}

TEST(FaultSimulation, AdaptiveThrottleSlowsSamplingUnderBudget) {
  auto c = quick_now(2, 1);
  c.sampling_period_us = 2'000.0;  // aggressive sampling -> perturbation
  c.adaptive_throttle.enabled = true;
  c.adaptive_throttle.perturbation_budget_pct = 0.5;  // tight budget
  const auto rt = run_simulation(c);
  auto h = quick_now(2, 1);
  h.sampling_period_us = 2'000.0;
  const auto rh = run_simulation(h);

  EXPECT_GT(rt.max_throttle_factor, 1.0);
  EXPECT_GT(rt.throttle_adjustments, 0u);
  EXPECT_LT(rt.samples_generated, rh.samples_generated);
}

TEST(FaultSimulation, ThrottleDisabledByDefault) {
  const auto r = run_simulation(quick_now(1, 1));
  EXPECT_DOUBLE_EQ(r.max_throttle_factor, 1.0);
  EXPECT_EQ(r.throttle_adjustments, 0u);
  EXPECT_TRUE(r.throttle_factors.empty());
}

}  // namespace
}  // namespace paradyn::rocc
