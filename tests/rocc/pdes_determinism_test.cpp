// Shard-count-invariance differential suite for the partitioned (PDES) ROCC
// engine.
//
// The load-bearing property: for every supported flavor grid — plain,
// batching + warm-up, all four fault types, stochastic windows, cascades,
// detection + repair, adaptive throttle, binary-tree forwarding — running
// with `--shards N` is *bit-identical* to `--shards 1`.  Identity is checked
// three ways: field-by-field on SimulationResult, string equality of the
// serialized --report-json results array, and (for traces) multiset equality
// of every recorded model event.  The suite also pins the des-layer edge
// cases the conservative window depends on: events exactly at a window
// horizon, cancellation handles used after the owner shard advanced, and the
// config validations that reject un-shardable couplings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "consultant/fault_detector.hpp"
#include "des/shard.hpp"
#include "experiments/report_json.hpp"
#include "experiments/shard_executor.hpp"
#include "experiments/thread_pool.hpp"
#include "obs/trace.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::rocc {
namespace {

// ---------------------------------------------------------------------------
// Result identity helpers
// ---------------------------------------------------------------------------

std::string result_json(const SimulationResult& r) {
  std::ostringstream os;
  experiments::write_result_json(os, r);
  return os.str();
}

/// Bit-identity across every field the report serializes, plus the direct
/// doubles JSON could in principle round.
void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(result_json(a), result_json(b));
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.batches_delivered, b.batches_delivered);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_DOUBLE_EQ(a.latency_us.max(), b.latency_us.max());
  EXPECT_DOUBLE_EQ(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.pvmd_cpu_time_per_node_us, b.pvmd_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.other_cpu_time_per_node_us, b.other_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.main_cpu_time_us, b.main_cpu_time_us);
  EXPECT_DOUBLE_EQ(a.network_util_pct, b.network_util_pct);
  EXPECT_EQ(a.latency_series_us, b.latency_series_us);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t n = 0; n < a.per_node.size(); ++n) {
    SCOPED_TRACE("node " + std::to_string(n));
    EXPECT_DOUBLE_EQ(a.per_node[n].app_cpu_us, b.per_node[n].app_cpu_us);
    EXPECT_DOUBLE_EQ(a.per_node[n].pd_cpu_us, b.per_node[n].pd_cpu_us);
    EXPECT_DOUBLE_EQ(a.per_node[n].pvmd_cpu_us, b.per_node[n].pvmd_cpu_us);
    EXPECT_DOUBLE_EQ(a.per_node[n].other_cpu_us, b.per_node[n].other_cpu_us);
    EXPECT_DOUBLE_EQ(a.per_node[n].main_cpu_us, b.per_node[n].main_cpu_us);
  }
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t f = 0; f < a.fault_outcomes.size(); ++f) {
    SCOPED_TRACE("fault " + std::to_string(f));
    EXPECT_EQ(a.fault_outcomes[f].injected, b.fault_outcomes[f].injected);
    EXPECT_EQ(a.fault_outcomes[f].cascaded_from, b.fault_outcomes[f].cascaded_from);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[f].spec.start_us, b.fault_outcomes[f].spec.start_us);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[f].spec.duration_us, b.fault_outcomes[f].spec.duration_us);
  }
  EXPECT_EQ(a.throttle_factors, b.throttle_factors);
  EXPECT_DOUBLE_EQ(a.max_throttle_factor, b.max_throttle_factor);
  EXPECT_EQ(a.throttle_adjustments, b.throttle_adjustments);
}

SimulationResult run_at_shards(SystemConfig c, std::int32_t shards) {
  c.shards = shards;
  Simulation sim(c);
  return sim.run();
}

/// Run the config at --shards 1 and at each count in `counts`, asserting
/// pairwise bit-identity against the 1-shard baseline.
void expect_shard_invariant(const SystemConfig& c, std::initializer_list<std::int32_t> counts) {
  const SimulationResult baseline = run_at_shards(c, 1);
  for (const std::int32_t n : counts) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    expect_bit_identical(baseline, run_at_shards(c, n));
  }
}

SystemConfig pdes_config(std::int32_t nodes) {
  auto c = SystemConfig::now(nodes);
  c.duration_us = 1e6;
  c.sampling_period_us = 10'000.0;
  c.uplink_latency_us = 500.0;  // lookahead
  return c;
}

// ---------------------------------------------------------------------------
// Flavor grids
// ---------------------------------------------------------------------------

TEST(PdesInvariance, PlainGrid) { expect_shard_invariant(pdes_config(8), {2, 4, 8}); }

TEST(PdesInvariance, BatchWarmupGrid) {
  auto c = pdes_config(8);
  c.batch_size = 32;
  c.warmup_us = 300'000.0;
  c.record_latency_series = true;
  expect_shard_invariant(c, {2, 4, 8});
}

TEST(PdesInvariance, FaultGridAllTypes) {
  auto c = pdes_config(4);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=200ms,dur=100ms;"
      "link_slow:start=400ms,dur=200ms,factor=4;"
      "sample_drop:node=all,start=600ms,dur=200ms,p=0.3;"
      "pipe_backpressure:daemon=0,start=100ms,dur=700ms,capacity=2");
  expect_shard_invariant(c, {2, 4});
}

TEST(PdesInvariance, FaultGridWithWarmup) {
  auto c = pdes_config(4);
  c.warmup_us = 150'000.0;
  c.batch_size = 16;
  c.faults = FaultPlan::parse(
      "daemon_crash:daemon=2,start=300ms,dur=200ms;"
      "sample_drop:node=1,start=200ms,dur=500ms,p=0.5");
  expect_shard_invariant(c, {2, 3, 4});
}

TEST(PdesInvariance, StochasticWindowGrid) {
  auto c = pdes_config(4);
  c.duration_us = 2e6;
  c.faults = FaultPlan::parse("daemon_stall:daemon=1,start=uniform:300ms:600ms,dur=exp:400ms");
  expect_shard_invariant(c, {2, 4});
}

TEST(PdesInvariance, CascadeGrid) {
  auto c = pdes_config(8);
  c.duration_us = 2e6;
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=3,start=300ms,dur=600ms,cascade=0.7,cascade_delay=50ms,"
      "cascade_hops=3");
  expect_shard_invariant(c, {2, 4, 8});
}

TEST(PdesInvariance, TreeTopologyGrid) {
  auto c = SystemConfig::mpp(8, ForwardingTopology::BinaryTree);
  c.duration_us = 1e6;
  c.sampling_period_us = 10'000.0;
  c.uplink_latency_us = 500.0;
  c.batch_size = 8;
  expect_shard_invariant(c, {2, 4, 8});
}

TEST(PdesInvariance, TreeTopologyFaultedGrid) {
  auto c = SystemConfig::mpp(8, ForwardingTopology::BinaryTree);
  c.duration_us = 1.5e6;
  c.sampling_period_us = 10'000.0;
  c.uplink_latency_us = 500.0;
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=300ms,dur=300ms,cascade=0.5,cascade_delay=40ms;"
      "link_slow:start=500ms,dur=400ms,factor=3");
  expect_shard_invariant(c, {2, 4, 8});
}

TEST(PdesInvariance, AdaptiveThrottleGrid) {
  auto c = pdes_config(4);
  c.adaptive_throttle.enabled = true;
  expect_shard_invariant(c, {2, 4});
}

TEST(PdesInvariance, DedicatedMainHostGrid) {
  auto c = pdes_config(4);
  c.main_on_dedicated_host = true;
  expect_shard_invariant(c, {2, 4});
}

// ---------------------------------------------------------------------------
// Detection + repair
// ---------------------------------------------------------------------------

SimulationResult run_with_harness(SystemConfig c, std::int32_t shards,
                                  const consultant::RepairPolicy* policy) {
  c.shards = shards;
  Simulation sim(c);
  auto harness = policy != nullptr
                     ? std::make_unique<consultant::DetectionHarness>(
                           sim, consultant::DetectorConfig{}, *policy)
                     : std::make_unique<consultant::DetectionHarness>(sim);
  SimulationResult r = sim.run();
  harness->finalize(r);
  return r;
}

void expect_repair_invariant(const SystemConfig& c, const consultant::RepairPolicy* policy,
                             std::initializer_list<std::int32_t> counts) {
  const SimulationResult baseline = run_with_harness(c, 1, policy);
  for (const std::int32_t n : counts) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    const SimulationResult r = run_with_harness(c, n, policy);
    expect_bit_identical(baseline, r);
    ASSERT_EQ(baseline.fault_outcomes.size(), r.fault_outcomes.size());
    for (std::size_t f = 0; f < baseline.fault_outcomes.size(); ++f) {
      SCOPED_TRACE("fault " + std::to_string(f));
      const auto& a = baseline.fault_outcomes[f];
      const auto& b = r.fault_outcomes[f];
      EXPECT_EQ(a.detected, b.detected);
      EXPECT_DOUBLE_EQ(a.detection_latency_us, b.detection_latency_us);
      EXPECT_DOUBLE_EQ(a.recovery_latency_us, b.recovery_latency_us);
      EXPECT_EQ(a.repair_attempts, b.repair_attempts);
      EXPECT_EQ(a.repaired, b.repaired);
      EXPECT_EQ(a.gave_up, b.gave_up);
      EXPECT_DOUBLE_EQ(a.time_to_repair_us, b.time_to_repair_us);
      EXPECT_DOUBLE_EQ(a.repair_backoff_us, b.repair_backoff_us);
    }
  }
}

TEST(PdesInvariance, DetectionGrid) {
  auto c = pdes_config(4);
  c.duration_us = 1.5e6;
  c.faults = FaultPlan::parse("daemon_stall:daemon=2,start=500ms,dur=300ms");
  expect_repair_invariant(c, nullptr, {2, 4});
}

TEST(PdesInvariance, RestartRepairGrid) {
  auto c = pdes_config(4);
  c.duration_us = 2e6;
  c.faults = FaultPlan::parse("daemon_crash:daemon=1,start=500ms,dur=1s");
  const auto policy = consultant::RepairPolicy::parse(
      "restart_daemon:timeout=50ms,max_retries=3,backoff=exp:20ms,jitter=0.3,success_p=0.5");
  expect_repair_invariant(c, &policy, {2, 4});
}

TEST(PdesInvariance, RerouteRepairGrid) {
  auto c = pdes_config(4);
  c.duration_us = 2e6;
  c.faults = FaultPlan::parse("link_slow:start=400ms,dur=1s,factor=6");
  const auto policy = consultant::RepairPolicy::parse(
      "reroute_link:timeout=40ms,max_retries=2,backoff=fixed:30ms,success_p=0.7,penalty=1.5");
  expect_repair_invariant(c, &policy, {2, 4});
}

TEST(PdesInvariance, ResetPipeRepairGrid) {
  auto c = pdes_config(4);
  c.duration_us = 2e6;
  c.faults = FaultPlan::parse("pipe_backpressure:daemon=1,start=300ms,dur=1200ms,capacity=1");
  const auto policy = consultant::RepairPolicy::parse(
      "reset_pipe:timeout=60ms,max_retries=3,backoff=fixed:25ms,success_p=0.6");
  expect_repair_invariant(c, &policy, {2, 4});
}

// ---------------------------------------------------------------------------
// Report-json / summary / executor identity
// ---------------------------------------------------------------------------

std::string report_doc(const SystemConfig& c, std::int32_t shards) {
  SystemConfig run_config = c;
  run_config.shards = shards;
  Simulation sim(run_config);
  const SimulationResult r = sim.run();
  obs::ReproStamp stamp;
  stamp.tool = "pdes_tests";
  stamp.config = run_config.summary();
  stamp.seed = run_config.seed;
  stamp.has_seed = true;
  std::ostringstream os;
  experiments::write_report_json(os, stamp, {r}, nullptr);
  return os.str();
}

TEST(PdesInvariance, ReportJsonDocumentsStringIdentical) {
  auto c = pdes_config(4);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=200ms,dur=100ms;"
      "sample_drop:node=all,start=500ms,dur=300ms,p=0.25");
  const std::string one = report_doc(c, 1);
  EXPECT_EQ(one, report_doc(c, 2));
  EXPECT_EQ(one, report_doc(c, 4));
}

TEST(PdesInvariance, SummaryExcludesShardCount) {
  auto a = pdes_config(4);
  auto b = pdes_config(4);
  a.shards = 1;
  b.shards = 4;
  EXPECT_EQ(a.summary(), b.summary());
  // ... but the partitioned stamp differs from the legacy one (the pdes
  // uplink suffix), so legacy report headers stay byte-identical.
  auto legacy = pdes_config(4);
  legacy.shards = 0;
  EXPECT_NE(a.summary(), legacy.summary());
}

TEST(PdesInvariance, PoolExecutorBitIdenticalToSerial) {
  auto c = pdes_config(8);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=200ms,dur=300ms;"
      "link_slow:start=300ms,dur=400ms,factor=4");
  c.shards = 4;

  Simulation serial(c);
  const SimulationResult a = serial.run();

  experiments::ThreadPool pool(4);
  Simulation pooled(c);
  pooled.set_shard_executor(experiments::shard_pool_executor(pool));
  const SimulationResult b = pooled.run();

  expect_bit_identical(a, b);
}

// The lane-bounded executor (roccsweep's oversubscription clamp) strides
// shards across a fixed number of threads; every lane count must reproduce
// the serial results bit-exactly, including lanes > shard count.
TEST(PdesInvariance, LaneBoundedExecutorBitIdenticalToSerial) {
  auto c = pdes_config(8);
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=200ms,dur=300ms;"
      "link_slow:start=300ms,dur=400ms,factor=4");
  c.shards = 4;

  Simulation serial(c);
  const SimulationResult a = serial.run();

  experiments::ThreadPool pool(4);
  for (const std::size_t lanes : {1u, 2u, 3u, 8u}) {
    Simulation pooled(c);
    pooled.set_shard_executor(experiments::shard_pool_executor(pool, lanes));
    const SimulationResult b = pooled.run();
    expect_bit_identical(a, b);
  }
}

// ---------------------------------------------------------------------------
// Trace invariance
// ---------------------------------------------------------------------------

struct FlatEvent {
  std::string category;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double arg0 = 0.0;
  double arg1 = 0.0;
  std::uint64_t id = 0;
  std::int32_t track = 0;
  int phase = 0;

  auto key() const {
    return std::tie(ts, track, category, name, phase, id, dur, arg0, arg1);
  }
  bool operator<(const FlatEvent& o) const { return key() < o.key(); }
  bool operator==(const FlatEvent& o) const { return key() == o.key(); }
};

/// Every retained model event, sorted canonically.  Engine bookkeeping
/// (category "des": per-event execution spans) is per-shard by construction
/// and excluded; everything else — CPU/network occupancy, daemon/main
/// activity, sample lifecycles, fault/repair markers — must be invariant.
std::vector<FlatEvent> flatten_traces(const obs::TraceRecorder& recorder) {
  std::vector<FlatEvent> out;
  recorder.for_each_event([&out](const obs::TraceEvent& e, std::int32_t) {
    if (std::strcmp(e.category, "des") == 0) return;
    FlatEvent f;
    f.category = e.category;
    f.name = e.name;
    f.ts = e.ts_us;
    f.dur = e.dur_us;
    f.arg0 = e.arg0;
    f.arg1 = e.arg1;
    f.id = e.id;
    f.track = e.track;
    f.phase = static_cast<int>(e.phase);
    out.push_back(std::move(f));
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PdesInvariance, TracedModelEventsIdenticalAcrossShardCounts) {
  auto c = pdes_config(4);
  c.duration_us = 400'000.0;
  c.faults = FaultPlan::parse("daemon_stall:daemon=1,start=100ms,dur=100ms");

  std::vector<std::vector<FlatEvent>> flats;
  for (const std::int32_t shards : {1, 2, 4}) {
    SystemConfig run_config = c;
    run_config.shards = shards;
    obs::TraceRecorder recorder(1u << 20);
    Simulation sim(run_config);
    sim.set_trace_recorder(recorder);
    (void)sim.run();
    ASSERT_EQ(recorder.dropped(), 0u) << "ring too small for a fair comparison";
    flats.push_back(flatten_traces(recorder));
  }
  ASSERT_FALSE(flats[0].empty());
  EXPECT_EQ(flats[0], flats[1]);
  EXPECT_EQ(flats[0], flats[2]);
}

TEST(PdesInvariance, TracingDoesNotChangeResults) {
  // Trace events must be recorded from within existing events, never by
  // scheduling new ones: attaching a recorder cannot move the clock.
  auto c = pdes_config(4);
  c.faults = FaultPlan::parse("link_slow:start=200ms,dur=300ms,factor=4");
  c.shards = 2;

  Simulation plain(c);
  const SimulationResult a = plain.run();

  obs::TraceRecorder recorder(1u << 20);
  Simulation traced(c);
  traced.set_trace_recorder(recorder);
  const SimulationResult b = traced.run();

  expect_bit_identical(a, b);
}

TEST(PdesInvariance, SetTracerRejectedWhenPartitioned) {
  auto c = pdes_config(4);
  c.shards = 2;
  Simulation sim(c);
  obs::TraceRecorder recorder;
  obs::Tracer tracer = recorder.create_tracer("x");
  EXPECT_THROW(sim.set_tracer(&tracer), std::logic_error);
}

// ---------------------------------------------------------------------------
// Config validation: couplings the conservative window cannot express
// ---------------------------------------------------------------------------

TEST(PdesValidation, ZeroLookaheadRejectedWithClearError) {
  auto c = SystemConfig::now(4);
  c.shards = 2;
  c.uplink_latency_us = 0.0;
  try {
    Simulation sim(c);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos) << e.what();
  }
}

TEST(PdesValidation, ShardsBeyondNodesRejected) {
  auto c = pdes_config(4);
  c.shards = 5;
  EXPECT_THROW(Simulation sim(c), std::invalid_argument);
}

TEST(PdesValidation, SmpRejected) {
  auto c = SystemConfig::smp(4, 8, 1);
  c.shards = 2;
  c.uplink_latency_us = 500.0;
  EXPECT_THROW(Simulation sim(c), std::invalid_argument);
}

TEST(PdesValidation, BarrierRejected) {
  auto c = pdes_config(4);
  c.shards = 2;
  c.barrier_period_us = 50'000.0;
  EXPECT_THROW(Simulation sim(c), std::invalid_argument);
}

TEST(PdesValidation, GlobalAdaptiveSamplingRejected) {
  auto c = pdes_config(4);
  c.shards = 2;
  c.adaptive.enabled = true;
  EXPECT_THROW(Simulation sim(c), std::invalid_argument);
}

TEST(PdesValidation, MetricsProbesRejectedWhenPartitioned) {
  auto c = pdes_config(4);
  c.shards = 2;
  Simulation sim(c);
  obs::MetricsRegistry registry;
  EXPECT_THROW(sim.enable_metrics(registry, 1000.0), std::logic_error);
}

// ---------------------------------------------------------------------------
// des-layer shard edge cases
// ---------------------------------------------------------------------------

TEST(ShardSetEdge, EventExactlyAtWindowHorizonRunsInNextWindow) {
  // An event scheduled exactly at a window horizon belongs to the *next*
  // window: cross-shard messages for that instant must be injected first.
  des::ShardSetConfig sc;
  sc.shards = 2;
  sc.window_us = 100.0;
  sc.duration_us = 250.0;
  des::ShardSet set(sc);

  std::vector<std::pair<double, int>> order;
  // Local event on shard 1 exactly at the first horizon...
  set.engine(1).schedule_at(100.0, [&] { order.emplace_back(100.0, 1); });
  // ...and a cross-shard message due at the same instant, posted from a
  // shard-0 event inside window 0 (lookahead = one full window).
  set.engine(0).schedule_at(0.0, [&] {
    set.post(0, 1, 100.0, /*sender_key=*/7, [&] { order.emplace_back(100.0, 2); });
  });
  set.run();

  // Injection order: locally-scheduled events at a timestamp run before
  // same-timestamp injections (insertion order within the destination
  // queue), a shard-count-invariant rule.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<double, int>{100.0, 1}));
  EXPECT_EQ(order[1], (std::pair<double, int>{100.0, 2}));
}

TEST(ShardSetEdge, PostBeforeHorizonThrows) {
  des::ShardSetConfig sc;
  sc.shards = 2;
  sc.window_us = 100.0;
  sc.duration_us = 200.0;
  des::ShardSet set(sc);
  bool threw = false;
  set.engine(0).schedule_at(50.0, [&] {
    try {
      set.post(0, 1, 99.0, 0, [] {});  // inside the executing window
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  set.run();
  EXPECT_TRUE(threw);
}

TEST(ShardSetEdge, CancelHandleAfterOwnerShardAdvanced) {
  // A cancellation handle for an event on another shard, used after that
  // shard already executed (or passed) the event, must be a harmless no-op —
  // not slab corruption.
  des::ShardSetConfig sc;
  sc.shards = 2;
  sc.window_us = 100.0;
  sc.duration_us = 400.0;
  des::ShardSet set(sc);

  int fired = 0;
  int cancelled_fired = 0;
  // Owner shard 1: one event that will have fired by window 2, one late
  // event we cancel before its time arrives.
  auto fired_handle = set.engine(1).schedule_at(50.0, [&] { ++fired; });
  auto pending_handle = set.engine(1).schedule_at(350.0, [&] { ++cancelled_fired; });
  // Shard 0, two windows later: both handles' cancel must be safe — the
  // first is stale (event already executed), the second still pending.
  set.engine(0).schedule_at(250.0, [&] {
    set.engine(1).cancel(fired_handle);    // stale: no-op
    set.engine(1).cancel(pending_handle);  // live: prevents the callback
  });
  set.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cancelled_fired, 0);
}

TEST(ShardSetEdge, CheckpointFiresExactlyAtWarmup) {
  des::ShardSetConfig sc;
  sc.shards = 2;
  sc.window_us = 64.0;
  sc.warmup_us = 160.0;  // interior to a window: forces a split boundary
  sc.duration_us = 320.0;
  des::ShardSet set(sc);
  std::vector<double> checkpoints;
  set.run([&](des::SimTime t) { checkpoints.push_back(t); });
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_DOUBLE_EQ(checkpoints[0], 160.0);
  EXPECT_DOUBLE_EQ(set.engine(0).now(), 320.0);
  EXPECT_DOUBLE_EQ(set.engine(1).now(), 320.0);
}

// ---------------------------------------------------------------------------
// Legacy paths stay deterministic
// ---------------------------------------------------------------------------

TEST(PdesLegacy, UplinkLatencyDeterministicAtShardsZero) {
  // The modeled uplink delivery delay is new in this change; the legacy
  // single-engine path must stay run-to-run deterministic with it on.
  auto c = SystemConfig::now(4);
  c.duration_us = 1e6;
  c.sampling_period_us = 10'000.0;
  c.uplink_latency_us = 500.0;
  c.shards = 0;
  expect_bit_identical(run_simulation(c), run_simulation(c));
}

TEST(PdesLegacy, ShardsZeroWithoutUplinkMatchesHistoricalShape) {
  // Sanity: uplink = 0 keeps the historical synchronous hand-off — samples
  // still flow and nothing partitioned is engaged.
  auto c = SystemConfig::now(2);
  c.duration_us = 200'000.0;
  c.sampling_period_us = 10'000.0;
  const auto r = run_simulation(c);
  EXPECT_GT(r.samples_delivered, 0u);
}

}  // namespace
}  // namespace paradyn::rocc
