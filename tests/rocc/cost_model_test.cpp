// Tests of the adaptive cost model (Paradyn's dynamic cost model,
// reference [12]): the controller must throttle the sampling rate when the
// IS exceeds its overhead budget, speed up when far under it, stay inside
// its period bounds, and remain stable at an admissible operating point.
#include "rocc/cost_model.hpp"

#include <gtest/gtest.h>

#include "rocc/simulation.hpp"

namespace paradyn::rocc {
namespace {

SystemConfig adaptive_config(double budget_pct, double initial_period_us) {
  auto c = SystemConfig::now(4);
  c.duration_us = 10e6;
  c.sampling_period_us = initial_period_us;
  c.adaptive.enabled = true;
  c.adaptive.overhead_budget_pct = budget_pct;
  c.adaptive.adjust_interval_us = 250'000.0;
  c.adaptive.min_period_us = 500.0;
  c.adaptive.max_period_us = 500'000.0;
  c.main_on_dedicated_host = false;
  return c;
}

TEST(CostModel, ThrottlesWhenOverBudget) {
  // 1 ms sampling on 4 nodes blows a 1% budget; the controller must grow
  // the period substantially and cut the IS's total CPU consumption
  // relative to the unregulated run.  (Measured overhead can stay elevated
  // for a while after convergence: the serialized main process still
  // drains the early flood's backlog — queued work the regulator cannot
  // undo, only stop adding to.)
  auto adaptive = adaptive_config(1.0, 1'000.0);
  auto fixed = adaptive;
  fixed.adaptive.enabled = false;
  const auto ra = run_simulation(adaptive);
  const auto rf = run_simulation(fixed);

  EXPECT_GT(ra.final_sampling_period_us, 10'000.0);
  ASSERT_FALSE(ra.cost_adjustments.empty());
  // The period trajectory is non-decreasing while over budget.
  EXPECT_GE(ra.cost_adjustments.back().new_period_us,
            ra.cost_adjustments.front().new_period_us);
  // Regulation cuts the sample volume and the direct IS cost by a lot.
  EXPECT_LT(static_cast<double>(ra.samples_generated),
            0.3 * static_cast<double>(rf.samples_generated));
  EXPECT_LT(ra.pd_cpu_time_per_node_us, 0.5 * rf.pd_cpu_time_per_node_us);
  // And the application gets the CPU back.
  EXPECT_GT(ra.app_cpu_util_pct, rf.app_cpu_util_pct);
}

TEST(CostModel, SpeedsUpWhenUnderBudget) {
  // 200 ms sampling under a generous 20% budget: the controller should walk
  // the period down toward the minimum.
  auto c = adaptive_config(20.0, 200'000.0);
  const auto r = run_simulation(c);
  EXPECT_LT(r.final_sampling_period_us, 50'000.0);
}

TEST(CostModel, RespectsPeriodBounds) {
  // Impossible budget: even the max period cannot get under 0.0001%; the
  // controller must stop at the bound, not run away.
  auto c = adaptive_config(0.0001, 1'000.0);
  const auto r = run_simulation(c);
  EXPECT_LE(r.final_sampling_period_us, c.adaptive.max_period_us + 1e-9);
  // And a huge budget pins at the minimum.
  auto fast = adaptive_config(95.0, 100'000.0);
  const auto rf = run_simulation(fast);
  EXPECT_GE(rf.final_sampling_period_us, fast.adaptive.min_period_us - 1e-9);
}

TEST(CostModel, AdjustmentLogIsComplete) {
  auto c = adaptive_config(1.0, 10'000.0);
  const auto r = run_simulation(c);
  // 10 s run / 250 ms interval = ~40 adjustments.
  EXPECT_NEAR(static_cast<double>(r.cost_adjustments.size()), 40.0, 2.0);
  for (const auto& adj : r.cost_adjustments) {
    EXPECT_GE(adj.observed_overhead_pct, 0.0);
    EXPECT_GE(adj.new_period_us, c.adaptive.min_period_us);
    EXPECT_LE(adj.new_period_us, c.adaptive.max_period_us);
  }
}

TEST(CostModel, DisabledMeansNoController) {
  auto c = adaptive_config(1.0, 10'000.0);
  c.adaptive.enabled = false;
  const auto r = run_simulation(c);
  EXPECT_DOUBLE_EQ(r.final_sampling_period_us, 0.0);
  EXPECT_TRUE(r.cost_adjustments.empty());
}

TEST(CostModel, ControllerValidation) {
  des::Engine engine;
  CpuResource cpu(engine, 1, 10'000.0);
  const std::vector<const CpuResource*> cpus{&cpu};
  AdaptiveSamplingConfig cfg;
  cfg.enabled = true;

  auto bad = cfg;
  bad.overhead_budget_pct = 0.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  bad = cfg;
  bad.adjust_interval_us = 0.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  bad = cfg;
  bad.min_period_us = 0.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  bad = cfg;
  bad.max_period_us = bad.min_period_us / 2.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  bad = cfg;
  bad.grow = 1.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  bad = cfg;
  bad.shrink = 1.0;
  EXPECT_THROW(SamplingController(engine, bad, 1'000.0, cpus, 1.0), std::invalid_argument);
  EXPECT_THROW(SamplingController(engine, cfg, 1'000.0, {}, 1.0), std::invalid_argument);
}

TEST(CostModel, InitialPeriodClampedIntoBounds) {
  des::Engine engine;
  CpuResource cpu(engine, 1, 10'000.0);
  AdaptiveSamplingConfig cfg;
  cfg.min_period_us = 5'000.0;
  cfg.max_period_us = 50'000.0;
  SamplingController low(engine, cfg, 1.0, {&cpu}, 1.0);
  EXPECT_DOUBLE_EQ(low.current_period_us(), 5'000.0);
  SamplingController high(engine, cfg, 1e9, {&cpu}, 1.0);
  EXPECT_DOUBLE_EQ(high.current_period_us(), 50'000.0);
}

}  // namespace
}  // namespace paradyn::rocc
