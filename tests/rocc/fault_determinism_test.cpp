// Differential determinism suite for fault schedules.
//
// The fault plan is compiled into ordinary (time, seq) events, so the
// proof obligations are: (1) a faulted replication set is bit-identical
// for every --jobs value, with and without a detection harness attached;
// (2) the fault schedule's event pattern pops identically from the
// calendar EventQueue and the reference binary heap (the template of
// tests/des/event_queue_diff_test.cpp, replayed with fault windows).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "consultant/fault_detector.hpp"
#include "des/event_queue.hpp"
#include "des/heap_event_queue.hpp"
#include "experiments/runner.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::rocc {
namespace {

SystemConfig faulted_config() {
  auto c = SystemConfig::now(4);
  c.duration_us = 1e6;
  c.sampling_period_us = 10'000.0;
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=200ms,dur=100ms;"
      "link_slow:start=400ms,dur=200ms,factor=4;"
      "sample_drop:node=all,start=600ms,dur=200ms,p=0.3;"
      "pipe_backpressure:daemon=0,start=100ms,dur=700ms,capacity=2");
  return c;
}

void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_DOUBLE_EQ(a.latency_us.max(), b.latency_us.max());
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.main_cpu_time_us, b.main_cpu_time_us);
}

TEST(FaultDeterminism, ReplicationSetBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 4;
  const auto c = faulted_config();
  const experiments::ReplicationSet serial(c, kReps, /*jobs=*/1);
  const experiments::ReplicationSet parallel(c, kReps, /*jobs=*/4);
  ASSERT_EQ(serial.results().size(), kReps);
  ASSERT_EQ(parallel.results().size(), kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial.results()[i], parallel.results()[i]);
  }
}

std::vector<SimulationResult> run_with_detection_at_jobs(const SystemConfig& c,
                                                         std::size_t reps, std::size_t jobs) {
  std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
  std::mutex mu;
  const experiments::RunHook hook = [&](Simulation& sim, std::size_t, std::size_t rep) {
    auto h = std::make_unique<consultant::DetectionHarness>(sim);
    const std::lock_guard<std::mutex> lock(mu);
    harnesses[rep] = std::move(h);
  };
  const experiments::ReplicationSet set(c, reps, jobs, hook);
  std::vector<SimulationResult> results = set.results();
  for (std::size_t i = 0; i < reps; ++i) harnesses[i]->finalize(results[i]);
  return results;
}

TEST(FaultDeterminism, DetectionLatenciesBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 3;
  auto c = SystemConfig::now(2);
  c.duration_us = 1.5e6;
  c.sampling_period_us = 10'000.0;
  c.faults = FaultPlan::parse("daemon_stall:daemon=0,start=500ms,dur=300ms");

  const auto serial = run_with_detection_at_jobs(c, kReps, 1);
  const auto parallel = run_with_detection_at_jobs(c, kReps, 4);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
    ASSERT_EQ(serial[i].fault_outcomes.size(), 1u);
    ASSERT_EQ(parallel[i].fault_outcomes.size(), 1u);
    EXPECT_EQ(serial[i].fault_outcomes[0].detected, parallel[i].fault_outcomes[0].detected);
    EXPECT_DOUBLE_EQ(serial[i].fault_outcomes[0].detection_latency_us,
                     parallel[i].fault_outcomes[0].detection_latency_us);
    EXPECT_DOUBLE_EQ(serial[i].fault_outcomes[0].recovery_latency_us,
                     parallel[i].fault_outcomes[0].recovery_latency_us);
  }
}

std::vector<SimulationResult> run_with_repair_at_jobs(const SystemConfig& c,
                                                      const consultant::RepairPolicy& policy,
                                                      std::size_t reps, std::size_t jobs) {
  std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
  std::mutex mu;
  const experiments::RunHook hook = [&](Simulation& sim, std::size_t, std::size_t rep) {
    auto h = std::make_unique<consultant::DetectionHarness>(sim, consultant::DetectorConfig{},
                                                            policy);
    const std::lock_guard<std::mutex> lock(mu);
    harnesses[rep] = std::move(h);
  };
  const experiments::ReplicationSet set(c, reps, jobs, hook);
  std::vector<SimulationResult> results = set.results();
  for (std::size_t i = 0; i < reps; ++i) harnesses[i]->finalize(results[i]);
  return results;
}

TEST(FaultDeterminism, RepairPlansBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 3;
  auto c = SystemConfig::now(2);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  c.faults = FaultPlan::parse("daemon_crash:daemon=0,start=500ms,dur=1s");
  const auto policy = consultant::RepairPolicy::parse(
      "restart_daemon:timeout=50ms,max_retries=3,backoff=exp:20ms,jitter=0.3,success_p=0.5");

  const auto serial = run_with_repair_at_jobs(c, policy, kReps, 1);
  const auto parallel = run_with_repair_at_jobs(c, policy, kReps, 4);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
    ASSERT_EQ(serial[i].fault_outcomes.size(), 1u);
    const auto& a = serial[i].fault_outcomes[0];
    const auto& b = parallel[i].fault_outcomes[0];
    EXPECT_EQ(a.repair_attempts, b.repair_attempts);
    EXPECT_EQ(a.repaired, b.repaired);
    EXPECT_EQ(a.gave_up, b.gave_up);
    EXPECT_DOUBLE_EQ(a.time_to_repair_us, b.time_to_repair_us);
    EXPECT_DOUBLE_EQ(a.repair_backoff_us, b.repair_backoff_us);
  }
}

TEST(FaultDeterminism, StochasticCascadePlansBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 3;
  auto c = SystemConfig::now(4);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=uniform:300ms:600ms,dur=exp:400ms,cascade=0.7,"
      "cascade_delay=50ms");

  const auto serial = run_with_detection_at_jobs(c, kReps, 1);
  const auto parallel = run_with_detection_at_jobs(c, kReps, 4);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
    ASSERT_EQ(serial[i].fault_outcomes.size(), parallel[i].fault_outcomes.size());
    for (std::size_t f = 0; f < serial[i].fault_outcomes.size(); ++f) {
      EXPECT_DOUBLE_EQ(serial[i].fault_outcomes[f].spec.start_us,
                       parallel[i].fault_outcomes[f].spec.start_us);
      EXPECT_EQ(serial[i].fault_outcomes[f].cascaded_from,
                parallel[i].fault_outcomes[f].cascaded_from);
    }
  }
}

TEST(FaultDeterminism, SameConfigTwiceBitIdentical) {
  const auto c = faulted_config();
  const auto a = run_simulation(c);
  const auto b = run_simulation(c);
  expect_bit_identical(a, b);
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t i = 0; i < a.fault_outcomes.size(); ++i) {
    EXPECT_EQ(a.fault_outcomes[i].injected, b.fault_outcomes[i].injected);
  }
}

// ---- Queue-level differential replay of the fault schedule. ----

struct Popped {
  des::SimTime time = 0.0;
  std::uint64_t tag = 0;
  bool operator==(const Popped&) const = default;
};

/// Pushes the same timestamps into the calendar queue and the reference
/// heap, pops everything, and compares the full (time, tag) sequences.
class LockstepReplay {
 public:
  void push(des::SimTime t) {
    const std::uint64_t tag = next_tag_++;
    (void)calendar_.push(t, [this, t, tag] { calendar_out_.push_back({t, tag}); });
    (void)heap_.push(t, [this, t, tag] { heap_out_.push_back({t, tag}); });
  }

  void drain_and_compare() {
    while (true) {
      auto c = calendar_.pop();
      auto h = heap_.pop();
      ASSERT_EQ(c.has_value(), h.has_value());
      if (!c) break;
      calendar_.fire(*c);
      h->callback();
      ASSERT_EQ(calendar_out_.size(), heap_out_.size());
      ASSERT_EQ(calendar_out_.back(), heap_out_.back());
    }
    EXPECT_EQ(calendar_out_, heap_out_);
  }

 private:
  des::EventQueue calendar_;
  des::HeapEventQueue heap_;
  std::uint64_t next_tag_ = 0;
  std::vector<Popped> calendar_out_;
  std::vector<Popped> heap_out_;
};

TEST(FaultDeterminism, RepairEventPatternPopsIdenticallyFromBothQueues) {
  // The repair engine's event shape: detection fires inside a sampling
  // tick, attempt 1 resolves one timeout later, and each failed attempt
  // reschedules at backoff(k) + timeout — with ties against fault
  // boundaries and other attempts' resolutions.
  const auto plan = FaultPlan::parse(
      "daemon_crash:daemon=0,start=200ms,dur=800ms;"
      "daemon_stall:daemon=1,start=200ms,dur=800ms");

  LockstepReplay replay;
  for (const des::SimTime t : plan.schedule_points()) replay.push(t);
  for (double t = 0.0; t <= 1'000'000.0; t += 10'000.0) replay.push(t);
  // Two interleaved retry chains (timeout = 50 ms, exp backoff base 20 ms),
  // one starting on a tick boundary, one off-grid.
  for (const double detect : {250'000.0, 273'000.0}) {
    double at = detect;
    double backoff = 20'000.0;
    for (int attempt = 1; attempt <= 3; ++attempt) {
      at += 50'000.0;  // timeout window
      replay.push(at);
      at += backoff;
      backoff *= 2.0;
    }
  }
  // A repair completion colliding exactly with a fault boundary.
  replay.push(1'000'000.0);
  replay.drain_and_compare();
}

TEST(FaultDeterminism, SchedulePointsPopIdenticallyFromBothQueues) {
  // The exact event pattern Simulation compiles: every fault boundary,
  // interleaved with a periodic sampling tick — including boundaries that
  // collide with ticks and with each other (FIFO among equal times).
  const auto plan = FaultPlan::parse(
      "daemon_stall:daemon=0,start=200ms,dur=100ms;"
      "daemon_crash:daemon=1,start=200ms,dur=100ms;"  // same window: tie
      "link_slow:start=250ms,dur=250ms,factor=8;"
      "sample_drop:node=all,start=300ms,dur=100ms,p=0.5;"
      "pipe_backpressure:daemon=0,start=0,dur=500ms,capacity=1");

  LockstepReplay replay;
  for (const des::SimTime t : plan.schedule_points()) replay.push(t);
  // Sampling ticks every 10 ms across the horizon; several land exactly on
  // fault boundaries.
  for (double t = 0.0; t <= 500'000.0; t += 10'000.0) replay.push(t);
  // A second copy of the schedule points exercises FIFO among duplicates.
  for (const des::SimTime t : plan.schedule_points()) replay.push(t);
  replay.drain_and_compare();
}

}  // namespace
}  // namespace paradyn::rocc
