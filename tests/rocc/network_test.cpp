#include "rocc/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"

namespace paradyn::rocc {
namespace {

TEST(NetworkResource, SharedServerSerializesRequests) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  std::vector<des::SimTime> done;
  net.submit({100.0, ProcessClass::Application, -1, [&] { done.push_back(e.now()); }});
  net.submit({50.0, ProcessClass::ParadynDaemon, -1, [&] { done.push_back(e.now()); }});
  (void)e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 100.0);
  EXPECT_DOUBLE_EQ(done[1], 150.0);  // queued behind the first
}

TEST(NetworkResource, ContentionFreeRunsConcurrently) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::ContentionFree);
  std::vector<des::SimTime> done;
  net.submit({100.0, ProcessClass::Application, -1, [&] { done.push_back(e.now()); }});
  net.submit({50.0, ProcessClass::ParadynDaemon, -1, [&] { done.push_back(e.now()); }});
  (void)e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 50.0);   // pure delay: shorter finishes first
  EXPECT_DOUBLE_EQ(done[1], 100.0);
}

TEST(NetworkResource, BusyTimePerClass) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  net.submit({100.0, ProcessClass::Application, -1, nullptr});
  net.submit({50.0, ProcessClass::ParadynDaemon, -1, nullptr});
  net.submit({25.0, ProcessClass::ParadynDaemon, -1, nullptr});
  (void)e.run();
  EXPECT_DOUBLE_EQ(net.busy_time(ProcessClass::Application), 100.0);
  EXPECT_DOUBLE_EQ(net.busy_time(ProcessClass::ParadynDaemon), 75.0);
  EXPECT_DOUBLE_EQ(net.busy_time_total(), 175.0);
}

TEST(NetworkResource, FifoOrderPreserved) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.submit({10.0, ProcessClass::Application, -1, [&order, i] { order.push_back(i); }});
  }
  (void)e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(NetworkResource, ZeroDurationAllowed) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  bool done = false;
  net.submit({0.0, ProcessClass::Application, -1, [&] { done = true; }});
  (void)e.run();
  EXPECT_TRUE(done);
}

TEST(NetworkResource, NegativeDurationThrows) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  EXPECT_THROW(net.submit({-5.0, ProcessClass::Application, -1, nullptr}), std::invalid_argument);
}

TEST(NetworkResource, BacklogTracksSharedQueue) {
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  net.submit({10.0, ProcessClass::Application, -1, nullptr});
  net.submit({10.0, ProcessClass::Application, -1, nullptr});
  net.submit({10.0, ProcessClass::Application, -1, nullptr});
  EXPECT_EQ(net.backlog(), 3u);
  (void)e.run();
  EXPECT_EQ(net.backlog(), 0u);
}

TEST(NetworkResource, SubmitFromCompletionCallback) {
  // A daemon submits its next send from inside the previous completion.
  des::Engine e;
  NetworkResource net(e, NetworkContention::SharedSingleServer);
  des::SimTime second_done = -1.0;
  net.submit({10.0, ProcessClass::ParadynDaemon, -1, [&] {
                net.submit({20.0, ProcessClass::ParadynDaemon, -1, [&] { second_done = e.now(); }});
              }});
  (void)e.run();
  EXPECT_DOUBLE_EQ(second_done, 30.0);
}

}  // namespace
}  // namespace paradyn::rocc
