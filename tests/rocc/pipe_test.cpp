#include "rocc/pipe.hpp"

#include <gtest/gtest.h>

namespace paradyn::rocc {
namespace {

Sample make_sample(double t) { return Sample{t, 0, 0}; }

TEST(Pipe, ValidatesCapacity) {
  EXPECT_THROW(Pipe(0), std::invalid_argument);
  EXPECT_THROW(Pipe(-1), std::invalid_argument);
}

TEST(Pipe, FifoOrder) {
  Pipe p(4);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  auto a = p.try_get();
  auto b = p.try_get();
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->generated_at, 1.0);
  EXPECT_DOUBLE_EQ(b->generated_at, 2.0);
  EXPECT_FALSE(p.try_get().has_value());
}

TEST(Pipe, RejectsWhenFull) {
  Pipe p(2);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  EXPECT_TRUE(p.full());
  EXPECT_FALSE(p.try_put(make_sample(3.0)));
  EXPECT_EQ(p.total_accepted(), 2u);
  EXPECT_EQ(p.total_rejected(), 1u);
}

TEST(Pipe, DataCallbackFiresOncePerRegistration) {
  Pipe p(4);
  int fired = 0;
  p.notify_on_data([&] { ++fired; });
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  EXPECT_EQ(fired, 1);  // one-shot: not re-registered
}

TEST(Pipe, SpaceCallbackFiresAfterGet) {
  Pipe p(1);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  int fired = 0;
  p.notify_on_space([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  (void)p.try_get();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  (void)p.try_get();
  EXPECT_EQ(fired, 1);  // one-shot
}

TEST(Pipe, CallbackMayReRegisterItself) {
  Pipe p(4);
  int fired = 0;
  std::function<void()> again = [&] {
    ++fired;
    p.notify_on_data(again);
  };
  p.notify_on_data(again);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  EXPECT_EQ(fired, 2);
}

TEST(Pipe, CallbackMayConsumeTheSample) {
  // A daemon that drains synchronously from the data callback.
  Pipe p(2);
  int got = 0;
  std::function<void()> drain = [&] {
    while (p.try_get()) ++got;
    p.notify_on_data(drain);
  };
  p.notify_on_data(drain);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  EXPECT_EQ(got, 2);
  EXPECT_TRUE(p.empty());
}

TEST(Pipe, SizeTracking) {
  Pipe p(3);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.capacity(), 3);
  (void)p.try_put(make_sample(1.0));
  (void)p.try_put(make_sample(2.0));
  EXPECT_EQ(p.size(), 2u);
  (void)p.try_get();
  EXPECT_EQ(p.size(), 1u);
}

TEST(Pipe, BlockedProducerPattern) {
  // The exact sequence the app process uses: fill, block, drain, resume.
  Pipe p(1);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_FALSE(p.try_put(make_sample(2.0)));  // would block: register
  bool resumed = false;
  p.notify_on_space([&] {
    resumed = true;
    EXPECT_TRUE(p.try_put(make_sample(2.0)));
  });
  const auto s = p.try_get();
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(resumed);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.try_get()->generated_at, 2.0);
}

TEST(Pipe, CapacityLimitClampsWithoutEvictingBufferedSamples) {
  Pipe p(4);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_TRUE(p.try_put(make_sample(2.0)));
  EXPECT_TRUE(p.try_put(make_sample(3.0)));

  p.set_capacity_limit(1);
  EXPECT_EQ(p.effective_capacity(), 1);
  EXPECT_EQ(p.size(), 3u);  // already-buffered samples survive
  EXPECT_TRUE(p.full());
  EXPECT_FALSE(p.try_put(make_sample(4.0)));

  // Draining below the clamp still leaves the pipe full at size 1 ...
  (void)p.try_get();
  (void)p.try_get();
  EXPECT_TRUE(p.full());
  // ... and lifting the clamp restores the declared capacity.
  p.clear_capacity_limit();
  EXPECT_EQ(p.effective_capacity(), 4);
  EXPECT_FALSE(p.full());
  EXPECT_TRUE(p.try_put(make_sample(4.0)));
}

TEST(Pipe, LiftingCapacityLimitWakesBlockedProducer) {
  Pipe p(2);
  p.set_capacity_limit(1);
  EXPECT_TRUE(p.try_put(make_sample(1.0)));
  EXPECT_FALSE(p.try_put(make_sample(2.0)));  // clamped full: block
  bool resumed = false;
  p.notify_on_space([&] { resumed = true; });
  p.clear_capacity_limit();  // room appeared without a get
  EXPECT_TRUE(resumed);
}

TEST(Pipe, CapacityLimitRejectsNonPositive) {
  Pipe p(2);
  EXPECT_THROW(p.set_capacity_limit(0), std::invalid_argument);
  EXPECT_THROW(p.set_capacity_limit(-3), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::rocc
