#include "rocc/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"

namespace paradyn::rocc {
namespace {

TEST(CpuResource, ValidatesConstruction) {
  des::Engine e;
  EXPECT_THROW(CpuResource(e, 0, 10.0), std::invalid_argument);
  EXPECT_THROW(CpuResource(e, 1, 0.0), std::invalid_argument);
}

TEST(CpuResource, SingleRequestRunsToCompletion) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  des::SimTime done_at = -1.0;
  cpu.submit({500.0, ProcessClass::Application, [&] { done_at = e.now(); }});
  (void)e.run();
  EXPECT_DOUBLE_EQ(done_at, 500.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::Application), 500.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time_total(), 500.0);
}

TEST(CpuResource, FifoOrderWithinQuantum) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  std::vector<int> order;
  cpu.submit({100.0, ProcessClass::Application, [&] { order.push_back(1); }});
  cpu.submit({100.0, ProcessClass::ParadynDaemon, [&] { order.push_back(2); }});
  (void)e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::Application), 100.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::ParadynDaemon), 100.0);
}

TEST(CpuResource, RoundRobinPreemptsLongJobs) {
  // Long job (25ms) with quantum 10ms and a short job (1ms) arriving at t=0:
  // schedule is long[0,10], short[10,11], long[11,21], long[21,26].
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  des::SimTime long_done = -1.0;
  des::SimTime short_done = -1.0;
  cpu.submit({25'000.0, ProcessClass::Application, [&] { long_done = e.now(); }});
  cpu.submit({1'000.0, ProcessClass::ParadynDaemon, [&] { short_done = e.now(); }});
  (void)e.run();
  EXPECT_DOUBLE_EQ(short_done, 11'000.0);
  EXPECT_DOUBLE_EQ(long_done, 26'000.0);
}

TEST(CpuResource, ShortJobNotPreempted) {
  // A job shorter than the quantum runs in one slice.
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  des::SimTime done = -1.0;
  cpu.submit({9'999.0, ProcessClass::Application, [&] { done = e.now(); }});
  (void)e.run();
  EXPECT_DOUBLE_EQ(done, 9'999.0);
}

TEST(CpuResource, MultipleCpusServeInParallel) {
  des::Engine e;
  CpuResource cpu(e, 2, 10'000.0);
  std::vector<des::SimTime> done;
  for (int i = 0; i < 2; ++i) {
    cpu.submit({1'000.0, ProcessClass::Application, [&] { done.push_back(e.now()); }});
  }
  (void)e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1'000.0);
  EXPECT_DOUBLE_EQ(done[1], 1'000.0);  // concurrent, not serialized
}

TEST(CpuResource, ZeroLengthRequestCompletesImmediately) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  bool done = false;
  cpu.submit({0.0, ProcessClass::Application, [&] { done = true; }});
  (void)e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(cpu.busy_time_total(), 0.0);
}

TEST(CpuResource, NegativeDurationThrows) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  EXPECT_THROW(cpu.submit({-1.0, ProcessClass::Application, nullptr}), std::invalid_argument);
}

TEST(CpuResource, BusyTimeConservation) {
  // Total busy time equals total demand regardless of preemption pattern.
  des::Engine e;
  CpuResource cpu(e, 1, 3'000.0);
  double total_demand = 0.0;
  for (int i = 1; i <= 10; ++i) {
    const double d = i * 1'000.0;
    total_demand += d;
    cpu.submit({d, ProcessClass::Application, nullptr});
  }
  (void)e.run();
  EXPECT_DOUBLE_EQ(cpu.busy_time_total(), total_demand);
  EXPECT_DOUBLE_EQ(e.now(), total_demand);  // single CPU, work-conserving
}

TEST(CpuResource, FireAndForgetRequestsAllowed) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  cpu.submit({100.0, ProcessClass::Other, nullptr});
  (void)e.run();
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::Other), 100.0);
}

TEST(CpuResource, BacklogReflectsQueueAndService) {
  des::Engine e;
  CpuResource cpu(e, 1, 10'000.0);
  cpu.submit({100.0, ProcessClass::Application, nullptr});
  cpu.submit({100.0, ProcessClass::Application, nullptr});
  EXPECT_EQ(cpu.backlog(), 2u);  // one in service, one waiting
  (void)e.run();
  EXPECT_EQ(cpu.backlog(), 0u);
}

}  // namespace
}  // namespace paradyn::rocc
