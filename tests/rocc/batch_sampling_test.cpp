// Differential determinism suite for --batch-sampling prefill buffers.
//
// Proof obligations for the batched variate path (ISSUE 10):
//   (1) BufferedSampler refills exactly at block boundaries from its own
//       dedicated stream and never touches the entity stream;
//   (2) simulation results are bit-identical for every block size — the
//       consumed stream is a function of the configuration, not of how
//       many variates each refill precomputes;
//   (3) batched runs stay bit-identical across --jobs and --shards;
//   (4) fault / repair / throttle draws live on their own PR-6/7 tags, so
//       switching batching on cannot move the fault schedule (tag
//       isolation), and faulted batched runs are executor-invariant;
//   (5) event times produced by a buffered sampler pop identically from
//       the calendar EventQueue and the reference binary heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "consultant/fault_detector.hpp"
#include "des/event_queue.hpp"
#include "des/heap_event_queue.hpp"
#include "des/random.hpp"
#include "experiments/runner.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"
#include "stats/distributions.hpp"
#include "stats/variate_buffer.hpp"

namespace paradyn::rocc {
namespace {

// ---- BufferedSampler unit behavior. ----

stats::FrozenSampler exp_sampler(double mean) {
  return stats::FrozenSampler::compile(std::make_shared<stats::Exponential>(mean),
                                       stats::SamplerBackend::Ziggurat);
}

TEST(BufferedSampler, RefillsAtBlockBoundaryFromDedicatedStream) {
  constexpr std::uint32_t kBlock = 4;
  constexpr int kDraws = 11;  // crosses two refill boundaries mid-stream
  const stats::BatchSpec spec{/*seed=*/42, /*entity=*/7, /*site=*/64, kBlock};
  stats::BufferedSampler buffered(exp_sampler(100.0), spec);
  ASSERT_TRUE(buffered.buffered());

  des::RngStream entity_rng(42, 1);
  const std::uint64_t entity_state = entity_rng.raw_state();

  // Because fill() is bit-identical to sequential scalar draws, the k-th
  // buffered value must equal the k-th scalar draw off the dedicated
  // (seed, entity, site) stream regardless of where refills land.
  des::RngStream expected_rng(spec.seed, spec.entity, spec.site);
  const stats::FrozenSampler scalar = exp_sampler(100.0);
  for (int i = 0; i < kDraws; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(buffered(entity_rng), scalar(expected_rng));
  }
  // The entity stream is a pure pass-through parameter when buffering is
  // active: not a single u64 may be consumed from it.
  EXPECT_EQ(entity_rng.raw_state(), entity_state);
}

TEST(BufferedSampler, DisabledSpecPassesThroughToEntityStream) {
  stats::BufferedSampler plain(exp_sampler(100.0), stats::BatchSpec{});
  EXPECT_FALSE(plain.buffered());
  des::RngStream a(1, 2);
  des::RngStream b(1, 2);
  const stats::FrozenSampler scalar = exp_sampler(100.0);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(plain(a), scalar(b));
  EXPECT_EQ(a.raw_state(), b.raw_state());
}

TEST(BufferedSampler, DeterministicSamplerNeverBuffers) {
  // A constant draw has no stream to buffer; an enabled spec must not
  // make it consume (or even construct) a dedicated stream.
  const stats::BatchSpec spec{1, 2, 3, /*block=*/256};
  stats::BufferedSampler constant(
      stats::FrozenSampler::compile(std::make_shared<stats::Deterministic>(5.0),
                                    stats::SamplerBackend::Ziggurat),
      spec);
  EXPECT_FALSE(constant.buffered());
  des::RngStream rng(9, 9);
  const std::uint64_t state = rng.raw_state();
  EXPECT_EQ(constant(rng), 5.0);
  EXPECT_EQ(rng.raw_state(), state);
}

// ---- Simulation-level invariances. ----

void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
  EXPECT_DOUBLE_EQ(a.latency_us.max(), b.latency_us.max());
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.main_cpu_time_us, b.main_cpu_time_us);
}

SystemConfig batched_config(std::int32_t nodes, std::int32_t block) {
  auto c = SystemConfig::now(nodes);
  c.duration_us = 1e6;
  c.sampling_period_us = 10'000.0;
  c.batch.enabled = true;
  c.batch.block = block;
  return c;
}

TEST(BatchSampling, ResultsInvariantUnderBlockSize) {
  // The block size only decides how far ahead each site precomputes; the
  // consumed stream — and therefore every metric — must not move.  Block 1
  // is the degenerate buffer (refill every draw), 7 lands refills mid-
  // everything, 4096 outlives most sites' total demand.
  const SimulationResult baseline = run_simulation(batched_config(4, 256));
  for (const std::int32_t block : {1, 7, 4096}) {
    SCOPED_TRACE("block=" + std::to_string(block));
    expect_bit_identical(baseline, run_simulation(batched_config(4, block)));
  }
}

TEST(BatchSampling, ReplicationSetBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 4;
  const auto c = batched_config(4, 256);
  const experiments::ReplicationSet serial(c, kReps, /*jobs=*/1);
  const experiments::ReplicationSet parallel(c, kReps, /*jobs=*/4);
  ASSERT_EQ(serial.results().size(), kReps);
  ASSERT_EQ(parallel.results().size(), kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial.results()[i], parallel.results()[i]);
  }
}

TEST(BatchSampling, ShardCountInvariantWithBatchingOn) {
  auto c = batched_config(8, 64);
  c.uplink_latency_us = 500.0;  // conservative lookahead
  c.shards = 1;
  const SimulationResult baseline = [&] {
    Simulation sim(c);
    return sim.run();
  }();
  for (const std::int32_t shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto run = c;
    run.shards = shards;
    Simulation sim(run);
    expect_bit_identical(baseline, sim.run());
  }
}

// ---- Fault-tag isolation. ----

SystemConfig stochastic_fault_config() {
  auto c = SystemConfig::now(4);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  // Stochastic start/duration/cascade so the schedule actually consumes
  // the fault streams — a schedule of constants would pass vacuously.
  c.faults = FaultPlan::parse(
      "daemon_stall:daemon=1,start=uniform:300ms:600ms,dur=exp:400ms,cascade=0.7,"
      "cascade_delay=50ms;"
      "sample_drop:node=all,start=800ms,dur=300ms,p=0.3");
  return c;
}

TEST(BatchSampling, FaultScheduleUnmovedByBatching) {
  // Fault windows draw from dedicated (kTagFault*) streams that the prefill
  // buffers never touch, so the injected schedule must be bit-identical
  // with batching on and off even though workload draws move to new
  // streams (and the system-level metrics therefore differ).
  auto off = stochastic_fault_config();
  auto on = stochastic_fault_config();
  on.batch.enabled = true;
  on.batch.block = 256;
  const SimulationResult a = run_simulation(off);
  const SimulationResult b = run_simulation(on);
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t f = 0; f < a.fault_outcomes.size(); ++f) {
    SCOPED_TRACE(f);
    EXPECT_EQ(a.fault_outcomes[f].injected, b.fault_outcomes[f].injected);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[f].spec.start_us, b.fault_outcomes[f].spec.start_us);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[f].spec.duration_us,
                     b.fault_outcomes[f].spec.duration_us);
    EXPECT_EQ(a.fault_outcomes[f].cascaded_from, b.fault_outcomes[f].cascaded_from);
  }
}

std::vector<SimulationResult> run_with_detection_at_jobs(const SystemConfig& c,
                                                         std::size_t reps, std::size_t jobs) {
  std::vector<std::unique_ptr<consultant::DetectionHarness>> harnesses(reps);
  std::mutex mu;
  const experiments::RunHook hook = [&](Simulation& sim, std::size_t, std::size_t rep) {
    auto h = std::make_unique<consultant::DetectionHarness>(sim);
    const std::lock_guard<std::mutex> lock(mu);
    harnesses[rep] = std::move(h);
  };
  const experiments::ReplicationSet set(c, reps, jobs, hook);
  std::vector<SimulationResult> results = set.results();
  for (std::size_t i = 0; i < reps; ++i) harnesses[i]->finalize(results[i]);
  return results;
}

TEST(BatchSampling, FaultedBatchedDetectionBitIdenticalAcrossJobs) {
  constexpr std::size_t kReps = 3;
  auto c = SystemConfig::now(2);
  c.duration_us = 1.5e6;
  c.sampling_period_us = 10'000.0;
  c.batch.enabled = true;
  c.batch.block = 128;
  c.faults = FaultPlan::parse("daemon_stall:daemon=0,start=500ms,dur=300ms");

  const auto serial = run_with_detection_at_jobs(c, kReps, 1);
  const auto parallel = run_with_detection_at_jobs(c, kReps, 4);
  for (std::size_t i = 0; i < kReps; ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
    ASSERT_EQ(serial[i].fault_outcomes.size(), 1u);
    ASSERT_EQ(parallel[i].fault_outcomes.size(), 1u);
    EXPECT_EQ(serial[i].fault_outcomes[0].detected, parallel[i].fault_outcomes[0].detected);
    EXPECT_DOUBLE_EQ(serial[i].fault_outcomes[0].detection_latency_us,
                     parallel[i].fault_outcomes[0].detection_latency_us);
  }
}

// ---- Queue-level differential replay with buffered draw times. ----

struct Popped {
  des::SimTime time = 0.0;
  std::uint64_t tag = 0;
  bool operator==(const Popped&) const = default;
};

TEST(BatchSampling, BufferedEventTimesPopIdenticallyFromBothQueues) {
  // The exact hot shape batching accelerates: schedule-after deltas drawn
  // through a prefill buffer, pushed as absolute times, drained in order.
  // Both queue implementations must agree on the full (time, tag) order.
  const stats::BatchSpec spec{/*seed=*/9, /*entity=*/3, /*site=*/64, /*block=*/32};
  stats::BufferedSampler delta(exp_sampler(250.0), spec);
  des::RngStream rng(9, 1);

  des::EventQueue calendar;
  des::HeapEventQueue heap;
  std::vector<Popped> calendar_out;
  std::vector<Popped> heap_out;
  double now = 0.0;
  for (std::uint64_t tag = 0; tag < 500; ++tag) {
    now += delta(rng);
    const double t = now;
    (void)calendar.push(t, [&calendar_out, t, tag] { calendar_out.push_back({t, tag}); });
    (void)heap.push(t, [&heap_out, t, tag] { heap_out.push_back({t, tag}); });
  }
  while (true) {
    auto c = calendar.pop();
    auto h = heap.pop();
    ASSERT_EQ(c.has_value(), h.has_value());
    if (!c) break;
    calendar.fire(*c);
    h->callback();
  }
  EXPECT_EQ(calendar_out, heap_out);
}

}  // namespace
}  // namespace paradyn::rocc
