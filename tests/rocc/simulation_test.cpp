// Integration tests of the assembled ROCC model.
#include "rocc/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace paradyn::rocc {
namespace {

SystemConfig quick_now(std::int32_t nodes, std::int32_t batch) {
  auto c = SystemConfig::now(nodes);
  c.batch_size = batch;
  c.duration_us = 2e6;  // 2 simulated seconds
  c.sampling_period_us = 10'000.0;
  return c;
}

TEST(Simulation, DeterministicForSameSeed) {
  const auto a = run_simulation(quick_now(4, 1));
  const auto b = run_simulation(quick_now(4, 1));
  EXPECT_DOUBLE_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
  EXPECT_DOUBLE_EQ(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
}

TEST(Simulation, SeedChangesResults) {
  auto cfg = quick_now(4, 1);
  const auto a = run_simulation(cfg);
  cfg.seed = 999;
  const auto b = run_simulation(cfg);
  EXPECT_NE(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
}

TEST(Simulation, RunTwiceThrows) {
  Simulation sim(quick_now(2, 1));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Simulation, SampleAccountingUnderCf) {
  // 4 nodes x 1 app x (2s / 40ms) = ~200 samples generated; under light
  // load CF delivers nearly all of them (a handful remain in flight).
  auto c = quick_now(4, 1);
  c.sampling_period_us = 40'000.0;
  const auto r = run_simulation(c);
  EXPECT_NEAR(static_cast<double>(r.samples_generated), 200.0, 4.0);
  EXPECT_LE(r.samples_delivered, r.samples_generated);
  EXPECT_GT(static_cast<double>(r.samples_delivered),
            0.9 * static_cast<double>(r.samples_generated));
  // CF: one batch per sample.
  EXPECT_EQ(r.batches_delivered, r.samples_delivered);
}

TEST(Simulation, BatchAccountingUnderBf) {
  const auto r = run_simulation(quick_now(4, 16));
  EXPECT_GT(r.batches_delivered, 0u);
  EXPECT_EQ(r.samples_delivered, r.batches_delivered * 16u);
}

TEST(Simulation, HeadlineResultBfCutsPdOverhead) {
  // The paper's central claim: BF reduces direct Pd CPU overhead by >60%
  // at small sampling periods (one system call per batch instead of per
  // sample).
  auto cf = quick_now(4, 1);
  cf.sampling_period_us = 40'000.0;
  auto bf = quick_now(4, 32);
  bf.sampling_period_us = 40'000.0;
  const auto rcf = run_simulation(cf);
  const auto rbf = run_simulation(bf);
  EXPECT_LT(rbf.pd_cpu_time_per_node_us, 0.45 * rcf.pd_cpu_time_per_node_us);
}

TEST(Simulation, UninstrumentedHasNoIsActivity) {
  auto c = quick_now(4, 1);
  c.instrumentation_enabled = false;
  const auto r = run_simulation(c);
  EXPECT_DOUBLE_EQ(r.pd_cpu_time_per_node_us, 0.0);
  EXPECT_DOUBLE_EQ(r.main_cpu_time_us, 0.0);
  EXPECT_EQ(r.samples_generated, 0u);
  EXPECT_EQ(r.samples_delivered, 0u);
  EXPECT_GT(r.app_cpu_time_per_node_us, 0.0);
}

TEST(Simulation, InstrumentationPerturbsApplication) {
  // Direct + indirect IS overhead must cost the application CPU time.
  auto on = quick_now(4, 1);
  auto off = quick_now(4, 1);
  off.instrumentation_enabled = false;
  const auto ron = run_simulation(on);
  const auto roff = run_simulation(off);
  EXPECT_LT(ron.app_cpu_util_pct, roff.app_cpu_util_pct);
}

TEST(Simulation, UtilizationsWithinBounds) {
  const auto r = run_simulation(quick_now(4, 8));
  for (const double u : {r.app_cpu_util_pct, r.pd_cpu_util_pct, r.main_cpu_util_pct,
                         r.is_cpu_util_pct, r.pd_busy_share_pct}) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 100.0 + 1e-9);
  }
}

TEST(Simulation, LatencyPositiveAndFinite) {
  const auto r = run_simulation(quick_now(4, 1));
  ASSERT_GT(r.latency_us.count(), 0u);
  EXPECT_GT(r.latency_us.min(), 0.0);
  EXPECT_TRUE(std::isfinite(r.latency_us.mean()));
  // Monitoring latency is at least the minimum possible service demand.
  EXPECT_GT(r.latency_us.mean(), 10.0);
}

TEST(Simulation, ThroughputMatchesSamplingRateUnderLightLoad) {
  // 4 nodes x 25 samples/s = 100 samples/s offered.
  auto c = quick_now(4, 1);
  c.sampling_period_us = 40'000.0;
  const auto r = run_simulation(c);
  EXPECT_NEAR(r.throughput_samples_per_sec, 100.0, 8.0);
}

TEST(Simulation, TinyPipeBlocksApplication) {
  // Aggressive sampling into a 2-slot pipe on a contended CPU must block
  // the app: fewer samples generated than the timer rate, and lower app
  // CPU time than with a large pipe.
  auto small = quick_now(1, 1);
  small.sampling_period_us = 200.0;  // 5000 samples/s offered
  small.pipe_capacity = 2;
  auto big = small;
  big.pipe_capacity = 100'000;
  const auto rs = run_simulation(small);
  const auto rb = run_simulation(big);
  EXPECT_LT(rs.samples_generated, rb.samples_generated);
  EXPECT_LT(rs.app_cpu_time_per_node_us, rb.app_cpu_time_per_node_us);
}

TEST(Simulation, DedicatedMainHostRelievesNodeZero) {
  // Moving the main process to its own workstation (Figure 29 setup)
  // frees node CPU for the application.
  auto shared = quick_now(2, 1);
  auto dedicated = shared;
  dedicated.main_on_dedicated_host = true;
  const auto rs = run_simulation(shared);
  const auto rd = run_simulation(dedicated);
  EXPECT_GT(rd.app_cpu_util_pct, rs.app_cpu_util_pct);
  // The main process still consumes comparable CPU, just elsewhere.
  EXPECT_GT(rd.main_cpu_util_pct, 0.5 * rs.main_cpu_util_pct);
}

TEST(Simulation, MainProcessLoadScalesWithNodes) {
  // Unsaturated operating point: main demand is n * 25/s * 3.2ms.
  auto c2 = quick_now(2, 1);
  c2.sampling_period_us = 40'000.0;
  auto c8 = quick_now(8, 1);
  c8.sampling_period_us = 40'000.0;
  const auto r2 = run_simulation(c2);
  const auto r8 = run_simulation(c8);
  EXPECT_GT(r8.main_cpu_util_pct, 2.0 * r2.main_cpu_util_pct);
  EXPECT_LT(r8.main_cpu_util_pct, 100.0);
}

TEST(Simulation, BarrierReducesApplicationCpuUtilization) {
  auto no_barrier = quick_now(8, 32);
  auto with_barrier = no_barrier;
  with_barrier.barrier_period_us = 5'000.0;  // very frequent barriers
  const auto r0 = run_simulation(no_barrier);
  const auto r1 = run_simulation(with_barrier);
  EXPECT_EQ(r0.barrier_rounds, 0u);
  EXPECT_GT(r1.barrier_rounds, 10u);
  EXPECT_GT(r1.barrier_wait_us, 0.0);
  EXPECT_LT(r1.app_cpu_util_pct, r0.app_cpu_util_pct);
}

TEST(SimulationMpp, TreeDeliversAllSamplesAndCostsMergeCpu) {
  auto direct = SystemConfig::mpp(8, ForwardingTopology::Direct);
  direct.duration_us = 2e6;
  direct.sampling_period_us = 10'000.0;
  direct.batch_size = 4;
  auto tree = direct;
  tree.topology = ForwardingTopology::BinaryTree;

  const auto rd = run_simulation(direct);
  const auto rt = run_simulation(tree);

  EXPECT_GT(rt.samples_delivered, 0.9 * static_cast<double>(rd.samples_delivered));
  // Interior nodes pay merge CPU: tree forwarding costs more Pd CPU
  // (Figure 27's finding).
  EXPECT_GT(rt.pd_cpu_time_per_node_us, rd.pd_cpu_time_per_node_us);
  // Latency accumulates across hops: tree latency >= direct latency.
  EXPECT_GE(rt.latency_us.mean(), rd.latency_us.mean());
}

TEST(SimulationFault, DaemonStallBacksUpAndRecovers) {
  // Stall the only daemon for 0.5 s in the middle of a 2 s run: pipes fill
  // and the application blocks, then the backlog drains on resume.
  auto faulty = quick_now(1, 1);
  faulty.sampling_period_us = 10'000.0;
  faulty.pipe_capacity = 8;
  faulty.fault_daemon_stall = {0, 0.5e6, 0.5e6};
  auto healthy = quick_now(1, 1);
  healthy.sampling_period_us = 10'000.0;
  healthy.pipe_capacity = 8;

  const auto rf = run_simulation(faulty);
  const auto rh = run_simulation(healthy);

  // The stall suppresses sample generation (blocked producer) ...
  EXPECT_LT(rf.samples_generated, rh.samples_generated);
  // ... but the system recovers: post-stall samples are delivered, and
  // everything generated either arrived or is bounded in flight.
  EXPECT_GT(rf.samples_delivered, 100u);
  EXPECT_LE(rf.samples_generated - rf.samples_delivered, 16u);
  // Pd does strictly less work during the run.
  EXPECT_LT(rf.pd_cpu_time_per_node_us, rh.pd_cpu_time_per_node_us);
}

TEST(SimulationFault, StallValidation) {
  auto c = quick_now(1, 1);
  c.fault_daemon_stall = {0, -1.0, 1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fault_daemon_stall = {0, 1.0, -1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fault_daemon_stall = {-1, 0.0, 1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick_now(2, 1);
  c.fault_daemon_stall = {5, 0.0, 1.0};  // only 2 daemons exist
  // The daemon count is statically derivable from the architecture, so the
  // range check lives in validate() — not deferred to Simulation::build.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fault_daemon_stall = {1, 0.0, 1.0};
  EXPECT_NO_THROW(c.validate());
  // A stall that starts after the run ends can never fire.
  c.fault_daemon_stall = {0, c.duration_us, 1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // Zero duration means "no fault" and must not be range-checked.
  c.fault_daemon_stall = {99, 0.0, 0.0};
  EXPECT_NO_THROW(c.validate());
}

TEST(Simulation, LatencySeriesRecordedOnDemand) {
  auto off = quick_now(2, 1);
  const auto r_off = run_simulation(off);
  EXPECT_TRUE(r_off.latency_series_us.empty());

  auto on = off;
  on.record_latency_series = true;
  const auto r_on = run_simulation(on);
  ASSERT_EQ(r_on.latency_series_us.size(), r_on.samples_delivered);
  // Series must agree with the streaming summary.
  const auto s = stats::summarize(r_on.latency_series_us);
  EXPECT_NEAR(s.mean(), r_on.latency_us.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(s.max(), r_on.latency_us.max());
}

TEST(Simulation, PerNodeBreakdownSumsToTotals) {
  auto c = quick_now(4, 8);
  const auto r = run_simulation(c);
  ASSERT_EQ(r.per_node.size(), 4u);
  double app = 0.0;
  double pd = 0.0;
  double main = 0.0;
  for (const auto& nb : r.per_node) {
    app += nb.app_cpu_us;
    pd += nb.pd_cpu_us;
    main += nb.main_cpu_us;
  }
  EXPECT_NEAR(app / 4.0, r.app_cpu_time_per_node_us, 1e-6);
  EXPECT_NEAR(pd / 4.0, r.pd_cpu_time_per_node_us, 1e-6);
  EXPECT_NEAR(main, r.main_cpu_time_us, 1e-6);
  // Main runs on node 0 only (no dedicated host here).
  EXPECT_GT(r.per_node[0].main_cpu_us, 0.0);
  EXPECT_DOUBLE_EQ(r.per_node[1].main_cpu_us, 0.0);
}

TEST(Simulation, DedicatedHostAppearsAsExtraBreakdownEntry) {
  auto c = quick_now(2, 1);
  c.main_on_dedicated_host = true;
  const auto r = run_simulation(c);
  ASSERT_EQ(r.per_node.size(), 3u);  // 2 worker nodes + main host
  EXPECT_DOUBLE_EQ(r.per_node[0].main_cpu_us, 0.0);
  EXPECT_GT(r.per_node[2].main_cpu_us, 0.0);
  EXPECT_DOUBLE_EQ(r.per_node[2].app_cpu_us, 0.0);
}

TEST(Simulation, WarmupExcludedFromAccounting) {
  auto c = quick_now(2, 1);
  c.sampling_period_us = 40'000.0;
  auto warm = c;
  warm.warmup_us = 1e6;  // half of the 2 s run
  const auto r0 = run_simulation(c);
  const auto rw = run_simulation(warm);
  // The measurement window halves, so absolute CPU times roughly halve...
  EXPECT_NEAR(rw.app_cpu_time_per_node_us, 0.5 * r0.app_cpu_time_per_node_us,
              0.1 * r0.app_cpu_time_per_node_us);
  EXPECT_LT(rw.samples_generated, r0.samples_generated);
  // ... while rates/utilizations stay comparable (stationary workload).
  EXPECT_NEAR(rw.app_cpu_util_pct, r0.app_cpu_util_pct, 5.0);
  EXPECT_NEAR(rw.throughput_samples_per_sec, r0.throughput_samples_per_sec, 10.0);
  EXPECT_DOUBLE_EQ(rw.duration_us, 1e6);
}

TEST(Simulation, WarmupValidation) {
  auto c = quick_now(2, 1);
  c.warmup_us = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.warmup_us = c.duration_us;  // must be strictly inside the run
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Simulation, TracingModeEmitsOneSamplePerCycle) {
  auto c = quick_now(2, 1);
  c.instrumentation_mode = InstrumentationMode::Tracing;
  c.sampling_period_us = 40'000.0;  // only used for flush pacing in tracing
  const auto r = run_simulation(c);
  // Cycles take ~2.4 ms, so tracing yields ~400 events/s/node — far more
  // than 40 ms sampling would (25/s/node).
  EXPECT_GT(r.samples_generated, 1000u);
  EXPECT_GT(r.samples_delivered, 0u);
}

TEST(Simulation, TracingCostsMoreThanSampling) {
  // The overhead motivation for Paradyn's sampling-based IS (Section 2):
  // per-event tracing multiplies the data volume and the direct overhead.
  auto sampling = quick_now(2, 1);
  sampling.sampling_period_us = 40'000.0;
  auto tracing = sampling;
  tracing.instrumentation_mode = InstrumentationMode::Tracing;
  const auto rs = run_simulation(sampling);
  const auto rt = run_simulation(tracing);
  EXPECT_GT(rt.samples_generated, 5 * rs.samples_generated);
  EXPECT_GT(rt.pd_cpu_time_per_node_us, 2.0 * rs.pd_cpu_time_per_node_us);
}

TEST(Simulation, IoBlockingReducesResourceUsage) {
  auto base = quick_now(2, 1);
  auto blocked = base;
  blocked.app.io_block_probability = 0.5;
  blocked.app.io_block_duration = std::make_shared<stats::Exponential>(5'000.0);
  const auto r0 = run_simulation(base);
  const auto r1 = run_simulation(blocked);
  EXPECT_LT(r1.app_cpu_util_pct, r0.app_cpu_util_pct);
}

TEST(Simulation, IoBlockConfigValidated) {
  auto c = quick_now(2, 1);
  c.app.io_block_probability = 0.5;  // duration missing
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.app.io_block_probability = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimulationMpp, TreeFlushBoundsEnRouteStaleness) {
  // En-route merged samples may wait at most ~one sampling period per hop
  // for the local batch to fill (the daemon's flush timer), so monitoring
  // latency through a depth-d tree is bounded by ~d * (period + service).
  auto tree = SystemConfig::mpp(16, ForwardingTopology::BinaryTree);
  tree.duration_us = 5e6;
  tree.sampling_period_us = 40'000.0;
  tree.batch_size = 32;  // a batch takes 1.28 s to fill locally
  const auto r = run_simulation(tree);
  ASSERT_GT(r.latency_us.count(), 0u);
  // Depth of a 16-node heap tree is 4; allow generous service slack.
  EXPECT_LT(r.latency_us.mean(), 4.0 * 2.0 * tree.sampling_period_us);
  // Without the flush, latency would be dominated by the 1.28 s batch
  // fill per hop.
  EXPECT_LT(r.latency_us.mean(), 1.28e6);
}

TEST(SimulationSmp, SharedPoolRunsAndDeliverseSamples) {
  auto c = SystemConfig::smp(4, 4, 1);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  const auto r = run_simulation(c);
  EXPECT_GT(r.samples_delivered, 0u);
  EXPECT_GT(r.is_cpu_util_pct, 0.0);
}

TEST(SimulationSmp, MoreDaemonsHelpCfThroughputUnderLoad) {
  // Figure 21: under CF with many CPUs, a single serial daemon saturates;
  // adding daemons raises forwarding throughput.
  auto one = SystemConfig::smp(8, 8, 1);
  one.duration_us = 2e6;
  one.sampling_period_us = 500.0;  // heavy sample traffic
  one.batch_size = 1;
  auto four = one;
  four.daemons = 4;
  const auto r1 = run_simulation(one);
  const auto r4 = run_simulation(four);
  EXPECT_GT(r4.throughput_samples_per_sec, 1.2 * r1.throughput_samples_per_sec);
}

TEST(Simulation, ReplicationsVaryOnlyBySeed) {
  auto c = quick_now(2, 1);
  const auto results = run_replications(c, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0].app_cpu_time_per_node_us, results[1].app_cpu_time_per_node_us);
  // Re-running reproduces the same triple.
  const auto again = run_replications(c, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(results[i].app_cpu_time_per_node_us, again[i].app_cpu_time_per_node_us);
  }
}

// ------------------------------------------------------- property-style sweep

struct SweepCase {
  std::string name;
  Architecture arch;
  std::int32_t nodes;
  std::int32_t batch;
  ForwardingTopology topology;
};

class SimulationInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  static SystemConfig make(const SweepCase& p) {
    SystemConfig c = [&] {
      switch (p.arch) {
        case Architecture::Now:
          return SystemConfig::now(p.nodes);
        case Architecture::Smp:
          return SystemConfig::smp(p.nodes, p.nodes, 1);
        case Architecture::Mpp:
          return SystemConfig::mpp(p.nodes, p.topology);
      }
      return SystemConfig::now(p.nodes);
    }();
    c.batch_size = p.batch;
    c.duration_us = 1e6;
    c.sampling_period_us = 10'000.0;
    return c;
  }
};

TEST_P(SimulationInvariants, ConservationAndBounds) {
  const auto r = run_simulation(make(GetParam()));

  // Flow conservation: nothing is delivered that was not generated.
  EXPECT_LE(r.samples_delivered, r.samples_generated);
  // Batch integrity under direct forwarding: delivered samples arrive in
  // whole batches.  (Tree aggregation merges child samples into local
  // units, so delivered counts need not be batch multiples there.)
  if (GetParam().topology == ForwardingTopology::Direct) {
    if (GetParam().batch == 1) {
      EXPECT_EQ(r.batches_delivered, r.samples_delivered);
    } else {
      EXPECT_EQ(r.samples_delivered % static_cast<std::uint64_t>(GetParam().batch), 0u);
    }
  }
  // Latency recorded once per delivered sample.
  EXPECT_EQ(r.latency_us.count(), r.samples_delivered);
  if (r.samples_delivered > 0) {
    EXPECT_GT(r.latency_us.min(), 0.0);
  }

  // Utilization bounds.
  EXPECT_GE(r.app_cpu_util_pct, 0.0);
  EXPECT_LE(r.app_cpu_util_pct, 100.0 + 1e-9);
  EXPECT_GE(r.pd_cpu_util_pct, 0.0);
  EXPECT_LE(r.pd_cpu_util_pct, 100.0 + 1e-9);
  EXPECT_LE(r.app_cpu_util_pct + r.pd_cpu_util_pct, 100.0 + 1e-9);

  // CPU time identities.
  EXPECT_NEAR(r.app_cpu_util_pct, 100.0 * r.app_cpu_time_per_node_us / r.duration_us, 1e-6);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, InvariantsHoldForEverySeed) {
  auto c = quick_now(3, 8);
  c.seed = GetParam();
  const auto r = run_simulation(c);
  EXPECT_LE(r.samples_delivered, r.samples_generated);
  EXPECT_EQ(r.latency_us.count(), r.samples_delivered);
  EXPECT_GE(r.app_cpu_util_pct, 0.0);
  EXPECT_LE(r.app_cpu_util_pct + r.pd_cpu_util_pct, 100.0 + 1e-9);
  EXPECT_GT(r.samples_delivered, 0u);
  // Pd busy time is bounded below by the work actually delivered (collect
  // cost is part of every sample's path) and above by total capacity.
  EXPECT_GT(r.pd_cpu_time_per_node_us, 0.0);
  EXPECT_LT(r.pd_cpu_time_per_node_us, r.duration_us);
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 1234u, 99991u, 7777777u,
                                           0xDEADBEEFu, 0xFFFFFFFFFFFFFFFFull));

INSTANTIATE_TEST_SUITE_P(
    ArchitectureSweep, SimulationInvariants,
    ::testing::Values(SweepCase{"now_cf", Architecture::Now, 4, 1, ForwardingTopology::Direct},
                      SweepCase{"now_bf", Architecture::Now, 4, 16, ForwardingTopology::Direct},
                      SweepCase{"smp_cf", Architecture::Smp, 4, 1, ForwardingTopology::Direct},
                      SweepCase{"smp_bf", Architecture::Smp, 4, 16, ForwardingTopology::Direct},
                      SweepCase{"mpp_direct", Architecture::Mpp, 8, 8, ForwardingTopology::Direct},
                      SweepCase{"mpp_tree", Architecture::Mpp, 8, 8,
                                ForwardingTopology::BinaryTree}),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.name; });

}  // namespace
}  // namespace paradyn::rocc
