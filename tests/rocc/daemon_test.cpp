// Unit tests of ParadynDaemon against hand-built resources (no full
// Simulation): deterministic costs expose the exact collect/forward/merge
// accounting.
#include "rocc/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "des/engine.hpp"
#include "rocc/main_paradyn.hpp"

namespace paradyn::rocc {
namespace {

/// Fixture with one node CPU, a contention-free network, deterministic Pd
/// costs (collect 10, forward 20, net 5, merge 7), and a main process.
class DaemonFixture : public ::testing::Test {
 protected:
  DaemonFixture() {
    config_ = SystemConfig::now(1);
    config_.pd.collect_cpu = std::make_shared<stats::Deterministic>(10.0);
    config_.pd.forward_cpu = std::make_shared<stats::Deterministic>(20.0);
    config_.pd.net_occupancy = std::make_shared<stats::Deterministic>(5.0);
    config_.pd.merge_cpu = std::make_shared<stats::Deterministic>(7.0);
    config_.main_cpu = std::make_shared<stats::Deterministic>(1.0);
    config_.sampling_period_us = 1'000.0;

    cpu_ = std::make_unique<CpuResource>(engine_, 1, 10'000.0);
    net_ = std::make_unique<NetworkResource>(engine_, NetworkContention::ContentionFree);
    main_ = std::make_unique<MainParadyn>(engine_, config_, *cpu_, metrics_,
                                          des::RngStream(1, 0));
  }

  ParadynDaemon make_daemon(std::int32_t batch) {
    config_.batch_size = batch;
    return ParadynDaemon(engine_, config_, *cpu_, *net_, metrics_, des::RngStream(1, 2), 0);
  }

  Sample sample(double t = 0.0) { return Sample{t, 0, 0, 0.5, 0.1}; }

  SystemConfig config_;
  des::Engine engine_;
  MetricsCollector metrics_;
  std::unique_ptr<CpuResource> cpu_;
  std::unique_ptr<NetworkResource> net_;
  std::unique_ptr<MainParadyn> main_;
};

TEST_F(DaemonFixture, RequiresDestination) {
  auto daemon = make_daemon(1);
  EXPECT_THROW(daemon.start(), std::logic_error);
}

TEST_F(DaemonFixture, CfForwardsEachSampleIndividually) {
  auto daemon = make_daemon(1);
  Pipe pipe(16);
  daemon.attach_pipe(pipe);
  daemon.set_destination_main(*main_);
  daemon.start();

  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pipe.try_put(sample()));
  (void)engine_.run();

  EXPECT_EQ(daemon.samples_collected(), 5u);
  EXPECT_EQ(daemon.batches_forwarded(), 5u);
  EXPECT_EQ(main_->batches_received(), 5u);
  EXPECT_EQ(main_->samples_received(), 5u);
  // Deterministic Pd CPU: 5 * (collect 10 + forward 20) = 150.
  EXPECT_DOUBLE_EQ(cpu_->busy_time(ProcessClass::ParadynDaemon), 150.0);
  // Network: 5 forwards x 5 = 25.
  EXPECT_DOUBLE_EQ(net_->busy_time(ProcessClass::ParadynDaemon), 25.0);
}

TEST_F(DaemonFixture, BfAmortizesForwardCost) {
  auto daemon = make_daemon(5);
  Pipe pipe(16);
  daemon.attach_pipe(pipe);
  daemon.set_destination_main(*main_);
  daemon.start();

  for (int i = 0; i < 10; ++i) ASSERT_TRUE(pipe.try_put(sample()));
  (void)engine_.run();

  EXPECT_EQ(daemon.samples_collected(), 10u);
  EXPECT_EQ(daemon.batches_forwarded(), 2u);
  EXPECT_EQ(main_->samples_received(), 10u);
  // 10 collects + 2 forwards: 10*10 + 2*20 = 140.
  EXPECT_DOUBLE_EQ(cpu_->busy_time(ProcessClass::ParadynDaemon), 140.0);
  EXPECT_DOUBLE_EQ(net_->busy_time(ProcessClass::ParadynDaemon), 10.0);
}

TEST_F(DaemonFixture, PartialBatchWaitsForMoreSamples) {
  auto daemon = make_daemon(4);
  Pipe pipe(16);
  daemon.attach_pipe(pipe);
  daemon.set_destination_main(*main_);
  daemon.start();

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(pipe.try_put(sample()));
  (void)engine_.run();
  EXPECT_EQ(daemon.batches_forwarded(), 0u);  // 3 < 4: no forward yet
  EXPECT_EQ(daemon.samples_collected(), 3u);

  ASSERT_TRUE(pipe.try_put(sample()));
  (void)engine_.run();
  EXPECT_EQ(daemon.batches_forwarded(), 1u);
  EXPECT_EQ(main_->samples_received(), 4u);
}

TEST_F(DaemonFixture, LatencyExcludesBatchingWait) {
  // Two samples put far apart; the batch (size 2) forwards when the second
  // arrives.  Latency is measured from the forward start, not from the
  // first sample's generation.
  auto daemon = make_daemon(2);
  Pipe pipe(16);
  daemon.attach_pipe(pipe);
  daemon.set_destination_main(*main_);
  daemon.start();

  ASSERT_TRUE(pipe.try_put(sample(0.0)));
  (void)engine_.schedule_at(100'000.0, [&] { ASSERT_TRUE(pipe.try_put(sample(100'000.0))); });
  (void)engine_.run();

  ASSERT_EQ(metrics_.latency_us.count(), 2u);
  // Forward path: forward CPU 20 + net 5 = 25 (uncontended).
  EXPECT_DOUBLE_EQ(metrics_.latency_us.mean(), 25.0);
  EXPECT_LT(metrics_.latency_us.max(), 1'000.0);  // nowhere near the 100 ms gap
}

TEST_F(DaemonFixture, RoundRobinAcrossPipes) {
  auto daemon = make_daemon(1);
  Pipe pipe_a(4);
  Pipe pipe_b(4);
  daemon.attach_pipe(pipe_a);
  daemon.attach_pipe(pipe_b);
  daemon.set_destination_main(*main_);
  daemon.start();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipe_a.try_put(sample()));
    ASSERT_TRUE(pipe_b.try_put(sample()));
  }
  (void)engine_.run();
  EXPECT_EQ(daemon.samples_collected(), 6u);
  EXPECT_TRUE(pipe_a.empty());
  EXPECT_TRUE(pipe_b.empty());
}

TEST_F(DaemonFixture, TreeParentMergesChildBatches) {
  auto parent = make_daemon(1);
  Pipe parent_pipe(8);
  parent.attach_pipe(parent_pipe);
  parent.set_destination_main(*main_);
  parent.start();

  // A child batch arrives; it must NOT be forwarded standalone — it rides
  // the parent's next local forwarding unit.
  Batch child;
  child.forward_started_at = 0.0;
  child.origin_node = 1;
  child.samples = {sample(), sample()};
  parent.receive_from_child(child);
  // Run short of the flush timer (one sampling period = 1000).
  (void)engine_.run_until(500.0);
  EXPECT_EQ(parent.batches_merged(), 1u);
  EXPECT_EQ(parent.batches_forwarded(), 0u);
  EXPECT_DOUBLE_EQ(cpu_->busy_time(ProcessClass::ParadynDaemon), 7.0);  // merge only

  // A local sample arrives: the forwarded unit carries 1 + 2 samples.
  ASSERT_TRUE(parent_pipe.try_put(sample(500.0)));
  (void)engine_.run_until(900.0);
  EXPECT_EQ(parent.batches_forwarded(), 1u);
  EXPECT_EQ(main_->batches_received(), 1u);
  EXPECT_EQ(main_->samples_received(), 3u);
}

TEST_F(DaemonFixture, FlushTimerBoundsMergedContentAge) {
  // No local samples ever arrive: the flush timer (one sampling period)
  // must still push the merged child content upward.
  auto parent = make_daemon(64);
  Pipe parent_pipe(8);
  parent.attach_pipe(parent_pipe);
  parent.set_destination_main(*main_);
  parent.start();

  Batch child;
  child.forward_started_at = 0.0;
  child.origin_node = 1;
  child.samples = {sample()};
  parent.receive_from_child(child);
  (void)engine_.run();

  EXPECT_EQ(parent.batches_forwarded(), 1u);
  EXPECT_EQ(main_->samples_received(), 1u);
  // Delivered at ~merge(7) ... flush(+1000) + forward(20) + net(5).
  EXPECT_LE(engine_.now(), 1'100.0);
  EXPECT_GE(engine_.now(), 1'000.0);
}

}  // namespace
}  // namespace paradyn::rocc
