#include "rocc/config.hpp"

#include <gtest/gtest.h>

namespace paradyn::rocc {
namespace {

TEST(SystemConfig, PaperDefaultsMatchTable2) {
  const auto c = SystemConfig::paper_defaults();
  EXPECT_NEAR(c.app.cpu_burst->mean(), 2213.0, 1e-6);
  EXPECT_NEAR(c.app.cpu_burst->stddev(), 3034.0, 1e-6);
  EXPECT_NEAR(c.app.net_burst->mean(), 223.0, 1e-9);
  // Collect + forward must reassemble Table 2's 267 us per-sample demand.
  EXPECT_NEAR(c.pd.collect_cpu->mean() + c.pd.forward_cpu->mean(), 267.0, 1e-9);
  EXPECT_NEAR(c.pd.net_occupancy->mean(), 71.0, 1e-9);
  EXPECT_NEAR(c.main_cpu->mean(), 3208.0, 1e-6);
  EXPECT_NEAR(c.background.pvmd_interarrival->mean(), 6485.0, 1e-9);
  EXPECT_NEAR(c.background.other_cpu_interarrival->mean(), 31485.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.cpu_quantum_us, 10'000.0);
}

TEST(SystemConfig, BuildersSetArchitectureSpecifics) {
  const auto now = SystemConfig::now(8);
  EXPECT_EQ(now.arch, Architecture::Now);
  EXPECT_EQ(now.nodes, 8);
  EXPECT_EQ(now.cpus_per_node, 1);
  EXPECT_EQ(now.contention, NetworkContention::ContentionFree);

  const auto smp = SystemConfig::smp(16, 32, 2);
  EXPECT_EQ(smp.arch, Architecture::Smp);
  EXPECT_EQ(smp.nodes, 1);
  EXPECT_EQ(smp.cpus_per_node, 16);
  EXPECT_EQ(smp.app_processes_per_node, 32);
  EXPECT_EQ(smp.daemons, 2);
  EXPECT_EQ(smp.contention, NetworkContention::SharedSingleServer);

  const auto mpp = SystemConfig::mpp(256, ForwardingTopology::BinaryTree);
  EXPECT_EQ(mpp.arch, Architecture::Mpp);
  EXPECT_EQ(mpp.topology, ForwardingTopology::BinaryTree);
}

TEST(SystemConfig, PolicyDerivedFromBatchSize) {
  auto c = SystemConfig::now(2);
  c.batch_size = 1;
  EXPECT_EQ(c.policy(), SchedulingPolicy::CollectAndForward);
  c.batch_size = 32;
  EXPECT_EQ(c.policy(), SchedulingPolicy::BatchAndForward);
}

TEST(SystemConfig, ValidateAcceptsBuilders) {
  EXPECT_NO_THROW(SystemConfig::now(8).validate());
  EXPECT_NO_THROW(SystemConfig::smp(16, 32, 4).validate());
  EXPECT_NO_THROW(SystemConfig::mpp(64, ForwardingTopology::BinaryTree).validate());
}

TEST(SystemConfig, ValidateRejectsBadKnobs) {
  auto c = SystemConfig::now(8);
  c.nodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.sampling_period_us = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.batch_size = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.pipe_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.duration_us = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.barrier_period_us = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SystemConfig, TreeForwardingIsMppOnly) {
  auto c = SystemConfig::now(8);
  c.topology = ForwardingTopology::BinaryTree;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SystemConfig, MultipleDaemonsAreSmpOnly) {
  auto c = SystemConfig::now(8);
  c.daemons = 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SystemConfig::smp(8, 8, 4).validate());
}

TEST(SystemConfig, MissingDistributionsRejected) {
  auto c = SystemConfig::now(8);
  c.app.cpu_burst = nullptr;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig::now(8);
  c.pd.forward_cpu = nullptr;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  // ... unless instrumentation is off entirely.
  c.instrumentation_enabled = false;
  EXPECT_NO_THROW(c.validate());

  c = SystemConfig::now(8);
  c.background.pvmd_cpu_length = nullptr;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.background.enabled = false;
  EXPECT_NO_THROW(c.validate());
}

TEST(Types, ToStringCoverage) {
  EXPECT_STREQ(to_string(Architecture::Now), "NOW");
  EXPECT_STREQ(to_string(Architecture::Smp), "SMP");
  EXPECT_STREQ(to_string(Architecture::Mpp), "MPP");
  EXPECT_STREQ(to_string(SchedulingPolicy::CollectAndForward), "CF");
  EXPECT_STREQ(to_string(SchedulingPolicy::BatchAndForward), "BF");
  EXPECT_STREQ(to_string(ForwardingTopology::Direct), "direct");
  EXPECT_STREQ(to_string(ForwardingTopology::BinaryTree), "tree");
}

}  // namespace
}  // namespace paradyn::rocc
