#include "rocc/barrier.hpp"

#include <gtest/gtest.h>

#include "des/engine.hpp"

namespace paradyn::rocc {
namespace {

TEST(Barrier, ValidatesParticipants) {
  des::Engine e;
  EXPECT_THROW(BarrierManager(e, 0), std::invalid_argument);
}

TEST(Barrier, ReleasesWhenAllArrive) {
  des::Engine e;
  BarrierManager barrier(e, 3);
  int released = 0;
  (void)e.schedule_at(10.0, [&] { barrier.arrive([&] { ++released; }); });
  (void)e.schedule_at(20.0, [&] { barrier.arrive([&] { ++released; }); });
  (void)e.schedule_at(30.0, [&] { barrier.arrive([&] { ++released; }); });
  (void)e.run_until(25.0);
  EXPECT_EQ(released, 0);
  EXPECT_EQ(barrier.waiting(), 2);
  (void)e.run();
  EXPECT_EQ(released, 3);
  EXPECT_EQ(barrier.waiting(), 0);
  EXPECT_EQ(barrier.rounds(), 1u);
}

TEST(Barrier, WaitTimeIsSumOfSkews) {
  des::Engine e;
  BarrierManager barrier(e, 2);
  (void)e.schedule_at(10.0, [&] { barrier.arrive([] {}); });
  (void)e.schedule_at(50.0, [&] { barrier.arrive([] {}); });
  (void)e.run();
  EXPECT_DOUBLE_EQ(barrier.total_wait_time(), 40.0);  // first waits 40, second 0
}

TEST(Barrier, SupportsMultipleRounds) {
  des::Engine e;
  BarrierManager barrier(e, 2);
  int rounds_done = 0;
  // Two processes that loop through 3 barrier rounds each.
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    barrier.arrive([&, remaining] {
      ++rounds_done;
      (void)e.schedule_after(5.0, [&, remaining] { loop(remaining - 1); });
    });
  };
  (void)e.schedule_at(0.0, [&] { loop(3); });
  (void)e.schedule_at(1.0, [&] { loop(3); });
  (void)e.run();
  EXPECT_EQ(barrier.rounds(), 3u);
  EXPECT_EQ(rounds_done, 6);  // 2 participants x 3 rounds
}

TEST(Barrier, SingleParticipantPassesThrough) {
  des::Engine e;
  BarrierManager barrier(e, 1);
  bool released = false;
  (void)e.schedule_at(5.0, [&] { barrier.arrive([&] { released = true; }); });
  (void)e.run();
  EXPECT_TRUE(released);
  EXPECT_DOUBLE_EQ(barrier.total_wait_time(), 0.0);
}

TEST(Barrier, OverArrivalThrows) {
  des::Engine e;
  BarrierManager barrier(e, 2);
  barrier.arrive([] {});
  barrier.arrive([] {});  // releases (scheduled)
  // Before the engine runs the releases, the barrier has reset; arriving
  // again is legal.  But a third arrival in the same un-reset round is not
  // constructible through the public API, so instead check rounds.
  (void)e.run();
  EXPECT_EQ(barrier.rounds(), 1u);
}

}  // namespace
}  // namespace paradyn::rocc
