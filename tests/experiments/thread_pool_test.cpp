#include "experiments/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

namespace paradyn::experiments {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool stays usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&ran] { ++ran; });
    // No explicit wait: the destructor must run all queued tasks.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, HardwareJobsAtLeastOne) { EXPECT_GE(ThreadPool::hardware_jobs(), 1u); }

}  // namespace
}  // namespace paradyn::experiments
