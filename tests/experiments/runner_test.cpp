#include "experiments/runner.hpp"

#include <gtest/gtest.h>

#include <string>

namespace paradyn::experiments {
namespace {

rocc::SystemConfig tiny_config() {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 0.5e6;
  c.sampling_period_us = 20'000.0;
  return c;
}

TEST(ReplicationSet, ComputesConfidenceIntervals) {
  const ReplicationSet reps(tiny_config(), 5);
  ASSERT_EQ(reps.results().size(), 5u);
  const auto ci = reps.metric(pd_cpu_time_sec, 0.90);
  EXPECT_GT(ci.mean, 0.0);
  EXPECT_GE(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.level, 0.90);
  EXPECT_NEAR(reps.mean(pd_cpu_time_sec), ci.mean, 1e-12);
}

TEST(ReplicationSet, SingleReplicationDegenerateInterval) {
  // roccsweep defaults to --reps 1; metric() must not throw but return a
  // zero-width interval around the single observation.
  const ReplicationSet reps(tiny_config(), 1);
  const auto ci = reps.metric(pd_cpu_time_sec, 0.90);
  EXPECT_GT(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.level, 0.90);
  EXPECT_DOUBLE_EQ(ci.mean, reps.mean(pd_cpu_time_sec));
}

TEST(ReplicationSet, ZeroReplicationsThrowsBeforeRunning) {
  // Validation must fire before any simulation work; an invalid config and
  // zero replications still reports the replication error.
  auto bad = tiny_config();
  bad.sampling_period_us = -1.0;
  try {
    const ReplicationSet reps(bad, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("replications"), std::string::npos);
  }
}

TEST(ReplicationSet, ReplicationsDiffer) {
  const ReplicationSet reps(tiny_config(), 3);
  const auto& r = reps.results();
  EXPECT_NE(r[0].app_cpu_time_per_node_us, r[1].app_cpu_time_per_node_us);
}

TEST(FactorialExperiment, RunsAllCells) {
  std::vector<Factor> factors{
      {"sampling_period", "40ms", "10ms",
       [](rocc::SystemConfig& c, bool high) { c.sampling_period_us = high ? 10'000.0 : 40'000.0; }},
      {"policy", "CF", "BF",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 32 : 1; }},
  };
  const FactorialExperiment exp(tiny_config(), factors, 2);
  EXPECT_EQ(exp.cells().size(), 4u);
  EXPECT_EQ(exp.replications(), 2u);
  for (const auto& cell : exp.cells()) {
    EXPECT_EQ(cell.runs.size(), 2u);
    EXPECT_GT(cell.mean(pd_cpu_time_sec), 0.0);
  }
  // Cell 0b01 has the sampling-period factor high (10 ms).
  EXPECT_DOUBLE_EQ(exp.cells()[1].config.sampling_period_us, 10'000.0);
  EXPECT_EQ(exp.cells()[2].config.batch_size, 32);
}

TEST(FactorialExperiment, AnalysisFindsDominantFactor) {
  // Sampling period dominates Pd CPU time (the paper's Figure 16 finding);
  // with only these two factors the sampling period must explain more
  // variation than its interaction with the policy.
  std::vector<Factor> factors{
      {"sampling_period", "40ms", "5ms",
       [](rocc::SystemConfig& c, bool high) { c.sampling_period_us = high ? 5'000.0 : 40'000.0; }},
      {"policy", "CF", "BF",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 32 : 1; }},
  };
  auto base = tiny_config();
  base.duration_us = 1e6;
  const FactorialExperiment exp(base, factors, 3);
  const auto analysis = exp.analyze(pd_cpu_time_sec);
  const auto& period = analysis.effect("A");
  const auto& interaction = analysis.effect("AB");
  EXPECT_GT(period.variation_fraction, interaction.variation_fraction);
  EXPECT_GT(period.variation_fraction, 0.3);
}

TEST(FactorialExperiment, Validation) {
  EXPECT_THROW(FactorialExperiment(tiny_config(), {}, 2), std::invalid_argument);
  std::vector<Factor> one{{"a", "lo", "hi", [](rocc::SystemConfig&, bool) {}}};
  EXPECT_THROW(FactorialExperiment(tiny_config(), one, 0), std::invalid_argument);
}

TEST(MetricExtractors, MatchResultFields) {
  rocc::SimulationResult r;
  r.pd_cpu_time_per_node_us = 2e6;
  r.main_cpu_time_us = 4e6;
  r.nodes = 2;
  r.cpus_per_node = 1;
  r.throughput_samples_per_sec = 123.0;
  EXPECT_DOUBLE_EQ(pd_cpu_time_sec(r), 2.0);
  EXPECT_DOUBLE_EQ(is_cpu_time_sec(r), 4.0);  // 2 + 4/2
  EXPECT_DOUBLE_EQ(throughput(r), 123.0);
  r.latency_us.add(1500.0);
  EXPECT_DOUBLE_EQ(latency_ms(r), 1.5);
}

}  // namespace
}  // namespace paradyn::experiments
