#include "experiments/parallel.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "experiments/runner.hpp"

namespace paradyn::experiments {
namespace {

rocc::SystemConfig tiny_config() {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 0.3e6;
  c.sampling_period_us = 20'000.0;
  return c;
}

// Bit-identical comparison across the fields the experiment layer consumes.
void expect_identical(const rocc::SimulationResult& a, const rocc::SimulationResult& b) {
  EXPECT_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.app_cpu_time_per_node_us, b.app_cpu_time_per_node_us);
  EXPECT_EQ(a.pd_cpu_time_per_node_us, b.pd_cpu_time_per_node_us);
  EXPECT_EQ(a.main_cpu_time_us, b.main_cpu_time_us);
  EXPECT_EQ(a.pd_cpu_util_pct, b.pd_cpu_util_pct);
  EXPECT_EQ(a.app_cpu_util_pct, b.app_cpu_util_pct);
  EXPECT_EQ(a.samples_generated, b.samples_generated);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_EQ(a.batches_delivered, b.batches_delivered);
  EXPECT_EQ(a.throughput_samples_per_sec, b.throughput_samples_per_sec);
  EXPECT_EQ(a.latency_us.count(), b.latency_us.count());
  EXPECT_EQ(a.latency_us.mean(), b.latency_us.mean());
}

TEST(ParallelRunner, ReplicationsMatchSerialPathExactly) {
  const auto cfg = tiny_config();
  const auto serial = rocc::run_replications(cfg, 3);

  for (const std::size_t jobs : {1u, 2u, 4u, 7u}) {
    ParallelRunner runner(jobs);
    const auto parallel = runner.replications(cfg, 3);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, FactorialDeterminismAnyJobCount) {
  // The acceptance test: a 2^3 r factorial produces identical
  // SimulationResult vectors for the serial path and any --jobs value.
  const std::vector<Factor> factors{
      {"sampling", "40ms", "10ms",
       [](rocc::SystemConfig& c, bool high) { c.sampling_period_us = high ? 10'000.0 : 40'000.0; }},
      {"policy", "CF", "BF",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 32 : 1; }},
      {"nodes", "2", "4",
       [](rocc::SystemConfig& c, bool high) { c.nodes = high ? 4 : 2; }},
  };
  constexpr std::size_t kReps = 4;

  const FactorialExperiment serial(tiny_config(), factors, kReps, /*jobs=*/1);
  for (const std::size_t jobs : {2u, 5u}) {
    const FactorialExperiment parallel(tiny_config(), factors, kReps, jobs);
    ASSERT_EQ(parallel.cells().size(), serial.cells().size());
    for (std::size_t c = 0; c < serial.cells().size(); ++c) {
      EXPECT_EQ(parallel.cells()[c].mask, serial.cells()[c].mask);
      ASSERT_EQ(parallel.cells()[c].runs.size(), kReps);
      for (std::size_t r = 0; r < kReps; ++r) {
        expect_identical(serial.cells()[c].runs[r], parallel.cells()[c].runs[r]);
      }
    }
  }
}

TEST(ParallelRunner, PropagatesWorkerExceptionsToCaller) {
  // An invalid configuration makes the Simulation constructor throw on the
  // worker thread; the runner must surface it on the caller thread.
  auto bad = tiny_config();
  bad.sampling_period_us = -1.0;
  ParallelRunner runner(4);
  EXPECT_THROW((void)runner.replications(bad, 4), std::invalid_argument);
}

TEST(ParallelRunner, FactorialExperimentPropagatesThrowingFactor) {
  const std::vector<Factor> factors{
      {"poison", "ok", "bad",
       [](rocc::SystemConfig& c, bool high) {
         if (high) c.batch_size = -1;  // fails SystemConfig::validate in run
       }},
  };
  EXPECT_THROW(FactorialExperiment(tiny_config(), factors, 2, /*jobs=*/3),
               std::invalid_argument);
}

TEST(ParallelRunner, ReportAccountsForEveryRun) {
  ParallelRunner runner(2);
  (void)runner.replications(tiny_config(), 3);
  const RunReport& rep = runner.report();
  EXPECT_EQ(rep.jobs, 2u);
  EXPECT_EQ(rep.runs, 3u);
  ASSERT_EQ(rep.cells.size(), 1u);
  EXPECT_EQ(rep.cells[0].replications, 3u);
  EXPECT_GT(rep.wall_sec, 0.0);
  EXPECT_GT(rep.serial_estimate_sec, 0.0);
  EXPECT_GT(rep.speedup_estimate(), 0.0);

  std::ostringstream os;
  rep.print(os, "test");
  EXPECT_NE(os.str().find("jobs=2"), std::string::npos);
  EXPECT_NE(os.str().find("runs=3"), std::string::npos);
}

TEST(ParallelRunner, ReportAccumulation) {
  ParallelRunner runner(1);
  (void)runner.replications(tiny_config(), 2);
  RunReport total = runner.report();
  (void)runner.replications(tiny_config(), 2);
  total += runner.report();
  EXPECT_EQ(total.runs, 4u);
}

TEST(ParallelRunner, RunHookSeesEveryRunAndEventsAreAccounted) {
  ParallelRunner runner(2);
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  runner.set_run_hook([&](rocc::Simulation& /*sim*/, std::size_t cell, std::size_t rep) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.emplace(cell, rep);
  });
  const auto results = runner.replications(tiny_config(), 3);
  const std::set<std::pair<std::size_t, std::size_t>> want{{0, 0}, {0, 1}, {0, 2}};
  EXPECT_EQ(seen, want);

  std::uint64_t events = 0;
  for (const auto& r : results) events += r.events_processed;
  EXPECT_GT(events, 0u);
  EXPECT_EQ(runner.report().events, events);

  // Hooks must not perturb the simulated results.
  runner.set_run_hook({});
  const auto plain = runner.replications(tiny_config(), 3);
  for (std::size_t i = 0; i < plain.size(); ++i) expect_identical(results[i], plain[i]);
}

TEST(DefaultJobs, OverrideAndRestore) {
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3u);
  EXPECT_EQ(ParallelRunner(0).jobs(), 3u);
  EXPECT_EQ(ParallelRunner(5).jobs(), 5u);
  set_default_jobs(0);  // restore: one job per hardware thread
  EXPECT_GE(default_jobs(), 1u);
}

}  // namespace
}  // namespace paradyn::experiments
