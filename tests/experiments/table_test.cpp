#include "experiments/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace paradyn::experiments {
namespace {

TEST(TablePrinter, RendersHeadersAndRows) {
  TablePrinter t("Demo", {"x", "value"});
  t.add_row({"1", "10.5"});
  t.add_row({"2", "20.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("20.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, Validation) {
  EXPECT_THROW(TablePrinter("t", {}), std::invalid_argument);
  TablePrinter t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, ColumnsWidenToContent) {
  TablePrinter t("t", {"a"});
  t.add_row({"a-very-long-cell-value"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a-very-long-cell-value "), std::string::npos);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(fmt(std::nan("")), "nan");
  EXPECT_EQ(fmt_ci(2.5, 0.25, 2), "2.50 +- 0.25");
}

TEST(PrintSeries, EmitsOneRowPerX) {
  std::ostringstream os;
  print_series(os, "Figure X", "nodes", {2.0, 4.0}, {"CF", "BF"},
               {{1.0, 2.0}, {0.5, 0.75}});
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("CF"), std::string::npos);
  EXPECT_NE(out.find("0.7500"), std::string::npos);
}

TEST(WriteSeriesCsv, EmitsHeaderAndRows) {
  std::ostringstream os;
  write_series_csv(os, "nodes", {2.0, 4.0}, {"CF", "BF"}, {{1.5, 2.5}, {0.5, 0.75}});
  EXPECT_EQ(os.str(), "nodes,CF,BF\n2,1.5,0.5\n4,2.5,0.75\n");
}

TEST(WriteSeriesCsv, Validation) {
  std::ostringstream os;
  EXPECT_THROW(write_series_csv(os, "x", {1.0}, {"a", "b"}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(write_series_csv(os, "x", {1.0, 2.0}, {"a"}, {{1.0}}), std::invalid_argument);
}

TEST(PrintSeries, Validation) {
  std::ostringstream os;
  EXPECT_THROW(print_series(os, "t", "x", {1.0}, {"a", "b"}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(print_series(os, "t", "x", {1.0, 2.0}, {"a"}, {{1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace paradyn::experiments
