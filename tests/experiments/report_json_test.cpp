#include "experiments/report_json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "experiments/runner.hpp"
#include "rocc/config.hpp"

namespace paradyn::experiments {
namespace {

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// no bare NaN/Infinity tokens (which most parsers reject).
void expect_well_formed_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

rocc::SimulationResult tiny_result() {
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 0.2e6;
  cfg.sampling_period_us = 20'000.0;
  const ReplicationSet rs(cfg, 1, /*jobs=*/1);
  return rs.results().front();
}

TEST(ReportJson, ResultSerializesKeyMetrics) {
  const auto r = tiny_result();
  std::ostringstream os;
  write_result_json(os, r);
  const std::string json = os.str();
  expect_well_formed_json(json);
  for (const char* key :
       {"\"duration_us\"", "\"samples_generated\"", "\"samples_delivered\"",
        "\"pd_cpu_util_pct\"", "\"latency_us\"", "\"events_processed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Numbers must round-trip: the serialized samples count equals the run's.
  const std::string want =
      "\"samples_generated\": " + std::to_string(r.samples_generated);
  EXPECT_NE(json.find(want), std::string::npos);
}

TEST(ReportJson, FullDocumentWithAndWithoutRunnerReport) {
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 0.2e6;
  cfg.sampling_period_us = 20'000.0;
  const ReplicationSet rs(cfg, 2, /*jobs=*/1);

  obs::ReproStamp stamp;
  stamp.tool = "test";
  stamp.seed = cfg.seed;
  stamp.has_seed = true;

  std::ostringstream with;
  write_report_json(with, stamp, rs.results(), &rs.report());
  expect_well_formed_json(with.str());
  EXPECT_NE(with.str().find("\"stamp\""), std::string::npos);
  EXPECT_NE(with.str().find("\"results\""), std::string::npos);
  EXPECT_NE(with.str().find("\"parallel\""), std::string::npos);
  EXPECT_NE(with.str().find("\"tool\": \"test\""), std::string::npos);

  std::ostringstream without;
  write_report_json(without, stamp, rs.results(), nullptr);
  expect_well_formed_json(without.str());
  EXPECT_EQ(without.str().find("\"parallel\""), std::string::npos);
}

TEST(ReportJson, NonFiniteValuesBecomeNull) {
  auto r = tiny_result();
  r.pd_cpu_util_pct = std::nan("");
  r.main_cpu_util_pct = INFINITY;
  std::ostringstream os;
  write_result_json(os, r);
  expect_well_formed_json(os.str());
  EXPECT_NE(os.str().find("\"pd_cpu_util_pct\": null"), std::string::npos);
  EXPECT_NE(os.str().find("\"main_cpu_util_pct\": null"), std::string::npos);
}

}  // namespace
}  // namespace paradyn::experiments
