#include "des/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace paradyn::des {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, SensitiveToEveryArgument) {
  const auto base = derive_seed(7, 1, 2);
  EXPECT_NE(base, derive_seed(8, 1, 2));
  EXPECT_NE(base, derive_seed(7, 2, 2));
  EXPECT_NE(base, derive_seed(7, 1, 3));
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("app/node0"), hash_label("app/node1"));
  EXPECT_EQ(hash_label("pd"), hash_label("pd"));
}

TEST(Pcg32, ReproducibleStream) {
  Pcg32 a(123, 456);
  Pcg32 b(123, 456);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32, DoublesInHalfOpenUnitInterval) {
  Pcg32 rng(99, 7);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, OpenDoubleNeverZero) {
  Pcg32 rng(99, 7);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_GT(rng.next_open_double(), 0.0);
    EXPECT_LE(rng.next_open_double(), 1.0);
  }
}

TEST(Pcg32, MeanOfUniformsNearHalf) {
  Pcg32 rng(2024, 3);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(5, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Pcg32, NextBelowApproximatelyUniform) {
  Pcg32 rng(11, 13);
  std::vector<int> counts(8, 0);
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 8.0, 0.05 * kN / 8.0);
  }
}

TEST(RngStream, LabeledStreamsReproducible) {
  RngStream a(1, "app/node3");
  RngStream b(1, "app/node3");
  RngStream c(1, "app/node4");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  RngStream a2(1, "app/node3");
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(RngStream, GlobalSeedChangesEverything) {
  RngStream a(1, 5, 6);
  RngStream b(2, 5, 6);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace paradyn::des
