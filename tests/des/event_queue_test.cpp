#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace paradyn::des {
namespace {

/// Pop every remaining event, firing each callback.
void drain(EventQueue& q) {
  while (auto fired = q.pop()) q.fire(*fired);
}

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.peek_time().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(3.0, [&] { order.push_back(3); });
  (void)q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(2.0, [&] { order.push_back(2); });
  drain(q);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.push(5.0, [&order, i] { order.push_back(i); });
  }
  drain(q);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PeekReportsEarliestLiveTime) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  (void)q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(*q.peek_time(), 1.0);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(*q.peek_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  q.cancel(h);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnDefaultHandle) {
  EventQueue q;
  EventHandle empty;
  q.cancel(empty);  // no-op
  auto h = q.push(1.0, [] {});
  q.cancel(h);
  q.cancel(h);  // second cancel must not corrupt the live count
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_FALSE(h.pending());
  q.fire(*fired);
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  (void)q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DiscardRecyclesWithoutInvoking) {
  EventQueue q;
  bool invoked = false;
  (void)q.push(1.0, [&] { invoked = true; });
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  q.discard(*fired);
  EXPECT_FALSE(invoked);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.push(static_cast<SimTime>(100 - i), [] {}));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 50u);
  SimTime last = -1.0;
  std::size_t popped = 0;
  while (auto fired = q.pop()) {
    EXPECT_GE(fired->time, last);
    last = fired->time;
    ++popped;
    q.fire(*fired);
  }
  EXPECT_EQ(popped, 50u);
}

TEST(EventQueue, FarFutureEventsCrossTheOverflowTier) {
  // Times spanning ten decades force repeated window advances.
  EventQueue q;
  std::vector<double> order;
  for (int decade = 9; decade >= 0; --decade) {
    for (int i = 0; i < 20; ++i) {
      const SimTime t = std::pow(10.0, decade) + i;
      (void)q.push(t, [&order, t] { order.push_back(t); });
    }
  }
  drain(q);
  ASSERT_EQ(order.size(), 200u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LE(order[i - 1], order[i]);
}

TEST(EventQueue, PushBeforeWindowStartStillPopsFirst) {
  EventQueue q;
  std::vector<int> order;
  // Establish a window around t=1000, then push an earlier event.
  for (int i = 0; i < 8; ++i) {
    (void)q.push(1000.0 + i, [&order, i] { order.push_back(i); });
  }
  auto fired = q.pop();  // window now starts at 1000
  ASSERT_TRUE(fired.has_value());
  q.fire(*fired);
  (void)q.push(500.0, [&order] { order.push_back(-1); });
  fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_DOUBLE_EQ(fired->time, 500.0);
  q.fire(*fired);
  EXPECT_EQ(order.back(), -1);
}

TEST(EventQueue, SlabPoolPlateausUnderChurn) {
  // Steady-state schedule-one-pop-one must recycle a bounded set of slots,
  // not grow the pool per event.
  EventQueue q;
  SimTime t = 0.0;
  for (int i = 0; i < 64; ++i) (void)q.push(t + i, [] {});
  for (int i = 0; i < 100'000; ++i) {
    auto fired = q.pop();
    ASSERT_TRUE(fired.has_value());
    q.fire(*fired);
    t = fired->time;
    (void)q.push(t + 64.0, [] {});
  }
  EXPECT_LE(q.allocated_slots(), 256u);
  drain(q);
}

}  // namespace
}  // namespace paradyn::des
