#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paradyn::des {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.peek_time().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(3.0, [&] { order.push_back(3); });
  (void)q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(2.0, [&] { order.push_back(2); });
  while (auto fired = q.pop()) fired->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto fired = q.pop()) fired->callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PeekReportsEarliestLiveTime) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  (void)q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(*q.peek_time(), 1.0);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(*q.peek_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  q.cancel(h);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnDefaultHandle) {
  EventQueue q;
  EventHandle empty;
  q.cancel(empty);  // no-op
  auto h = q.push(1.0, [] {});
  q.cancel(h);
  q.cancel(h);  // second cancel must not corrupt the live count
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, HandleNotPendingAfterFire) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  (void)q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.push(static_cast<SimTime>(100 - i), [] {}));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 50u);
  SimTime last = -1.0;
  std::size_t popped = 0;
  while (auto fired = q.pop()) {
    EXPECT_GE(fired->time, last);
    last = fired->time;
    ++popped;
  }
  EXPECT_EQ(popped, 50u);
}

}  // namespace
}  // namespace paradyn::des
