// Differential determinism suite: the calendar EventQueue must produce a
// pop sequence bit-identical to the reference binary heap on randomized
// schedule/cancel/pop scripts.  This is the proof obligation for swapping
// the queue implementation under seeded experiments — (time, seq) order is
// the only thing the simulation results depend on, so equality here means
// every seeded run is unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"
#include "des/heap_event_queue.hpp"
#include "des/random.hpp"

namespace paradyn::des {
namespace {

struct Popped {
  SimTime time;
  std::uint64_t tag;
  bool operator==(const Popped&) const = default;
};

/// Drives both queues through the same operation script and compares the
/// full pop sequences (time + per-push tag).
class LockstepDriver {
 public:
  void push(SimTime t) {
    const std::uint64_t tag = next_tag_++;
    handles_.emplace_back(calendar_.push(t, [this, t, tag] { calendar_out_.push_back({t, tag}); }),
                          heap_.push(t, [this, t, tag] { heap_out_.push_back({t, tag}); }));
    live_.push_back(handles_.size() - 1);
  }

  /// Cancel the k-th (mod live) not-yet-cancelled pushed event in both
  /// queues.  Popped events may be in the list too — cancelling those is a
  /// no-op in both implementations, which is itself worth exercising.
  void cancel(std::size_t k) {
    if (live_.empty()) return;
    const std::size_t idx = live_[k % live_.size()];
    EXPECT_EQ(handles_[idx].first.pending(), handles_[idx].second.pending());
    calendar_.cancel(handles_[idx].first);
    heap_.cancel(handles_[idx].second);
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(k % live_.size()));
  }

  /// Pop one event from each queue and fire it.
  void pop_one() {
    auto c = calendar_.pop();
    auto h = heap_.pop();
    ASSERT_EQ(c.has_value(), h.has_value());
    if (!c) return;
    last_pop_time_ = c->time;
    calendar_.fire(*c);
    h->callback();
    ASSERT_EQ(calendar_out_.size(), heap_out_.size());
    ASSERT_EQ(calendar_out_.back(), heap_out_.back());
  }

  void drain() {
    while (calendar_.size() > 0 || heap_.size() > 0) {
      pop_one();
      ASSERT_EQ(calendar_.size(), heap_.size());
    }
  }

  void compare() const {
    ASSERT_EQ(calendar_out_.size(), heap_out_.size());
    EXPECT_EQ(calendar_out_, heap_out_);
    EXPECT_EQ(calendar_.size(), heap_.size());
  }

  [[nodiscard]] SimTime last_pop_time() const noexcept { return last_pop_time_; }
  [[nodiscard]] std::size_t popped() const noexcept { return calendar_out_.size(); }

 private:
  EventQueue calendar_;
  HeapEventQueue heap_;
  std::vector<std::pair<EventHandle, HeapEventHandle>> handles_;
  std::vector<std::size_t> live_;
  std::vector<Popped> calendar_out_;
  std::vector<Popped> heap_out_;
  std::uint64_t next_tag_ = 0;
  SimTime last_pop_time_ = 0.0;
};

TEST(EventQueueDiff, RandomizedClusteredScript) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    LockstepDriver d;
    RngStream rng(seed, 17);
    SimTime horizon = 0.0;
    for (int op = 0; op < 20'000; ++op) {
      const double r = rng.next_double();
      if (r < 0.45) {
        // Clustered near-future push, occasionally far future.
        const double spread = rng.next_double() < 0.05 ? 1e6 : 100.0;
        d.push(horizon + rng.next_double() * spread);
      } else if (r < 0.55) {
        d.cancel(static_cast<std::size_t>(rng.next_double() * 1000.0));
      } else {
        d.pop_one();
        horizon = std::max(horizon, d.last_pop_time());
      }
    }
    d.drain();
    d.compare();
  }
}

TEST(EventQueueDiff, SameTimestampBursts) {
  LockstepDriver d;
  RngStream rng(42, 3);
  SimTime now = 0.0;
  for (int round = 0; round < 500; ++round) {
    // A burst of same-instant events — tie-breaking must be insertion order
    // in both queues.
    const SimTime t = now + rng.next_double() * 10.0;
    const int burst = 1 + static_cast<int>(rng.next_double() * 20.0);
    for (int i = 0; i < burst; ++i) d.push(t);
    if (rng.next_double() < 0.3) d.cancel(static_cast<std::size_t>(rng.next_double() * 64.0));
    for (int i = 0; i < burst / 2; ++i) d.pop_one();
    now = std::max(now, d.last_pop_time());
  }
  d.drain();
  d.compare();
}

TEST(EventQueueDiff, CancelRescheduleLoops) {
  // The daemon flush-timer pattern: arm a timer, cancel it, immediately
  // re-arm at a different time; interleave with pops.
  LockstepDriver d;
  RngStream rng(7, 29);
  SimTime now = 0.0;
  for (int round = 0; round < 5'000; ++round) {
    d.push(now + 50.0 + rng.next_double());
    d.cancel(0);  // cancel the oldest live event
    d.push(now + 25.0 + rng.next_double());
    if (rng.next_double() < 0.7) {
      d.pop_one();
      now = std::max(now, d.last_pop_time());
    }
  }
  d.drain();
  d.compare();
}

TEST(EventQueueDiff, UniformHorizonBulkLoad) {
  // Everything pushed up front across a wide horizon (overflow-tier heavy),
  // then drained — exercises sorting and repeated window migration.
  LockstepDriver d;
  RngStream rng(11, 5);
  for (int i = 0; i < 30'000; ++i) d.push(rng.next_double() * 1e6);
  for (int i = 0; i < 300; ++i) d.cancel(static_cast<std::size_t>(rng.next_double() * 30'000.0));
  d.drain();
  d.compare();
  EXPECT_EQ(d.popped(), 30'000u - 300u);
}

}  // namespace
}  // namespace paradyn::des
