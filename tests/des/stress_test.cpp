// Stress and property tests of the event engine: large randomized
// workloads must preserve ordering, conservation, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"
#include "des/random.hpp"

namespace paradyn::des {
namespace {

TEST(EngineStress, HundredThousandRandomEventsFireInOrder) {
  Engine engine;
  RngStream rng(42, 1);
  constexpr int kEvents = 100'000;
  SimTime last = -1.0;
  std::uint64_t fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    (void)engine.schedule_at(rng.next_double() * 1e6, [&, t = engine.now()] {
      EXPECT_GE(engine.now(), last);
      last = engine.now();
      ++fired;
    });
  }
  (void)engine.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kEvents));
}

TEST(EngineStress, CascadingSelfSchedulingChains) {
  // 100 chains, each re-arming itself 1000 times with random delays:
  // exactly 100'000 events, all executed, clock monotone.
  Engine engine;
  constexpr int kChains = 100;
  constexpr int kHops = 1000;
  std::vector<int> hops(kChains, 0);
  std::vector<RngStream> rngs;
  for (int c = 0; c < kChains; ++c) rngs.emplace_back(7, static_cast<std::uint64_t>(c));

  std::function<void(int)> arm = [&](int chain) {
    if (++hops[static_cast<std::size_t>(chain)] >= kHops) return;
    (void)engine.schedule_after(rngs[static_cast<std::size_t>(chain)].next_double() * 100.0,
                                [&, chain] { arm(chain); });
  };
  for (int c = 0; c < kChains; ++c) {
    (void)engine.schedule_after(1.0, [&, c] { arm(c); });
  }
  (void)engine.run();
  for (const int h : hops) EXPECT_EQ(h, kHops);
  EXPECT_EQ(engine.events_processed(), static_cast<std::uint64_t>(kChains * kHops));
}

TEST(EngineStress, RandomCancellationsNeverFire) {
  Engine engine;
  RngStream rng(13, 1);
  constexpr int kEvents = 20'000;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(engine.schedule_at(rng.next_double() * 1e5, [&] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (rng.next_double() < 0.5) {
      engine.cancel(handles[i]);
      ++cancelled;
    }
  }
  (void)engine.run();
  EXPECT_EQ(fired, kEvents - cancelled);
}

TEST(EngineStress, InterleavedRunUntilWindows) {
  // Advancing in many small windows is equivalent to one big run.
  const auto run_windows = [](int windows) {
    Engine engine;
    RngStream rng(99, 5);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
      (void)engine.schedule_at(rng.next_double() * 1e4, [&, i] { sum += i * 0.5; });
    }
    if (windows == 1) {
      (void)engine.run_until(1e4);
    } else {
      for (int w = 1; w <= windows; ++w) {
        (void)engine.run_until(1e4 * w / windows);
      }
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_windows(1), run_windows(97));
}

}  // namespace
}  // namespace paradyn::des
