// Slab-pool lifecycle and generation-counter (ABA) coverage, plus unit
// tests for the InlineFunction callback storage.  The pool recycles event
// slots aggressively, so a stale handle whose slot now hosts a different
// event must be inert: pending() false, cancel() a no-op for the new tenant.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"
#include "des/inline_function.hpp"

namespace paradyn::des {
namespace {

// --- Generation-counter / ABA ---------------------------------------------

TEST(EventPool, StaleHandleToRecycledSlotIsNotPending) {
  EventQueue q;
  auto stale = q.push(1.0, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  q.fire(*fired);
  ASSERT_FALSE(stale.pending());

  // The single-slot pool guarantees the next push reuses the same slot.
  bool tenant_fired = false;
  auto tenant = q.push(2.0, [&] { tenant_fired = true; });
  EXPECT_TRUE(tenant.pending());
  EXPECT_FALSE(stale.pending()) << "stale handle must not see the new tenant";

  // Cancelling through the stale handle must not evict the new tenant.
  q.cancel(stale);
  EXPECT_TRUE(tenant.pending());
  EXPECT_EQ(q.size(), 1u);
  fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  q.fire(*fired);
  EXPECT_TRUE(tenant_fired);
}

TEST(EventPool, StaleHandleSurvivesManyRecycles) {
  EventQueue q;
  auto stale = q.push(1.0, [] {});
  q.cancel(stale);
  // Recycle slot 0 enough times to wrap small counters if the generation
  // were narrower than intended.
  for (int i = 0; i < 10'000; ++i) {
    auto h = q.push(static_cast<SimTime>(i), [] {});
    auto fired = q.pop();
    ASSERT_TRUE(fired.has_value());
    q.fire(*fired);
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(stale.pending());
  }
  EXPECT_LE(q.allocated_slots(), 2u);
}

TEST(EventPool, HandlesFromDifferentQueuesDoNotCrossTalk) {
  EventQueue a;
  EventQueue b;
  auto ha = a.push(1.0, [] {});
  auto hb = b.push(1.0, [] {});
  // Same slot index and generation in both queues; cancel against the
  // wrong queue must be a no-op.
  b.cancel(ha);
  EXPECT_TRUE(ha.pending());
  EXPECT_EQ(b.size(), 1u);
  a.cancel(ha);
  EXPECT_FALSE(ha.pending());
  EXPECT_TRUE(hb.pending());
}

// --- Lifecycle: pending -> firing -> recycled -----------------------------

TEST(EventLifecycle, NotPendingWhileFiring) {
  EventQueue q;
  EventHandle h;
  bool checked = false;
  h = q.push(1.0, [&] {
    EXPECT_FALSE(h.pending());
    checked = true;
  });
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  q.fire(*fired);
  EXPECT_TRUE(checked);
}

TEST(EventLifecycle, SelfCancelDuringFiringIsSafeNoOp) {
  // The daemon's flush-timer callback runs while its own handle still
  // refers to the firing slot; cancelling it must not corrupt the pool or
  // affect other events.
  EventQueue q;
  EventHandle h;
  bool other_fired = false;
  h = q.push(1.0, [&] { q.cancel(h); });
  (void)q.push(2.0, [&] { other_fired = true; });
  while (auto fired = q.pop()) q.fire(*fired);
  EXPECT_TRUE(other_fired);
  EXPECT_TRUE(q.empty());
  // The slot recycled normally: a fresh push still works.
  (void)q.push(3.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventLifecycle, CancelOtherPendingEventFromCallback) {
  EventQueue q;
  bool victim_fired = false;
  auto victim = q.push(2.0, [&] { victim_fired = true; });
  (void)q.push(1.0, [&] { q.cancel(victim); });
  while (auto fired = q.pop()) q.fire(*fired);
  EXPECT_FALSE(victim_fired);
}

TEST(EventLifecycle, RescheduleFromCallbackReusesRecycledSlots) {
  // Self-perpetuating timer: each firing schedules the next.  The pool
  // must plateau rather than leak a slot per firing.
  EventQueue q;
  int fires = 0;
  // Callback captures [&q, &fires, &arm]: arm re-pushes via a function
  // object stored outside the queue so recursion is well-defined.
  struct Timer {
    EventQueue& q;
    int& fires;
    SimTime t = 0.0;
    void arm() {
      t += 1.0;
      (void)q.push(t, [this] {
        if (++fires < 1'000) arm();
      });
    }
  } timer{q, fires};
  timer.arm();
  while (auto fired = q.pop()) q.fire(*fired);
  EXPECT_EQ(fires, 1'000);
  EXPECT_LE(q.allocated_slots(), 2u);
}

// --- InlineFunction --------------------------------------------------------

TEST(InlineFunction, DefaultIsEmptyAndResettable) {
  InlineFunction<64> f;
  EXPECT_FALSE(f);
  f = [] {};
  EXPECT_TRUE(f);
  f.reset();
  EXPECT_FALSE(f);
  f = nullptr;
  EXPECT_FALSE(f);
}

TEST(InlineFunction, InvokesStoredCallable) {
  int count = 0;
  InlineFunction<64> f = [&count] { ++count; };
  f();
  f();
  EXPECT_EQ(count, 2);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int count = 0;
  InlineFunction<64> a = [&count] { ++count; };
  InlineFunction<64> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — documented postcondition
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(count, 1);
  a = std::move(b);
  EXPECT_TRUE(a);
  a();
  EXPECT_EQ(count, 2);
}

TEST(InlineFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<64> f = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveAssignDestroysPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFunction<64> f = [token] {};
  token.reset();
  EXPECT_FALSE(watch.expired());
  f = [] {};
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, CapacityAccountingMatchesEventQueueSlot) {
  // The rocc SmallCallback must fit inside an EventQueue callback slot so
  // zero-duration requests can move the user callback straight into the
  // engine (cpu.cpp / network.cpp rely on this).
  static_assert(sizeof(InlineFunction<64>) <= EventQueue::kCallbackCapacity);
  InlineFunction<EventQueue::kCallbackCapacity> big = InlineFunction<64>([] {});
  EXPECT_TRUE(big);
}

}  // namespace
}  // namespace paradyn::des
