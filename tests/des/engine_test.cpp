#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paradyn::des {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RunAdvancesClockToEventTimes) {
  Engine e;
  std::vector<SimTime> seen;
  (void)e.schedule_at(10.0, [&] { seen.push_back(e.now()); });
  (void)e.schedule_at(5.0, [&] { seen.push_back(e.now()); });
  const auto executed = e.run();
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(seen, (std::vector<SimTime>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  SimTime inner_fire_time = -1.0;
  (void)e.schedule_at(100.0, [&] {
    (void)e.schedule_after(50.0, [&] { inner_fire_time = e.now(); });
  });
  (void)e.run();
  EXPECT_DOUBLE_EQ(inner_fire_time, 150.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  (void)e.schedule_at(10.0, [&] {
    EXPECT_THROW((void)e.schedule_at(5.0, [] {}), std::invalid_argument);
  });
  (void)e.run();
}

TEST(Engine, RunUntilStopsAtHorizonAndSetsClock) {
  Engine e;
  int fired = 0;
  (void)e.schedule_at(10.0, [&] { ++fired; });
  (void)e.schedule_at(20.0, [&] { ++fired; });
  (void)e.schedule_at(30.0, [&] { ++fired; });
  const auto executed = e.run_until(25.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 25.0);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunUntilIncludesEventsAtHorizon) {
  Engine e;
  int fired = 0;
  (void)e.schedule_at(25.0, [&] { ++fired; });
  (void)e.run_until(25.0);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int fired = 0;
  (void)e.schedule_at(1.0, [&] {
    ++fired;
    e.stop();
  });
  (void)e.schedule_at(2.0, [&] { ++fired; });
  (void)e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 1u);
  // A subsequent run resumes.
  (void)e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto h = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(h);
  (void)e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, SameTimeSelfSchedulingRunsAfterCurrentCallback) {
  Engine e;
  std::vector<int> order;
  (void)e.schedule_at(1.0, [&] {
    (void)e.schedule_after(0.0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  (void)e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, EventsProcessedAccumulatesAcrossRuns) {
  Engine e;
  (void)e.schedule_at(1.0, [] {});
  (void)e.run();
  (void)e.schedule_at(2.0, [] {});
  (void)e.run();
  EXPECT_EQ(e.events_processed(), 2u);
}

TEST(Engine, RunUntilWithEmptyQueueAdvancesClock) {
  Engine e;
  (void)e.run_until(42.0);
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

}  // namespace
}  // namespace paradyn::des
