#include "cli_args.hpp"

#include <gtest/gtest.h>

namespace paradyn::tools {
namespace {

CliArgs parse(std::initializer_list<const char*> argv_list,
              std::set<std::string> known = {"alpha", "beta", "flag"}) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto args = parse({"--alpha", "42", "--beta", "hello"});
  EXPECT_EQ(args.get_long("alpha", 0), 42);
  EXPECT_EQ(args.get_string("beta", ""), "hello");
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto args = parse({"--alpha=3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
}

TEST(CliArgs, BareSwitchIsTrue) {
  const auto args = parse({"--flag"});
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("alpha"));
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_long("alpha", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 2.5), 2.5);
  EXPECT_EQ(args.get_string("beta", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("flag", false));
  EXPECT_TRUE(args.get_bool("flag", true));
}

TEST(CliArgs, BooleanSpellings) {
  EXPECT_TRUE(parse({"--flag=yes"}).get_bool("flag"));
  EXPECT_TRUE(parse({"--flag=1"}).get_bool("flag"));
  EXPECT_FALSE(parse({"--flag=no"}).get_bool("flag"));
  EXPECT_FALSE(parse({"--flag=false"}).get_bool("flag"));
  EXPECT_THROW((void)parse({"--flag=maybe"}).get_bool("flag"), std::invalid_argument);
}

TEST(CliArgs, RejectsUnknownFlagAndPositionals) {
  EXPECT_THROW(parse({"--bogus", "1"}), std::invalid_argument);
  EXPECT_THROW(parse({"stray"}), std::invalid_argument);
}

TEST(CliArgs, SuggestsCloseFlagOnTypo) {
  // "--alpa" is one edit from "--alpha"; a mistyped flag must fail loudly
  // with a hint, never silently change the run.
  try {
    parse({"--alpa", "1"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag: --alpa"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --alpha?"), std::string::npos) << what;
  }
}

TEST(CliArgs, NoSuggestionWhenNothingIsClose) {
  try {
    parse({"--zzqqxx"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(CliArgs, PositionalsAcceptedUpToLimit) {
  // (= form: a bare "--flag out.json" would consume the file as its value)
  std::vector<const char*> argv{"prog", "in.json", "--flag=true", "out.json"};
  const CliArgs args(static_cast<int>(argv.size()), argv.data(), {"flag"},
                     /*max_positionals=*/2);
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "in.json");
  EXPECT_EQ(args.positionals()[1], "out.json");
  EXPECT_TRUE(args.get_bool("flag"));
}

TEST(CliArgs, PositionalBeyondLimitRejected) {
  std::vector<const char*> argv{"prog", "a", "b"};
  EXPECT_THROW(CliArgs(static_cast<int>(argv.size()), argv.data(), {}, /*max_positionals=*/1),
               std::invalid_argument);
}

TEST(CliArgs, RejectsMalformedNumbers) {
  const auto args = parse({"--alpha", "12abc"});
  EXPECT_THROW((void)args.get_long("alpha", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("alpha", 0.0), std::invalid_argument);
}

TEST(CliArgs, NegativeValuesViaEquals) {
  // A negative space-separated value would look like a flag; the = form
  // carries it through.
  const auto args = parse({"--alpha=-5"});
  EXPECT_EQ(args.get_long("alpha", 0), -5);
}

}  // namespace
}  // namespace paradyn::tools
