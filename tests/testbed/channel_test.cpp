#include "testbed/channel.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace paradyn::testbed {
namespace {

WireSample make(int id, double value) {
  WireSample s;
  s.generated_ns = 123456789;
  s.app_id = id;
  s.metric_id = id * 2;
  s.value = value;
  return s;
}

TEST(SampleChannel, SingleSampleRoundTrip) {
  SampleChannel ch;
  ch.write_sample(make(7, 3.25));
  const auto got = ch.read_sample();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->app_id, 7);
  EXPECT_EQ(got->metric_id, 14);
  EXPECT_DOUBLE_EQ(got->value, 3.25);
  EXPECT_EQ(got->generated_ns, 123456789);
}

TEST(SampleChannel, BatchRoundTrip) {
  SampleChannel ch;
  std::vector<WireSample> batch;
  for (int i = 0; i < 20; ++i) batch.push_back(make(i, i * 0.5));
  ch.write_batch(batch);
  for (int i = 0; i < 20; ++i) {
    const auto got = ch.read_sample();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->app_id, i);
    EXPECT_DOUBLE_EQ(got->value, i * 0.5);
  }
}

TEST(SampleChannel, ReadSomeDrainsInBulk) {
  SampleChannel ch;
  std::vector<WireSample> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(make(i, i));
  ch.write_batch(batch);
  const auto first = ch.read_some(6);
  ASSERT_EQ(first.size(), 6u);
  const auto rest = ch.read_some(64);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0].app_id, 6);
  EXPECT_EQ(rest[3].app_id, 9);
}

TEST(SampleChannel, EofAfterCloseWrite) {
  SampleChannel ch;
  ch.write_sample(make(1, 1.0));
  ch.close_write();
  EXPECT_TRUE(ch.read_sample().has_value());
  EXPECT_FALSE(ch.read_sample().has_value());       // EOF
  EXPECT_TRUE(ch.read_some(16).empty());            // still EOF
}

TEST(SampleChannel, EmptyBatchIsNoop) {
  SampleChannel ch;
  ch.write_batch({});
  ch.close_write();
  EXPECT_FALSE(ch.read_sample().has_value());
}

TEST(SampleChannel, CrossThreadTransfer) {
  SampleChannel ch;
  constexpr int kCount = 20000;  // > pipe capacity: exercises backpressure
  std::thread writer([&] {
    for (int i = 0; i < kCount; ++i) ch.write_sample(make(i & 0xFFFF, i));
    ch.close_write();
  });
  int received = 0;
  long long last_value = -1;
  while (true) {
    const auto samples = ch.read_some(128);
    if (samples.empty()) break;
    for (const auto& s : samples) {
      EXPECT_EQ(static_cast<long long>(s.value), last_value + 1);
      last_value = static_cast<long long>(s.value);
      ++received;
    }
  }
  writer.join();
  EXPECT_EQ(received, kCount);
}

TEST(SampleChannel, MoveTransfersOwnership) {
  SampleChannel a;
  a.write_sample(make(5, 5.0));
  SampleChannel b(std::move(a));
  const auto got = b.read_sample();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->app_id, 5);
}

TEST(SampleChannel, CloseIsIdempotent) {
  SampleChannel ch;
  ch.close_write();
  ch.close_write();
  ch.close_read();
  ch.close_read();
}

}  // namespace
}  // namespace paradyn::testbed
