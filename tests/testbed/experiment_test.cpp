#include "testbed/experiment.hpp"

#include <gtest/gtest.h>

#include "testbed/cpu_timer.hpp"

namespace paradyn::testbed {
namespace {

TestbedConfig quick(const std::string& workload, int batch) {
  TestbedConfig c;
  c.workload = workload;
  c.duration_sec = 0.25;
  c.sampling_period_ms = 5.0;
  c.metrics_per_sample = 20;
  c.batch_size = batch;
  return c;
}

TEST(CpuTimer, MeasuresSpinning) {
  const double before = thread_cpu_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 2'000'000; ++i) sink += i * 0.5;
  const double after = thread_cpu_seconds();
  EXPECT_GT(after, before);
  const long long a = monotonic_ns();
  const long long b = monotonic_ns();
  EXPECT_GE(b, a);
}

TEST(TestbedConfig, Validation) {
  EXPECT_NO_THROW(quick("bt", 1).validate());
  auto c = quick("lu", 1);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick("bt", 0);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick("bt", 1);
  c.duration_sec = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick("bt", 1);
  c.sampling_period_ms = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick("bt", 1);
  c.metrics_per_sample = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick("bt", 1);
  c.app_threads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Testbed, NoSampleLossEndToEnd) {
  const auto r = run_testbed(quick("bt", 1));
  EXPECT_GT(r.samples_sent, 0u);
  EXPECT_EQ(r.samples_received, r.samples_sent);
  EXPECT_GT(r.app_chunks, 0u);
}

TEST(Testbed, PartialBatchFlushedAtShutdown) {
  // A batch size that cannot divide the sample stream exactly still loses
  // nothing: the daemon flushes the partial batch on EOF.
  auto c = quick("is", 7);
  const auto r = run_testbed(c);
  EXPECT_EQ(r.samples_received, r.samples_sent);
}

TEST(Testbed, CfIssuesOneForwardPerSample) {
  const auto r = run_testbed(quick("bt", 1));
  EXPECT_EQ(r.forward_syscalls, r.samples_sent);
}

TEST(Testbed, BfAmortizesForwardSyscalls) {
  auto c = quick("bt", 32);
  const auto r = run_testbed(c);
  EXPECT_GT(r.forward_syscalls, 0u);
  // ceil(sent/32) forwarding calls (partial flush at the end).
  const auto expected = (r.samples_sent + 31) / 32;
  EXPECT_NEAR(static_cast<double>(r.forward_syscalls), static_cast<double>(expected), 2.0);
}

TEST(Testbed, BfReducesDaemonAndCollectorCpu) {
  // The paper's measured result (Figure 30): >60% Pd overhead reduction
  // and ~80% main-process reduction.  Thread CPU clocks are noisy at this
  // scale, so assert a conservative reduction.
  auto cf = quick("bt", 1);
  auto bf = quick("bt", 32);
  cf.duration_sec = bf.duration_sec = 0.6;
  cf.sampling_period_ms = bf.sampling_period_ms = 2.0;
  const auto rcf = run_testbed(cf);
  const auto rbf = run_testbed(bf);
  EXPECT_LT(rbf.daemon_cpu_sec, 0.8 * rcf.daemon_cpu_sec);
  EXPECT_LT(rbf.collector_cpu_sec, 0.6 * rcf.collector_cpu_sec);
}

TEST(Testbed, LatencyRecordedPerSample) {
  const auto r = run_testbed(quick("is", 4));
  EXPECT_EQ(r.latency_ms.count(), r.samples_received);
  EXPECT_GT(r.latency_ms.min(), 0.0);
}

TEST(Testbed, BfLatencyIncludesBatchingWait) {
  // In the real system (unlike the simulator's residence-time metric) BF
  // latency includes the wait for the batch to fill.
  auto cf = quick("bt", 1);
  auto bf = quick("bt", 64);
  const auto rcf = run_testbed(cf);
  const auto rbf = run_testbed(bf);
  EXPECT_GT(rbf.latency_ms.mean(), rcf.latency_ms.mean());
}

TEST(Testbed, NormalizedPercentagesConsistent) {
  const auto r = run_testbed(quick("bt", 1));
  EXPECT_GT(r.total_cpu_sec(), 0.0);
  EXPECT_GE(r.normalized_daemon_pct(), 0.0);
  EXPECT_LE(r.normalized_daemon_pct() + r.normalized_collector_pct(), 100.0);
}

TEST(Testbed, MultipleAppThreads) {
  auto c = quick("is", 8);
  c.app_threads = 3;
  c.duration_sec = 0.3;
  const auto r = run_testbed(c);
  EXPECT_EQ(r.samples_received, r.samples_sent);
  EXPECT_GT(r.samples_sent, 0u);
}

TEST(Testbed, MultipleDaemonsNoSampleLoss) {
  // Figure 29's one-Pd-per-node topology: 4 apps over 2 daemons, all
  // funneling into one collector.
  auto c = quick("is", 8);
  c.app_threads = 4;
  c.daemon_threads = 2;
  c.duration_sec = 0.3;
  const auto r = run_testbed(c);
  EXPECT_EQ(r.samples_received, r.samples_sent);
  EXPECT_GT(r.daemon_cpu_sec, 0.0);
}

TEST(Testbed, DaemonCountValidation) {
  auto c = quick("bt", 1);
  c.daemon_threads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.daemon_threads = 2;  // > app_threads (1)
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

class WorkloadPolicyMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(WorkloadPolicyMatrix, RunsCleanlyWithoutLoss) {
  const auto [workload, batch] = GetParam();
  const auto r = run_testbed(quick(workload, batch));
  EXPECT_EQ(r.samples_received, r.samples_sent);
  EXPECT_GT(r.daemon_cpu_sec, 0.0);
  EXPECT_GT(r.app_cpu_sec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllCells, WorkloadPolicyMatrix,
                         ::testing::Combine(::testing::Values("bt", "is"),
                                            ::testing::Values(1, 16, 128)),
                         [](const auto& info) {
                           return std::string(std::get<0>(info.param)) + "_batch" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace paradyn::testbed
