#include "testbed/workload.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

namespace paradyn::testbed {
namespace {

TEST(BtWorkload, SolvesSystemAccurately) {
  BtWorkload bt(32);
  bt.enable_residual_check(true);
  for (int i = 0; i < 5; ++i) {
    const double checksum = bt.run_chunk();
    EXPECT_TRUE(std::isfinite(checksum));
    // A block-Thomas solve of a well-conditioned system should be accurate
    // to near machine precision.
    EXPECT_LT(bt.last_residual(), 1e-9) << "chunk " << i;
  }
  EXPECT_EQ(bt.chunks_done(), 5u);
}

TEST(BtWorkload, ChunksProgressAndDiffer) {
  BtWorkload bt;
  const double a = bt.run_chunk();
  const double b = bt.run_chunk();
  EXPECT_NE(a, b);  // fresh random system each chunk
  EXPECT_EQ(bt.chunks_done(), 2u);
  EXPECT_EQ(bt.name(), "bt");
}

TEST(BtWorkload, RejectsDegenerateLine) {
  EXPECT_THROW(BtWorkload(1), std::invalid_argument);
}

TEST(IsWorkload, RanksAreAPermutation) {
  // Reach into behavior indirectly: the checksum combines ranks; across
  // many chunks it must stay within [0, 2*(n-1)] and vary.
  IsWorkload is(1024, 256);
  bool varied = false;
  double first = is.run_chunk();
  for (int i = 0; i < 10; ++i) {
    const double c = is.run_chunk();
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 2.0 * 1024.0);
    if (c != first) varied = true;
  }
  EXPECT_TRUE(varied);
  EXPECT_EQ(is.chunks_done(), 11u);
  EXPECT_EQ(is.name(), "is");
}

TEST(IsWorkload, Validation) {
  EXPECT_THROW(IsWorkload(0, 16), std::invalid_argument);
  EXPECT_THROW(IsWorkload(16, 0), std::invalid_argument);
}

TEST(MakeWorkload, FactoryByName) {
  EXPECT_EQ(make_workload("bt")->name(), "bt");
  EXPECT_EQ(make_workload("is")->name(), "is");
  EXPECT_THROW((void)make_workload("lu"), std::invalid_argument);
}

TEST(Workloads, ChunksAreFastEnoughForSampling) {
  // A chunk must be well under the 10 ms sampling period so the
  // instrumentation timer fires on schedule.
  for (const char* name : {"bt", "is"}) {
    auto w = make_workload(name);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 10; ++i) (void)w->run_chunk();
    const auto dt = std::chrono::steady_clock::now() - t0;
    const double ms_per_chunk =
        std::chrono::duration<double, std::milli>(dt).count() / 10.0;
    EXPECT_LT(ms_per_chunk, 5.0) << name;
  }
}

}  // namespace
}  // namespace paradyn::testbed
