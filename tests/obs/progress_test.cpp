#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/repro.hpp"

namespace paradyn::obs {
namespace {

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) n += c == '\n';
  return n;
}

TEST(ProgressMeter, PrintsExactlyOneFinalLine) {
  std::ostringstream os;
  // Huge interval: intermediate completions are throttled away; only the
  // final completion prints, and finish() must not duplicate it.
  ProgressMeter meter(os, "sweep", 3, /*min_interval_sec=*/3600.0);
  meter.run_completed(100);
  meter.run_completed(100);
  meter.run_completed(100);
  meter.finish();
  meter.finish();  // idempotent
  EXPECT_EQ(count_lines(os.str()), 1u);
  EXPECT_NE(os.str().find("[sweep] 3/3 runs (100%)"), std::string::npos);
  EXPECT_EQ(meter.completed(), 3u);
  EXPECT_EQ(meter.events(), 300u);
}

TEST(ProgressMeter, UnthrottledHeartbeatShowsEta) {
  std::ostringstream os;
  ProgressMeter meter(os, "run", 4, /*min_interval_sec=*/0.0);
  meter.run_completed(10);
  EXPECT_NE(os.str().find("1/4 runs (25%)"), std::string::npos);
  EXPECT_NE(os.str().find("eta"), std::string::npos);
  meter.run_completed(10);
  meter.run_completed(10);
  meter.run_completed(10);
  meter.finish();
  EXPECT_EQ(count_lines(os.str()), 4u);
  EXPECT_NE(os.str().find("4/4 runs (100%)"), std::string::npos);
}

TEST(ProgressMeter, FinishWithoutCompletionsStillReports) {
  std::ostringstream os;
  {
    ProgressMeter meter(os, "empty", 0);
    meter.finish();
  }
  EXPECT_NE(os.str().find("[empty] 0/0 runs (100%)"), std::string::npos);
}

TEST(ReproStamp, WritesPrefixedKeyValueLines) {
  ReproStamp stamp;
  stamp.tool = "roccsim";
  stamp.config = "NOW nodes=4";
  stamp.seed = 7;
  stamp.has_seed = true;
  stamp.jobs = 2;
  stamp.extra = "axis=batch";

  std::ostringstream os;
  stamp.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# tool: roccsim"), std::string::npos);
  EXPECT_NE(out.find("# config: NOW nodes=4"), std::string::npos);
  EXPECT_NE(out.find("# seed: 7"), std::string::npos);
  EXPECT_NE(out.find("# jobs: 2"), std::string::npos);
  EXPECT_NE(out.find("axis=batch"), std::string::npos);
  EXPECT_NE(out.find("# git: "), std::string::npos);
  // Every line carries the prefix so CSV consumers skip the whole stamp.
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("# ", 0), 0u) << line;
  }
}

TEST(ReproStamp, GitDescribeIsStableAndNonEmpty) {
  const std::string& rev = git_describe();
  EXPECT_FALSE(rev.empty());
  EXPECT_EQ(&rev, &git_describe());  // cached
}

}  // namespace
}  // namespace paradyn::obs
