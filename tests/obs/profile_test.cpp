#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "rocc/config.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::obs {
namespace {

ProfileReport profile_string(const std::string& json, ProfileOptions options = {}) {
  std::istringstream is(json);
  return profile_trace_stream(is, options);
}

const HypothesisFinding* find_hypothesis(const ProfileReport& report, const std::string& name) {
  for (const auto& h : report.hypotheses) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

ParsedEvent lifecycle(const char* ph, double ts, const char* id, std::int64_t pid = 1,
                      std::int64_t tid = 3) {
  ParsedEvent ev;
  ev.cat = "sample";
  ev.name = "lifecycle";
  ev.ph = ph;
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.id = id;
  return ev;
}

ParsedEvent mark(double ts, const char* id, const char* stage, double arg,
                 std::int64_t pid = 1) {
  ParsedEvent ev = lifecycle("n", ts, id, pid);
  ev.num_args[stage] = arg;
  return ev;
}

TEST(Profiler, EmptyTraceYieldsWellFormedReport) {
  const auto report = profile_string("{\"traceEvents\": []}");
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.chains_complete, 0u);
  EXPECT_EQ(report.chains_unmatched, 0u);
  EXPECT_EQ(report.dominant_hop, -1);
  EXPECT_TRUE(report.resources.empty());
  EXPECT_TRUE(report.top_chains.empty());
  ASSERT_EQ(report.hypotheses.size(), 4u);
  for (const auto& h : report.hypotheses) EXPECT_FALSE(h.held);

  // Every writer must stay well-formed on the empty report.
  std::ostringstream text, json, csv, folded;
  print_profile_report(text, report);
  write_profile_json(json, report);
  write_profile_csv(csv, report);
  write_profile_folded(folded, report);
  EXPECT_NE(text.str().find("0 chains"), std::string::npos);
  EXPECT_NE(json.str().find("\"chains_complete\": 0"), std::string::npos);
  EXPECT_NE(csv.str().find("hop,"), std::string::npos);
}

TEST(Profiler, SyntheticChainDecomposesIntoHops) {
  Profiler profiler;
  profiler.feed(lifecycle("b", 1000.0, "0x2a"));
  profiler.feed(mark(1500.0, "0x2a", "enq", 1.0));
  profiler.feed(mark(4000.0, "0x2a", "deq", 0.0));
  profiler.feed(mark(5000.0, "0x2a", "collect", 800.0));  // daemon service us
  profiler.feed(mark(6000.0, "0x2a", "fwd", 1.0));
  profiler.feed(mark(8900.0, "0x2a", "net", 1200.0));  // network occupancy us
  profiler.feed(lifecycle("e", 10000.0, "0x2a"));
  const auto report = profiler.finalize();

  ASSERT_EQ(report.chains_complete, 1u);
  EXPECT_EQ(report.chains_unmatched, 0u);
  EXPECT_EQ(report.chains_out_of_order, 0u);

  // gen=1000 enq=1500 deq=4000 fwd=6000 net=8900 end=10000.  The gen->enq
  // blocked wait folds into the pipe hop, so app is always zero here.
  const auto& app = report.hops[static_cast<int>(Hop::App)];
  const auto& pipe = report.hops[static_cast<int>(Hop::Pipe)];
  const auto& daemon = report.hops[static_cast<int>(Hop::Daemon)];
  const auto& net = report.hops[static_cast<int>(Hop::Network)];
  const auto& main_hop = report.hops[static_cast<int>(Hop::Main)];
  EXPECT_DOUBLE_EQ(app.queue_total_us + app.service_total_us, 0.0);
  EXPECT_DOUBLE_EQ(pipe.queue_total_us, 3000.0);  // 500 blocked + 2500 residence
  EXPECT_DOUBLE_EQ(daemon.queue_total_us, 1200.0);
  EXPECT_DOUBLE_EQ(daemon.service_total_us, 800.0);
  EXPECT_DOUBLE_EQ(net.queue_total_us, 1700.0);
  EXPECT_DOUBLE_EQ(net.service_total_us, 1200.0);
  EXPECT_DOUBLE_EQ(main_hop.queue_total_us, 1100.0);
  EXPECT_EQ(report.dominant_hop, static_cast<int>(Hop::Pipe));

  ASSERT_EQ(report.top_chains.size(), 1u);
  EXPECT_DOUBLE_EQ(report.top_chains.front().latency_us, 9000.0);
  EXPECT_EQ(report.top_chains.front().dominant_hop, static_cast<int>(Hop::Pipe));
}

TEST(Profiler, UnmatchedBeginsAndEndsAreCountedNotCrashed) {
  Profiler profiler;
  profiler.feed(lifecycle("b", 100.0, "0x1"));  // begin without end
  profiler.feed(lifecycle("e", 200.0, "0x2"));  // end without begin
  profiler.feed(mark(150.0, "0x3", "deq", 0.0));  // mark for a chain never begun
  const auto report = profiler.finalize();
  EXPECT_EQ(report.chains_complete, 0u);
  EXPECT_EQ(report.chains_unmatched, 2u);
  EXPECT_EQ(report.dominant_hop, -1);
}

TEST(Profiler, OutOfOrderTimestampsAreClampedAndFlagged) {
  Profiler profiler;
  profiler.feed(lifecycle("b", 5000.0, "0x7"));
  profiler.feed(mark(4000.0, "0x7", "enq", 1.0));  // regresses before the begin
  profiler.feed(mark(5500.0, "0x7", "deq", 0.0));
  profiler.feed(lifecycle("e", 6000.0, "0x7"));
  const auto report = profiler.finalize();
  ASSERT_EQ(report.chains_complete, 1u);
  EXPECT_EQ(report.chains_out_of_order, 1u);
  double total = 0.0;
  for (const auto& hop : report.hops) {
    EXPECT_GE(hop.queue_total_us, 0.0);  // clamping forbids negative hops
    total += hop.queue_total_us + hop.service_total_us;
  }
  EXPECT_DOUBLE_EQ(total, 1000.0);  // latency survives as end - clamped gen
}

TEST(Profiler, TruncatedShardTailThrowsWithOffset) {
  // A trace cut mid-event (a crashed writer's shard tail) must fail loudly
  // with a byte offset, not silently produce a half-empty report.
  TraceRecorder recorder(1u << 10);
  Tracer tracer = recorder.create_tracer("app");
  for (int i = 0; i < 50; ++i) {
    tracer.complete("cpu", "burst", 0, i * 100.0, 40.0);
  }
  std::ostringstream full;
  recorder.write_chrome_json(full);
  const std::string cut = full.str().substr(0, full.str().size() * 6 / 10);
  try {
    profile_string(cut);
    FAIL() << "truncated trace parsed without error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Profiler, PipeBackpressureFaultIsAttributedToThePipeHop) {
  // The acceptance scenario: two NOW nodes with two app processes each at a
  // 20 ms sampling period.  Healthy, the pipe never fills inside 3 s; with
  // the capacity clamped to 1 over [1s, 2s) the producers block and the
  // profiler must (a) name the pipe hop dominant and (b) hold
  // ExcessivePipeBackpressure first inside the fault window — and nowhere
  // before it.
  auto cfg = rocc::SystemConfig::now(2);
  cfg.app_processes_per_node = 2;
  cfg.sampling_period_us = 20'000.0;
  cfg.batch_size = 1;
  cfg.duration_us = 3.0e6;

  const auto run = [](rocc::SystemConfig config) {
    TraceRecorder recorder(1u << 18);
    Tracer tracer = recorder.create_tracer();
    rocc::Simulation sim(config);
    sim.set_tracer(&tracer);
    const auto result = sim.run();
    EXPECT_GT(result.samples_delivered, 0u);
    return profile_recorder(recorder);
  };

  const auto healthy = run(cfg);
  const auto* calm = find_hypothesis(healthy, "ExcessivePipeBackpressure");
  ASSERT_NE(calm, nullptr);
  EXPECT_FALSE(calm->held);

  cfg.faults =
      rocc::FaultPlan::parse("pipe_backpressure:daemon=all,start=1s,dur=1s,capacity=1");
  const auto faulted = run(cfg);
  EXPECT_EQ(faulted.dominant_hop, static_cast<int>(Hop::Pipe));
  double total = 0.0;
  for (const auto& hop : faulted.hops) total += hop.queue_total_us + hop.service_total_us;
  const auto& pipe = faulted.hops[static_cast<int>(Hop::Pipe)];
  EXPECT_GT(pipe.queue_total_us / total, 0.5);

  const auto* held = find_hypothesis(faulted, "ExcessivePipeBackpressure");
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(held->held);
  EXPECT_GE(held->first_held_start_us, 1.0e6);  // never before the injection
  EXPECT_LT(held->first_held_start_us, 1.3e6);  // and promptly after it
  EXPECT_LE(held->first_held_end_us, 2.2e6);
  EXPECT_GE(held->windows_held, 3u);
}

TEST(Profiler, StreamingJsonPathMatchesNativeRecorderPath) {
  // roccprof FILE (streaming JSON) and roccsim --profile (native recorder
  // feed) must agree on the same trace: counts exactly, totals to within
  // the JSON writer's timestamp rounding.
  auto cfg = rocc::SystemConfig::now(2);
  cfg.app_processes_per_node = 2;
  cfg.sampling_period_us = 20'000.0;
  cfg.duration_us = 1.0e6;

  TraceRecorder recorder(1u << 18);
  Tracer tracer = recorder.create_tracer();
  rocc::Simulation sim(cfg);
  sim.set_tracer(&tracer);
  (void)sim.run();

  const auto native = profile_recorder(recorder);
  std::stringstream json;
  recorder.write_chrome_json(json);
  const auto streamed = profile_trace_stream(json);

  EXPECT_EQ(streamed.events, native.events);
  EXPECT_EQ(streamed.chains_complete, native.chains_complete);
  EXPECT_EQ(streamed.chains_unmatched, native.chains_unmatched);
  EXPECT_EQ(streamed.dominant_hop, native.dominant_hop);
  for (int h = 0; h < kHopCount; ++h) {
    EXPECT_EQ(streamed.hops[h].count, native.hops[h].count);
    const double tolerance =
        0.01 * static_cast<double>(native.chains_complete) + 1.0;  // ts rounding
    EXPECT_NEAR(streamed.hops[h].queue_total_us, native.hops[h].queue_total_us, tolerance);
    EXPECT_NEAR(streamed.hops[h].service_total_us, native.hops[h].service_total_us, tolerance);
  }
  ASSERT_EQ(streamed.hypotheses.size(), native.hypotheses.size());
  for (std::size_t i = 0; i < native.hypotheses.size(); ++i) {
    EXPECT_EQ(streamed.hypotheses[i].held, native.hypotheses[i].held) << native.hypotheses[i].name;
    EXPECT_EQ(streamed.hypotheses[i].windows_held, native.hypotheses[i].windows_held);
  }
  EXPECT_EQ(streamed.resources.size(), native.resources.size());
}

TEST(Profiler, ReportsAreDeterministicAcrossRuns) {
  auto cfg = rocc::SystemConfig::now(2);
  cfg.sampling_period_us = 20'000.0;
  cfg.duration_us = 1.0e6;
  cfg.faults =
      rocc::FaultPlan::parse("pipe_backpressure:daemon=all,start=200ms,dur=300ms,capacity=1");

  const auto render = [&] {
    TraceRecorder recorder(1u << 18);
    Tracer tracer = recorder.create_tracer();
    rocc::Simulation sim(cfg);
    sim.set_tracer(&tracer);
    (void)sim.run();
    std::ostringstream text, json, folded;
    const auto report = profile_recorder(recorder);
    print_profile_report(text, report);
    write_profile_json(json, report);
    write_profile_folded(folded, report);
    return text.str() + json.str() + folded.str();
  };
  EXPECT_EQ(render(), render());  // byte-identical, rep after rep
}

}  // namespace
}  // namespace paradyn::obs
