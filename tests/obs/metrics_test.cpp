#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "rocc/config.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::obs {
namespace {

TEST(Counter, MonotonicIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, ExactMomentsAndBoundedPercentiles) {
  Histogram h;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 31.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.2);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  // Power-of-two buckets: estimates within a factor of ~1.5, clamped to
  // the observed range, and monotone in p.
  const double p50 = h.percentile(0.5);
  const double p90 = h.percentile(0.9);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p90, h.max());
  EXPECT_LE(p50, p90);
  EXPECT_NEAR(p50, 4.0, 4.0 * 0.5);
}

TEST(Histogram, LogLinearSubBucketsBoundRelativeError) {
  // 16 linear sub-buckets per power of two cap the quantization error of a
  // bucketed value at one sub-bucket width: 1/16 of the bucket's base, i.e.
  // ~6.25% of the value.  Check across five decades.
  for (const double v : {3.0, 97.0, 1000.0, 123456.0, 9.9e6}) {
    Histogram h;
    for (int i = 0; i < 100; ++i) h.observe(v);
    for (const double p : {0.25, 0.5, 0.99}) {
      EXPECT_NEAR(h.percentile(p), v, v * (1.0 / 16.0 + 1e-9)) << "v=" << v << " p=" << p;
    }
  }
  // A two-point distribution's median must land on a real observation's
  // sub-bucket, not between the two modes.
  Histogram bimodal;
  for (int i = 0; i < 75; ++i) bimodal.observe(100.0);
  for (int i = 0; i < 25; ++i) bimodal.observe(10'000.0);
  EXPECT_NEAR(bimodal.percentile(0.5), 100.0, 100.0 / 16.0 + 1e-9);
  EXPECT_NEAR(bimodal.percentile(0.9), 10'000.0, 10'000.0 / 16.0 + 1e-9);
}

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("samples");
  Counter& b = reg.counter("samples");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("samples").value(), 3u);
  Gauge& g = reg.gauge("depth");
  g.set(9.0);
  EXPECT_EQ(&g, &reg.gauge("depth"));
}

TEST(MetricsRegistry, SampleRecordsProbesCountersAndGauges) {
  MetricsRegistry reg;
  double probe_value = 1.0;
  reg.add_probe("probe", [&probe_value] { return probe_value; });
  Counter& c = reg.counter("events");
  Gauge& g = reg.gauge("depth");

  c.inc(10);
  g.set(2.0);
  reg.sample(0.0);
  probe_value = 5.0;
  c.inc(10);
  g.set(4.0);
  reg.sample(100.0);

  ASSERT_EQ(reg.rows(), 2u);
  const auto& cols = reg.column_names();
  const auto col = [&](const std::string& name) {
    const auto it = std::find(cols.begin(), cols.end(), name);
    EXPECT_NE(it, cols.end()) << name;
    return static_cast<std::size_t>(it - cols.begin());
  };
  const auto [t0, row0] = reg.row(0);
  const auto [t1, row1] = reg.row(1);
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 100.0);
  EXPECT_DOUBLE_EQ(row0->at(col("probe")), 1.0);
  EXPECT_DOUBLE_EQ(row1->at(col("probe")), 5.0);
  // Counter columns are cumulative, hence monotone.
  EXPECT_DOUBLE_EQ(row0->at(col("events")), 10.0);
  EXPECT_DOUBLE_EQ(row1->at(col("events")), 20.0);
  EXPECT_DOUBLE_EQ(row1->at(col("depth")), 4.0);
}

TEST(MetricsRegistry, CsvHasHeaderAndOneLinePerRow) {
  MetricsRegistry reg;
  reg.add_probe("queue", [] { return 1.5; });
  reg.histogram("latency").observe(2.0);
  reg.sample(0.0);
  reg.sample(50.0);

  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_us,queue"), std::string::npos);
  EXPECT_NE(csv.find("\n0.000,1.5"), std::string::npos);
  EXPECT_NE(csv.find("\n50.000,1.5"), std::string::npos);
  EXPECT_NE(csv.find("latency"), std::string::npos);  // histogram summary line
}

TEST(MetricsRegistry, SimulationProbesTickOnSimulatedTime) {
  // enable_metrics(registry, tick) must sample at t = 0, tick, 2*tick, ...
  // in *simulated* microseconds, aligned regardless of event activity.
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 0.2e6;
  cfg.sampling_period_us = 10'000.0;
  constexpr double kTickUs = 25'000.0;

  MetricsRegistry reg;
  rocc::Simulation sim(cfg);
  sim.enable_metrics(reg, kTickUs);
  const auto result = sim.run();
  EXPECT_GT(result.samples_delivered, 0u);

  ASSERT_GE(reg.rows(), static_cast<std::size_t>(cfg.duration_us / kTickUs));
  for (std::size_t i = 0; i < reg.rows(); ++i) {
    const auto [t, values] = reg.row(i);
    EXPECT_DOUBLE_EQ(t, static_cast<double>(i) * kTickUs);
    EXPECT_EQ(values->size(), reg.column_names().size());
  }

  // The standard probes are registered and the counter-like ones are
  // monotone non-decreasing over simulated time.
  const auto& cols = reg.column_names();
  for (const char* name : {"engine.events_processed", "samples.generated", "samples.delivered",
                           "net.busy_frac", "pipe.occupancy_total"}) {
    EXPECT_NE(std::find(cols.begin(), cols.end(), name), cols.end()) << name;
  }
  for (const char* name : {"engine.events_processed", "samples.generated", "samples.delivered"}) {
    const auto it = std::find(cols.begin(), cols.end(), name);
    ASSERT_NE(it, cols.end());
    const auto idx = static_cast<std::size_t>(it - cols.begin());
    double prev = -1.0;
    for (std::size_t i = 0; i < reg.rows(); ++i) {
      const double v = reg.row(i).second->at(idx);
      EXPECT_GE(v, prev) << name << " at row " << i;
      prev = v;
    }
    EXPECT_GT(prev, 0.0) << name;
  }
}

}  // namespace
}  // namespace paradyn::obs
