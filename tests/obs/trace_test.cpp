#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "experiments/parallel.hpp"
#include "obs/trace_read.hpp"
#include "rocc/config.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::obs {
namespace {

ParsedTrace round_trip(const TraceRecorder& recorder) {
  std::stringstream ss;
  recorder.write_chrome_json(ss);
  return read_chrome_trace(ss);
}

/// Non-metadata events only ("M" rows carry process/thread names).
std::vector<const ParsedEvent*> data_events(const ParsedTrace& trace) {
  std::vector<const ParsedEvent*> out;
  for (const auto& e : trace.events) {
    if (e.ph != "M") out.push_back(&e);
  }
  return out;
}

TEST(TraceRecorder, EmptyRecorderWritesValidJson) {
  const TraceRecorder recorder(16);
  const auto trace = round_trip(recorder);
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace.recorded, 0u);
  EXPECT_EQ(trace.dropped, 0u);
}

TEST(TraceRecorder, TracerWithNoEventsWritesValidJson) {
  TraceRecorder recorder(16);
  Tracer tracer = recorder.create_tracer("idle");
  ASSERT_TRUE(tracer.attached());
  const auto trace = round_trip(recorder);
  EXPECT_TRUE(data_events(trace).empty());  // only process-name metadata
}

TEST(TraceRecorder, RingWrapsKeepingNewestAndCountsDrops) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kEmitted = 20;
  TraceRecorder recorder(kCapacity);
  Tracer tracer = recorder.create_tracer();
  for (std::size_t i = 0; i < kEmitted; ++i) {
    tracer.instant("test", "tick", 0, static_cast<double>(i));
  }
  EXPECT_EQ(recorder.recorded(), kEmitted);
  EXPECT_EQ(recorder.dropped(), kEmitted - kCapacity);

  const auto trace = round_trip(recorder);
  EXPECT_EQ(trace.recorded, kEmitted);
  EXPECT_EQ(trace.dropped, kEmitted - kCapacity);
  const auto events = data_events(trace);
  ASSERT_EQ(events.size(), kCapacity);
  // The survivors must be exactly the newest kCapacity timestamps.
  std::set<double> ts;
  for (const auto* e : events) ts.insert(e->ts);
  ASSERT_EQ(ts.size(), kCapacity);
  EXPECT_DOUBLE_EQ(*ts.begin(), static_cast<double>(kEmitted - kCapacity));
  EXPECT_DOUBLE_EQ(*ts.rbegin(), static_cast<double>(kEmitted - 1));
}

TEST(TraceRecorder, AllPhasesRoundTripThroughJson) {
  TraceRecorder recorder(64);
  Tracer tracer = recorder.create_tracer("sim");
  tracer.set_track_name(0, "engine");
  tracer.complete("cpu", "app", 0, 10.0, 5.0, "node", 3.0, "len", 2.5);
  tracer.instant("pipe", "enqueue", 1, 11.0, "depth", 4.0);
  tracer.counter("backlog", 12.0, 7.0);
  tracer.async_begin("sample", "lifecycle", 42, 1, 13.0);
  tracer.async_instant("sample", "lifecycle", 42, 2, 14.0);
  tracer.async_end("sample", "lifecycle", 42, 3, 15.0, "latency", 2.0);

  const auto trace = round_trip(recorder);
  const auto events = data_events(trace);
  ASSERT_EQ(events.size(), 6u);

  const auto find = [&](const std::string& ph) -> const ParsedEvent* {
    for (const auto* e : events) {
      if (e->ph == ph) return e;
    }
    return nullptr;
  };
  const ParsedEvent* x = find("X");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->cat, "cpu");
  EXPECT_EQ(x->name, "app");
  EXPECT_DOUBLE_EQ(x->ts, 10.0);
  EXPECT_DOUBLE_EQ(x->dur, 5.0);
  EXPECT_DOUBLE_EQ(x->num_args.at("node"), 3.0);
  EXPECT_DOUBLE_EQ(x->num_args.at("len"), 2.5);

  const ParsedEvent* i = find("i");
  ASSERT_NE(i, nullptr);
  EXPECT_DOUBLE_EQ(i->num_args.at("depth"), 4.0);

  const ParsedEvent* c = find("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name, "backlog");
  EXPECT_DOUBLE_EQ(c->num_args.at("value"), 7.0);

  for (const char* ph : {"b", "n", "e"}) {
    const ParsedEvent* a = find(ph);
    ASSERT_NE(a, nullptr) << ph;
    EXPECT_EQ(a->cat, "sample");
    EXPECT_FALSE(a->id.empty());
    EXPECT_EQ(a->id, find("b")->id);
  }

  // Track/process labels arrive as metadata events.
  bool saw_process_name = false;
  bool saw_thread_name = false;
  for (const auto& e : trace.events) {
    if (e.ph != "M") continue;
    if (e.name == "process_name" && e.str_args.count("name") &&
        e.str_args.at("name") == "sim") {
      saw_process_name = true;
    }
    if (e.name == "thread_name" && e.str_args.count("name") &&
        e.str_args.at("name") == "engine") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
}

TEST(TraceRecorder, HugeTraceStaysValidJson) {
  constexpr std::size_t kEvents = 50'000;
  TraceRecorder recorder(kEvents);
  Tracer tracer = recorder.create_tracer();
  for (std::size_t i = 0; i < kEvents; ++i) {
    tracer.complete("cat", "span", static_cast<std::int32_t>(i % 7), static_cast<double>(i), 0.5);
  }
  const auto trace = round_trip(recorder);
  EXPECT_EQ(data_events(trace).size(), kEvents);
  EXPECT_EQ(trace.dropped, 0u);
}

TEST(TraceRecorder, ConcurrentTracersWriteDisjointShards) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5'000;
  TraceRecorder recorder(kPerThread);
  std::vector<Tracer> tracers(kThreads);
  // Handles are created up front (create_tracer is itself thread-safe, but
  // this mirrors how roccsim preallocates the slots).
  for (std::size_t t = 0; t < kThreads; ++t) {
    tracers[t] = recorder.create_tracer("worker " + std::to_string(t));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracers, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        tracers[t].instant("test", "tick", 0, static_cast<double>(i), "thread",
                           static_cast<double>(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto trace = round_trip(recorder);
  std::set<std::int64_t> pids;
  std::size_t count = 0;
  for (const auto& e : trace.events) {
    if (e.ph == "M") continue;
    pids.insert(e.pid);
    ++count;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
  EXPECT_EQ(pids.size(), kThreads);  // one Chrome process per tracer
}

TEST(TraceRecorder, ParallelRunnerRepsShareOneRecorderSafely) {
  // The roccsim --reps N --trace path: each replication's hook attaches its
  // own tracer to a shared recorder from a worker thread.
  constexpr std::size_t kReps = 4;
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 0.1e6;
  cfg.sampling_period_us = 10'000.0;

  TraceRecorder recorder(1u << 16);
  std::vector<Tracer> tracers(kReps);
  experiments::ParallelRunner runner(kReps);
  runner.set_run_hook([&](rocc::Simulation& sim, std::size_t /*cell*/, std::size_t rep) {
    tracers[rep] = recorder.create_tracer("rep " + std::to_string(rep));
    sim.set_tracer(&tracers[rep]);
  });
  const auto results = runner.replications(cfg, kReps);
  ASSERT_EQ(results.size(), kReps);
  EXPECT_GT(recorder.recorded(), 0u);

  const auto trace = round_trip(recorder);
  std::set<std::int64_t> pids;
  for (const auto& e : trace.events) {
    if (e.ph != "M") pids.insert(e.pid);
  }
  EXPECT_EQ(pids.size(), kReps);
}

TEST(TraceSummary, SimulationTraceHasSpansAndCompleteLifecycles) {
  // The acceptance shape: engine spans, occupancy intervals, and at least
  // one complete sample generation-to-delivery chain.
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 0.2e6;
  cfg.sampling_period_us = 10'000.0;

  TraceRecorder recorder(1u << 16);
  Tracer tracer = recorder.create_tracer();
  rocc::Simulation sim(cfg);
  sim.set_tracer(&tracer);
  const auto result = sim.run();
  EXPECT_GT(result.samples_delivered, 0u);

  const auto trace = round_trip(recorder);
  const auto summary = summarize_trace(trace);
  EXPECT_GT(summary.events, 0u);
  EXPECT_EQ(summary.recorded, recorder.recorded());

  const auto has_type = [&](const std::string& cat, const std::string& name) {
    for (const auto& t : summary.types) {
      if (t.cat == cat && t.name == name && t.count > 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_type("des", "event"));     // engine execution spans
  EXPECT_TRUE(has_type("cpu", "app"));       // CPU occupancy
  EXPECT_TRUE(has_type("pipe", "enqueue"));
  EXPECT_TRUE(has_type("main", "deliver"));

  ASSERT_FALSE(summary.chains.empty());
  const auto& chain = summary.chains.front();
  EXPECT_EQ(chain.cat, "sample");
  EXPECT_EQ(chain.name, "lifecycle");
  EXPECT_GE(chain.complete_chains, 1u);
  EXPECT_GT(chain.p50_us, 0.0);
  EXPECT_LE(chain.p50_us, chain.p90_us);
  EXPECT_LE(chain.p90_us, chain.p99_us);
  EXPECT_LE(chain.p99_us, chain.max_us);

  std::ostringstream os;
  print_trace_summary(os, summary);
  EXPECT_NE(os.str().find("sample"), std::string::npos);
}

TEST(TraceReader, RejectsMalformedJson) {
  std::stringstream ss("{\"traceEvents\": [ {\"ph\": ");
  EXPECT_THROW((void)read_chrome_trace(ss), std::runtime_error);
}

}  // namespace
}  // namespace paradyn::obs
