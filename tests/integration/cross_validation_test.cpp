// Cross-module integration tests: the three views of the same system —
// analytic model, discrete-event simulation, and the characterization
// pipeline — must agree where their assumptions overlap.
#include <gtest/gtest.h>

#include <memory>

#include "analytic/operational.hpp"
#include "consultant/consultant.hpp"
#include "rocc/simulation.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"

namespace paradyn {
namespace {

TEST(CrossValidation, SimulationMatchesUtilizationLawAtLightLoad) {
  // At 40 ms sampling with one app per node, every station is far from
  // saturation, so the operational laws should predict the simulator's
  // utilizations closely (equations (2), (5)).
  analytic::Scenario s;
  s.sampling_period_us = 40'000.0;
  s.nodes = 4;
  const auto predicted = analytic::now_metrics(s);

  auto cfg = rocc::SystemConfig::now(4);
  cfg.duration_us = 30e6;
  cfg.warmup_us = 2e6;
  cfg.sampling_period_us = 40'000.0;
  cfg.main_on_dedicated_host = true;  // keep node 0 comparable to the others
  const auto sim = rocc::run_simulation(cfg);

  EXPECT_NEAR(sim.pd_cpu_util_pct, 100.0 * predicted.pd_cpu_utilization,
              0.15 * 100.0 * predicted.pd_cpu_utilization);
  EXPECT_NEAR(sim.main_cpu_util_pct, 100.0 * predicted.main_cpu_utilization,
              0.15 * 100.0 * predicted.main_cpu_utilization);
}

TEST(CrossValidation, SimulationLatencyAboveAnalyticLowerBound) {
  // The analytic residence time ignores contention with the application's
  // own bursts (it only sees IS traffic), so it lower-bounds the simulated
  // monitoring latency.
  analytic::Scenario s;
  s.sampling_period_us = 40'000.0;
  s.nodes = 4;
  const auto predicted = analytic::now_metrics(s);

  auto cfg = rocc::SystemConfig::now(4);
  cfg.duration_us = 10e6;
  cfg.sampling_period_us = 40'000.0;
  const auto sim = rocc::run_simulation(cfg);

  ASSERT_GT(sim.latency_us.count(), 0u);
  EXPECT_GT(sim.latency_us.mean(), predicted.monitoring_latency_us);
}

TEST(CrossValidation, MvaBoundsSimulatedApplicationThroughput) {
  // The closed-model MVA cycle throughput upper-bounds the simulated
  // application's cycle rate (the simulation adds IS and background
  // contention MVA does not see).
  const auto mva = analytic::application_mva(1);

  auto cfg = rocc::SystemConfig::now(1);
  cfg.duration_us = 20e6;
  cfg.background.enabled = false;
  cfg.main_on_dedicated_host = true;
  rocc::Simulation sim(cfg);
  const auto r = sim.run();
  (void)r;
  // One app process: cycles/us from the simulation.
  // Reconstruct the rate from app CPU time / mean demand.
  const double sim_cycle_rate =
      r.app_cpu_time_per_node_us / 2'213.0 / cfg.duration_us;  // cycles per us
  EXPECT_LE(sim_cycle_rate, mva.throughput_per_us * 1.05);
  // And it should be close at this light-load point.
  EXPECT_GT(sim_cycle_rate, 0.8 * mva.throughput_per_us);
}

TEST(CrossValidation, FullPipelineTraceToConsultant) {
  // measurement -> characterization -> simulation -> bottleneck search:
  // the complete loop using only public APIs.
  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(20e6), 1, 4242);
  const auto workload = trace::characterize(records);
  const auto& app = workload.at(trace::ProcessClass::Application);

  auto cfg = rocc::SystemConfig::now(2);
  cfg.app.cpu_burst = app.cpu_length;
  cfg.app.net_burst = app.net_length;
  cfg.duration_us = 10e6;
  cfg.sampling_period_us = 40'000.0;
  cfg.main_on_dedicated_host = true;

  rocc::Simulation sim(cfg);
  consultant::PerformanceConsultant pc;
  sim.main_process()->set_sample_sink([&pc](const rocc::Sample& s) { pc.observe(s); });
  const auto r = sim.run();

  EXPECT_GT(r.samples_delivered, 400u);
  EXPECT_EQ(pc.samples_observed(), r.samples_delivered);
  // pvmbt's profile is compute-heavy: the consultant must see high CPU
  // fractions everywhere (and flag CPUBound at its default 0.85 threshold
  // or at least measure > 0.7).
  for (const auto node : pc.known_nodes()) {
    EXPECT_GT(pc.node_mean(consultant::Hypothesis::CpuBound, node), 0.7);
  }
}

TEST(CrossValidation, EmpiricalAndParametricModelsAgreeInSimulation) {
  // Driving the simulator from the fitted parametric model vs the
  // empirical distribution of the same trace must produce closely similar
  // application utilization.
  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(20e6), 1, 777);
  const auto parametric = trace::characterize(records);
  const auto empirical = trace::characterize_empirical(records);

  const auto run_with = [](const trace::ClassWorkload& w) {
    auto cfg = rocc::SystemConfig::now(1);
    cfg.app.cpu_burst = w.cpu_length;
    cfg.app.net_burst = w.net_length;
    cfg.duration_us = 10e6;
    cfg.main_on_dedicated_host = true;
    return rocc::run_simulation(cfg);
  };
  const auto rp = run_with(parametric.at(trace::ProcessClass::Application));
  const auto re = run_with(empirical.at(trace::ProcessClass::Application));
  EXPECT_NEAR(rp.app_cpu_util_pct, re.app_cpu_util_pct, 3.0);
}

}  // namespace
}  // namespace paradyn
