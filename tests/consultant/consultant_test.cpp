#include "consultant/consultant.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "rocc/simulation.hpp"

namespace paradyn::consultant {
namespace {

rocc::Sample make_sample(std::int32_t node, double cpu, double comm,
                         std::int32_t process = 0) {
  rocc::Sample s;
  s.node = node;
  s.app_index = process;
  s.cpu_fraction = cpu;
  s.comm_fraction = comm;
  return s;
}

void feed(PerformanceConsultant& pc, std::int32_t node, double cpu, double comm, int n) {
  for (int i = 0; i < n; ++i) pc.observe(make_sample(node, cpu, comm));
}

TEST(Consultant, NoConclusionWithoutEvidence) {
  PerformanceConsultant pc;
  EXPECT_TRUE(pc.search().empty());
  feed(pc, 0, 0.99, 0.0, 3);  // below min_samples
  EXPECT_TRUE(pc.search().empty());
}

TEST(Consultant, DetectsGlobalCpuBound) {
  PerformanceConsultant pc;
  for (int node = 0; node < 4; ++node) feed(pc, node, 0.95, 0.02, 20);
  const auto findings = pc.search();
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().hypothesis, Hypothesis::CpuBound);
  EXPECT_TRUE(findings.front().focus.whole_program);
  EXPECT_GT(findings.front().observed, 0.9);
}

TEST(Consultant, RefinesToHotNode) {
  PerformanceConsultant pc;
  // Three cool nodes, one hot node: the global mean stays below the
  // threshold but the refinement must flag node 2.
  feed(pc, 0, 0.40, 0.05, 20);
  feed(pc, 1, 0.40, 0.05, 20);
  feed(pc, 3, 0.40, 0.05, 20);
  feed(pc, 2, 0.97, 0.01, 20);
  const auto findings = pc.search();
  bool found_node2 = false;
  for (const auto& f : findings) {
    if (f.hypothesis == Hypothesis::CpuBound && !f.focus.whole_program) {
      EXPECT_EQ(f.focus.node, 2);
      found_node2 = true;
    }
  }
  EXPECT_TRUE(found_node2);
}

TEST(Consultant, RefinesToHotProcessOnNode) {
  // Node 1 hosts two processes; process 3 is the culprit.  The search must
  // descend the hierarchy: node 1 flagged, then node 1 / process 3.
  PerformanceConsultant pc;
  for (int i = 0; i < 20; ++i) {
    pc.observe(make_sample(0, 0.40, 0.05, 0));
    pc.observe(make_sample(1, 0.99, 0.01, 3));
    pc.observe(make_sample(1, 0.80, 0.05, 4));
  }
  EXPECT_NEAR(pc.process_mean(Hypothesis::CpuBound, 1, 3), 0.99, 1e-9);
  const auto findings = pc.search();
  bool node_level = false;
  bool process_level = false;
  for (const auto& f : findings) {
    if (f.hypothesis != Hypothesis::CpuBound || f.focus.whole_program) continue;
    if (f.focus.process < 0 && f.focus.node == 1) node_level = true;
    if (f.focus.process == 3 && f.focus.node == 1) {
      process_level = true;
      EXPECT_EQ(f.focus.describe(), "node 1 / process 3");
    }
    EXPECT_NE(f.focus.process, 4);  // the well-behaved sibling stays unflagged
  }
  EXPECT_TRUE(node_level);
  EXPECT_TRUE(process_level);
}

TEST(Consultant, NoProcessRefinementForSingleProcessNodes) {
  // One process per node: the node focus already is the process; no
  // redundant process-level findings.
  PerformanceConsultant pc;
  for (int i = 0; i < 20; ++i) {
    pc.observe(make_sample(0, 0.40, 0.05, 0));
    pc.observe(make_sample(2, 0.97, 0.01, 0));
  }
  for (const auto& f : pc.search()) {
    EXPECT_LT(f.focus.process, 0);
  }
}

TEST(Consultant, DetectsSyncWaiting) {
  PerformanceConsultant pc;
  feed(pc, 0, 0.30, 0.10, 20);  // 60% of the interval blocked
  const auto findings = pc.search();
  bool sync = false;
  for (const auto& f : findings) {
    if (f.hypothesis == Hypothesis::SyncWaiting) sync = true;
  }
  EXPECT_TRUE(sync);
  EXPECT_NEAR(pc.global_mean(Hypothesis::SyncWaiting), 0.6, 1e-9);
}

TEST(Consultant, DetectsCommunicationBound) {
  PerformanceConsultant pc;
  feed(pc, 0, 0.45, 0.50, 20);
  const auto findings = pc.search();
  bool comm = false;
  for (const auto& f : findings) {
    if (f.hypothesis == Hypothesis::CommunicationBound) comm = true;
  }
  EXPECT_TRUE(comm);
}

TEST(Consultant, SlidingWindowForgetsOldPhases) {
  ConsultantConfig cfg;
  cfg.window = 16;
  PerformanceConsultant pc(cfg);
  feed(pc, 0, 0.99, 0.0, 16);  // phase 1: CPU bound
  EXPECT_GT(pc.node_mean(Hypothesis::CpuBound, 0), 0.9);
  feed(pc, 0, 0.10, 0.0, 16);  // phase 2: idle — window fully replaced
  EXPECT_LT(pc.node_mean(Hypothesis::CpuBound, 0), 0.2);
}

TEST(Consultant, ClampsOutOfRangeFractions) {
  PerformanceConsultant pc;
  feed(pc, 0, 1.7, -0.3, 10);  // scheduling jitter artifacts
  EXPECT_LE(pc.node_mean(Hypothesis::CpuBound, 0), 1.0);
  EXPECT_GE(pc.node_mean(Hypothesis::CommunicationBound, 0), 0.0);
}

TEST(Consultant, KnownNodesTracksFoci) {
  PerformanceConsultant pc;
  feed(pc, 3, 0.5, 0.1, 2);
  feed(pc, 7, 0.5, 0.1, 2);
  const auto nodes = pc.known_nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 3);
  EXPECT_EQ(nodes[1], 7);
  EXPECT_EQ(pc.samples_observed(), 4u);
}

TEST(Consultant, EpisodeHistoryTracksWhen) {
  PerformanceConsultant pc;
  // Phase 1 (t = 0..1000): CPU bound.
  for (int i = 0; i < 20; ++i) {
    rocc::Sample s = make_sample(0, 0.95, 0.02);
    s.generated_at = i * 50.0;
    pc.observe(s);
  }
  auto findings = pc.search_and_record();
  ASSERT_FALSE(findings.empty());
  ASSERT_EQ(pc.history().size(), findings.size());
  EXPECT_DOUBLE_EQ(pc.history().front().first_confirmed_us, 950.0);
  EXPECT_EQ(pc.history().front().confirmations, 1u);

  // Phase 2 (t = 1000..3000): still CPU bound — same episode extends.
  for (int i = 0; i < 40; ++i) {
    rocc::Sample s = make_sample(0, 0.95, 0.02);
    s.generated_at = 1000.0 + i * 50.0;
    pc.observe(s);
  }
  (void)pc.search_and_record();
  const auto& e = pc.history().front();
  EXPECT_DOUBLE_EQ(e.first_confirmed_us, 950.0);
  EXPECT_DOUBLE_EQ(e.last_confirmed_us, 2950.0);
  EXPECT_EQ(e.confirmations, 2u);
  EXPECT_DOUBLE_EQ(pc.now(), 2950.0);
}

TEST(Consultant, HistoryEmptyWithoutConfirmations) {
  PerformanceConsultant pc;
  feed(pc, 0, 0.5, 0.1, 20);  // nothing above threshold but SyncWaiting=0.4
  (void)pc.search_and_record();
  // SyncWaiting exactly at threshold 0.40 confirms; adjust to stay below.
  PerformanceConsultant pc2;
  feed(pc2, 0, 0.6, 0.2, 20);  // wait = 0.2: all hypotheses false
  EXPECT_TRUE(pc2.search_and_record().empty());
  EXPECT_TRUE(pc2.history().empty());
}

TEST(Consultant, ToStringCoverage) {
  EXPECT_STREQ(to_string(Hypothesis::CpuBound), "CPUBound");
  EXPECT_STREQ(to_string(Hypothesis::CommunicationBound), "CommunicationBound");
  EXPECT_STREQ(to_string(Hypothesis::SyncWaiting), "SyncWaiting");
  EXPECT_EQ((Focus{true, -1}).describe(), "whole program");
  EXPECT_EQ((Focus{false, 5}).describe(), "node 5");
}

// ------------------------------------------------------ integration with rocc

TEST(ConsultantIntegration, LocatesSkewedNodeThroughTheIs) {
  auto cfg = rocc::SystemConfig::now(4);
  cfg.duration_us = 8e6;
  cfg.sampling_period_us = 40'000.0;
  cfg.batch_size = 4;
  cfg.barrier_every_cycles = 25;  // work-based SPMD iterations create skew
  cfg.main_on_dedicated_host = true;

  rocc::AppModel sick = cfg.app;
  sick.cpu_burst = std::make_shared<stats::Lognormal>(
      stats::Lognormal::from_mean_stddev(8852.0, 12136.0));
  cfg.app_overrides[2] = sick;

  rocc::Simulation sim(cfg);
  PerformanceConsultant pc;
  sim.main_process()->set_sample_sink([&pc](const rocc::Sample& s) { pc.observe(s); });
  (void)sim.run();

  EXPECT_GT(pc.samples_observed(), 100u);
  // The skewed node computes more than its barrier-bound peers.
  EXPECT_GT(pc.node_mean(Hypothesis::CpuBound, 2),
            pc.node_mean(Hypothesis::CpuBound, 0) + 0.1);
  // And the refinement names node 2 (and only node 2) as CPU-bound.
  const auto findings = pc.search();
  for (const auto& f : findings) {
    if (f.hypothesis == Hypothesis::CpuBound && !f.focus.whole_program) {
      EXPECT_EQ(f.focus.node, 2);
    }
  }
}

TEST(ConsultantIntegration, SampleMetricsAreSane) {
  auto cfg = rocc::SystemConfig::now(2);
  cfg.duration_us = 3e6;
  cfg.sampling_period_us = 20'000.0;

  rocc::Simulation sim(cfg);
  std::size_t count = 0;
  sim.main_process()->set_sample_sink([&](const rocc::Sample& s) {
    ++count;
    EXPECT_GE(s.cpu_fraction, 0.0);
    // Bursts are credited at completion, so a long burst finishing just
    // after a tick can push the raw fraction past 1 by up to
    // max_burst / interval; the consultant clamps on intake.
    EXPECT_LE(s.cpu_fraction, 3.0);
    EXPECT_GE(s.comm_fraction, 0.0);
    EXPECT_GE(s.node, 0);
    EXPECT_LT(s.node, 2);
  });
  const auto r = sim.run();
  EXPECT_EQ(count, r.samples_delivered);
}

}  // namespace
}  // namespace paradyn::consultant
