// Unit tests of the fault detector on synthetic sample traces, plus
// end-to-end detection latency through a real simulation run.
#include "consultant/fault_detector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::consultant {
namespace {

rocc::Sample make_sample(std::int32_t node, double cpu = 0.3, double comm = 0.05) {
  rocc::Sample s;
  s.node = node;
  s.cpu_fraction = cpu;
  s.comm_fraction = comm;
  return s;
}

rocc::FaultPlan stall_plan(rocc::SimTime start, rocc::SimTime dur) {
  rocc::FaultPlan plan;
  rocc::FaultSpec f;
  f.type = rocc::FaultType::DaemonStall;
  f.target = 0;
  f.start_us = start;
  f.duration_us = dur;
  plan.faults = {f};
  return plan;
}

std::vector<rocc::FaultOutcome> outcomes_for(const rocc::FaultPlan& plan) {
  std::vector<rocc::FaultOutcome> out;
  for (const auto& f : plan.faults) {
    rocc::FaultOutcome o;
    o.spec = f;
    out.push_back(o);
  }
  return out;
}

DetectorConfig quick_config() {
  DetectorConfig c;
  c.sampling_period_us = 10'000.0;
  c.starvation_factor = 4.0;  // starved after 40 ms of silence
  return c;
}

TEST(FaultDetector, StarvationDetectionAndRecovery) {
  // Nodes 0 and 1 deliver every 10 ms; node 0 goes silent during the fault
  // window [1.0 s, 1.5 s) and resumes afterwards.
  const auto plan = stall_plan(1e6, 5e5);
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 2e6; t += 10'000.0) {
    const bool stalled = t >= 1e6 && t < 1.5e6;
    if (!stalled) det.observe(make_sample(0), t);
    det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);

  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].detected);
  // Silence becomes visible once it exceeds the 40 ms starvation horizon.
  EXPECT_GE(outcomes[0].detection_latency_us, 40'000.0);
  EXPECT_LE(outcomes[0].detection_latency_us, 100'000.0);
  // Node 0 resumed after the window, so the signature returned to baseline.
  EXPECT_TRUE(outcomes[0].recovered);
  EXPECT_GE(outcomes[0].recovery_latency_us, 0.0);
  EXPECT_LE(outcomes[0].recovery_latency_us, 100'000.0);
}

TEST(FaultDetector, NoBehavioralChangeMeansNoDetection) {
  // The fault window passes but every node keeps delivering normally:
  // nothing to detect, latencies stay at the "not observed" sentinel.
  const auto plan = stall_plan(1e6, 2e5);
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 2e6; t += 10'000.0) {
    det.observe(make_sample(0), t);
    det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);

  EXPECT_FALSE(outcomes[0].detected);
  EXPECT_DOUBLE_EQ(outcomes[0].detection_latency_us, -1.0);
  EXPECT_FALSE(outcomes[0].recovered);
  EXPECT_DOUBLE_EQ(outcomes[0].recovery_latency_us, -1.0);
}

TEST(FaultDetector, ConsultantFindingChangeTriggersDetection) {
  // No node ever goes silent; instead the workload turns CPU-bound during
  // the window, so detection comes from the consultant's findings
  // fingerprint, not starvation.
  const auto plan = stall_plan(1e6, 1e6);
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 2e6; t += 10'000.0) {
    const double cpu = t >= 1e6 ? 0.98 : 0.30;
    det.observe(make_sample(0, cpu, 0.01), t);
    det.observe(make_sample(1, cpu, 0.01), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);

  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_GE(outcomes[0].detection_latency_us, 0.0);
}

TEST(FaultDetector, DetectionNeverPrecedesInjection) {
  // Signature churn *before* the window refreshes the baseline instead of
  // counting as a detection.
  const auto plan = stall_plan(1.5e6, 2e5);
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 1.4e6; t += 10'000.0) {
    // Node 1 flaps in and out of starvation pre-fault.
    det.observe(make_sample(0), t);
    if (static_cast<int>(t / 100'000.0) % 2 == 0) det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);
  EXPECT_FALSE(outcomes[0].detected);
}

TEST(FaultDetector, FaultAtTimeZeroDetectsAgainstEmptyBaseline) {
  // A window opening at t = 0 never sees a pre-fault sample: the baseline
  // stays the empty signature, and the first starved/diverged signature
  // counts as the detection.  Latency must be a sane non-negative value.
  const auto plan = stall_plan(0.0, 5e5);
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 1e6; t += 10'000.0) {
    const bool stalled = t < 5e5;
    if (!stalled) det.observe(make_sample(0), t);
    det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_GE(outcomes[0].detection_latency_us, 0.0);
  EXPECT_LE(outcomes[0].detection_latency_us, 100'000.0);
}

TEST(FaultDetector, WindowPastSimEndReportsSentinelRecovery) {
  // The fault outlives the run: no post-window sample can ever arrive, so
  // recovery must stay at the -1 sentinel (not garbage, not "recovered").
  const auto plan = stall_plan(1.5e6, 1e6);  // ends at 2.5e6, run ends at 2e6
  FaultDetector det(plan, quick_config());
  for (double t = 0.0; t < 2e6; t += 10'000.0) {
    const bool stalled = t >= 1.5e6;
    if (!stalled) det.observe(make_sample(0), t);
    det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_FALSE(outcomes[0].recovered);
  EXPECT_DOUBLE_EQ(outcomes[0].recovery_latency_us, -1.0);
}

TEST(FaultDetector, BackToBackFaultsKeepSentinelsSane) {
  // Two seamless windows on the same daemon: the silence never breaks
  // between them, so the second fault's baseline is already the diverged
  // signature and it records no detection of its own — sentinels, not
  // stale or negative latencies.
  rocc::FaultPlan plan = stall_plan(1.0e6, 2e5);
  {
    rocc::FaultSpec second = plan.faults[0];
    second.start_us = 1.2e6;
    plan.faults.push_back(second);
  }
  FaultDetector det(plan, quick_config());
  // The run ends while the second window is still silent, so neither a
  // fresh divergence (fault 2) nor a return to baseline (fault 1) is ever
  // observable.
  for (double t = 0.0; t < 1.4e6; t += 10'000.0) {
    const bool stalled = t >= 1.0e6;
    if (!stalled) det.observe(make_sample(0), t);
    det.observe(make_sample(1), t);
  }
  auto outcomes = outcomes_for(plan);
  det.finalize(outcomes);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].detected);
  EXPECT_GE(outcomes[0].detection_latency_us, 40'000.0);
  EXPECT_LE(outcomes[0].detection_latency_us, 100'000.0);
  EXPECT_FALSE(outcomes[0].recovered);
  EXPECT_DOUBLE_EQ(outcomes[0].recovery_latency_us, -1.0);
  // The second fault saw no fresh divergence: absent, not garbage.
  EXPECT_FALSE(outcomes[1].detected);
  EXPECT_DOUBLE_EQ(outcomes[1].detection_latency_us, -1.0);
  EXPECT_DOUBLE_EQ(outcomes[1].recovery_latency_us, -1.0);
}

TEST(DetectionHarness, NoOpWithoutFaultPlan) {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 1e6;
  rocc::Simulation sim(c);
  const DetectionHarness harness(sim);
  EXPECT_EQ(harness.detector(), nullptr);
  auto result = sim.run();
  harness.finalize(result);
  EXPECT_TRUE(result.fault_outcomes.empty());
}

TEST(RunWithDetection, StallDetectionEndToEnd) {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  c.faults = rocc::FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=500ms");

  const auto r = run_with_detection(c);

  ASSERT_EQ(r.fault_outcomes.size(), 1u);
  EXPECT_TRUE(r.fault_outcomes[0].injected);
  // The stalled daemon starves node 0: detection inside the window, well
  // past the starvation horizon but well before the stall ends.
  EXPECT_TRUE(r.fault_outcomes[0].detected);
  EXPECT_GT(r.fault_outcomes[0].detection_latency_us, 0.0);
  EXPECT_LT(r.fault_outcomes[0].detection_latency_us, 5e5);
  // Delivery resumes after the stall, so the detector sees recovery.
  EXPECT_TRUE(r.fault_outcomes[0].recovered);
  EXPECT_GE(r.fault_outcomes[0].recovery_latency_us, 0.0);
}

TEST(RunWithDetection, DeterministicLatencies) {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 2e6;
  c.sampling_period_us = 10'000.0;
  c.faults = rocc::FaultPlan::parse("daemon_stall:daemon=0,start=1s,dur=500ms");
  const auto a = run_with_detection(c);
  const auto b = run_with_detection(c);
  ASSERT_EQ(a.fault_outcomes.size(), 1u);
  ASSERT_EQ(b.fault_outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(a.fault_outcomes[0].detection_latency_us,
                   b.fault_outcomes[0].detection_latency_us);
  EXPECT_DOUBLE_EQ(a.fault_outcomes[0].recovery_latency_us,
                   b.fault_outcomes[0].recovery_latency_us);
}

}  // namespace
}  // namespace paradyn::consultant
