// Unit tests of the repair policy grammar and matching, plus end-to-end
// detect->repair loops through real simulation runs: a crashed daemon is
// restarted with finite time-to-repair, a forced-failure policy exhausts
// its retries into gave_up, and repair runs are deterministic.
#include "consultant/repair.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "consultant/fault_detector.hpp"
#include "rocc/faults.hpp"
#include "rocc/simulation.hpp"

namespace paradyn::consultant {
namespace {

TEST(RepairSpecParse, FullGrammar) {
  const auto r = RepairPolicy::parse_spec(
      "restart_daemon:timeout=500ms,max_retries=5,backoff=exp:200ms,jitter=0.1,success_p=0.9");
  EXPECT_EQ(r.action, RepairAction::RestartDaemon);
  EXPECT_DOUBLE_EQ(r.timeout_us, 5e5);
  EXPECT_EQ(r.max_retries, 5);
  EXPECT_EQ(r.backoff, BackoffKind::Exponential);
  EXPECT_DOUBLE_EQ(r.backoff_base_us, 2e5);
  EXPECT_DOUBLE_EQ(r.jitter, 0.1);
  EXPECT_DOUBLE_EQ(r.success_p, 0.9);
}

TEST(RepairSpecParse, BareActionUsesDefaults) {
  const auto r = RepairPolicy::parse_spec("reset_pipe");
  EXPECT_EQ(r.action, RepairAction::ResetPipe);
  EXPECT_DOUBLE_EQ(r.timeout_us, 5e5);
  EXPECT_EQ(r.max_retries, 3);
  EXPECT_DOUBLE_EQ(r.success_p, 1.0);
}

TEST(RepairSpecParse, FixedBackoffAndRerouteKeys) {
  const auto r = RepairPolicy::parse_spec(
      "reroute_link:backoff=fixed:50ms,penalty=2.5,threshold=4");
  EXPECT_EQ(r.action, RepairAction::RerouteLink);
  EXPECT_EQ(r.backoff, BackoffKind::Fixed);
  EXPECT_DOUBLE_EQ(r.backoff_base_us, 5e4);
  EXPECT_DOUBLE_EQ(r.penalty, 2.5);
  EXPECT_DOUBLE_EQ(r.threshold, 4.0);
}

TEST(RepairSpecParse, ErrorsNameClauseAndPosition) {
  // Misspelled action: did-you-mean plus clause/char coordinates.
  try {
    (void)RepairPolicy::parse_spec("restart_deamon:timeout=1s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("restart_daemon"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("clause 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("char"), std::string::npos) << msg;
  }
  // Misspelled key in the second clause: the position is global.
  try {
    (void)RepairPolicy::parse("reset_pipe;restart_daemon:timout=1s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("timeout"), std::string::npos) << msg;
    EXPECT_NE(msg.find("clause 2"), std::string::npos) << msg;
  }
}

TEST(RepairSpecParse, RangeAndShapeErrors) {
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:timeout=0"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:max_retries=0"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:success_p=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:jitter=2"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:backoff=200ms"),
               std::invalid_argument);  // missing kind
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:backoff=cubic:1ms"),
               std::invalid_argument);
  // penalty / threshold are reroute-only.
  EXPECT_THROW((void)RepairPolicy::parse_spec("restart_daemon:penalty=2"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse_spec("reset_pipe:threshold=1"),
               std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse(""), std::invalid_argument);
  EXPECT_THROW((void)RepairPolicy::parse(";;"), std::invalid_argument);
}

rocc::FaultSpec fault_of(rocc::FaultType t, double magnitude = 0.0) {
  rocc::FaultSpec f;
  f.type = t;
  f.target = 0;
  f.magnitude = magnitude;
  return f;
}

TEST(RepairPolicyMatch, FirstDeclaredMatchingActionWins) {
  const auto policy = RepairPolicy::parse(
      "reroute_link:threshold=8;restart_daemon:max_retries=1;restart_daemon:max_retries=9");
  const auto* stall = policy.match(fault_of(rocc::FaultType::DaemonStall));
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->max_retries, 1);  // first restart_daemon, not the second
  EXPECT_EQ(policy.match(fault_of(rocc::FaultType::DaemonCrash)), stall);

  // Threshold gates reroute: an x4 slowdown is below the x8 floor.
  EXPECT_EQ(policy.match(fault_of(rocc::FaultType::LinkSlowdown, 4.0)), nullptr);
  ASSERT_NE(policy.match(fault_of(rocc::FaultType::LinkSlowdown, 8.0)), nullptr);

  // No reset_pipe declared, sample_drop is unrepairable.
  EXPECT_EQ(policy.match(fault_of(rocc::FaultType::PipeBackpressure, 2.0)), nullptr);
  EXPECT_EQ(policy.match(fault_of(rocc::FaultType::SampleDrop, 0.5)), nullptr);
}

// ---- End-to-end: the detect->repair loop through a real run. ----

rocc::SystemConfig crash_config() {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 3e6;
  c.sampling_period_us = 10'000.0;
  c.faults = rocc::FaultPlan::parse("daemon_crash:daemon=0,start=500ms,dur=2s");
  return c;
}

TEST(RepairLoop, CrashRepairedWithFiniteTimeToRepair) {
  const auto r = run_with_detection(crash_config(), {},
                                    RepairPolicy::parse("restart_daemon:timeout=50ms,"
                                                        "max_retries=3,backoff=exp:20ms"));
  ASSERT_EQ(r.fault_outcomes.size(), 1u);
  const auto& o = r.fault_outcomes[0];
  EXPECT_TRUE(o.injected);
  EXPECT_TRUE(o.detected);
  EXPECT_TRUE(o.repair_attempted);
  EXPECT_TRUE(o.repaired);
  EXPECT_FALSE(o.gave_up);
  EXPECT_GE(o.repair_attempts, 1u);
  // TTR is finite and causal: at least detection latency + one timeout,
  // and inside the fault window (the repair preempted the natural lift).
  EXPECT_GE(o.time_to_repair_us, o.detection_latency_us + 50'000.0);
  EXPECT_LT(o.time_to_repair_us, 2e6);
  // The restarted daemon resumes delivery well before the window's natural
  // end, so strictly more samples arrive than in the unrepaired run.
  const auto unrepaired = run_with_detection(crash_config());
  EXPECT_GT(r.samples_delivered, unrepaired.samples_delivered);
}

TEST(RepairLoop, ForcedFailureGivesUpAfterRetryBudget) {
  const auto r = run_with_detection(crash_config(), {},
                                    RepairPolicy::parse("restart_daemon:timeout=50ms,"
                                                        "max_retries=2,backoff=fixed:30ms,"
                                                        "success_p=0"));
  ASSERT_EQ(r.fault_outcomes.size(), 1u);
  const auto& o = r.fault_outcomes[0];
  EXPECT_TRUE(o.repair_attempted);
  EXPECT_FALSE(o.repaired);
  EXPECT_TRUE(o.gave_up);
  EXPECT_EQ(o.repair_attempts, 2u);
  // One failed attempt -> one fixed backoff period on the books.
  EXPECT_DOUBLE_EQ(o.repair_backoff_us, 30'000.0);
  EXPECT_DOUBLE_EQ(o.time_to_repair_us, -1.0);
}

TEST(RepairLoop, JitterStretchesBackoff) {
  const auto r = run_with_detection(crash_config(), {},
                                    RepairPolicy::parse("restart_daemon:timeout=50ms,"
                                                        "max_retries=2,backoff=fixed:30ms,"
                                                        "jitter=0.5,success_p=0"));
  ASSERT_EQ(r.fault_outcomes.size(), 1u);
  const auto& o = r.fault_outcomes[0];
  ASSERT_TRUE(o.gave_up);
  // backoff = 30ms * (1 + 0.5 * U[0,1)) in [30ms, 45ms).
  EXPECT_GE(o.repair_backoff_us, 30'000.0);
  EXPECT_LT(o.repair_backoff_us, 45'000.0);
}

TEST(RepairLoop, UnmatchedPolicyLeavesRunBitIdentical) {
  // A policy that matches nothing in the plan must not move any stream or
  // schedule any event: the run reproduces the no-policy run exactly.
  const auto with_policy = run_with_detection(
      crash_config(), {}, RepairPolicy::parse("reset_pipe;reroute_link:threshold=64"));
  const auto without = run_with_detection(crash_config());
  EXPECT_EQ(with_policy.samples_generated, without.samples_generated);
  EXPECT_EQ(with_policy.samples_delivered, without.samples_delivered);
  EXPECT_EQ(with_policy.samples_dropped, without.samples_dropped);
  EXPECT_EQ(with_policy.events_processed, without.events_processed);
  EXPECT_DOUBLE_EQ(with_policy.latency_us.mean(), without.latency_us.mean());
  ASSERT_EQ(with_policy.fault_outcomes.size(), 1u);
  EXPECT_FALSE(with_policy.fault_outcomes[0].repair_attempted);
}

TEST(RepairLoop, RerouteLinkCapsSlowdownPenalty) {
  auto c = rocc::SystemConfig::now(2);
  c.duration_us = 3e6;
  c.sampling_period_us = 10'000.0;
  c.faults = rocc::FaultPlan::parse("link_slow:start=500ms,dur=2s,factor=32");
  const auto repaired = run_with_detection(
      c, {}, RepairPolicy::parse("reroute_link:timeout=50ms,penalty=1.5"));
  const auto unrepaired = run_with_detection(c);
  ASSERT_EQ(repaired.fault_outcomes.size(), 1u);
  if (repaired.fault_outcomes[0].repaired) {
    // The fallback path (x1.5) replaces the x32 slowdown, so the mean
    // latency over the run strictly improves.
    EXPECT_LT(repaired.latency_us.mean(), unrepaired.latency_us.mean());
    EXPECT_GT(repaired.fault_outcomes[0].time_to_repair_us, 0.0);
  } else {
    // A slowdown alone may evade the signature detector in some configs;
    // then nothing may change.
    EXPECT_FALSE(repaired.fault_outcomes[0].repair_attempted);
  }
}

TEST(RepairLoop, ResetPipeDrainsAndUnclamps) {
  auto c = rocc::SystemConfig::now(1);
  c.duration_us = 3e6;
  c.sampling_period_us = 10'000.0;
  c.pipe_capacity = 8;
  // The stall makes the clamped pipe observable (producer blocks sooner).
  c.faults = rocc::FaultPlan::parse(
      "daemon_stall:daemon=0,start=500ms,dur=1s;"
      "pipe_backpressure:daemon=0,start=500ms,dur=2s,capacity=1");
  const auto r = run_with_detection(
      c, {}, RepairPolicy::parse("reset_pipe:timeout=50ms"));
  ASSERT_EQ(r.fault_outcomes.size(), 2u);
  // Whichever fault the detector flags first, only the backpressure row
  // can carry a reset_pipe repair.
  EXPECT_FALSE(r.fault_outcomes[0].repair_attempted);
  if (r.fault_outcomes[1].repaired) {
    EXPECT_GT(r.fault_outcomes[1].time_to_repair_us, 0.0);
  }
}

TEST(RepairLoop, RepairRunsAreDeterministic) {
  const RepairPolicy policy = RepairPolicy::parse(
      "restart_daemon:timeout=50ms,max_retries=3,backoff=exp:20ms,jitter=0.3,success_p=0.5");
  const auto a = run_with_detection(crash_config(), {}, policy);
  const auto b = run_with_detection(crash_config(), {}, policy);
  ASSERT_EQ(a.fault_outcomes.size(), 1u);
  ASSERT_EQ(b.fault_outcomes.size(), 1u);
  EXPECT_EQ(a.fault_outcomes[0].repair_attempts, b.fault_outcomes[0].repair_attempts);
  EXPECT_EQ(a.fault_outcomes[0].repaired, b.fault_outcomes[0].repaired);
  EXPECT_DOUBLE_EQ(a.fault_outcomes[0].time_to_repair_us,
                   b.fault_outcomes[0].time_to_repair_us);
  EXPECT_DOUBLE_EQ(a.fault_outcomes[0].repair_backoff_us,
                   b.fault_outcomes[0].repair_backoff_us);
  EXPECT_EQ(a.samples_delivered, b.samples_delivered);
  EXPECT_DOUBLE_EQ(a.latency_us.mean(), b.latency_us.mean());
}

}  // namespace
}  // namespace paradyn::consultant
