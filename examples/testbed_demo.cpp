// Run the real mini instrumentation system (threads + POSIX pipes) on this
// host: both NAS-like workloads under CF and BF, reporting measured
// per-thread CPU overheads — a miniature of the paper's Section 5 testing.
#include <cstdio>

#include "testbed/experiment.hpp"

int main() {
  using namespace paradyn::testbed;

  std::puts("Mini Paradyn IS testbed: app thread -> pipe -> daemon -> pipe -> collector");
  std::puts("(0.8 s per cell, 10 ms sampling, 50 metrics per sample)\n");
  std::printf("%-10s %-8s %12s %14s %12s %10s\n", "workload", "policy", "Pd CPU (ms)",
              "main CPU (ms)", "lat (ms)", "samples");

  for (const char* workload : {"bt", "is"}) {
    for (const int batch : {1, 32}) {
      TestbedConfig cfg;
      cfg.workload = workload;
      cfg.duration_sec = 0.8;
      cfg.sampling_period_ms = 10.0;
      cfg.batch_size = batch;
      const auto r = run_testbed(cfg);
      std::printf("%-10s %-8s %12.3f %14.3f %12.3f %10llu\n", workload,
                  batch == 1 ? "CF" : "BF(32)", 1e3 * r.daemon_cpu_sec,
                  1e3 * r.collector_cpu_sec, r.latency_ms.mean(),
                  static_cast<unsigned long long>(r.samples_received));
    }
  }

  std::puts("\nBF forwards whole batches with one write(2), cutting the daemon's and");
  std::puts("collector's measured CPU time — the effect Paradyn 1.0 shipped with.");
  return 0;
}
