// Quickstart: simulate the Paradyn instrumentation system on an 8-node
// network of workstations and compare the collect-and-forward (CF) and
// batch-and-forward (BF) data-forwarding policies.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "rocc/simulation.hpp"

namespace {

void report(const char* label, const paradyn::rocc::SimulationResult& r) {
  std::printf("%-28s %10.3f %12.2f %12.3f %14.1f %10.2f\n", label, r.pd_cpu_time_sec(),
              r.pd_cpu_util_pct, r.latency_sec() * 1e3, r.throughput_samples_per_sec,
              r.app_cpu_util_pct);
}

}  // namespace

int main() {
  using namespace paradyn;

  std::printf("Paradyn IS / ROCC model quickstart: 8-node NOW, 10 s simulated, 40 ms sampling\n\n");
  std::printf("%-28s %10s %12s %12s %14s %10s\n", "configuration", "Pd CPU(s)", "Pd util(%)",
              "lat(ms)", "thru(smp/s)", "app util(%)");

  // Collect-and-forward: one forwarding system call per sample.
  rocc::SystemConfig cf = rocc::SystemConfig::now(8);
  cf.sampling_period_us = 40'000;
  cf.batch_size = 1;
  cf.duration_us = 10e6;
  report("CF (batch=1)", rocc::run_simulation(cf));

  // Batch-and-forward: amortize the forwarding call over 32 samples.
  rocc::SystemConfig bf = cf;
  bf.batch_size = 32;
  report("BF (batch=32)", rocc::run_simulation(bf));

  // Uninstrumented baseline.
  rocc::SystemConfig off = cf;
  off.instrumentation_enabled = false;
  report("uninstrumented", rocc::run_simulation(off));

  std::printf("\nBF cuts the Paradyn daemon's direct CPU overhead by batching samples\n");
  std::printf("into one system call per batch — the effect the paper measured as a\n");
  std::printf(">60%% overhead reduction on the real IBM SP-2 implementation.\n");
  return 0;
}
