// Capacity planning with the ROCC model: "with an appropriate model for
// the IS, users can specify tolerable limits for IS overheads relative to
// the needs of their applications" (paper, Section 7).
//
// Given a perturbation budget (max application slowdown vs uninstrumented)
// and a monitoring-latency budget, search the (sampling period, batch
// size) space for the *fastest* sampling configuration that stays inside
// both budgets on a given cluster size.
#include <cstdio>
#include <optional>
#include <vector>

#include "rocc/simulation.hpp"

namespace {

struct Plan {
  double sampling_period_ms;
  int batch;
  double slowdown_pct;
  double latency_ms;
};

std::optional<Plan> evaluate(int nodes, double sp_ms, int batch, double baseline_app_util) {
  auto cfg = paradyn::rocc::SystemConfig::now(nodes);
  cfg.duration_us = 3e6;
  cfg.sampling_period_us = sp_ms * 1'000.0;
  cfg.batch_size = batch;
  const auto r = paradyn::rocc::run_simulation(cfg);
  if (r.samples_delivered == 0) return std::nullopt;
  const double slowdown = 100.0 * (baseline_app_util - r.app_cpu_util_pct) / baseline_app_util;
  return Plan{sp_ms, batch, slowdown, r.latency_sec() * 1e3};
}

}  // namespace

int main() {
  constexpr int kNodes = 16;
  constexpr double kMaxSlowdownPct = 3.0;  // user's perturbation budget
  constexpr double kMaxLatencyMs = 25.0;   // bottleneck search needs fresh data

  // Uninstrumented baseline.
  auto base = paradyn::rocc::SystemConfig::now(kNodes);
  base.duration_us = 3e6;
  base.instrumentation_enabled = false;
  const double baseline_util = paradyn::rocc::run_simulation(base).app_cpu_util_pct;

  std::printf("Capacity planning on a %d-node NOW: slowdown <= %.1f%%, latency <= %.0f ms\n\n",
              kNodes, kMaxSlowdownPct, kMaxLatencyMs);
  std::printf("%8s %7s %12s %12s  %s\n", "SP (ms)", "batch", "slowdown(%)", "latency(ms)",
              "verdict");

  std::optional<Plan> best;
  for (const double sp : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    for (const int batch : {1, 8, 32, 128}) {
      const auto plan = evaluate(kNodes, sp, batch, baseline_util);
      if (!plan) continue;
      const bool ok = plan->slowdown_pct <= kMaxSlowdownPct && plan->latency_ms <= kMaxLatencyMs;
      std::printf("%8.1f %7d %12.2f %12.3f  %s\n", plan->sampling_period_ms, plan->batch,
                  plan->slowdown_pct, plan->latency_ms, ok ? "feasible" : "-");
      if (ok && (!best || plan->sampling_period_ms < best->sampling_period_ms ||
                 (plan->sampling_period_ms == best->sampling_period_ms &&
                  plan->slowdown_pct < best->slowdown_pct))) {
        best = plan;
      }
    }
  }

  if (best) {
    std::printf("\nRecommended IS configuration: sampling period %.1f ms, %s (batch %d)\n",
                best->sampling_period_ms, best->batch == 1 ? "CF" : "BF", best->batch);
    std::printf("-> %.2f%% slowdown, %.3f ms monitoring latency.\n", best->slowdown_pct,
                best->latency_ms);
  } else {
    std::puts("\nNo feasible configuration inside the budgets.");
  }
  return 0;
}
