// Adaptive batch-size selection — the extension the paper's Section 6
// points toward (Paradyn's dynamic cost model regulating IS overheads).
//
// A simple controller searches the batch-size axis on-line: it simulates
// short probe windows, walks toward the "knee" of the overhead curve
// (Section 4.2.4), and stops when the marginal overhead reduction per
// doubling drops below a threshold while respecting a latency budget.
#include <cstdio>
#include <vector>

#include "rocc/simulation.hpp"

namespace {

struct Probe {
  int batch;
  double pd_util_pct;
  double latency_ms;
};

Probe probe(int batch, double sampling_period_us) {
  auto cfg = paradyn::rocc::SystemConfig::now(8);
  cfg.duration_us = 2e6;  // short probe window
  cfg.sampling_period_us = sampling_period_us;
  cfg.batch_size = batch;
  const auto r = paradyn::rocc::run_simulation(cfg);
  return {batch, r.pd_cpu_util_pct, r.latency_sec() * 1e3};
}

/// Walk batch = 1, 2, 4, ... until the relative overhead gain per doubling
/// falls under `min_gain` or the latency budget is exceeded.
int select_batch(double sampling_period_us, double min_gain, double latency_budget_ms,
                 std::vector<Probe>& history) {
  Probe current = probe(1, sampling_period_us);
  history.push_back(current);
  while (current.batch < 256) {
    const Probe next = probe(current.batch * 2, sampling_period_us);
    history.push_back(next);
    if (next.latency_ms > latency_budget_ms) break;
    const double gain = (current.pd_util_pct - next.pd_util_pct) /
                        std::max(current.pd_util_pct, 1e-9);
    current = next;
    if (gain < min_gain) break;
  }
  return current.batch;
}

}  // namespace

int main() {
  std::puts("Adaptive batch-size controller (knee search, 8-node NOW)\n");
  for (const double sp_ms : {1.0, 10.0, 40.0}) {
    std::vector<Probe> history;
    const int chosen = select_batch(sp_ms * 1'000.0, /*min_gain=*/0.15,
                                    /*latency_budget_ms=*/50.0, history);
    std::printf("sampling period %5.1f ms:\n", sp_ms);
    for (const auto& p : history) {
      std::printf("  probe batch=%-3d  Pd util %6.3f%%  latency %7.3f ms\n", p.batch,
                  p.pd_util_pct, p.latency_ms);
    }
    std::printf("  -> selected batch size %d\n\n", chosen);
  }
  std::puts("Faster sampling pushes the knee to larger batches: the controller\n"
            "adapts the BF policy to the offered instrumentation load, the\n"
            "direction Paradyn's dynamic cost model points to.");
  return 0;
}
