// End-to-end workload characterization: generate an AIX-style trace of a
// NAS-like application (the paper's Section 2.3 pipeline), fit occupancy
// distributions, build a simulator configuration from the *fitted* model,
// and validate it against the trace — the measurement -> model ->
// simulation loop of Sections 2.3-2.4.
#include <cstdio>

#include "rocc/simulation.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

int main() {
  using namespace paradyn;

  // 1. "Measure": synthesize a 30 s SP-2 trace (stands in for AIX tracing).
  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(30e6), /*nodes=*/1, /*seed=*/7);
  std::printf("trace: %zu occupancy records\n", records.size());

  // 2. Characterize: Table-1 statistics and fitted distributions.
  for (const auto& row : trace::occupancy_statistics(records)) {
    std::printf("  %-15s CPU mean %7.0f us (n=%zu)   net mean %6.0f us (n=%zu)\n",
                std::string(trace::to_string(row.pclass)).c_str(), row.cpu.mean(),
                row.cpu.count(), row.network.mean(), row.network.count());
  }
  const auto model = trace::characterize(records);
  const auto& app = model.at(trace::ProcessClass::Application);
  std::printf("\nfitted application workload:\n  CPU: %s\n  net: %s\n",
              app.cpu_length->describe().c_str(), app.net_length->describe().c_str());

  // 3. Parameterize the ROCC simulator with the fitted model.
  auto cfg = rocc::SystemConfig::now(1);
  cfg.app.cpu_burst = app.cpu_length;
  cfg.app.net_burst = app.net_length;
  cfg.duration_us = 30e6;
  cfg.sampling_period_us = 40'000.0;
  cfg.main_on_dedicated_host = true;

  // 4. Validate: simulated application CPU time vs the trace total.
  double trace_app_cpu = 0.0;
  for (const auto& r : records) {
    if (r.pclass == trace::ProcessClass::Application && r.resource == trace::ResourceKind::Cpu) {
      trace_app_cpu += r.duration_us;
    }
  }
  const auto sim = rocc::run_simulation(cfg);
  std::printf("\nvalidation over 30 s:\n  trace application CPU time: %6.2f s\n"
              "  simulated application CPU time: %6.2f s  (%.1f%% apart)\n",
              trace_app_cpu / 1e6, sim.app_cpu_time_sec(),
              100.0 * (sim.app_cpu_time_sec() - trace_app_cpu / 1e6) / (trace_app_cpu / 1e6));
  std::printf("\nThe fitted model, not the generator's ground truth, drives the\n"
              "simulator — closing the paper's measurement->model->simulation loop.\n");
  return 0;
}
