// Steady-state output analysis of a single long run: warm-up deletion,
// autocorrelation of the monitoring-latency series, and batch-means
// confidence intervals (Law & Kelton's method, the methodology the paper's
// simulation study builds on).
//
// A naive Student-t interval over a within-run series is only valid when
// successive observations are (close to) independent.  This example runs
// the check instead of assuming it: it estimates the autocorrelation of
// the latency series, then compares the naive interval to batch-means
// intervals, which stay valid either way.
#include <cstdio>

#include "rocc/simulation.hpp"
#include "stats/timeseries.hpp"

int main() {
  using namespace paradyn;

  auto cfg = rocc::SystemConfig::now(8);
  cfg.duration_us = 60e6;
  cfg.warmup_us = 5e6;  // transient deletion
  cfg.sampling_period_us = 5'000.0;
  cfg.batch_size = 1;
  cfg.record_latency_series = true;

  std::puts("60 s simulated (5 s warm-up discarded), 8-node NOW, CF, SP = 5 ms\n");
  const auto r = rocc::run_simulation(cfg);
  const auto& series = r.latency_series_us;
  std::printf("latency observations: %zu   mean %.1f us\n\n", series.size(),
              r.latency_us.mean());

  std::puts("autocorrelation of successive latencies (IID check):");
  double worst = 0.0;
  for (const std::size_t lag : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double ac = stats::autocorrelation(series, lag);
    worst = std::max(worst, std::abs(ac));
    std::printf("  lag %2zu: %+.3f\n", lag, ac);
  }

  const auto naive = stats::mean_confidence_interval(series, 0.90);
  std::printf("\nnaive IID 90%% interval:    %.2f +- %.2f us\n", naive.mean, naive.half_width);

  for (const std::size_t batches : {40u, 20u, 10u}) {
    const auto bm = stats::batch_means(series, batches, 0.90);
    std::printf("batch means (%2zu x %6zu):  %.2f +- %.2f us   lag-1 of means %+.3f\n",
                bm.batch_count, bm.batch_size, bm.ci.mean, bm.ci.half_width,
                bm.lag1_of_batch_means);
  }

  if (worst < 0.05) {
    std::puts("\nVerdict: the latency series is effectively uncorrelated at this\n"
              "operating point — successive samples are ~5 ms apart per daemon while\n"
              "its queues drain in about a millisecond, so the queue state 'forgets'\n"
              "between samples.  The naive and batch-means intervals agree, and the\n"
              "naive one is legitimate here.  At operating points where this check\n"
              "fails (sustained backlog), batch means remains the defensible interval.");
  } else {
    std::puts("\nVerdict: the series is autocorrelated — trust the batch-means\n"
              "interval, not the naive one.");
  }
  return 0;
}
