// End-to-end demonstration of what the Paradyn IS exists for: the
// Performance Consultant's on-the-fly bottleneck search (W3), fed by
// instrumentation samples that traverse the full collection/forwarding
// path of the ROCC model.
//
// Scenario: an 8-node NOW runs an SPMD program with a barrier every 100 ms.
// Node 5 is "sick" — its computation bursts are 4x longer — so it is
// CPU-bound while every other node waits at the barrier (SyncWaiting).
// The consultant, consuming only delivered samples, must locate both.
#include <cstdio>
#include <memory>

#include "consultant/consultant.hpp"
#include "rocc/simulation.hpp"

int main() {
  using namespace paradyn;

  auto cfg = rocc::SystemConfig::now(8);
  cfg.duration_us = 20e6;
  cfg.sampling_period_us = 40'000.0;
  cfg.batch_size = 8;
  cfg.barrier_every_cycles = 40;  // SPMD: barrier after each block of work
  cfg.main_on_dedicated_host = true;

  // Node 5's computation is 4x heavier: the bottleneck to find.
  rocc::AppModel sick = cfg.app;
  sick.cpu_burst =
      std::make_shared<stats::Lognormal>(stats::Lognormal::from_mean_stddev(8852.0, 12136.0));
  cfg.app_overrides[5] = sick;

  rocc::Simulation sim(cfg);
  consultant::ConsultantConfig pc_cfg;
  pc_cfg.cpu_bound_threshold = 0.75;  // SPMD with barriers: 75% busy is hot
  consultant::PerformanceConsultant pc(pc_cfg);
  sim.main_process()->set_sample_sink(
      [&pc](const rocc::Sample& s) { pc.observe(s); });

  std::puts("Running 20 simulated seconds of an 8-node SPMD program with a barrier");
  std::puts("every 40 work cycles; node 5's computation is 4x heavier.\n");
  const auto result = sim.run();

  std::printf("samples delivered to main Paradyn process: %llu (latency %.2f ms avg)\n\n",
              static_cast<unsigned long long>(result.samples_delivered),
              result.latency_us.mean() / 1e3);

  std::puts("per-node windowed metric means seen by the consultant:");
  for (const auto node : pc.known_nodes()) {
    std::printf("  node %d: cpu %.2f  comm %.2f  wait %.2f\n", node,
                pc.node_mean(consultant::Hypothesis::CpuBound, node),
                pc.node_mean(consultant::Hypothesis::CommunicationBound, node),
                pc.node_mean(consultant::Hypothesis::SyncWaiting, node));
  }

  std::puts("\nPerformance Consultant findings (why @ where):");
  const auto findings = pc.search_and_record();
  if (findings.empty()) std::puts("  (none)");
  for (const auto& f : findings) {
    std::printf("  %-18s @ %-14s observed %.2f (threshold %.2f, n=%zu)\n",
                consultant::to_string(f.hypothesis), f.focus.describe().c_str(), f.observed,
                f.threshold, f.samples);
  }

  std::puts("\nepisodes (the W3 'when' axis):");
  for (const auto& e : pc.history()) {
    std::printf("  %-18s @ %-14s confirmed from t=%.1f s\n",
                consultant::to_string(e.hypothesis), e.focus.describe().c_str(),
                e.first_confirmed_us / 1e6);
  }
  std::puts("\nThe search isolates node 5 as CPU-bound while its neighbors show the");
  std::puts("synchronization-waiting signature — found purely from IS samples.");
  return 0;
}
