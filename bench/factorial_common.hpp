// Shared printing for the 2^k r factorial benches (Tables 4-6 and the
// "PCA" allocation-of-variation Figures 16/20/25).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "jobs_common.hpp"

namespace paradyn::bench {

/// Print the raw cell means (the paper's Tables 4/5/6 layout): one row per
/// cell, parameter columns from the factor labels, response columns from
/// the named metrics.
inline void print_cells(const experiments::FactorialExperiment& exp,
                        const std::vector<std::string>& metric_names,
                        const std::vector<experiments::MetricFn>& metrics,
                        const std::string& title) {
  std::vector<std::string> headers;
  for (const auto& f : exp.factors()) headers.push_back(f.name);
  for (const auto& m : metric_names) headers.push_back(m);

  experiments::TablePrinter table(title, headers);
  for (const auto& cell : exp.cells()) {
    std::vector<std::string> row;
    for (std::size_t f = 0; f < exp.factors().size(); ++f) {
      const bool high = (cell.mask >> f) & 1U;
      row.push_back(high ? exp.factors()[f].high_label : exp.factors()[f].low_label);
    }
    for (const auto& m : metrics) row.push_back(experiments::fmt(cell.mean(m), 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// Print the allocation of variation for one response metric (the bars of
/// Figures 16/20/25), collapsing effects below 3% into "Rest".
inline void print_variation(const experiments::FactorialExperiment& exp,
                            const experiments::MetricFn& metric, const std::string& title) {
  const auto analysis = exp.analyze(metric);
  experiments::TablePrinter table(title, {"effect", "factors", "variation explained (%)"});
  double rest = 100.0 * analysis.error_fraction;
  for (const auto& e : exp.factors()) (void)e;
  for (const auto& effect : analysis.effects) {
    const double pct = 100.0 * effect.variation_fraction;
    if (pct < 3.0) {
      rest += pct;
      continue;
    }
    std::string expansion;
    for (std::size_t f = 0; f < exp.factors().size(); ++f) {
      if (effect.mask & (1U << f)) {
        if (!expansion.empty()) expansion += " x ";
        expansion += exp.factors()[f].name;
      }
    }
    table.add_row({effect.label, expansion, experiments::fmt(pct, 1)});
  }
  table.add_row({"Rest", "(small effects + replication error)", experiments::fmt(rest, 1)});
  table.print(std::cout);
}

}  // namespace paradyn::bench
