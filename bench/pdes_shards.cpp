// PDES shard-scaling benchmark and CI speedup gate.
//
// Runs the same table04-class NOW workload (32 nodes x 4 app processes,
// 1 ms sampling, batch 32) through the partitioned engine at 1 shard
// (serial window loop) and 4 shards (ThreadPool-backed executor), checks
// the two runs are bit-identical — the determinism contract the pdes_tests
// suite gates in depth — and emits:
//
//   pdes_shard1_wall_seconds  serial reference wall time (collapse guard)
//   pdes_shard4_wall_seconds  4-shard pooled wall time (collapse guard)
//   speedup_pdes_shards       shard1 / shard4; CI additionally enforces an
//                             absolute floor of 1.5 via bench_compare
//                             --floor (the acceptance bar for the
//                             partitioned engine on the 4-vCPU runners)
//   pdes_shard4_meps          4-shard throughput in M events/s (info)
//
// Best-of-3 per flavor: wall times take the minimum, the canonical noise
// shield for throughput benches on shared CI runners.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json_common.hpp"
#include "experiments/shard_executor.hpp"
#include "experiments/thread_pool.hpp"
#include "repro_common.hpp"
#include "rocc/simulation.hpp"

namespace {

/// Table04-class workload, scaled so each window carries far more event
/// work than the window barrier costs: a 10 ms lookahead means 1000
/// windows over the run, and 512 app processes at 0.5 ms sampling put
/// hundreds of events into every shard per window.
paradyn::rocc::SystemConfig workload() {
  auto c = paradyn::rocc::SystemConfig::now(128);
  c.app_processes_per_node = 4;
  c.sampling_period_us = 500.0;
  c.batch_size = 32;
  c.duration_us = 10e6;
  c.uplink_latency_us = 10'000.0;  // the cross-shard lookahead
  c.seed = 7;
  return c;
}

struct Run {
  double wall_sec = 0.0;
  paradyn::rocc::SimulationResult result;
};

Run run_once(std::int32_t shards, const paradyn::des::ShardSet::Executor& executor) {
  auto cfg = workload();
  cfg.shards = shards;
  cfg.validate();
  paradyn::rocc::Simulation sim(cfg);
  if (executor) sim.set_shard_executor(executor);
  const paradyn::bench::WallTimer t;
  Run run;
  run.result = sim.run();
  run.wall_sec = t.seconds();
  return run;
}

/// The gate rides on the determinism contract: a speedup bought by
/// diverging results would be a bug, not a win.
void require_identical(const paradyn::rocc::SimulationResult& a,
                       const paradyn::rocc::SimulationResult& b) {
  const bool same = a.samples_generated == b.samples_generated &&
                    a.samples_delivered == b.samples_delivered &&
                    a.events_processed == b.events_processed &&
                    a.pd_cpu_util_pct == b.pd_cpu_util_pct &&
                    a.main_cpu_util_pct == b.main_cpu_util_pct &&
                    a.app_cpu_util_pct == b.app_cpu_util_pct &&
                    a.latency_us.mean() == b.latency_us.mean() &&
                    a.throughput_samples_per_sec == b.throughput_samples_per_sec;
  if (!same) {
    std::fprintf(stderr, "pdes_shards: 4-shard run diverged from the 1-shard run\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  paradyn::bench::print_stamp("pdes_shards");
  using namespace paradyn;

  const std::size_t lanes =
      std::min<std::size_t>(4, experiments::ThreadPool::hardware_jobs());
  experiments::ThreadPool pool(std::max<std::size_t>(1, lanes - 1));
  const des::ShardSet::Executor pooled =
      experiments::shard_pool_executor(pool, std::max<std::size_t>(1, lanes));

  constexpr int kReps = 3;
  double wall1 = 1e300;
  double wall4 = 1e300;
  rocc::SimulationResult r1;
  rocc::SimulationResult r4;
  for (int rep = 0; rep < kReps; ++rep) {
    // Alternate order so drift on a noisy runner hits both flavors alike.
    if (rep % 2 == 0) {
      const Run a = run_once(1, {});
      const Run b = run_once(4, pooled);
      wall1 = std::min(wall1, a.wall_sec);
      wall4 = std::min(wall4, b.wall_sec);
      r1 = a.result;
      r4 = b.result;
    } else {
      const Run b = run_once(4, pooled);
      const Run a = run_once(1, {});
      wall1 = std::min(wall1, a.wall_sec);
      wall4 = std::min(wall4, b.wall_sec);
      r1 = a.result;
      r4 = b.result;
    }
    require_identical(r1, r4);
  }

  const double speedup = wall4 > 0.0 ? wall1 / wall4 : 0.0;
  const double meps =
      wall4 > 0.0 ? static_cast<double>(r4.events_processed) / wall4 / 1e6 : 0.0;
  std::printf("pdes_shards: %llu events, shard1 %.3f s, shard4 %.3f s (%zu lane(s)), "
              "speedup %.2fx\n",
              static_cast<unsigned long long>(r4.events_processed), wall1, wall4, lanes,
              speedup);

  const std::string json = bench::bench_json_path(argc, argv);
  if (!json.empty()) {
    bench::write_bench_json(json, {
                                      {"pdes_shard1_wall_seconds", wall1},
                                      {"pdes_shard4_wall_seconds", wall4},
                                      {"speedup_pdes_shards", speedup},
                                      {"pdes_shard4_meps", meps},
                                  });
  }
  return 0;
}
