// Shared --bench-json handling for the bench/experiment binaries.
//
// A harness invoked with --bench-json=PATH appends machine-measured
// metrics (wall seconds, throughputs) to its normal output contract: it
// still prints its table/figure, and additionally writes a flat JSON
// object consumed by tools/bench_compare in the CI bench-smoke job.
#pragma once

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace paradyn::bench {

/// The PATH of a --bench-json=PATH argument, or empty if absent.
inline std::string bench_json_path(int argc, char** argv) {
  constexpr const char* kFlag = "--bench-json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      return std::string(argv[i] + std::strlen(kFlag));
    }
  }
  return {};
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
    return elapsed.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Write `{"key": value, ...}` to `path` (one flat JSON object).
inline void write_bench_json(const std::string& path,
                             const std::vector<std::pair<std::string, double>>& metrics) {
  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "}\n";
  std::cerr << "bench-json: wrote " << metrics.size() << " metric(s) to " << path << "\n";
}

}  // namespace paradyn::bench
