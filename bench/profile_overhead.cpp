// Profiler hot-path benchmark and zero-cost-when-off guard.
//
// Two CI obligations live here:
//
//   profile_off_overhead_pct  zero-cost envelope: a run with profiling off
//                             (null tracer, an armed-but-unfed Profiler in
//                             scope) must cost < 2% versus a plain run.
//                             This trips if the lifecycle hop markers ever
//                             stop being gated on the tracer null check —
//                             e.g. building mark arguments before testing
//                             whether anyone is listening.
//   roccprof_wall_seconds     wall time of the streaming analysis over a
//                             representative trace (parse + reduce), the
//                             `roccprof FILE` path.  Coarse collapse guard
//                             only; the throughput is also reported.
//
// Both are emitted through --bench-json for tools/bench_compare.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json_common.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "repro_common.hpp"
#include "rocc/simulation.hpp"

namespace {

paradyn::rocc::SystemConfig base_config() {
  auto c = paradyn::rocc::SystemConfig::now(4);
  c.duration_us = 5e6;
  c.sampling_period_us = 5'000.0;
  c.batch_size = 1;
  return c;
}

/// Events per wall second of one untraced run.
double run_eps(const paradyn::rocc::SystemConfig& cfg) {
  const paradyn::bench::WallTimer t;
  const auto r = paradyn::rocc::run_simulation(cfg);
  const double sec = t.seconds();
  return sec > 0.0 ? static_cast<double>(r.events_processed) / sec : 0.0;
}

/// The same run with profiling explicitly off: the tracer hook cleared and
/// a Profiler constructed but never fed.  Any cost difference to the plain
/// run is exactly the off-path overhead the envelope gates.
double run_profile_off_eps(const paradyn::rocc::SystemConfig& cfg) {
  const paradyn::bench::WallTimer t;
  paradyn::obs::Profiler idle{paradyn::obs::ProfileOptions{}};
  paradyn::rocc::Simulation sim(cfg);
  sim.set_tracer(nullptr);
  const auto r = sim.run();
  const double sec = t.seconds();
  return sec > 0.0 ? static_cast<double>(r.events_processed) / sec : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  paradyn::bench::print_stamp("profile_overhead");
  using namespace paradyn;

  const std::string json_path = bench::bench_json_path(argc, argv);
  const bench::WallTimer total;

  const auto cfg = base_config();
  // The overhead contrast uses a 10x longer run than the trace below: each
  // measurement is ~50 ms of wall, long enough that a stray context switch
  // is amortized instead of dominating the sample.
  auto overhead_cfg = cfg;
  overhead_cfg.duration_us = 50e6;
  (void)run_eps(overhead_cfg);  // warm-up: page in code and the event pool

  // The two runs are identical workloads, so the true overhead is zero and
  // the gate is absolute: take the lower quartile of the paired per-round
  // overheads.  Pairing cancels machine-wide drift within a round, and the
  // scheduler's noise is one-sided — a stall only ever slows the side it
  // lands on — so the low end of the distribution is the clean measurement.
  //
  // The estimator must also be SYMMETRIC in run order.  Pooling both
  // orderings into one quartile is not: within-round position bias (the
  // second run sits on warmed caches and settled frequency) makes
  // plain-first rounds read low and off-first rounds read high, and a
  // pooled lower quartile selects almost exclusively from the plain-first
  // set — a built-in negative bias (the old protocol sat at −2.8% on a
  // zero-overhead workload).  Instead: quartile each ordering's rounds
  // separately, then average the two quartiles, so the position bias
  // enters once with each sign and cancels.  A real regression slows every
  // off run regardless of position and still shifts both quartiles.
  constexpr int kRoundsPerOrder = 5;
  double plain_eps = 0.0;
  double off_eps = 0.0;
  std::vector<double> overheads_plain_first;
  std::vector<double> overheads_off_first;
  for (int i = 0; i < 2 * kRoundsPerOrder; ++i) {
    // Interleave the orderings so slow machine-wide drift spreads evenly
    // across both sets.
    double plain;
    double off;
    const bool plain_first = i % 2 == 0;
    if (plain_first) {
      plain = run_eps(overhead_cfg);
      off = run_profile_off_eps(overhead_cfg);
    } else {
      off = run_profile_off_eps(overhead_cfg);
      plain = run_eps(overhead_cfg);
    }
    plain_eps = std::max(plain_eps, plain);
    off_eps = std::max(off_eps, off);
    if (off > 0.0) {
      (plain_first ? overheads_plain_first : overheads_off_first)
          .push_back((plain / off - 1.0) * 100.0);
    }
  }
  const auto lower_quartile = [](std::vector<double>& xs) {
    std::sort(xs.begin(), xs.end());
    return xs.empty() ? 0.0 : xs[xs.size() / 4];
  };
  const double off_overhead_pct =
      0.5 * (lower_quartile(overheads_plain_first) + lower_quartile(overheads_off_first));

  // The roccprof path: record a representative trace once, then time the
  // streaming parse + reduction over its JSON form.
  obs::TraceRecorder recorder(1u << 20);
  obs::Tracer tracer = recorder.create_tracer();
  rocc::Simulation traced(cfg);
  traced.set_tracer(&tracer);
  (void)traced.run();
  std::string json;
  {
    std::ostringstream os;
    recorder.write_chrome_json(os);
    json = os.str();
  }

  double analyze_sec = 1e30;
  std::uint64_t analyzed_events = 0;
  constexpr int kAnalyzeRounds = 9;
  for (int i = 0; i < kAnalyzeRounds; ++i) {
    std::istringstream is(json);
    const bench::WallTimer t;
    const auto report = obs::profile_trace_stream(is);
    analyze_sec = std::min(analyze_sec, t.seconds());
    analyzed_events = report.events;
  }
  const double analyze_meps =
      analyze_sec > 0.0 ? static_cast<double>(analyzed_events) / analyze_sec / 1e6 : 0.0;

  std::printf("=== Profiler hot path (NOW 4 nodes, SP = 5 ms, 5 s run, best of %d) ===\n",
              2 * kRoundsPerOrder);
  std::printf("  %-28s %12.0f ev/s\n", "plain (no tracer)", plain_eps);
  std::printf("  %-28s %12.0f ev/s\n", "profiling off, armed", off_eps);
  std::printf("  %-28s %12.3f %%\n", "profile_off_overhead_pct", off_overhead_pct);
  std::printf("  %-28s %12.3f s  (%zu events, %.1f M ev/s)\n", "roccprof_wall_seconds",
              analyze_sec, static_cast<std::size_t>(analyzed_events), analyze_meps);

  if (!json_path.empty()) {
    bench::write_bench_json(json_path, {
                                           {"profile_plain_eps", plain_eps},
                                           {"profile_off_eps", off_eps},
                                           {"profile_off_overhead_pct", off_overhead_pct},
                                           {"roccprof_wall_seconds", analyze_sec},
                                           {"profile_analyze_meps", analyze_meps},
                                       });
  }
  std::printf("  total wall %.2f s\n", total.seconds());
  return 0;
}
