// Table 5 + Figure 20: 2^4 r factorial simulation experiments for the SMP
// system (number of application processes = number of CPUs) and the
// allocation of variation for IS CPU time and monitoring latency.
#include <iostream>
#include <memory>

#include "factorial_common.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("table05_fig20_smp_factorial");
  using experiments::Factor;

  auto base = rocc::SystemConfig::smp(4, 4, 1);
  base.duration_us = 15e6;
  constexpr std::size_t kReps = 5;

  const std::vector<Factor> factors{
      {"CPUs (=apps)", "4", "16",
       [](rocc::SystemConfig& c, bool high) {
         c.cpus_per_node = high ? 16 : 4;
         c.app_processes_per_node = c.cpus_per_node;
       }},
      {"sampling period", "5ms", "50ms",
       [](rocc::SystemConfig& c, bool high) {
         c.sampling_period_us = high ? 50'000.0 : 5'000.0;
       }},
      {"policy", "CF(1)", "BF(128)",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 128 : 1; }},
      {"app type", "compute", "comm",
       [](rocc::SystemConfig& c, bool high) {
         c.app.net_burst = std::make_shared<stats::Exponential>(high ? 2'000.0 : 200.0);
       }},
  };

  const experiments::FactorialExperiment exp(base, factors, kReps);

  bench::print_cells(
      exp, {"IS CPU time/node (sec)", "monitoring latency (ms)"},
      {experiments::is_cpu_time_sec, experiments::latency_ms},
      "Table 5 — 2^4 factorial simulation results, SMP system (" + std::to_string(kReps) +
          " reps, 15 s simulated)");
  std::cout << '\n';
  bench::print_variation(exp, experiments::is_cpu_time_sec,
                         "Figure 20 — variation explained for IS CPU time");
  std::cout << '\n';
  bench::print_variation(exp, experiments::latency_ms,
                         "Figure 20 — variation explained for monitoring latency");

  std::cout << "\nPaper's Figure 20: the CPU count (A), sampling period (B) and policy\n"
            << "(C) share the explained variation for the SMP responses, with A most\n"
            << "important for IS CPU time and C for latency.\n";
  return 0;
}
