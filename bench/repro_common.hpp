// Reproducibility stamp shared by the bench/experiment harnesses.
//
// Each harness prints the stamp first, so a captured table or figure CSV
// always records which binary, revision, and worker-thread count produced
// it.  Lines are '#'-prefixed, so CSV/plot consumers skip them untouched.
#pragma once

#include <iostream>

#include "experiments/parallel.hpp"
#include "obs/repro.hpp"

namespace paradyn::bench {

inline void print_stamp(const char* tool) {
  obs::ReproStamp stamp;
  stamp.tool = tool;
  stamp.jobs = experiments::default_jobs();
  stamp.write(std::cout);
  std::cout << '\n';
}

}  // namespace paradyn::bench
