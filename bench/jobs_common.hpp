// Shared --jobs handling for the bench/experiment binaries.
//
// The figure/table harnesses take no other flags, so a full CLI parser is
// overkill: scan argv for --jobs N / --jobs=N (ROCC_JOBS env is the
// fallback) and install the result as the experiments-layer default, which
// ReplicationSet / FactorialExperiment pick up.  Results are bit-identical
// for every job count, so parallel-by-default is safe.
#pragma once

#include <cstdlib>
#include <string>

#include "experiments/parallel.hpp"

namespace paradyn::bench {

inline void init_jobs(int argc, char** argv) {
  std::size_t jobs = 0;  // 0 = one job per hardware thread
  if (const char* env = std::getenv("ROCC_JOBS")) {
    jobs = std::strtoul(env, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::strtoul(arg.c_str() + 7, nullptr, 10);
    }
  }
  experiments::set_default_jobs(jobs);
}

}  // namespace paradyn::bench
