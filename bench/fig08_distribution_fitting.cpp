// Figure 8: histograms and theoretical pdfs of the lengths of (a) CPU and
// (b) network occupancy requests from the application process, with Q-Q
// plots for the best-fitting family.
//
// Regenerates the figure's data as text: a binned histogram with the three
// candidate densities evaluated at each bin center, the log-likelihood /
// K-S ranking of the candidates, and Q-Q points for the winner.
#include <algorithm>
#include <iostream>
#include <vector>

#include "experiments/table.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "repro_common.hpp"

namespace {

void analyze(const std::vector<double>& data, const char* what, double hist_hi,
             std::size_t bins) {
  using namespace paradyn;
  using experiments::fmt;

  const auto fits = stats::fit_candidates(data);

  std::cout << "=== Figure 8 (" << what << "): " << data.size() << " requests ===\n\n";

  experiments::TablePrinter ranking("Candidate families (MLE fits, best first)",
                                    {"family", "parameters", "log-likelihood", "K-S"});
  for (const auto& f : fits) {
    ranking.add_row({f.distribution->name(), f.distribution->describe(),
                     fmt(f.log_likelihood, 0), fmt(f.ks, 4)});
  }
  ranking.print(std::cout);

  // Histogram vs fitted densities (the left panels of Figure 8).
  stats::Histogram hist(0.0, hist_hi, bins);
  hist.add_all(data);
  experiments::TablePrinter hvs("Histogram density vs fitted pdfs",
                                {"bin center (us)", "observed", "exponential", "weibull",
                                 "lognormal"});
  const stats::Distribution* by_name[3] = {nullptr, nullptr, nullptr};
  for (const auto& f : fits) {
    if (f.distribution->name() == "exponential") by_name[0] = f.distribution.get();
    if (f.distribution->name() == "weibull") by_name[1] = f.distribution.get();
    if (f.distribution->name() == "lognormal") by_name[2] = f.distribution.get();
  }
  for (std::size_t b = 0; b < hist.bin_count(); b += 2) {
    const double x = hist.bin_center(b);
    hvs.add_row({fmt(x, 0), fmt(hist.density(b) * 1e4, 3) + "e-4",
                 fmt(by_name[0]->pdf(x) * 1e4, 3) + "e-4",
                 fmt(by_name[1]->pdf(x) * 1e4, 3) + "e-4",
                 fmt(by_name[2]->pdf(x) * 1e4, 3) + "e-4"});
  }
  hvs.print(std::cout);

  // Q-Q plot of the winner (the right panels of Figure 8).
  const auto qq = stats::qq_plot(data, *fits.front().distribution, 20);
  experiments::TablePrinter qqt("Q-Q plot against best fit (" + fits.front().distribution->name() +
                                    "); ideal fit is observed == theoretical",
                                {"theoretical quantile", "observed quantile"});
  for (const auto& p : qq) qqt.add_row({fmt(p.theoretical, 1), fmt(p.observed, 1)});
  qqt.print(std::cout);
  std::cout << "mean |relative Q-Q deviation| = " << fmt(stats::qq_deviation(qq), 4) << "\n\n";
}

}  // namespace

int main() {
  paradyn::bench::print_stamp("fig08_distribution_fitting");
  using namespace paradyn;

  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(60e6), 1, 2026);
  const trace::OccupancyExtract extract(records);

  analyze(extract.lengths(trace::ProcessClass::Application, trace::ResourceKind::Cpu),
          "a: application CPU occupancy requests", 12'000.0, 40);
  analyze(extract.lengths(trace::ProcessClass::Application, trace::ResourceKind::Network),
          "b: application network occupancy requests", 2'000.0, 40);

  std::cout << "Paper's finding reproduced: lognormal is the best match for CPU request\n"
            << "lengths; the network lengths are exponential (the Weibull fit collapses\n"
            << "to shape ~1, i.e. the same law).\n";
  return 0;
}
