// Figure 24: effects of multiple Paradyn daemons vs the number of
// application processes on the SMP system.  Paper setup: sampling period
// 40 ms, 16 nodes (CPUs).
#include "smp_common.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("fig24_smp_appprocs");
  const std::vector<double> apps{4, 8, 16, 32, 64};
  bench::smp_daemon_sweep(
      "Figure 24", apps, "application processes",
      [](double a, int daemons) {
        auto c = rocc::SystemConfig::smp(16, static_cast<std::int32_t>(a), daemons);
        c.duration_us = 5e6;
        c.sampling_period_us = 40'000.0;
        return c;
      },
      /*reps=*/3);
  std::cout << "Paper's Figure 24: IS load grows with the number of instrumented\n"
            << "processes; BF keeps both the overhead and the latency growth flat\n"
            << "compared to CF.\n";
  return 0;
}
