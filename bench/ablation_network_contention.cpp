// Ablation: shared-Ethernet vs contention-free network for the NOW case.
//
// The paper's NOW figures assume a contention-free network (their
// captions); the architecture description says shared Ethernet.  This
// ablation quantifies the difference: with a single shared server the
// application's own communication saturates the medium well before the
// instrumentation traffic matters.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_network_contention");
  using namespace paradyn;
  constexpr std::size_t kReps = 2;

  const std::vector<double> nodes{1, 2, 4, 8, 16, 32};
  const std::vector<std::string> names{"contention-free", "shared Ethernet"};
  std::vector<std::vector<double>> app(2), lat(2), net(2);

  for (const double n : nodes) {
    for (int shared = 0; shared < 2; ++shared) {
      auto c = rocc::SystemConfig::now(static_cast<std::int32_t>(n));
      c.duration_us = 4e6;
      c.batch_size = 32;
      c.contention = shared ? rocc::NetworkContention::SharedSingleServer
                            : rocc::NetworkContention::ContentionFree;
      const experiments::ReplicationSet rs(c, kReps);
      const auto s = static_cast<std::size_t>(shared);
      app[s].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[s].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec() * 1e3; }));
      net[s].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.network_util_pct; }));
    }
  }

  std::cout << "=== Ablation: NOW network contention model (SP = 40 ms, BF 32) ===\n";
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", "nodes", nodes,
                            names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (ms)", "nodes", nodes, names,
                            lat);
  experiments::print_series(std::cout, "Network occupancy (% of one server)", "nodes", nodes,
                            names, net);
  std::cout << "\nOn a real shared Ethernet the application's own messages saturate the\n"
            << "segment near ~10 nodes and application progress collapses — which is\n"
            << "why the paper (and our defaults) evaluate the NOW IS questions on a\n"
            << "contention-free network: they isolate IS effects from medium effects.\n";
  return 0;
}
