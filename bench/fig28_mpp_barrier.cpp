// Figure 28: effect of the frequency of barrier operations in the program
// on the IS metrics and the application.  Paper setup: 256 nodes, sampling
// period 40 ms, BF policy, logarithmic barrier-period scale (we use 64
// nodes for harness speed; the barrier skew effect is already strong).
//
// Metric note: alongside the wall-clock Pd utilization we print the Pd
// share of *occupied* CPU time, which is the quantity that grows when the
// application idles at barriers ("the Paradyn daemon does not have to
// share the CPU time with that application process").
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig28_mpp_barrier");
  using namespace paradyn;
  constexpr std::size_t kReps = 2;
  constexpr std::int32_t kNodes = 64;

  const std::vector<double> barrier_ms{5, 10, 50, 100, 1000, 10000};
  const std::vector<std::string> names{"direct", "tree"};
  std::vector<std::vector<double>> pd_share(2), pd_util(2), app(2), lat(2);

  for (const double bp : barrier_ms) {
    for (std::size_t v = 0; v < names.size(); ++v) {
      auto c = rocc::SystemConfig::mpp(
          kNodes, v == 1 ? rocc::ForwardingTopology::BinaryTree
                         : rocc::ForwardingTopology::Direct);
      c.duration_us = 4e6;
      c.sampling_period_us = 40'000.0;
      c.batch_size = 32;
      c.barrier_period_us = bp * 1'000.0;
      const experiments::ReplicationSet rs(c, kReps);
      pd_share[v].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.pd_busy_share_pct; }));
      pd_util[v].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      app[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
    }
  }

  std::cout << "=== Figure 28 (MPP, " << kNodes
            << " nodes, SP = 40 ms, BF batch=32, 4 s simulated) ===\n";
  experiments::print_series(std::cout, "Pd share of occupied CPU time (%)",
                            "barrier period (ms)", barrier_ms, names, pd_share);
  experiments::print_series(std::cout, "Pd CPU utilization/node (%, wall-clock)",
                            "barrier period (ms)", barrier_ms, names, pd_util);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                            "barrier period (ms)", barrier_ms, names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)",
                            "barrier period (ms)", barrier_ms, names, lat, 6);

  std::cout << "\nPaper's Figure 28: frequent barriers idle the application (its CPU\n"
            << "occupancy falls), so the daemon's share of the occupied CPU rises while\n"
            << "monitoring latency stays flat — barrier frequency perturbs the program,\n"
            << "not the IS data path.\n";
  return 0;
}
