// Ablation / failure injection: a Paradyn daemon stalls mid-run.
//
// A stalled daemon stops draining its pipes; the instrumented application
// blocks on the full pipe (losing CPU progress), and when the daemon
// resumes it must drain the backlog.  This exercises the IS's failure
// behavior — a dimension the paper's steady-state study does not cover —
// and quantifies the blast radius of a sick daemon under CF vs BF.
#include <algorithm>
#include <iostream>
#include <vector>

#include "experiments/table.hpp"
#include "rocc/simulation.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_fault_recovery");
  using namespace paradyn;

  const std::vector<double> stall_ms{0, 100, 250, 500, 1000};
  const std::vector<std::string> names{"CF", "BF(32)"};
  std::vector<std::vector<double>> generated(2), delivered(2), app_util(2), worst_lat(2);

  for (const double stall : stall_ms) {
    for (int policy = 0; policy < 2; ++policy) {
      auto c = rocc::SystemConfig::now(1);
      c.duration_us = 4e6;
      c.sampling_period_us = 10'000.0;
      c.batch_size = policy == 0 ? 1 : 32;
      c.pipe_capacity = 16;
      c.record_latency_series = true;
      if (stall > 0.0) {
        c.fault_daemon_stall = {0, 1e6, stall * 1'000.0};
      }
      const auto r = rocc::run_simulation(c);
      const auto p = static_cast<std::size_t>(policy);
      generated[p].push_back(static_cast<double>(r.samples_generated));
      delivered[p].push_back(static_cast<double>(r.samples_delivered));
      app_util[p].push_back(r.app_cpu_util_pct);
      worst_lat[p].push_back(r.latency_us.count() ? r.latency_us.max() / 1e3 : 0.0);
    }
  }

  std::cout << "=== Failure injection: daemon stall at t=1s (1 node, SP = 10 ms, 4 s run) ===\n";
  experiments::print_series(std::cout, "Samples generated", "stall (ms)", stall_ms, names,
                            generated, 0);
  experiments::print_series(std::cout, "Samples delivered", "stall (ms)", stall_ms, names,
                            delivered, 0);
  experiments::print_series(std::cout, "Application CPU utilization (%)", "stall (ms)",
                            stall_ms, names, app_util);
  experiments::print_series(std::cout, "Worst-case monitoring latency (ms)", "stall (ms)",
                            stall_ms, names, worst_lat);

  std::cout << "\nThe pipe (16 samples) absorbs ~160 ms of stall before the application\n"
            << "blocks; longer stalls suppress both application progress and sample\n"
            << "generation, and the worst-case monitoring latency grows with the\n"
            << "backlog the resumed daemon must drain.  Recovery is complete in every\n"
            << "case: delivered counts track generated counts after the stall.\n";
  return 0;
}
