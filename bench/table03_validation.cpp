// Table 3: comparison of measurements of NAS benchmark pvmbt on an SP-2
// with the simulation results of the same case.
//
// "Measurement" here is the synthetic SP-2 trace (the substitution for the
// AIX traces): summing its application/Pd CPU occupancy gives the
// measured CPU times.  The simulation runs the ROCC model with the Table 2
// parameterization of the same case (1 node, 40 ms sampling, CF) and
// reports the same two quantities.  The paper's values are shown for
// reference (85.71 s / 0.74 s measured vs 87.96 s / 0.59 s simulated over
// its ~100 s benchmark run).
#include <iostream>

#include "experiments/table.hpp"
#include "rocc/simulation.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("table03_validation");
  using namespace paradyn;
  using experiments::fmt;

  constexpr double kDuration = 100e6;  // 100 s, the paper's benchmark length

  // "Measured": total occupancy in the synthetic AIX trace.
  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(kDuration), 1, 42);
  double measured_app = 0.0;
  double measured_pd = 0.0;
  for (const auto& r : records) {
    if (r.resource != trace::ResourceKind::Cpu) continue;
    if (r.pclass == trace::ProcessClass::Application) measured_app += r.duration_us;
    if (r.pclass == trace::ProcessClass::ParadynDaemon) measured_pd += r.duration_us;
  }

  // Simulated: the ROCC model of the same case.
  auto cfg = rocc::SystemConfig::now(1);
  cfg.duration_us = kDuration;
  cfg.sampling_period_us = 40'000.0;
  cfg.batch_size = 1;                   // the pre-release Paradyn IS used CF
  cfg.main_on_dedicated_host = true;    // Figure 29: main runs on its own node
  const auto sim = rocc::run_simulation(cfg);

  experiments::TablePrinter table(
      "Table 3 — measurement vs simulation, NAS pvmbt case (100 s, 1 node, CF)",
      {"Type of experiment", "Application CPU time (sec)", "Pd CPU time (sec)"});
  table.add_row({"Measurement based (synthetic trace)", fmt(measured_app / 1e6, 2),
                 fmt(measured_pd / 1e6, 2)});
  table.add_row({"Simulation model based", fmt(sim.app_cpu_time_sec(), 2),
                 fmt(sim.pd_cpu_time_sec(), 2)});
  table.add_row({"(paper: measurement)", "85.71", "0.74"});
  table.add_row({"(paper: simulation)", "87.96", "0.59"});
  table.print(std::cout);

  const double app_err =
      100.0 * (sim.app_cpu_time_sec() - measured_app / 1e6) / (measured_app / 1e6);
  std::cout << "\nSimulated application CPU time within " << fmt(app_err, 1)
            << "% of the trace total — the same close agreement the paper uses to\n"
            << "validate the parameterized ROCC model (its Table 3 shows ~2.6%).\n";
  return 0;
}
