// Figure 22: effects of multiple Paradyn daemons vs the number of nodes
// (CPUs) on the SMP system.  Paper setup: sampling period 40 ms, 32
// application processes, shared bus.  The bus becomes the bottleneck at
// large CPU counts, depressing both application and IS CPU time — the
// effect discussed in Section 4.3.3.
#include "smp_common.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("fig22_smp_nodes");
  const std::vector<double> cpus{2, 4, 8, 16, 32};
  bench::smp_daemon_sweep(
      "Figure 22", cpus, "nodes (CPUs)",
      [](double n, int daemons) {
        auto c = rocc::SystemConfig::smp(static_cast<std::int32_t>(n), 32, daemons);
        c.duration_us = 5e6;
        c.sampling_period_us = 40'000.0;
        return c;
      },
      /*reps=*/3);
  std::cout << "Paper's Figure 22: per-node IS overhead falls with more CPUs while\n"
            << "monitoring latency rises; beyond ~32 CPUs the shared bus saturates and\n"
            << "application CPU time per node collapses under both policies.\n";
  return 0;
}
