// Extension: Paradyn's dynamic (adaptive) cost model in the loop.
//
// The paper's Section 6/7 point to regulating IS overheads against
// user-specified tolerable limits (implemented in Paradyn as the dynamic
// cost model, reference [12]).  This harness runs the regulator inside the
// ROCC simulator: starting from an aggressive 1 ms sampling period, the
// controller walks the period until the direct IS overhead fits the
// budget.  The trajectory and the fixed-vs-adaptive comparison are shown
// for three budgets.
#include <iostream>
#include <vector>

#include "experiments/table.hpp"
#include "rocc/simulation.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_adaptive_cost_model");
  using namespace paradyn;
  using experiments::fmt;

  const auto run = [](double budget_pct, bool adaptive) {
    auto c = rocc::SystemConfig::now(4);
    c.duration_us = 30e6;
    c.sampling_period_us = 4'000.0;
    c.adaptive.enabled = adaptive;
    c.adaptive.overhead_budget_pct = budget_pct;
    c.adaptive.adjust_interval_us = 250'000.0;
    c.adaptive.min_period_us = 500.0;
    c.adaptive.max_period_us = 500'000.0;
    return rocc::run_simulation(c);
  };

  // Controller trajectory under a 2% budget.
  {
    const auto r = run(2.0, true);
    experiments::TablePrinter traj(
        "Adaptive cost model trajectory (budget 2%, initial period 4 ms)",
        {"t (s)", "observed IS overhead (%)", "sampling period (ms)"});
    for (std::size_t i = 0; i < r.cost_adjustments.size(); i += 8) {
      const auto& a = r.cost_adjustments[i];
      traj.add_row({fmt(a.at_us / 1e6, 2), fmt(a.observed_overhead_pct, 2),
                    fmt(a.new_period_us / 1e3, 2)});
    }
    traj.print(std::cout);
    std::cout << '\n';
  }

  experiments::TablePrinter cmp(
      "Fixed 4 ms sampling vs adaptive regulation (30 s, 4-node NOW, CF)",
      {"budget (%)", "mode", "samples", "Pd CPU/node (ms)", "app util (%)",
       "final period (ms)"});
  for (const double budget : {0.5, 2.0, 10.0}) {
    const auto rf = run(budget, false);
    const auto ra = run(budget, true);
    cmp.add_row({fmt(budget, 1), "fixed", fmt(static_cast<double>(rf.samples_generated), 0),
                 fmt(rf.pd_cpu_time_per_node_us / 1e3, 1), fmt(rf.app_cpu_util_pct, 1), "4.00"});
    cmp.add_row({fmt(budget, 1), "adaptive", fmt(static_cast<double>(ra.samples_generated), 0),
                 fmt(ra.pd_cpu_time_per_node_us / 1e3, 1), fmt(ra.app_cpu_util_pct, 1),
                 fmt(ra.final_sampling_period_us / 1e3, 2)});
  }
  cmp.print(std::cout);

  std::cout << "\nTighter budgets drive the period higher; the regulator trades data\n"
            << "rate for bounded perturbation, returning the CPU to the application —\n"
            << "the feedback loop Paradyn ships as its dynamic cost model.\n";
  return 0;
}
