// Figure 9: analytic calculations of the effects of varying number of nodes
// and sampling periods on the IS metrics, CF vs BF, for the NOW case
// (equations (1)-(6)).
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig09_analytic_now");
  using namespace paradyn;
  using analytic::Scenario;
  using analytic::now_metrics;

  const auto sweep = [](const std::vector<double>& xs, const char* x_label, const char* title,
                        auto make_scenario) {
    std::vector<std::vector<double>> pd(2), main_u(2), app(2), lat(2);
    for (const double x : xs) {
      for (int policy = 0; policy < 2; ++policy) {
        Scenario s = make_scenario(x);
        s.batch_size = policy == 0 ? 1 : 32;
        const auto m = now_metrics(s);
        pd[static_cast<std::size_t>(policy)].push_back(100.0 * m.pd_cpu_utilization);
        main_u[static_cast<std::size_t>(policy)].push_back(100.0 * m.main_cpu_utilization);
        app[static_cast<std::size_t>(policy)].push_back(100.0 * m.app_cpu_utilization);
        lat[static_cast<std::size_t>(policy)].push_back(m.monitoring_latency_us / 1e6);
      }
    }
    std::cout << "=== Figure 9 (" << title << ") ===\n";
    experiments::print_series(std::cout, "Pd CPU utilization/node (%)", x_label, xs,
                              {"CF", "BF(32)"}, pd);
    experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", x_label, xs,
                              {"CF", "BF(32)"}, main_u);
    experiments::print_series(std::cout, "Application CPU utilization/node (%)", x_label, xs,
                              {"CF", "BF(32)"}, app);
    experiments::print_series(std::cout, "Monitoring latency/sample (sec)", x_label, xs,
                              {"CF", "BF(32)"}, lat, 6);
    std::cout << '\n';
  };

  // (a) vs number of nodes at sampling period = 40 ms.
  sweep({2, 4, 8, 16, 32}, "nodes", "a: sampling period = 40 msec", [](double nodes) {
    Scenario s;
    s.nodes = static_cast<std::int32_t>(nodes);
    s.sampling_period_us = 40'000.0;
    return s;
  });

  // (b) vs sampling period at 8 nodes (log-spaced as in the paper).
  sweep({1, 2, 4, 8, 16, 32, 64}, "sampling period (ms)", "b: number of nodes = 8",
        [](double sp_ms) {
          Scenario s;
          s.nodes = 8;
          s.sampling_period_us = sp_ms * 1'000.0;
          return s;
        });

  std::cout << "Shapes match the paper: per-node Pd utilization is flat in the node\n"
            << "count but hyperbolic in the sampling period; main-process utilization\n"
            << "grows linearly with nodes; BF divides the Pd overhead by the batch size.\n";
  return 0;
}
