// Figure 12: analytic SMP metrics vs sampling period for 1-4 Paradyn
// daemons, CF vs BF (equations (7)-(12)).
// Paper setup: 16 nodes (CPUs), 32 application processes.
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig12_analytic_smp_sampling");
  using namespace paradyn;
  using analytic::Scenario;

  const std::vector<double> periods_ms{1, 2, 5, 10, 20, 40, 64};

  for (const int batch : {1, 128}) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> is_util, lat, app;
    for (int daemons = 1; daemons <= 4; ++daemons) {
      names.push_back(std::to_string(daemons) + " Pd" + (daemons > 1 ? "s" : ""));
      std::vector<double> is_row, lat_row, app_row;
      for (const double sp : periods_ms) {
        Scenario s;
        s.nodes = 16;          // CPUs in the pool
        s.app_processes = 32;  // total
        s.daemons = daemons;
        s.sampling_period_us = sp * 1'000.0;
        s.batch_size = batch;
        const auto m = analytic::smp_metrics(s);
        is_row.push_back(100.0 * m.is_cpu_utilization);
        lat_row.push_back(m.monitoring_latency_us / 1e6);
        app_row.push_back(100.0 * m.app_cpu_utilization);
      }
      is_util.push_back(std::move(is_row));
      lat.push_back(std::move(lat_row));
      app.push_back(std::move(app_row));
    }
    std::cout << "=== Figure 12 (" << (batch == 1 ? "a: CF policy" : "b: BF policy, batch=128")
              << "; 16 CPUs, 32 app processes) ===\n";
    experiments::print_series(std::cout, "IS CPU utilization/node (%)", "sampling period (ms)",
                              periods_ms, names, is_util);
    experiments::print_series(std::cout, "Monitoring latency/sample (sec)",
                              "sampling period (ms)", periods_ms, names, lat, 7);
    experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                              "sampling period (ms)", periods_ms, names, app);
    std::cout << '\n';
  }

  std::cout << "As in the paper: IS load falls steeply with the sampling period, BF\n"
            << "shrinks it by ~the batch size, and extra daemons multiply the offered\n"
            << "IS load (the daemon factor in the SMP arrival rate).\n";
  return 0;
}
