// Table 2: summary of parameters used in simulation of the ROCC model.
//
// Left side: the distribution families and parameters *fitted* from the
// synthetic SP-2 trace by the characterization pipeline (Section 2.3.2's
// MLE procedure).  Right side: the paper's Table 2 entry.  Inter-arrival
// times are approximated as exponential, as in the paper.
#include <iostream>

#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("table02_model_parameters");
  using namespace paradyn;
  using experiments::fmt;

  const auto records =
      trace::generate_trace(trace::Sp2TraceModel::paper_pvmbt(60e6), /*nodes=*/1, /*seed=*/2026);
  const auto model = trace::characterize(records);

  experiments::TablePrinter table(
      "Table 2 — fitted ROCC model parameters (from synthetic trace) vs the paper",
      {"Process", "Parameter", "Fitted", "Paper (Table 2)"});

  const auto add = [&](trace::ProcessClass c, const char* label, const char* paper_cpu,
                       const char* paper_net) {
    const auto& w = model.at(c);
    table.add_row({label, "CPU request length", w.cpu_length->describe(), paper_cpu});
    table.add_row({label, "network request length", w.net_length->describe(), paper_net});
    if (w.cpu_interarrival_mean) {
      table.add_row({label, "CPU inter-arrival mean (us)", fmt(*w.cpu_interarrival_mean, 0),
                     "(exponential)"});
    }
  };

  add(trace::ProcessClass::Application, "Application", "lognormal(2213, 3034)",
      "exponential(223)");
  add(trace::ProcessClass::ParadynDaemon, "Paradyn daemon", "exponential(267)",
      "exponential(71)");
  add(trace::ProcessClass::PvmDaemon, "PVM daemon", "lognormal(294, 206)", "exponential(58)");
  add(trace::ProcessClass::Other, "Other processes", "lognormal(367, 819)", "exponential(92)");
  table.print(std::cout);

  // Configuration block of Table 2 (the fixed simulator knobs).
  const auto cfg = rocc::SystemConfig::paper_defaults();
  experiments::TablePrinter knobs("Configuration parameters (simulator defaults)",
                                  {"Parameter", "Value", "Paper range (typical)"});
  knobs.add_row({"Application processes per node", "1", "1-32 (1)"});
  knobs.add_row({"Pd processes per node", "1", "1-4 (1)"});
  knobs.add_row({"CPUs per node", "1", "1"});
  knobs.add_row({"Number of nodes", "8", "1-256 (8)"});
  knobs.add_row({"CPU scheduling quantum (us)", fmt(cfg.cpu_quantum_us, 0), "10,000"});
  knobs.add_row({"Sampling period (us)", fmt(40'000.0, 0), "5,000-50,000 (40,000)"});
  knobs.add_row({"Pd collect CPU mean (us)", fmt(cfg.pd.collect_cpu->mean(), 0),
                 "split of exponential(267)"});
  knobs.add_row({"Pd forward CPU mean (us)", fmt(cfg.pd.forward_cpu->mean(), 0),
                 "split of exponential(267)"});
  knobs.add_row({"Main Paradyn CPU mean (us)", fmt(cfg.main_cpu->mean(), 0),
                 "lognormal(3208, 3287)"});
  knobs.print(std::cout);

  std::cout << "\nFitting selects the lognormal family for the application/PVM/other CPU\n"
            << "request lengths and (near-)exponential laws for network lengths,\n"
            << "matching the paper's Figure 8 / Table 2 model selection.\n";
  return 0;
}
