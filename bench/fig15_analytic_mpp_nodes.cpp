// Figure 15: analytic MPP metrics vs number of nodes, direct vs binary-tree
// forwarding.  Paper setup: sampling period 40 ms, BF policy, logarithmic
// horizontal scale.
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig15_analytic_mpp_nodes");
  using namespace paradyn;
  using analytic::Scenario;

  const std::vector<double> nodes{2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<std::vector<double>> pd(2), main_u(2), app(2), lat(2);

  for (const double n : nodes) {
    Scenario s;
    s.nodes = static_cast<std::int32_t>(n);
    s.sampling_period_us = 40'000.0;
    s.batch_size = 32;

    const auto direct = analytic::mpp_direct_metrics(s);
    const auto tree = analytic::mpp_tree_metrics(s);
    pd[0].push_back(100.0 * direct.pd_cpu_utilization);
    pd[1].push_back(100.0 * tree.pd_cpu_utilization);
    main_u[0].push_back(100.0 * direct.main_cpu_utilization);
    main_u[1].push_back(100.0 * tree.main_cpu_utilization);
    app[0].push_back(100.0 * direct.app_cpu_utilization);
    app[1].push_back(100.0 * tree.app_cpu_utilization);
    lat[0].push_back(direct.monitoring_latency_us / 1e6);
    lat[1].push_back(tree.monitoring_latency_us / 1e6);
  }

  const std::vector<std::string> names{"direct", "tree"};
  std::cout << "=== Figure 15 (analytic, MPP, SP = 40 ms, BF batch=32) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "nodes", nodes, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", "nodes", nodes,
                            names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", "nodes", nodes,
                            names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)", "nodes", nodes, names,
                            lat, 6);
  std::cout << "\nDirect forwarding's main-process load grows linearly with nodes while\n"
            << "tree forwarding trades it for per-node merge CPU — the Figure 15 trend.\n";
  return 0;
}
