// Ablation: kernel pipe capacity between the application and its daemon.
//
// DESIGN.md calls out the finite pipe as the mechanism behind the paper's
// Section 4.3.3 observation (blocked applications at small sampling
// periods).  This ablation sweeps the capacity at an aggressive sampling
// rate and shows the blocking regime: small pipes throttle both the
// application and the sample stream; beyond a few batches of headroom the
// effect vanishes.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_pipe_capacity");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  const std::vector<double> capacities{1, 2, 4, 8, 16, 32, 64, 256};
  const std::vector<std::string> names{"CF", "BF(32)"};
  std::vector<std::vector<double>> app(2), generated(2), delivered(2);

  for (const double cap : capacities) {
    for (int policy = 0; policy < 2; ++policy) {
      auto c = rocc::SystemConfig::now(1);
      c.duration_us = 5e6;
      c.sampling_period_us = 500.0;  // 2000 samples/s offered: heavy
      c.batch_size = policy == 0 ? 1 : 32;
      c.pipe_capacity = static_cast<std::int32_t>(cap);
      const experiments::ReplicationSet rs(c, kReps);
      const auto p = static_cast<std::size_t>(policy);
      app[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      generated[p].push_back(rs.mean(
          [](const rocc::SimulationResult& r) { return static_cast<double>(r.samples_generated); }));
      delivered[p].push_back(rs.mean(
          [](const rocc::SimulationResult& r) { return static_cast<double>(r.samples_delivered); }));
    }
  }

  std::cout << "=== Ablation: pipe capacity (1 node, SP = 0.5 ms, 5 s simulated) ===\n";
  experiments::print_series(std::cout, "Application CPU utilization (%)", "pipe capacity",
                            capacities, names, app);
  experiments::print_series(std::cout, "Samples generated", "pipe capacity", capacities, names,
                            generated, 0);
  experiments::print_series(std::cout, "Samples delivered", "pipe capacity", capacities, names,
                            delivered, 0);
  std::cout << "\nTiny pipes throttle the sample stream: the application blocks on a\n"
            << "full pipe, so samples generated track the daemon's drain rate instead\n"
            << "of the sampling timer.  Under CF the daemon is the bottleneck at any\n"
            << "capacity; under BF a few batches of headroom recover the full rate.\n"
            << "(With heavy blocking the application spends less time instrumented,\n"
            << "which is precisely the Section 4.3.3 perturbation the pipe model adds.)\n";
  return 0;
}
