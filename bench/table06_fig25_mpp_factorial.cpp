// Table 6 + Figure 25: 2^4 r factorial simulation experiments for the MPP
// system (direct vs binary-tree forwarding as the fourth factor) and the
// allocation of variation for Pd CPU time and monitoring latency.
#include <iostream>

#include "factorial_common.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("table06_fig25_mpp_factorial");
  using experiments::Factor;

  auto base = rocc::SystemConfig::mpp(2);
  base.duration_us = 15e6;
  constexpr std::size_t kReps = 3;  // 256-node cells are costly; shapes stabilize quickly

  const std::vector<Factor> factors{
      {"nodes", "2", "64",
       [](rocc::SystemConfig& c, bool high) { c.nodes = high ? 64 : 2; }},
      {"sampling period", "5ms", "50ms",
       [](rocc::SystemConfig& c, bool high) {
         c.sampling_period_us = high ? 50'000.0 : 5'000.0;
       }},
      {"policy", "CF(1)", "BF(128)",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 128 : 1; }},
      {"configuration", "direct", "tree",
       [](rocc::SystemConfig& c, bool high) {
         c.topology = high ? rocc::ForwardingTopology::BinaryTree
                           : rocc::ForwardingTopology::Direct;
       }},
  };

  const experiments::FactorialExperiment exp(base, factors, kReps);

  bench::print_cells(
      exp, {"Pd CPU time/node (sec)", "monitoring latency (ms)"},
      {experiments::pd_cpu_time_sec, experiments::latency_ms},
      "Table 6 — 2^4 factorial simulation results, MPP system (" + std::to_string(kReps) +
          " reps, 15 s simulated; paper uses 256-node cells)");
  std::cout << '\n';
  bench::print_variation(exp, experiments::pd_cpu_time_sec,
                         "Figure 25 — variation explained for Pd CPU time");
  std::cout << '\n';
  bench::print_variation(exp, experiments::latency_ms,
                         "Figure 25 — variation explained for monitoring latency");

  const auto pd = exp.analyze(experiments::pd_cpu_time_sec);
  std::cout << "\nPaper's Figure 25: sampling period (B, 21%) and forwarding policy\n"
            << "(C, 47%) dominate Pd CPU time; here B explains "
            << experiments::fmt(100.0 * pd.effect("B").variation_fraction, 0) << "% and C "
            << experiments::fmt(100.0 * pd.effect("C").variation_fraction, 0)
            << "%, with the network configuration (D) minor — the same ranking.\n";
  return 0;
}
