// Figure 30 + Table 7: measurement-based testing of the (mini) Paradyn IS —
// CPU overhead of the daemon and of the main-process stand-in under the CF
// and BF policies at sampling periods of 10 and 30 ms, followed by the
// allocation of variation for the 2^2 r design (the paper's Table 7 "PCA").
//
// Substitution: real POSIX pipes + threads on this host instead of the
// IBM SP-2 + AIX tracing; per-thread CPU time via CLOCK_THREAD_CPUTIME_ID.
// Absolute seconds differ from the paper's (different machine, shorter
// runs); the CF-vs-BF ratios are the result under test.
#include <iostream>

#include "experiments/table.hpp"
#include "stats/factorial.hpp"
#include "testbed/experiment.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig30_table7_testbed_policy");
  using namespace paradyn;
  using experiments::fmt;

  constexpr std::size_t kReps = 3;
  constexpr double kDuration = 1.0;  // seconds per run

  // 2^2 r design: A = scheduling policy (CF/BF), B = sampling period.
  stats::FactorialDesign daemon_design({"policy", "sampling period"}, kReps);
  stats::FactorialDesign main_design({"policy", "sampling period"}, kReps);

  experiments::TablePrinter fig30(
      "Figure 30 — measured CPU overhead, mini Paradyn IS on this host (bt workload, " +
          std::to_string(kReps) + " reps x " + fmt(kDuration, 1) + " s)",
      {"policy", "sampling period", "Pd CPU time (ms)", "main CPU time (ms)",
       "forward syscalls", "samples"});

  double cell_pd[2][2] = {};
  double cell_main[2][2] = {};
  for (unsigned policy_high = 0; policy_high < 2; ++policy_high) {
    for (unsigned sp_high = 0; sp_high < 2; ++sp_high) {
      double pd_acc = 0.0;
      double main_acc = 0.0;
      double fw = 0.0;
      double samples = 0.0;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        testbed::TestbedConfig cfg;
        cfg.workload = "bt";
        cfg.duration_sec = kDuration;
        cfg.sampling_period_ms = sp_high ? 30.0 : 10.0;
        cfg.batch_size = policy_high ? 32 : 1;  // BF : CF
        const auto r = testbed::run_testbed(cfg);
        daemon_design.set_response(policy_high | (sp_high << 1U), rep, r.daemon_cpu_sec);
        main_design.set_response(policy_high | (sp_high << 1U), rep, r.collector_cpu_sec);
        pd_acc += r.daemon_cpu_sec;
        main_acc += r.collector_cpu_sec;
        fw += static_cast<double>(r.forward_syscalls);
        samples += static_cast<double>(r.samples_received);
      }
      cell_pd[policy_high][sp_high] = pd_acc / kReps;
      cell_main[policy_high][sp_high] = main_acc / kReps;
      fig30.add_row({policy_high ? "BF(32)" : "CF", sp_high ? "30 ms" : "10 ms",
                     fmt(1e3 * pd_acc / kReps, 2), fmt(1e3 * main_acc / kReps, 2),
                     fmt(fw / kReps, 0), fmt(samples / kReps, 0)});
    }
  }
  fig30.print(std::cout);

  const double pd_reduction =
      100.0 * (1.0 - cell_pd[1][0] / cell_pd[0][0]);
  const double main_reduction =
      100.0 * (1.0 - cell_main[1][0] / cell_main[0][0]);
  std::cout << "\nAt SP = 10 ms, BF reduces Pd CPU overhead by " << fmt(pd_reduction, 0)
            << "% (paper: >60%) and main-process overhead by " << fmt(main_reduction, 0)
            << "% (paper: ~80%).\n\n";

  const auto print_variation = [](const stats::FactorialAnalysis& a, const char* title) {
    experiments::TablePrinter t(title, {"factor", "variation explained (%)"});
    t.add_row({"A (scheduling policy)", fmt(100.0 * a.effect("A").variation_fraction, 1)});
    t.add_row({"B (sampling period)", fmt(100.0 * a.effect("B").variation_fraction, 1)});
    t.add_row({"AB", fmt(100.0 * a.effect("AB").variation_fraction, 1)});
    t.add_row({"error", fmt(100.0 * a.error_fraction, 1)});
    t.print(std::cout);
  };
  print_variation(daemon_design.analyze(),
                  "Table 7 — variation explained for Paradyn daemon CPU time\n"
                  "(paper: A 47.6%, B 35.9%, AB 16.5%)");
  std::cout << '\n';
  print_variation(main_design.analyze(),
                  "Table 7 — variation explained for main process CPU time\n"
                  "(paper: A 52.9%, B 26.5%, AB 20.7%)");
  return 0;
}
