// Figure 17: local level of detail for the NOW case — Paradyn daemon CPU
// time and data-forwarding throughput under CF and BF (batch = 32).
//   (a) vs sampling period, 8 application processes on the node;
//   (b) vs number of application processes, sampling period = 40 ms.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

namespace {

paradyn::rocc::SystemConfig base_config() {
  // Local level of detail: one node observed in isolation.
  auto c = paradyn::rocc::SystemConfig::now(1);
  c.duration_us = 10e6;
  return c;
}

}  // namespace

int main() {
  paradyn::bench::print_stamp("fig17_now_local");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  // (a) sampling-period sweep, 8 app processes.
  {
    const std::vector<double> periods_ms{5, 10, 20, 30, 40, 50};
    std::vector<std::vector<double>> cpu(2), thru(2);
    for (const double sp : periods_ms) {
      for (int policy = 0; policy < 2; ++policy) {
        auto c = base_config();
        c.app_processes_per_node = 8;
        c.sampling_period_us = sp * 1'000.0;
        c.batch_size = policy == 0 ? 1 : 32;
        const experiments::ReplicationSet reps(c, kReps);
        cpu[static_cast<std::size_t>(policy)].push_back(
            reps.mean(experiments::pd_cpu_time_sec));
        thru[static_cast<std::size_t>(policy)].push_back(reps.mean(experiments::throughput));
      }
    }
    std::cout << "=== Figure 17a (8 application processes, 10 s simulated, " << kReps
              << " reps) ===\n";
    experiments::print_series(std::cout, "Pd CPU time (sec)", "sampling period (ms)",
                              periods_ms, {"CF", "BF(32)"}, cpu);
    experiments::print_series(std::cout, "Throughput (samples/sec)", "sampling period (ms)",
                              periods_ms, {"CF", "BF(32)"}, thru, 1);
  }

  // (b) application-process sweep at 40 ms.
  {
    const std::vector<double> apps{2, 4, 8, 16, 32};
    std::vector<std::vector<double>> cpu(2), thru(2);
    for (const double a : apps) {
      for (int policy = 0; policy < 2; ++policy) {
        auto c = base_config();
        c.app_processes_per_node = static_cast<std::int32_t>(a);
        c.sampling_period_us = 40'000.0;
        c.batch_size = policy == 0 ? 1 : 32;
        const experiments::ReplicationSet reps(c, kReps);
        cpu[static_cast<std::size_t>(policy)].push_back(
            reps.mean(experiments::pd_cpu_time_sec));
        thru[static_cast<std::size_t>(policy)].push_back(reps.mean(experiments::throughput));
      }
    }
    std::cout << "\n=== Figure 17b (sampling period = 40 ms) ===\n";
    experiments::print_series(std::cout, "Pd CPU time (sec)", "application processes", apps,
                              {"CF", "BF(32)"}, cpu);
    experiments::print_series(std::cout, "Throughput (samples/sec)", "application processes",
                              apps, {"CF", "BF(32)"}, thru, 1);
  }

  std::cout << "\nAs in the paper: Pd CPU time under BF is a fraction of CF, especially\n"
            << "at short sampling periods and many application processes, because one\n"
            << "system call forwards a whole batch.\n";
  return 0;
}
