// Table 4 + Figure 16: 2^4 r factorial simulation experiments for the NOW
// system and the allocation of variation ("principal component analysis")
// of the Pd CPU time and monitoring latency responses.
//
// Factors (as in the paper): A = number of nodes (2/32), B = sampling
// period (5/50 ms), C = forwarding policy (batch 1/128), D = application
// type (network burst 200 us compute-intensive / 2000 us
// communication-intensive).
#include <iostream>
#include <memory>

#include "bench_json_common.hpp"
#include "factorial_common.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  const std::string json_path = bench::bench_json_path(argc, argv);
  const bench::WallTimer wall;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("table04_fig16_now_factorial");
  using experiments::Factor;

  auto base = rocc::SystemConfig::now(2);
  base.duration_us = 15e6;  // paper: 100 s x 50 reps; scaled for CI runs (>= 2 batches at 50ms x 128)
  constexpr std::size_t kReps = 5;

  const std::vector<Factor> factors{
      {"nodes", "2", "32",
       [](rocc::SystemConfig& c, bool high) { c.nodes = high ? 32 : 2; }},
      {"sampling period", "5ms", "50ms",
       [](rocc::SystemConfig& c, bool high) {
         c.sampling_period_us = high ? 50'000.0 : 5'000.0;
       }},
      {"policy", "CF(1)", "BF(128)",
       [](rocc::SystemConfig& c, bool high) { c.batch_size = high ? 128 : 1; }},
      {"app type", "compute", "comm",
       [](rocc::SystemConfig& c, bool high) {
         c.app.net_burst = std::make_shared<stats::Exponential>(high ? 2'000.0 : 200.0);
       }},
  };

  const experiments::FactorialExperiment exp(base, factors, kReps);

  bench::print_cells(
      exp, {"Pd CPU time/node (sec)", "monitoring latency (ms)"},
      {experiments::pd_cpu_time_sec, experiments::latency_ms},
      "Table 4 — 2^4 factorial simulation results, NOW system (" + std::to_string(kReps) +
          " reps, 15 s simulated)");
  std::cout << '\n';
  bench::print_variation(exp, experiments::pd_cpu_time_sec,
                         "Figure 16 — variation explained for Pd CPU time");
  std::cout << '\n';
  bench::print_variation(exp, experiments::latency_ms,
                         "Figure 16 — variation explained for monitoring latency");

  const auto pd = exp.analyze(experiments::pd_cpu_time_sec);
  std::cout << "\nPaper's Figure 16: sampling period (B) dominates Pd CPU time (68%),\n"
            << "followed by the forwarding policy (C, 19%).  Here B explains "
            << experiments::fmt(100.0 * pd.effect("B").variation_fraction, 0)
            << "% and C " << experiments::fmt(100.0 * pd.effect("C").variation_fraction, 0)
            << "%.\n";

  if (!json_path.empty()) {
    // Wall seconds are machine-dependent: tools/bench_compare treats
    // `*_seconds` keys as a coarse collapse guard, not a tight gate.
    bench::write_bench_json(json_path, {{"table04_wall_seconds", wall.seconds()}});
  }
  return 0;
}
