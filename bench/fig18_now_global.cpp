// Figure 18: global level of detail for the NOW case — four metrics under
// CF, BF (batch = 32), and the uninstrumented baseline.
//   (a) vs number of nodes, sampling period = 40 ms;
//   (b) vs sampling period, 8 nodes.
// Contention-free network, per the paper's figure caption.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

namespace {

using paradyn::rocc::SystemConfig;

void sweep(const std::vector<double>& xs, const char* x_label, const char* title,
           const std::function<SystemConfig(double)>& make, std::size_t reps) {
  using namespace paradyn;
  std::vector<std::string> names{"CF", "BF(32)", "uninstrumented"};
  std::vector<std::vector<double>> pd(3), main_u(3), app(3), lat(3);
  for (const double x : xs) {
    for (int v = 0; v < 3; ++v) {
      SystemConfig c = make(x);
      if (v == 2) {
        c.instrumentation_enabled = false;
      } else {
        c.batch_size = v == 0 ? 1 : 32;
      }
      const experiments::ReplicationSet rs(c, reps);
      const auto vi = static_cast<std::size_t>(v);
      pd[vi].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      main_u[vi].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
      app[vi].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[vi].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
    }
  }
  std::cout << "=== Figure 18 (" << title << ") ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", x_label, xs, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", x_label, xs, names,
                            main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", x_label, xs,
                            names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)", x_label, xs, names,
                            lat, 6);
  std::cout << '\n';
}

}  // namespace

int main() {
  paradyn::bench::print_stamp("fig18_now_global");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  sweep({2, 4, 8, 16, 32}, "nodes", "a: sampling period = 40 ms", [](double nodes) {
    auto c = rocc::SystemConfig::now(static_cast<std::int32_t>(nodes));
    c.sampling_period_us = 40'000.0;
    c.duration_us = 8e6;
    return c;
  }, kReps);

  sweep({1, 2, 4, 8, 16, 32, 64}, "sampling period (ms)", "b: 8 nodes", [](double sp) {
    auto c = rocc::SystemConfig::now(8);
    c.sampling_period_us = sp * 1'000.0;
    c.duration_us = 8e6;
    return c;
  }, kReps);

  std::cout << "Paper's Figure 18 shapes: per-node direct overhead is flat in the node\n"
            << "count but BF's is consistently lower; latency and main-process load are\n"
            << "lower under BF; at millisecond sampling periods CF's overhead explodes.\n";
  return 0;
}
