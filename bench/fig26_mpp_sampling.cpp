// Figure 26: simulated MPP metrics vs sampling period for direct and
// binary-tree forwarding plus the uninstrumented baseline.  Paper setup:
// 256 nodes, BF policy, logarithmic time scale (we use 64 nodes to keep
// the harness fast; the per-node metrics are node-count-insensitive, see
// fig27 for the node sweep).
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig26_mpp_sampling");
  using namespace paradyn;
  constexpr std::size_t kReps = 2;
  constexpr std::int32_t kNodes = 64;

  const std::vector<double> periods_ms{1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::string> names{"CF direct", "CF tree", "BF direct", "BF tree",
                                       "uninstr."};
  std::vector<std::vector<double>> pd(5), main_u(5), app(5), lat(5);

  for (const double sp : periods_ms) {
    for (std::size_t v = 0; v < names.size(); ++v) {
      auto c = rocc::SystemConfig::mpp(
          kNodes, (v == 1 || v == 3) ? rocc::ForwardingTopology::BinaryTree
                                     : rocc::ForwardingTopology::Direct);
      c.duration_us = 4e6;
      c.sampling_period_us = sp * 1'000.0;
      c.batch_size = (v >= 2 && v != 4) ? 32 : 1;
      if (v == 4) c.instrumentation_enabled = false;
      const experiments::ReplicationSet rs(c, kReps);
      pd[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      main_u[v].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
      app[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
    }
  }

  std::cout << "=== Figure 26 (MPP, " << kNodes << " nodes, 4 s simulated, " << kReps
            << " reps) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "sampling period (ms)",
                            periods_ms, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)",
                            "sampling period (ms)", periods_ms, names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                            "sampling period (ms)", periods_ms, names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)",
                            "sampling period (ms)", periods_ms, names, lat, 6);

  std::cout << "\nPaper's Figure 26: BF's direct overhead is far below CF's at small\n"
            << "sampling periods (fewer forwarding system calls); the direct-vs-tree\n"
            << "choice barely moves the IS CPU time, and BF trades a modest latency\n"
            << "increase for the overhead reduction.\n";
  return 0;
}
