// Figure 13: analytic SMP metrics vs number of application processes for
// 1-4 Paradyn daemons, CF vs BF.  Paper setup: sampling period 40 ms,
// 16 nodes (CPUs).
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig13_analytic_smp_appprocs");
  using namespace paradyn;
  using analytic::Scenario;

  const std::vector<double> apps{1, 2, 3, 4, 5, 6};

  for (const int batch : {1, 128}) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> is_util, lat, app_util;
    for (int daemons = 1; daemons <= 4; ++daemons) {
      names.push_back(std::to_string(daemons) + " Pd" + (daemons > 1 ? "s" : ""));
      std::vector<double> is_row, lat_row, app_row;
      for (const double a : apps) {
        Scenario s;
        s.nodes = 16;
        s.app_processes = static_cast<std::int32_t>(a);
        s.daemons = daemons;
        s.sampling_period_us = 40'000.0;
        s.batch_size = batch;
        const auto m = analytic::smp_metrics(s);
        is_row.push_back(100.0 * m.is_cpu_utilization);
        lat_row.push_back(m.monitoring_latency_us / 1e6);
        app_row.push_back(100.0 * m.app_cpu_utilization);
      }
      is_util.push_back(std::move(is_row));
      lat.push_back(std::move(lat_row));
      app_util.push_back(std::move(app_row));
    }
    std::cout << "=== Figure 13 (" << (batch == 1 ? "a: CF policy" : "b: BF policy, batch=128")
              << "; SP = 40 ms, 16 CPUs) ===\n";
    experiments::print_series(std::cout, "IS CPU utilization/node (%)",
                              "application processes", apps, names, is_util);
    experiments::print_series(std::cout, "Monitoring latency/sample (sec)",
                              "application processes", apps, names, lat, 7);
    experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                              "application processes", apps, names, app_util);
    std::cout << '\n';
  }

  std::cout << "IS load grows linearly with the number of instrumented processes; under\n"
            << "BF the growth is ~128x flatter — the paper's Figure 13 contrast.\n";
  return 0;
}
