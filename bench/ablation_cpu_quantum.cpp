// Ablation: CPU scheduling quantum.
//
// Table 2 fixes the quantum at 10 ms.  This ablation sweeps it to show how
// time-slicing granularity shifts the balance between the application's
// long bursts (mean 2.2 ms, max > 10 ms) and the daemon's short requests:
// small quanta help the daemon's latency at a context-granularity cost the
// model does not charge, large quanta make the daemon wait behind whole
// application bursts.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_cpu_quantum");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  const std::vector<double> quanta_ms{0.5, 1, 2, 5, 10, 20, 50};
  const std::vector<std::string> names{"CF", "BF(32)"};
  std::vector<std::vector<double>> lat(2), thru(2), app(2);

  for (const double q : quanta_ms) {
    for (int policy = 0; policy < 2; ++policy) {
      auto c = rocc::SystemConfig::now(4);
      c.duration_us = 5e6;
      c.sampling_period_us = 5'000.0;
      c.batch_size = policy == 0 ? 1 : 32;
      c.cpu_quantum_us = q * 1'000.0;
      const experiments::ReplicationSet rs(c, kReps);
      const auto p = static_cast<std::size_t>(policy);
      lat[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec() * 1e3; }));
      thru[p].push_back(rs.mean(experiments::throughput));
      app[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
    }
  }

  std::cout << "=== Ablation: CPU scheduling quantum (4 nodes, SP = 5 ms) ===\n";
  experiments::print_series(std::cout, "Monitoring latency/sample (ms)", "quantum (ms)",
                            quanta_ms, names, lat);
  experiments::print_series(std::cout, "Throughput (samples/sec)", "quantum (ms)", quanta_ms,
                            names, thru, 1);
  experiments::print_series(std::cout, "Application CPU utilization (%)", "quantum (ms)",
                            quanta_ms, names, app);
  std::cout << "\nLatency grows with the quantum (the daemon's sub-millisecond requests\n"
            << "queue behind un-preempted application bursts); the Table 2 value of\n"
            << "10 ms sits where the application's burst distribution is mostly served\n"
            << "in one slice.\n";
  return 0;
}
