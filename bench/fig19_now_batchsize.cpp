// Figure 19: simulated effect of the batch size on the NOW system's
// metrics (8 nodes, contention-free network) at sampling periods 1, 40,
// and 64 ms — locating the "knee" of the latency/overhead curves that
// Section 4.2.4 recommends operating near.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig19_now_batchsize");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  const std::vector<double> batches{1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<double> periods_ms{1, 40, 64};
  const std::vector<std::string> names{"SP=1ms", "SP=40ms", "SP=64ms"};

  std::vector<std::vector<double>> pd(3), main_u(3), app(3), lat(3);
  for (std::size_t p = 0; p < periods_ms.size(); ++p) {
    for (const double b : batches) {
      auto c = rocc::SystemConfig::now(8);
      c.duration_us = 6e6;
      c.sampling_period_us = periods_ms[p] * 1'000.0;
      c.batch_size = static_cast<std::int32_t>(b);
      const experiments::ReplicationSet rs(c, kReps);
      pd[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      main_u[p].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
      app[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[p].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
    }
  }

  std::cout << "=== Figure 19 (NOW, 8 nodes, 6 s simulated, " << kReps << " reps) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "batch size", batches,
                            names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", "batch size",
                            batches, names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", "batch size",
                            batches, names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)", "batch size", batches,
                            names, lat, 6);

  // Locate the knee at SP = 1 ms: the first batch size whose incremental
  // overhead reduction falls below 10% of the CF -> 2 step.
  const auto& curve = pd[0];
  std::size_t knee = 1;
  const double first_drop = curve[0] - curve[1];
  for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
    if (curve[i] - curve[i + 1] < 0.1 * first_drop) {
      knee = i;
      break;
    }
  }
  std::cout << "\nSharp super-linear drop from batch 1 -> small batches, then the curve\n"
            << "levels off; at SP = 1 ms the knee is near batch size "
            << experiments::fmt(batches[knee], 0)
            << " — choose a batch near the knee (Section 4.2.4).\n";
  return 0;
}
