// Figure 14: analytic MPP metrics vs sampling period, direct vs binary-tree
// forwarding (equations (13)-(16)).  Paper setup: 256 nodes, BF policy,
// logarithmic sampling-period scale.
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig14_analytic_mpp_sampling");
  using namespace paradyn;
  using analytic::Scenario;

  const std::vector<double> periods_ms{1, 2, 4, 8, 16, 32, 64};
  std::vector<std::vector<double>> pd(2), main_u(2), app(2), lat(2);

  for (const double sp : periods_ms) {
    Scenario s;
    s.nodes = 256;
    s.sampling_period_us = sp * 1'000.0;
    s.batch_size = 32;  // BF per the figure caption

    const auto direct = analytic::mpp_direct_metrics(s);
    const auto tree = analytic::mpp_tree_metrics(s);
    pd[0].push_back(100.0 * direct.pd_cpu_utilization);
    pd[1].push_back(100.0 * tree.pd_cpu_utilization);
    main_u[0].push_back(100.0 * direct.main_cpu_utilization);
    main_u[1].push_back(100.0 * tree.main_cpu_utilization);
    app[0].push_back(100.0 * direct.app_cpu_utilization);
    app[1].push_back(100.0 * tree.app_cpu_utilization);
    lat[0].push_back(direct.monitoring_latency_us / 1e6);
    lat[1].push_back(tree.monitoring_latency_us / 1e6);
  }

  const std::vector<std::string> names{"direct", "tree"};
  std::cout << "=== Figure 14 (analytic, MPP, 256 nodes, BF batch=32) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "sampling period (ms)",
                            periods_ms, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)",
                            "sampling period (ms)", periods_ms, names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                            "sampling period (ms)", periods_ms, names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)",
                            "sampling period (ms)", periods_ms, names, lat, 6);
  std::cout << "\nTree forwarding adds merge CPU per node but keeps the main process's\n"
            << "load constant (it sees only its two children) — the paper's Figure 14.\n";
  return 0;
}
