// Figure 31 + Table 8: measurement-based testing of the (mini) Paradyn IS
// with two application programs — the bt (pvmbt-like) and is (pvmis-like)
// kernels — under the CF and BF policies at a 10 ms sampling period.
// CPU times are normalized by the total measured CPU time at the node, as
// in the paper, and the 2^2 r allocation of variation quantifies how little
// the choice of application matters (the paper's Table 8).
#include <iostream>

#include "experiments/table.hpp"
#include "stats/factorial.hpp"
#include "testbed/experiment.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig31_table8_testbed_apps");
  using namespace paradyn;
  using experiments::fmt;

  constexpr std::size_t kReps = 3;
  constexpr double kDuration = 1.0;

  stats::FactorialDesign daemon_design({"policy", "application"}, kReps);
  stats::FactorialDesign main_design({"policy", "application"}, kReps);

  experiments::TablePrinter fig31(
      "Figure 31 — normalized CPU occupancy, mini Paradyn IS (SP = 10 ms, " +
          std::to_string(kReps) + " reps x " + fmt(kDuration, 1) + " s)",
      {"policy", "application", "Pd CPU (% of total)", "main CPU (% of total)",
       "app CPU (% of total)"});

  double daemon_pct[2][2] = {};
  for (unsigned policy_high = 0; policy_high < 2; ++policy_high) {
    for (unsigned app_high = 0; app_high < 2; ++app_high) {
      double pd_acc = 0.0;
      double main_acc = 0.0;
      double app_acc = 0.0;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        testbed::TestbedConfig cfg;
        cfg.workload = app_high ? "is" : "bt";
        cfg.duration_sec = kDuration;
        cfg.sampling_period_ms = 10.0;
        cfg.batch_size = policy_high ? 32 : 1;
        const auto r = testbed::run_testbed(cfg);
        const double pd_pct = r.normalized_daemon_pct();
        const double main_pct = r.normalized_collector_pct();
        daemon_design.set_response(policy_high | (app_high << 1U), rep, pd_pct);
        main_design.set_response(policy_high | (app_high << 1U), rep, main_pct);
        pd_acc += pd_pct;
        main_acc += main_pct;
        app_acc += 100.0 - pd_pct - main_pct;
      }
      daemon_pct[policy_high][app_high] = pd_acc / kReps;
      fig31.add_row({policy_high ? "BF(32)" : "CF", app_high ? "is (pvmis-like)" : "bt (pvmbt-like)",
                     fmt(pd_acc / kReps, 2), fmt(main_acc / kReps, 2),
                     fmt(app_acc / kReps, 2)});
    }
  }
  fig31.print(std::cout);

  std::cout << "\nBF's overhead reduction vs CF: bt "
            << fmt(100.0 * (1.0 - daemon_pct[1][0] / daemon_pct[0][0]), 0) << "%, is "
            << fmt(100.0 * (1.0 - daemon_pct[1][1] / daemon_pct[0][1]), 0)
            << "% — the reduction is not significantly affected by the application\n"
            << "choice, the paper's key Figure 31 observation.\n\n";

  const auto print_variation = [](const stats::FactorialAnalysis& a, const char* title) {
    experiments::TablePrinter t(title, {"factor", "variation explained (%)"});
    t.add_row({"A (scheduling policy)", fmt(100.0 * a.effect("A").variation_fraction, 1)});
    t.add_row({"B (application program)", fmt(100.0 * a.effect("B").variation_fraction, 1)});
    t.add_row({"AB", fmt(100.0 * a.effect("AB").variation_fraction, 1)});
    t.add_row({"error", fmt(100.0 * a.error_fraction, 1)});
    t.print(std::cout);
  };
  print_variation(daemon_design.analyze(),
                  "Table 8 — variation explained for Pd normalized CPU time\n"
                  "(paper: A 98.5%, B 0.3%, AB 1.2%)");
  std::cout << '\n';
  print_variation(main_design.analyze(),
                  "Table 8 — variation explained for main process normalized CPU time\n"
                  "(paper: A 86.8%, B 6.8%, AB 6.4%)");
  return 0;
}
