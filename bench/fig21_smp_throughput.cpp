// Figure 21: use of multiple Paradyn daemons on a shared-memory
// multiprocessor — data forwarding throughput vs number of CPUs (one
// application process per CPU) for 1-4 daemons, under (a) CF and (b) BF
// (batch = 32), at a fixed 40 ms sampling period.
//
// To expose the serial-daemon saturation the paper observes, each
// application process here samples a burst of metrics per period
// (metrics-heavy instrumentation), driving the daemons toward capacity.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig21_smp_throughput");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  const std::vector<double> cpus{1, 2, 4, 8, 12, 16};

  for (const int batch : {1, 32}) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> thru;
    for (int daemons = 1; daemons <= 4; ++daemons) {
      names.push_back(std::to_string(daemons) + " Pd" + (daemons > 1 ? "s" : ""));
      std::vector<double> row;
      for (const double n : cpus) {
        const auto ncpus = static_cast<std::int32_t>(n);
        auto c = rocc::SystemConfig::smp(ncpus, ncpus, std::min(daemons, ncpus));
        c.duration_us = 6e6;
        // Heavy sampling traffic so daemon capacity (not the offered load)
        // limits throughput, as in the paper's experiment.
        c.sampling_period_us = 2'000.0;
        c.batch_size = batch;
        const experiments::ReplicationSet rs(c, kReps);
        row.push_back(rs.mean(experiments::throughput));
      }
      thru.push_back(std::move(row));
    }
    std::cout << "=== Figure 21" << (batch == 1 ? "a (CF policy)" : "b (BF policy, batch=32)")
              << " ===\n";
    experiments::print_series(std::cout, "Throughput of Pd(s) (samples/sec)", "CPUs (=apps)",
                              cpus, names, thru, 1);
    std::cout << '\n';
  }

  std::cout << "Paper's Figure 21: under CF a single serial daemon saturates as CPUs\n"
            << "(and offered samples) grow, so extra daemons raise throughput; under BF\n"
            << "batching is efficient enough that one daemon suffices.\n";
  return 0;
}
