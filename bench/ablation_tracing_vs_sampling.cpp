// Ablation: sampling-based vs trace-based data collection.
//
// Paradyn's design goal is "detailed, flexible performance information
// without incurring the space and time overheads typically associated with
// trace-based tools" (Section 2).  This ablation quantifies that: the same
// system under timer-driven sampling vs per-event tracing (one record per
// computation/communication cycle), across sampling periods.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_tracing_vs_sampling");
  using namespace paradyn;
  constexpr std::size_t kReps = 3;

  const std::vector<double> periods_ms{5, 10, 20, 40, 64};
  const std::vector<std::string> names{"sampling CF", "sampling BF(32)", "tracing CF",
                                       "tracing BF(32)"};
  std::vector<std::vector<double>> pd(4), app(4), volume(4);

  for (const double sp : periods_ms) {
    for (std::size_t v = 0; v < names.size(); ++v) {
      auto c = rocc::SystemConfig::now(4);
      c.duration_us = 5e6;
      c.sampling_period_us = sp * 1'000.0;
      c.batch_size = (v % 2 == 1) ? 32 : 1;
      c.instrumentation_mode =
          v >= 2 ? rocc::InstrumentationMode::Tracing : rocc::InstrumentationMode::Sampling;
      const experiments::ReplicationSet rs(c, kReps);
      pd[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      app[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      volume[v].push_back(rs.mean([](const rocc::SimulationResult& r) {
        return static_cast<double>(r.samples_generated) / (r.duration_us / 1e6);
      }));
    }
  }

  std::cout << "=== Ablation: sampling vs tracing instrumentation (NOW, 4 nodes) ===\n";
  experiments::print_series(std::cout, "Data volume (records/sec, whole system)",
                            "sampling period (ms)", periods_ms, names, volume, 0);
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "sampling period (ms)",
                            periods_ms, names, pd);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)",
                            "sampling period (ms)", periods_ms, names, app);

  std::cout << "\nTracing volume is set by the application's event rate (~cycles/sec),\n"
            << "not the sampling period, so its overhead neither shrinks with longer\n"
            << "periods nor stays bounded on busier programs — the cost profile that\n"
            << "motivated Paradyn's periodic-sampling IS.  Batching (BF) softens but\n"
            << "does not remove the gap.\n";
  return 0;
}
