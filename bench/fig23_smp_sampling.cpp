// Figure 23: effects of multiple Paradyn daemons vs the sampling period on
// the SMP system.  Paper setup: 16 nodes (CPUs), 32 application processes.
// At millisecond sampling periods the per-app pipes fill and block the
// application — the effect is strongest with a single daemon (Section
// 4.3.3's pipe discussion).
#include "smp_common.hpp"
#include "repro_common.hpp"

int main(int argc, char** argv) {
  using namespace paradyn;
  bench::init_jobs(argc, argv);
  paradyn::bench::print_stamp("fig23_smp_sampling");
  const std::vector<double> periods_ms{1, 2, 5, 10, 20, 40, 64};
  bench::smp_daemon_sweep(
      "Figure 23", periods_ms, "sampling period (ms)",
      [](double sp, int daemons) {
        auto c = rocc::SystemConfig::smp(16, 32, daemons);
        c.duration_us = 5e6;
        c.sampling_period_us = sp * 1'000.0;
        c.pipe_capacity = 32;  // small kernel buffer, as on the SP-2
        return c;
      },
      /*reps=*/3);
  std::cout << "Paper's Figure 23: daemon count barely matters above ~10 ms sampling\n"
            << "periods; below that, pipes fill, the application blocks (its CPU time\n"
            << "drops, most sharply with one daemon), and BF clearly beats CF.\n";
  return 0;
}
