// Table 1: summary of statistics obtained from measurements of NAS
// benchmark pvmbt on an SP-2.
//
// Substitution: the AIX kernel trace is synthesized by trace::generate_trace
// from the paper's published per-class distributions; the characterization
// pipeline (OccupancyExtract -> SummaryStats) then regenerates the table.
// Paper values are printed alongside for comparison.
#include <iostream>

#include "experiments/table.hpp"
#include "trace/characterize.hpp"
#include "trace/generator.hpp"
#include "repro_common.hpp"

namespace {

struct PaperRow {
  paradyn::trace::ProcessClass pclass;
  double cpu_mean, cpu_sd, net_mean, net_sd;
};

}  // namespace

int main() {
  paradyn::bench::print_stamp("table01_workload_stats");
  using namespace paradyn;
  using experiments::fmt;

  constexpr double kTraceDuration = 60e6;  // 60 s of synthetic SP-2 trace
  const auto model = trace::Sp2TraceModel::paper_pvmbt(kTraceDuration);
  const auto records = trace::generate_trace(model, /*nodes=*/1, /*seed=*/2026);
  const auto rows = trace::occupancy_statistics(records);

  const PaperRow paper[] = {
      {trace::ProcessClass::Application, 2213, 3034, 223, 95},
      {trace::ProcessClass::ParadynDaemon, 267, 197, 71, 109},
      {trace::ProcessClass::PvmDaemon, 294, 206, 58, 59},
      {trace::ProcessClass::Other, 367, 819, 92, 80},
      {trace::ProcessClass::MainParadyn, 3208, 3287, 214, 451},
  };

  experiments::TablePrinter table(
      "Table 1 — CPU and network occupancy statistics (microseconds), synthetic SP-2 trace\n"
      "(paper's measured means in parentheses)",
      {"Process type", "CPU mean", "CPU st.dev", "CPU min", "CPU max", "Net mean", "Net st.dev",
       "Net min", "Net max"});

  for (const auto& row : rows) {
    const PaperRow* ref = nullptr;
    for (const auto& p : paper) {
      if (p.pclass == row.pclass) ref = &p;
    }
    table.add_row({std::string(trace::to_string(row.pclass)),
                   fmt(row.cpu.mean(), 0) + " (" + fmt(ref->cpu_mean, 0) + ")",
                   fmt(row.cpu.stddev(), 0) + " (" + fmt(ref->cpu_sd, 0) + ")",
                   fmt(row.cpu.min(), 0), fmt(row.cpu.max(), 0),
                   fmt(row.network.mean(), 0) + " (" + fmt(ref->net_mean, 0) + ")",
                   fmt(row.network.stddev(), 0) + " (" + fmt(ref->net_sd, 0) + ")",
                   fmt(row.network.min(), 0), fmt(row.network.max(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nTrace: " << records.size() << " occupancy records over "
            << kTraceDuration / 1e6 << " simulated seconds, 1 node.\n"
            << "Means reproduce the paper's Table 1 (the paper's min/max/sd reflect\n"
            << "its specific trace sample; means are the model parameters).\n";
  return 0;
}
