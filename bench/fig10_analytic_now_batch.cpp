// Figure 10: analytic effect of the batch size on the IS metrics for the
// NOW case (8 nodes), at three sampling periods (1, 40, 64 ms).
#include <iostream>
#include <vector>

#include "analytic/operational.hpp"
#include "experiments/table.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig10_analytic_now_batch");
  using namespace paradyn;
  using analytic::Scenario;

  const std::vector<double> batches{1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<double> periods_ms{1.0, 40.0, 64.0};
  std::vector<std::string> names{"SP=1ms", "SP=40ms", "SP=64ms"};

  std::vector<std::vector<double>> pd(3), main_u(3), app(3), lat(3);
  for (std::size_t p = 0; p < periods_ms.size(); ++p) {
    for (const double b : batches) {
      Scenario s;
      s.nodes = 8;
      s.sampling_period_us = periods_ms[p] * 1'000.0;
      s.batch_size = static_cast<std::int32_t>(b);
      const auto m = analytic::now_metrics(s);
      pd[p].push_back(100.0 * m.pd_cpu_utilization);
      main_u[p].push_back(100.0 * m.main_cpu_utilization);
      app[p].push_back(100.0 * m.app_cpu_utilization);
      lat[p].push_back(m.monitoring_latency_us / 1e6);
    }
  }

  std::cout << "=== Figure 10 (analytic, NOW, 8 nodes) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "batch size", batches,
                            names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", "batch size",
                            batches, names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", "batch size",
                            batches, names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)", "batch size", batches,
                            names, lat, 6);
  std::cout << "\nThe overhead drops hyperbolically with batch size and levels off — the\n"
            << "\"knee\" the paper recommends operating near (Section 4.2.4).\n";
  return 0;
}
