// Figure 27: simulated MPP metrics vs number of nodes, direct vs
// binary-tree forwarding.  Paper setup: sampling period 40 ms, BF policy
// (batch = 32), logarithmic horizontal scale up to 256 nodes.
#include <iostream>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("fig27_mpp_nodes");
  using namespace paradyn;
  constexpr std::size_t kReps = 2;

  const std::vector<double> nodes{2, 4, 8, 16, 32, 64, 128, 256};
  const std::vector<std::string> names{"direct", "tree", "uninstr."};
  std::vector<std::vector<double>> pd(3), main_u(3), app(3), lat(3);

  for (const double n : nodes) {
    for (std::size_t v = 0; v < names.size(); ++v) {
      auto c = rocc::SystemConfig::mpp(
          static_cast<std::int32_t>(n),
          v == 1 ? rocc::ForwardingTopology::BinaryTree : rocc::ForwardingTopology::Direct);
      c.duration_us = 4e6;
      c.sampling_period_us = 40'000.0;
      c.batch_size = 32;
      if (v == 2) c.instrumentation_enabled = false;
      const experiments::ReplicationSet rs(c, kReps);
      pd[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
      main_u[v].push_back(
          rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
      app[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      lat[v].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
    }
  }

  std::cout << "=== Figure 27 (MPP, SP = 40 ms, BF batch=32, 4 s simulated) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "nodes", nodes, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", "nodes", nodes,
                            names, main_u);
  experiments::print_series(std::cout, "Application CPU utilization/node (%)", "nodes", nodes,
                            names, app);
  experiments::print_series(std::cout, "Monitoring latency/sample (sec)", "nodes", nodes, names,
                            lat, 6);

  std::cout << "\nPaper's Figure 27: direct and tree forwarding deliver similar latency,\n"
            << "but tree forwarding costs more per-node Pd CPU (merge work at interior\n"
            << "nodes) while relieving the main process as the system scales.\n";
  return 0;
}
