// Ablation: merge CPU cost of binary-tree forwarding (D_Pdm in equation
// (13)).  The paper fixes the merge demand implicitly; this sweep shows
// when tree forwarding's per-node cost overtakes its main-process relief.
#include <iostream>
#include <memory>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "rocc/config.hpp"
#include "repro_common.hpp"

int main() {
  paradyn::bench::print_stamp("ablation_merge_cost");
  using namespace paradyn;
  constexpr std::size_t kReps = 2;

  const std::vector<double> merge_means_us{0, 45, 89, 178, 356, 712};
  const std::vector<std::string> names{"tree", "direct (reference)"};
  std::vector<std::vector<double>> pd(2), main_u(2), lat(2);

  // Direct-forwarding reference (independent of the merge cost).
  auto direct_cfg = rocc::SystemConfig::mpp(64, rocc::ForwardingTopology::Direct);
  direct_cfg.duration_us = 4e6;
  direct_cfg.batch_size = 32;
  const experiments::ReplicationSet direct(direct_cfg, kReps);
  const double direct_pd =
      direct.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; });
  const double direct_main =
      direct.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; });
  const double direct_lat =
      direct.mean([](const rocc::SimulationResult& r) { return r.latency_sec() * 1e3; });

  for (const double mm : merge_means_us) {
    auto c = rocc::SystemConfig::mpp(64, rocc::ForwardingTopology::BinaryTree);
    c.duration_us = 4e6;
    c.batch_size = 32;
    c.pd.merge_cpu = mm > 0.0
                         ? stats::DistributionPtr(std::make_shared<stats::Exponential>(mm))
                         : stats::DistributionPtr(std::make_shared<stats::Deterministic>(0.0));
    const experiments::ReplicationSet rs(c, kReps);
    pd[0].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.pd_cpu_util_pct; }));
    main_u[0].push_back(
        rs.mean([](const rocc::SimulationResult& r) { return r.main_cpu_util_pct; }));
    lat[0].push_back(rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec() * 1e3; }));
    pd[1].push_back(direct_pd);
    main_u[1].push_back(direct_main);
    lat[1].push_back(direct_lat);
  }

  std::cout << "=== Ablation: tree merge CPU cost (MPP, 64 nodes, SP = 40 ms, BF 32) ===\n";
  experiments::print_series(std::cout, "Pd CPU utilization/node (%)", "merge mean (us)",
                            merge_means_us, names, pd);
  experiments::print_series(std::cout, "Paradyn (main) CPU utilization (%)", "merge mean (us)",
                            merge_means_us, names, main_u);
  experiments::print_series(std::cout, "Monitoring latency/sample (ms)", "merge mean (us)",
                            merge_means_us, names, lat);
  std::cout << "\nTree forwarding always flattens the main process's load; its per-node\n"
            << "overhead premium over direct forwarding scales linearly with the merge\n"
            << "demand — free merging makes the tree strictly better.\n";
  return 0;
}
