// Fault-injection hot-path benchmark and zero-cost guard.
//
// Two CI obligations live here:
//
//   speedup_fault_grid     events/sec of a fault-laden run over the plain
//                          run of the same configuration, measured in the
//                          same process.  Machine-independent-ish ratio;
//                          a drop means the fault event path (stall /
//                          drop-gate / slowdown bookkeeping) got slower.
//   fault_off_overhead_pct zero-cost envelope: carrying an armed-but-inert
//                          fault plan (a drop window that never claims a
//                          sample) must cost < 2% versus no plan at all.
//   repair_off_overhead_pct the same envelope for the repair layer: a
//                          detection run carrying an armed repair policy
//                          that never matches a fault must cost < 2%
//                          versus the same run with repair off.
//
// All are emitted through --bench-json for tools/bench_compare.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json_common.hpp"
#include "consultant/fault_detector.hpp"
#include "repro_common.hpp"
#include "rocc/simulation.hpp"

namespace {

paradyn::rocc::SystemConfig base_config() {
  auto c = paradyn::rocc::SystemConfig::now(4);
  c.duration_us = 5e6;
  c.sampling_period_us = 5'000.0;
  c.batch_size = 1;
  return c;
}

/// Events per wall second of one run.
double run_eps(const paradyn::rocc::SystemConfig& cfg) {
  const paradyn::bench::WallTimer t;
  const auto r = paradyn::rocc::run_simulation(cfg);
  const double sec = t.seconds();
  return sec > 0.0 ? static_cast<double>(r.events_processed) / sec : 0.0;
}

/// Events per wall second of one detection run, optionally with a repair
/// policy armed.
double run_detect_eps(const paradyn::rocc::SystemConfig& cfg,
                      paradyn::consultant::RepairPolicy policy = {}) {
  const paradyn::bench::WallTimer t;
  const auto r = paradyn::consultant::run_with_detection(cfg, {}, std::move(policy));
  const double sec = t.seconds();
  return sec > 0.0 ? static_cast<double>(r.events_processed) / sec : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  paradyn::bench::print_stamp("fault_grid");
  using namespace paradyn;

  const std::string json_path = bench::bench_json_path(argc, argv);
  const bench::WallTimer total;

  const auto plain = base_config();

  // Armed but inert: the gate exists and is consulted by the schedule,
  // but the 1 ms window on one node with p ~ 0 never claims a sample.
  auto inert = base_config();
  inert.faults = rocc::FaultPlan::parse("sample_drop:node=0,start=1s,dur=1ms,p=1e-12");

  // The active grid: one fault of every flavor in a 5 s run.
  auto active = base_config();
  active.faults = rocc::FaultPlan::parse(
      "daemon_stall:daemon=0,start=1s,dur=200ms;"
      "daemon_crash:daemon=1,start=2s,dur=200ms;"
      "link_slow:start=2500ms,dur=500ms,factor=8;"
      "sample_drop:node=all,start=3s,dur=1s,p=0.25;"
      "pipe_backpressure:daemon=2,start=4s,dur=500ms,capacity=2");

  // Repair-off vs armed-but-inert repair: both runs carry the detection
  // harness over the active grid; the policy's only action is gated behind
  // a threshold no fault reaches, so zero repair events are scheduled and
  // zero draws leave the repair stream.
  const auto inert_repair = consultant::RepairPolicy::parse("reroute_link:threshold=64");

  (void)run_eps(plain);  // warm-up: page in code and the event pool

  constexpr int kRounds = 5;
  double plain_eps = 0.0;
  double inert_eps = 0.0;
  double active_eps = 0.0;
  double repair_off_eps = 0.0;
  double repair_inert_eps = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    // Interleaved so drift (thermal, scheduler) hits all five equally;
    // best-of cancels transient stalls.
    plain_eps = std::max(plain_eps, run_eps(plain));
    inert_eps = std::max(inert_eps, run_eps(inert));
    active_eps = std::max(active_eps, run_eps(active));
    repair_off_eps = std::max(repair_off_eps, run_detect_eps(active));
    repair_inert_eps = std::max(repair_inert_eps, run_detect_eps(active, inert_repair));
  }

  const double speedup = plain_eps > 0.0 ? active_eps / plain_eps : 0.0;
  const double overhead_pct = inert_eps > 0.0 ? (plain_eps / inert_eps - 1.0) * 100.0 : 0.0;
  const double repair_overhead_pct =
      repair_inert_eps > 0.0 ? (repair_off_eps / repair_inert_eps - 1.0) * 100.0 : 0.0;

  std::printf("=== Fault-injection hot path (NOW 4 nodes, SP = 5 ms, 5 s run, best of %d) ===\n",
              kRounds);
  std::printf("  %-28s %12.0f ev/s\n", "plain (no fault plan)", plain_eps);
  std::printf("  %-28s %12.0f ev/s\n", "armed but inert plan", inert_eps);
  std::printf("  %-28s %12.0f ev/s\n", "active 5-fault grid", active_eps);
  std::printf("  %-28s %12.0f ev/s\n", "detect, repair off", repair_off_eps);
  std::printf("  %-28s %12.0f ev/s\n", "detect, inert repair", repair_inert_eps);
  std::printf("  %-28s %12.3f\n", "speedup_fault_grid", speedup);
  std::printf("  %-28s %12.3f %%\n", "fault_off_overhead_pct", overhead_pct);
  std::printf("  %-28s %12.3f %%\n", "repair_off_overhead_pct", repair_overhead_pct);

  if (!json_path.empty()) {
    bench::write_bench_json(json_path, {
                                           {"fault_grid_plain_eps", plain_eps},
                                           {"fault_grid_active_eps", active_eps},
                                           {"speedup_fault_grid", speedup},
                                           {"fault_off_overhead_pct", overhead_pct},
                                           {"repair_off_overhead_pct", repair_overhead_pct},
                                           {"fault_grid_wall_seconds", total.seconds()},
                                       });
  }
  return 0;
}
