// Micro-benchmarks of the simulation engine and statistics substrate
// (google-benchmark).  These guard the performance envelope that makes the
// paper-scale experiments (256-node MPP, 2^4 r factorials) cheap to run.
#include <benchmark/benchmark.h>

#include "des/engine.hpp"
#include "des/random.hpp"
#include "rocc/simulation.hpp"
#include "stats/distributions.hpp"
#include "stats/fitting.hpp"

namespace {

using namespace paradyn;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  des::RngStream rng(1, 1);
  for (auto _ : state) {
    des::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      (void)q.push(rng.next_double(), [] {});
    }
    while (auto e = q.pop()) benchmark::DoNotOptimize(e->time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(100'000);

void BM_EngineSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    des::Engine engine;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 100'000) (void)engine.schedule_after(1.0, tick);
    };
    (void)engine.schedule_after(1.0, tick);
    (void)engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_EngineSelfScheduling);

void BM_Pcg32(benchmark::State& state) {
  des::RngStream rng(7, 7);
  double acc = 0.0;
  for (auto _ : state) acc += rng.next_double();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32);

void BM_SampleLognormal(benchmark::State& state) {
  const auto dist = stats::Lognormal::from_mean_stddev(2213.0, 3034.0);
  des::RngStream rng(7, 9);
  double acc = 0.0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SampleLognormal);

void BM_SampleExponential(benchmark::State& state) {
  const stats::Exponential dist(223.0);
  des::RngStream rng(7, 11);
  double acc = 0.0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SampleExponential);

void BM_FitLognormal(benchmark::State& state) {
  const auto dist = stats::Lognormal::from_mean_stddev(2213.0, 3034.0);
  des::RngStream rng(5, 5);
  std::vector<double> data;
  for (int i = 0; i < 10'000; ++i) data.push_back(dist.sample(rng));
  for (auto _ : state) {
    const auto fit = stats::fit_lognormal(data);
    benchmark::DoNotOptimize(fit.mu());
  }
}
BENCHMARK(BM_FitLognormal);

void BM_NowSimulation(benchmark::State& state) {
  const auto nodes = static_cast<std::int32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto cfg = rocc::SystemConfig::now(nodes);
    cfg.duration_us = 1e6;  // 1 simulated second
    cfg.sampling_period_us = 40'000.0;
    rocc::Simulation sim(cfg);
    const auto result = sim.run();
    events += sim.engine().events_processed();
    benchmark::DoNotOptimize(result.pd_cpu_time_per_node_us);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s == items/s; 1 simulated second per iteration");
}
BENCHMARK(BM_NowSimulation)->Arg(8)->Arg(64);

void BM_MppTreeSimulation(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto cfg = rocc::SystemConfig::mpp(64, rocc::ForwardingTopology::BinaryTree);
    cfg.duration_us = 1e6;
    cfg.batch_size = 32;
    rocc::Simulation sim(cfg);
    const auto result = sim.run();
    events += sim.engine().events_processed();
    benchmark::DoNotOptimize(result.latency_us.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MppTreeSimulation);

}  // namespace

BENCHMARK_MAIN();
