// Micro-benchmarks of the simulation engine and statistics substrate
// (google-benchmark).  These guard the performance envelope that makes the
// paper-scale experiments (256-node MPP, 2^4 r factorials) cheap to run.
//
// Queue benchmarks run the same workload against both the calendar
// EventQueue (the production implementation) and the reference binary
// HeapEventQueue, so a single run shows the speedup the calendar design
// buys.  `--bench-json=PATH` switches to a deterministic fixed-workload
// mode that writes machine-comparable metrics (see emit_bench_json below)
// for the CI regression gate in tools/bench_compare.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/event_queue.hpp"
#include "des/heap_event_queue.hpp"
#include "des/random.hpp"
#include "rocc/simulation.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"
#include "stats/fitting.hpp"
#include "stats/sampler.hpp"
#include "stats/ziggurat.hpp"

namespace {

using namespace paradyn;

// --- Queue drivers ---------------------------------------------------------
// Uniform interface over the two implementations so every queue benchmark
// runs the identical operation script against both.

struct CalendarDriver {
  static constexpr const char* kName = "calendar";
  des::EventQueue q;
  using Handle = des::EventHandle;
  Handle push(des::SimTime t) { return q.push(t, [] {}); }
  bool pop_fire() {
    auto fired = q.pop();
    if (!fired) return false;
    q.fire(*fired);
    return true;
  }
  void cancel(Handle& h) { q.cancel(h); }
};

struct HeapDriver {
  static constexpr const char* kName = "heap";
  des::HeapEventQueue q;
  using Handle = des::HeapEventHandle;
  Handle push(des::SimTime t) { return q.push(t, [] {}); }
  bool pop_fire() {
    auto fired = q.pop();
    if (!fired) return false;
    fired->callback();
    return true;
  }
  void cancel(Handle& h) { q.cancel(h); }
};

// --- Deterministic workloads (shared by gbench and --bench-json) -----------

/// Classical hold model: a queue held at steady-state size `n`; each hold
/// pops the minimum and schedules a replacement a random increment later.
/// This is the DES steady-state access pattern.  Returns operations done.
template <typename Driver>
std::size_t workload_hold(std::size_t n, std::size_t holds) {
  Driver d;
  des::RngStream rng(1, 101);
  for (std::size_t i = 0; i < n; ++i) (void)d.push(rng.next_double() * static_cast<double>(n));
  des::SimTime t = 0.0;
  for (std::size_t i = 0; i < holds; ++i) {
    d.pop_fire();
    t += 1.0;
    (void)d.push(t + rng.next_double() * static_cast<double>(n));
  }
  while (d.pop_fire()) {
  }
  return 2 * holds + 2 * n;
}

/// Bulk load a uniform horizon, then drain — the transient pattern at
/// simulation start and around barrier releases.
template <typename Driver>
std::size_t workload_bulk(std::size_t n) {
  Driver d;
  des::RngStream rng(2, 202);
  for (std::size_t i = 0; i < n; ++i) (void)d.push(rng.next_double() * 1e6);
  while (d.pop_fire()) {
  }
  return 2 * n;
}

/// Drain-dominated pattern: repeatedly bulk-load a horizon and pop it dry.
/// This is the workload the SoA bucket-record split targets — the pop loop
/// walks only the (time, seq) key columns and prefetches the callback slab
/// one event ahead, so drain throughput is the visible SoA payoff.
template <typename Driver>
std::size_t workload_drain(std::size_t n, std::size_t rounds) {
  Driver d;
  des::RngStream rng(4, 404);
  for (std::size_t r = 0; r < rounds; ++r) {
    // Each round's horizon starts where the last ended: simulated time
    // only moves forward, so the calendar's window advances instead of
    // degenerating into schedule-in-the-past scans.
    const double base = static_cast<double>(r) * 1e6;
    for (std::size_t i = 0; i < n; ++i) (void)d.push(base + rng.next_double() * 1e6);
    while (d.pop_fire()) {
    }
  }
  return 2 * n * rounds;
}

/// Cancel-heavy churn: the daemon flush-timer pattern where many scheduled
/// events are cancelled and rescheduled before they fire.
template <typename Driver>
std::size_t workload_cancel(std::size_t n) {
  Driver d;
  des::RngStream rng(3, 303);
  std::vector<typename Driver::Handle> handles;
  handles.reserve(n);
  des::SimTime t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(d.push(t + 10.0 + rng.next_double() * 90.0));
    if (i % 2 == 1) d.cancel(handles[i - 1]);
    if (i % 4 == 3) {
      d.pop_fire();
      t += 1.0;
    }
  }
  while (d.pop_fire()) {
  }
  return 2 * n;
}

// --- Variate-generation workloads ------------------------------------------
// Ziggurat fast path vs the pre-PR-5 reference path (virtual
// Distribution::sample with Box-Muller / inverse-CDF math) for each workload
// family of Table 2.  Both sides draw from identically seeded streams so the
// ratio isolates the generation cost.

/// n draws through a frozen sampler; returns n (ops for items/s).
std::size_t workload_variates_frozen(const stats::FrozenSampler& sampler, std::size_t n) {
  des::RngStream rng(11, 41);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += sampler(rng);
  benchmark::DoNotOptimize(acc);
  return n;
}

/// n draws through FrozenSampler::fill() in prefill-buffer-sized blocks —
/// the batched production path (BufferedSampler refills).  Same stream as
/// the scalar loop, so the ratio isolates the batch-kernel gain.
std::size_t workload_variates_fill(const stats::FrozenSampler& sampler, std::vector<double>& buf,
                                   std::size_t n) {
  des::RngStream rng(11, 41);
  double acc = 0.0;
  for (std::size_t done = 0; done < n; done += buf.size()) {
    const std::size_t chunk = std::min(buf.size(), n - done);
    sampler.fill(rng, std::span<double>(buf.data(), chunk));
    acc += buf[chunk - 1];
  }
  benchmark::DoNotOptimize(acc);
  return n;
}

/// n standard-normal draws through the batch ziggurat kernel.
std::size_t workload_normal_fill(std::vector<double>& buf, std::size_t n) {
  des::RngStream rng(11, 43);
  double acc = 0.0;
  for (std::size_t done = 0; done < n; done += buf.size()) {
    const std::size_t chunk = std::min(buf.size(), n - done);
    stats::ziggurat_normal_fill(rng, buf.data(), chunk);
    acc += buf[chunk - 1];
  }
  benchmark::DoNotOptimize(acc);
  return n;
}

/// n draws through the virtual reference interface.
std::size_t workload_variates_virtual(const stats::Distribution& dist, std::size_t n) {
  des::RngStream rng(11, 41);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
  return n;
}

/// n standard-normal draws straight off the ziggurat tables.
std::size_t workload_normal_ziggurat(std::size_t n) {
  des::RngStream rng(11, 43);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += stats::ziggurat_normal(rng);
  benchmark::DoNotOptimize(acc);
  return n;
}

/// n standard-normal draws via the Box-Muller reference.
std::size_t workload_normal_reference(std::size_t n) {
  des::RngStream rng(11, 43);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += stats::sample_standard_normal(rng);
  benchmark::DoNotOptimize(acc);
  return n;
}

/// Table 2 parameterizations, one representative per family.
stats::DistributionPtr variate_family(const std::string& family) {
  if (family == "exponential") return std::make_shared<stats::Exponential>(223.0);
  if (family == "lognormal") {
    return std::make_shared<stats::Lognormal>(
        stats::Lognormal::from_mean_stddev(2213.0, 3034.0));
  }
  if (family == "weibull") return std::make_shared<stats::Weibull>(0.8, 250.0);
  if (family == "empirical") {
    // A fixed irregular 64-point sample (jittered quadratic gaps): unequal
    // segment widths exercise the alias table's merged columns.
    des::RngStream rng(13, 55);
    std::vector<double> data;
    for (int i = 0; i < 64; ++i) {
      data.push_back(10.0 * i + 0.2 * i * i + rng.next_double());
    }
    return std::make_shared<stats::Empirical>(data);
  }
  throw std::invalid_argument("unknown variate family: " + family);
}

// --- google-benchmark wrappers ---------------------------------------------

template <typename Driver>
void BM_QueueHold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_hold<Driver>(n, 4 * n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * 4 * n + 2 * n));
  state.SetLabel(Driver::kName);
}
BENCHMARK_TEMPLATE(BM_QueueHold, CalendarDriver)->Arg(1'024)->Arg(65'536);
BENCHMARK_TEMPLATE(BM_QueueHold, HeapDriver)->Arg(1'024)->Arg(65'536);

template <typename Driver>
void BM_QueueBulkDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_bulk<Driver>(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
  state.SetLabel(Driver::kName);
}
BENCHMARK_TEMPLATE(BM_QueueBulkDrain, CalendarDriver)->Arg(1'000)->Arg(100'000);
BENCHMARK_TEMPLATE(BM_QueueBulkDrain, HeapDriver)->Arg(1'000)->Arg(100'000);

template <typename Driver>
void BM_QueueCancelChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_cancel<Driver>(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
  state.SetLabel(Driver::kName);
}
BENCHMARK_TEMPLATE(BM_QueueCancelChurn, CalendarDriver)->Arg(100'000);
BENCHMARK_TEMPLATE(BM_QueueCancelChurn, HeapDriver)->Arg(100'000);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_bulk<CalendarDriver>(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(100'000);

void BM_EngineSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    des::Engine engine;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 100'000) (void)engine.schedule_after(1.0, tick);
    };
    (void)engine.schedule_after(1.0, tick);
    (void)engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_EngineSelfScheduling);

void BM_Pcg32(benchmark::State& state) {
  des::RngStream rng(7, 7);
  double acc = 0.0;
  for (auto _ : state) acc += rng.next_double();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32);

void BM_SampleLognormal(benchmark::State& state) {
  const auto dist = stats::Lognormal::from_mean_stddev(2213.0, 3034.0);
  des::RngStream rng(7, 9);
  double acc = 0.0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SampleLognormal);

void BM_SampleExponential(benchmark::State& state) {
  const stats::Exponential dist(223.0);
  des::RngStream rng(7, 11);
  double acc = 0.0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SampleExponential);

// Ziggurat vs reference, one pair per family.  The "reference" side is the
// honest pre-PR-5 cost: a virtual Distribution::sample call doing Box-Muller
// or inverse-CDF math.
void BM_VariatesZiggurat(benchmark::State& state, const char* family) {
  const auto sampler = stats::FrozenSampler::compile(variate_family(family),
                                                     stats::SamplerBackend::Ziggurat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_variates_frozen(sampler, 1'024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'024);
  state.SetLabel("ziggurat");
}
BENCHMARK_CAPTURE(BM_VariatesZiggurat, exponential, "exponential");
BENCHMARK_CAPTURE(BM_VariatesZiggurat, lognormal, "lognormal");
BENCHMARK_CAPTURE(BM_VariatesZiggurat, weibull, "weibull");

void BM_VariatesReference(benchmark::State& state, const char* family) {
  const stats::DistributionPtr dist = variate_family(family);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_variates_virtual(*dist, 1'024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'024);
  state.SetLabel("reference");
}
BENCHMARK_CAPTURE(BM_VariatesReference, exponential, "exponential");
BENCHMARK_CAPTURE(BM_VariatesReference, lognormal, "lognormal");
BENCHMARK_CAPTURE(BM_VariatesReference, weibull, "weibull");

void BM_NormalZiggurat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_normal_ziggurat(1'024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'024);
}
BENCHMARK(BM_NormalZiggurat);

void BM_NormalBoxMuller(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_normal_reference(1'024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'024);
}
BENCHMARK(BM_NormalBoxMuller);

void BM_FitLognormal(benchmark::State& state) {
  const auto dist = stats::Lognormal::from_mean_stddev(2213.0, 3034.0);
  des::RngStream rng(5, 5);
  std::vector<double> data;
  for (int i = 0; i < 10'000; ++i) data.push_back(dist.sample(rng));
  for (auto _ : state) {
    const auto fit = stats::fit_lognormal(data);
    benchmark::DoNotOptimize(fit.mu());
  }
}
BENCHMARK(BM_FitLognormal);

void BM_NowSimulation(benchmark::State& state) {
  const auto nodes = static_cast<std::int32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto cfg = rocc::SystemConfig::now(nodes);
    cfg.duration_us = 1e6;  // 1 simulated second
    cfg.sampling_period_us = 40'000.0;
    rocc::Simulation sim(cfg);
    const auto result = sim.run();
    events += sim.engine().events_processed();
    benchmark::DoNotOptimize(result.pd_cpu_time_per_node_us);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s == items/s; 1 simulated second per iteration");
}
BENCHMARK(BM_NowSimulation)->Arg(8)->Arg(64);

void BM_MppTreeSimulation(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto cfg = rocc::SystemConfig::mpp(64, rocc::ForwardingTopology::BinaryTree);
    cfg.duration_us = 1e6;
    cfg.batch_size = 32;
    rocc::Simulation sim(cfg);
    const auto result = sim.run();
    events += sim.engine().events_processed();
    benchmark::DoNotOptimize(result.latency_us.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MppTreeSimulation);

// --- --bench-json fixed-workload mode --------------------------------------

/// Median ops/second (millions) over `reps` timed runs of `fn`.
template <typename Fn>
double median_mops(int reps, Fn&& fn) {
  std::vector<double> mops;
  mops.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t ops = fn();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    mops.push_back(static_cast<double>(ops) / elapsed.count() / 1e6);
  }
  std::sort(mops.begin(), mops.end());
  return mops[mops.size() / 2];
}

/// Median of per-round fast/slow ratios, with the two workloads alternated
/// inside every round.  Host frequency drift and scheduler steal then hit
/// both sides of each ratio roughly equally, so the recorded speedup
/// survives noise that skews two independently-timed medians — the same
/// symmetric discipline as the overhead envelope in profile_overhead.
/// `fast_mops_out`, when non-null, receives the median fast-side Mops/s.
template <typename FastFn, typename SlowFn>
double paired_speedup(int reps, FastFn&& fast, SlowFn&& slow, double* fast_mops_out = nullptr) {
  std::vector<double> fast_mops;
  std::vector<double> ratios;
  for (int r = 0; r < reps; ++r) {
    // Alternate which side runs first so ramp-up and post-AVX-512
    // frequency transitions do not systematically favor one side.
    double f;
    double s;
    if (r % 2 == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t fast_ops = fast();
      const auto t1 = std::chrono::steady_clock::now();
      const std::size_t slow_ops = slow();
      const auto t2 = std::chrono::steady_clock::now();
      f = static_cast<double>(fast_ops) / std::chrono::duration<double>(t1 - t0).count() / 1e6;
      s = static_cast<double>(slow_ops) / std::chrono::duration<double>(t2 - t1).count() / 1e6;
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t slow_ops = slow();
      const auto t1 = std::chrono::steady_clock::now();
      const std::size_t fast_ops = fast();
      const auto t2 = std::chrono::steady_clock::now();
      s = static_cast<double>(slow_ops) / std::chrono::duration<double>(t1 - t0).count() / 1e6;
      f = static_cast<double>(fast_ops) / std::chrono::duration<double>(t2 - t1).count() / 1e6;
    }
    fast_mops.push_back(f);
    ratios.push_back(f / s);
  }
  std::sort(fast_mops.begin(), fast_mops.end());
  std::sort(ratios.begin(), ratios.end());
  if (fast_mops_out != nullptr) *fast_mops_out = fast_mops[fast_mops.size() / 2];
  return ratios[ratios.size() / 2];
}

struct Metric {
  std::string key;
  double value;
};

void write_json(const std::string& path, const std::vector<Metric>& metrics) {
  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "  \"" << metrics[i].key << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "}\n";
  std::cout << "wrote " << metrics.size() << " metrics to " << path << "\n";
}

/// Deterministic medians for the CI gate.  Absolute `*_meps` numbers are
/// machine-dependent and informational; the `speedup_*` ratios
/// (calendar/heap on the same machine in the same run) are what
/// tools/bench_compare gates, so the baseline transfers across runners.
int emit_bench_json(const std::string& path) {
  constexpr int kReps = 5;
  std::vector<Metric> metrics;
  const auto record = [&metrics](const std::string& name, double calendar, double heap) {
    metrics.push_back({"calendar_" + name + "_meps", calendar});
    metrics.push_back({"heap_" + name + "_meps", heap});
    metrics.push_back({"speedup_" + name, calendar / heap});
    std::cout << name << ": calendar " << calendar << " Mops/s, heap " << heap
              << " Mops/s, speedup " << calendar / heap << "\n";
  };

  record("hold_1k",
         median_mops(kReps, [] { return workload_hold<CalendarDriver>(1'024, 1 << 20); }),
         median_mops(kReps, [] { return workload_hold<HeapDriver>(1'024, 1 << 20); }));
  record("hold_64k",
         median_mops(kReps, [] { return workload_hold<CalendarDriver>(65'536, 1 << 20); }),
         median_mops(kReps, [] { return workload_hold<HeapDriver>(65'536, 1 << 20); }));
  record("bulk_100k", median_mops(kReps, [] { return workload_bulk<CalendarDriver>(100'000); }),
         median_mops(kReps, [] { return workload_bulk<HeapDriver>(100'000); }));
  record("cancel_100k",
         median_mops(kReps, [] { return workload_cancel<CalendarDriver>(100'000); }),
         median_mops(kReps, [] { return workload_cancel<HeapDriver>(100'000); }));

  // Variate generation: ziggurat fast path vs the pre-PR-5 reference cost
  // (virtual Distribution::sample).  As with the queues, the `speedup_*`
  // ratios are the gated quantities; `*_mvps` (million variates/s) are
  // informational.
  constexpr std::size_t kDraws = 1 << 22;
  const auto record_variates = [&metrics](const std::string& family, double zig, double ref) {
    metrics.push_back({"ziggurat_" + family + "_mvps", zig});
    metrics.push_back({"reference_" + family + "_mvps", ref});
    metrics.push_back({"speedup_variates_" + family, zig / ref});
    std::cout << "variates " << family << ": ziggurat " << zig << " Mv/s, reference " << ref
              << " Mv/s, speedup " << zig / ref << "\n";
  };
  record_variates("normal",
                  median_mops(kReps, [] { return workload_normal_ziggurat(kDraws); }),
                  median_mops(kReps, [] { return workload_normal_reference(kDraws); }));
  for (const char* family : {"exponential", "lognormal", "weibull", "empirical"}) {
    const auto dist = variate_family(family);
    const auto sampler =
        stats::FrozenSampler::compile(dist, stats::SamplerBackend::Ziggurat);
    record_variates(
        family,
        median_mops(kReps, [&] { return workload_variates_frozen(sampler, kDraws); }),
        median_mops(kReps, [&] { return workload_variates_virtual(*dist, kDraws); }));
  }

  // Batched generation: FrozenSampler::fill() in prefill-buffer-sized
  // blocks vs the per-draw scalar loop over the SAME sampler.  The ratio is
  // the gain BufferedSampler buys a hot site (SIMD kernels + amortized call
  // overhead); both sides consume the identical stream.  These are the
  // CI-gated keys, so they use paired rounds rather than two independent
  // medians.
  constexpr std::size_t kFillBlock = 4'096;
  constexpr int kPairedReps = 7;
  std::vector<double> fill_buf(kFillBlock);
  const auto record_batch = [&metrics](const std::string& family, double fill, double speedup) {
    metrics.push_back({"fill_" + family + "_mvps", fill});
    metrics.push_back({"speedup_variates_batch_" + family, speedup});
    std::cout << "variates batch " << family << ": fill " << fill << " Mv/s, speedup " << speedup
              << " (" << stats::batch_dispatch_active() << ")\n";
  };
  {
    double fill_mvps = 0.0;
    const double speedup =
        paired_speedup(kPairedReps, [&] { return workload_normal_fill(fill_buf, kDraws); },
                       [] { return workload_normal_ziggurat(kDraws); }, &fill_mvps);
    record_batch("normal", fill_mvps, speedup);
  }
  for (const char* family : {"exponential", "lognormal", "weibull", "empirical"}) {
    const auto sampler = stats::FrozenSampler::compile(variate_family(family),
                                                       stats::SamplerBackend::Ziggurat);
    double fill_mvps = 0.0;
    const double speedup = paired_speedup(
        kPairedReps, [&] { return workload_variates_fill(sampler, fill_buf, kDraws); },
        [&] { return workload_variates_frozen(sampler, kDraws); }, &fill_mvps);
    record_batch(family, fill_mvps, speedup);
  }

  // Drain-heavy queue workload: the SoA key-column split shows up here
  // (pop walks only (time, seq); callbacks live in side slabs).
  record("queue_soa_drain",
         median_mops(kReps, [] { return workload_drain<CalendarDriver>(65'536, 4); }),
         median_mops(kReps, [] { return workload_drain<HeapDriver>(65'536, 4); }));

  write_json(path, metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--bench-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      return emit_bench_json(argv[i] + std::strlen(kFlag));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
