// Shared sweep driver for the SMP figures 22-24: four metrics as a
// function of one swept parameter, for 1-4 Paradyn daemons, under CF and
// BF, plus an uninstrumented baseline where meaningful.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/table.hpp"
#include "jobs_common.hpp"
#include "rocc/config.hpp"

namespace paradyn::bench {

/// For each policy (CF, BF batch 32) print IS utilization, latency, and
/// application utilization vs `xs`, one series per daemon count 1..4 plus
/// an uninstrumented reference.
inline void smp_daemon_sweep(const std::string& figure, const std::vector<double>& xs,
                             const std::string& x_label,
                             const std::function<rocc::SystemConfig(double, int)>& make,
                             std::size_t reps) {
  for (const int batch : {1, 32}) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> is_util, lat, app;
    for (int daemons = 1; daemons <= 4; ++daemons) {
      names.push_back(std::to_string(daemons) + " Pd" + (daemons > 1 ? "s" : ""));
      std::vector<double> is_row, lat_row, app_row;
      for (const double x : xs) {
        auto c = make(x, daemons);
        c.batch_size = batch;
        const experiments::ReplicationSet rs(c, reps);
        is_row.push_back(
            rs.mean([](const rocc::SimulationResult& r) { return r.is_cpu_util_pct; }));
        lat_row.push_back(
            rs.mean([](const rocc::SimulationResult& r) { return r.latency_sec(); }));
        app_row.push_back(
            rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      }
      is_util.push_back(std::move(is_row));
      lat.push_back(std::move(lat_row));
      app.push_back(std::move(app_row));
    }
    // Uninstrumented baseline for the application-utilization panel.
    {
      names.push_back("uninstr.");
      std::vector<double> is_row, lat_row, app_row;
      for (const double x : xs) {
        auto c = make(x, 1);
        c.instrumentation_enabled = false;
        const experiments::ReplicationSet rs(c, reps);
        is_row.push_back(0.0);
        lat_row.push_back(0.0);
        app_row.push_back(
            rs.mean([](const rocc::SimulationResult& r) { return r.app_cpu_util_pct; }));
      }
      is_util.push_back(std::move(is_row));
      lat.push_back(std::move(lat_row));
      app.push_back(std::move(app_row));
    }

    std::cout << "=== " << figure << (batch == 1 ? "a (CF policy)" : "b (BF policy, batch=32)")
              << " ===\n";
    experiments::print_series(std::cout, "IS CPU utilization/node (%)", x_label, xs, names,
                              is_util);
    experiments::print_series(std::cout, "Monitoring latency/sample (sec)", x_label, xs, names,
                              lat, 6);
    experiments::print_series(std::cout, "Application CPU utilization/node (%)", x_label, xs,
                              names, app);
    std::cout << '\n';
  }
}

}  // namespace paradyn::bench
