#include "des/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace paradyn::des {

ShardSet::ShardSet(const ShardSetConfig& config) : config_(config) {
  if (config_.shards == 0) throw std::invalid_argument("ShardSet: shard count must be >= 1");
  if (!(config_.window_us > 0.0)) {
    throw std::invalid_argument(
        "ShardSet: window (lookahead) must be > 0 — zero lookahead cannot be synchronized "
        "conservatively");
  }
  if (!(config_.duration_us > 0.0)) throw std::invalid_argument("ShardSet: duration must be > 0");
  if (config_.warmup_us < 0.0 || config_.warmup_us >= config_.duration_us) {
    if (config_.warmup_us != 0.0) {
      throw std::invalid_argument("ShardSet: warmup must lie in [0, duration)");
    }
  }
  engines_.resize(config_.shards);
  outboxes_.resize(config_.shards);
  seq_.assign(config_.shards, 0);
}

void ShardSet::post(std::size_t from, std::size_t to, SimTime delivery_time,
                    std::uint64_t sender_key, std::function<void()> deliver) {
  if (from >= engines_.size() || to >= engines_.size()) {
    throw std::out_of_range("ShardSet::post: shard index out of range");
  }
  if (delivery_time < horizon_) {
    throw std::logic_error("ShardSet::post: delivery at " + std::to_string(delivery_time) +
                           "us is before the window horizon " + std::to_string(horizon_) +
                           "us — lookahead contract violated");
  }
  outboxes_[from].push_back(Message{to, delivery_time, sender_key, seq_[from]++, std::move(deliver)});
}

void ShardSet::flush_outboxes() {
  // Gather, order canonically, and inject.  The sort key never involves the
  // source shard index, so the injection order — and the (time, insertion)
  // order inside every destination queue — is invariant under re-sharding.
  std::vector<Message> pending;
  for (auto& outbox : outboxes_) {
    for (auto& msg : outbox) pending.push_back(std::move(msg));
    outbox.clear();
  }
  std::sort(pending.begin(), pending.end(), [](const Message& a, const Message& b) {
    if (a.delivery_time != b.delivery_time) return a.delivery_time < b.delivery_time;
    if (a.sender_key != b.sender_key) return a.sender_key < b.sender_key;
    return a.seq < b.seq;
  });
  for (auto& msg : pending) {
    engines_[msg.to].schedule_at(msg.delivery_time,
                                 [fn = std::move(msg.deliver)] { fn(); });
    ++delivered_;
  }
}

void ShardSet::run(const std::function<void(SimTime)>& checkpoint) {
  // Boundary grid: every window multiple below duration, plus the warm-up
  // time and the duration itself.  Interior boundaries are *exclusive*
  // (Engine::run_before) so an event at exactly k*W runs after that
  // boundary's injections; the warm-up and final boundaries are *inclusive*
  // (Engine::run_until) to match the single-engine run()/collect()
  // semantics.  The grid depends only on (W, warmup, duration) — never on
  // the shard count.
  struct Boundary {
    SimTime time;
    bool inclusive;
  };
  std::vector<Boundary> boundaries;
  for (SimTime t = config_.window_us; t < config_.duration_us; t += config_.window_us) {
    boundaries.push_back({t, false});
  }
  if (config_.warmup_us > 0.0) boundaries.push_back({config_.warmup_us, true});
  boundaries.push_back({config_.duration_us, true});
  std::sort(boundaries.begin(), boundaries.end(),
            [](const Boundary& a, const Boundary& b) { return a.time < b.time; });
  // Merge duplicates; inclusive wins (a warm-up or final boundary that lands
  // exactly on the window grid still owns events at that instant).
  std::vector<Boundary> merged;
  for (const Boundary& b : boundaries) {
    if (!merged.empty() && merged.back().time == b.time) {
      merged.back().inclusive = merged.back().inclusive || b.inclusive;
    } else {
      merged.push_back(b);
    }
  }

  const auto serial = [](std::size_t count, const std::function<void(std::size_t)>& body) {
    for (std::size_t i = 0; i < count; ++i) body(i);
  };
  for (const Boundary& b : merged) {
    horizon_ = b.time;
    const std::function<void(std::size_t)> body = [this, &b](std::size_t shard) {
      if (b.inclusive) {
        engines_[shard].run_until(b.time);
      } else {
        engines_[shard].run_before(b.time);
      }
    };
    if (executor_) {
      executor_(engines_.size(), body);
    } else {
      serial(engines_.size(), body);
    }
    flush_outboxes();
    if (checkpoint && b.inclusive && b.time == config_.warmup_us) checkpoint(b.time);
  }
}

std::uint64_t ShardSet::events_processed() const noexcept {
  std::uint64_t total = 0;
  for (const Engine& e : engines_) total += e.events_processed();
  return total;
}

}  // namespace paradyn::des
