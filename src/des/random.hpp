// Deterministic, stream-splittable random number generation.
//
// Every stochastic entity in the ROCC model (each application process, each
// Paradyn daemon, each background-load generator, on every node, in every
// replication) owns its own named RNG stream.  Streams are derived from a
// global seed with SplitMix64 so that results are bit-reproducible across
// platforms and independent of the order in which entities draw numbers.
#pragma once

#include <cstdint>
#include <string_view>

namespace paradyn::des {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used both as a standalone
/// generator and as the seed-derivation function for Pcg32 streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix an arbitrary label into a seed.  Used to derive per-entity streams:
/// derive_seed(global, node_id, role_tag).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                                        std::uint64_t b = 0) noexcept;

/// Hash a string label to a 64-bit tag (FNV-1a), so streams can be named.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

/// PCG32 (XSH-RR): small, fast, statistically solid generator with 2^64
/// period and 2^63 selectable streams.
class Pcg32 {
 public:
  Pcg32() noexcept : Pcg32(0x853C49E6748FEA9BULL, 0xDA3E39CB94B95BDBULL) {}

  Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept {
    state_ = 0;
    inc_ = (stream << 1U) | 1U;
    (void)next_u32();
    state_ += seed;
    (void)next_u32();
  }

  /// Next 32 uniformly distributed bits.
  [[nodiscard]] std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as input to log() in inverse-CDF
  /// sampling (never returns 0).
  [[nodiscard]] double next_open_double() noexcept { return 1.0 - next_double(); }

  /// Uniform integer in [0, bound) using Lemire rejection.
  [[nodiscard]] std::uint32_t next_below(std::uint32_t bound) noexcept;

  /// The LCG multiplier, exposed for the batch ziggurat kernels
  /// (stats/ziggurat_batch.cpp) which advance several states per vector
  /// step with precomputed powers of the multiplier.
  static constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;

  /// Raw generator state, for speculative batch generation: a vector
  /// kernel snapshots the state, races ahead assuming the rejection-free
  /// fast path, and restores the snapshot to replay scalar when any lane
  /// rejects — keeping batch streams bit-identical to scalar draws.  Not
  /// for model code; entities must stay on the drawing interface.
  [[nodiscard]] std::uint64_t raw_state() const noexcept { return state_; }
  void set_raw_state(std::uint64_t state) noexcept { state_ = state; }
  /// The (odd) per-stream increment; constant over the stream's lifetime.
  [[nodiscard]] std::uint64_t raw_increment() const noexcept { return inc_; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// A named, reproducible random stream: the generator handed to model
/// entities.  Alias of Pcg32 plus a factory that encodes (seed, entity ids).
class RngStream : public Pcg32 {
 public:
  RngStream() noexcept = default;

  /// Create a stream for entity (a, b) — e.g. (node index, role tag) —
  /// under a global seed.  Different (a, b) pairs yield statistically
  /// independent streams.
  RngStream(std::uint64_t global_seed, std::uint64_t a, std::uint64_t b = 0) noexcept
      : Pcg32(derive_seed(global_seed, a, b), derive_seed(global_seed, b + 1, a + 1)) {}

  /// Create a stream from a human-readable label, e.g. "app/node3".
  RngStream(std::uint64_t global_seed, std::string_view label) noexcept
      : RngStream(global_seed, hash_label(label)) {}
};

}  // namespace paradyn::des
