#include "des/heap_event_queue.hpp"

#include <algorithm>

namespace paradyn::des {

HeapEventHandle HeapEventQueue::push(SimTime time, Callback cb) {
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(Node{time, next_seq_++, std::move(cb), alive});
  std::push_heap(heap_.begin(), heap_.end(), Earlier{});
  ++live_;
  return HeapEventHandle{std::move(alive)};
}

void HeapEventQueue::cancel(HeapEventHandle& handle) noexcept {
  if (handle.alive_ && *handle.alive_) {
    *handle.alive_ = false;
    --live_;
  }
  handle.alive_.reset();
}

void HeapEventQueue::drop_dead_top() {
  while (!heap_.empty() && !*heap_.front().alive) {
    std::pop_heap(heap_.begin(), heap_.end(), Earlier{});
    heap_.pop_back();
  }
}

std::optional<HeapEventQueue::Fired> HeapEventQueue::pop() {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Earlier{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  *node.alive = false;
  --live_;
  return Fired{node.time, std::move(node.callback)};
}

std::optional<SimTime> HeapEventQueue::peek_time() {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

}  // namespace paradyn::des
