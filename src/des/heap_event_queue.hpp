// Reference binary-heap pending-event set.
//
// This is the original EventQueue implementation, preserved verbatim in
// behavior: a binary min-heap ordered by (time, insertion sequence) with a
// shared_ptr<bool> control block per event and std::function callbacks.
// The calendar queue in event_queue.hpp replaced it on the hot path; this
// copy stays as (a) the oracle for the differential determinism suite —
// every (time, seq) pop order the calendar queue produces must match it
// exactly — and (b) the baseline the queue micro-benchmarks and the
// bench-smoke CI gate measure speedups against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "des/time.hpp"

namespace paradyn::des {

/// Handle to an event scheduled on a HeapEventQueue.
class HeapEventHandle {
 public:
  HeapEventHandle() noexcept = default;

  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class HeapEventQueue;
  explicit HeapEventHandle(std::shared_ptr<bool> alive) noexcept : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of timestamped callbacks with deterministic tie-breaking.
class HeapEventQueue {
 public:
  using Callback = std::function<void()>;

  HeapEventHandle push(SimTime time, Callback cb);

  void cancel(HeapEventHandle& handle) noexcept;

  struct Fired {
    SimTime time = 0;
    Callback callback;
  };
  [[nodiscard]] std::optional<Fired> pop();

  [[nodiscard]] std::optional<SimTime> peek_time();

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

 private:
  struct Node {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback callback;
    std::shared_ptr<bool> alive;
  };
  struct Earlier {
    bool operator()(const Node& a, const Node& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  void drop_dead_top();

  std::vector<Node> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace paradyn::des
