// The discrete-event simulation engine.
//
// Classic event-scheduling world view: model components register callbacks
// at future simulation times; the engine pops them in (time, seq) order and
// advances the clock.  Components never see time move backwards, and events
// scheduled "now" from inside a callback run after the current callback
// returns (still at the same clock value, in scheduling order).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "des/event_queue.hpp"
#include "des/time.hpp"

namespace paradyn::obs {
class Tracer;
}

namespace paradyn::des {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulation time (microseconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule a callback at absolute time `t` (must be >= now()).  The
  /// callable is stored inline in the pooled event record — a capture
  /// larger than EventQueue::kCallbackCapacity is a compile error.
  template <typename F>
  EventHandle schedule_at(SimTime t, F&& cb) {
    if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
    return queue_.push(t, std::forward<F>(cb));
  }

  /// Schedule a callback `dt` from now (dt must be >= 0).
  template <typename F>
  EventHandle schedule_after(SimTime dt, F&& cb) {
    return schedule_at(now_ + dt, std::forward<F>(cb));
  }

  /// Cancel a pending event (no-op if already fired/cancelled).
  void cancel(EventHandle& handle) noexcept { queue_.cancel(handle); }

  /// Run until the event queue is exhausted or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run events with time <= t_end, then set the clock to exactly t_end.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end);

  /// Run events with time strictly < t_end, then set the clock to exactly
  /// t_end.  Conservative-window PDES needs this exclusive variant for
  /// interior window horizons: an event scheduled exactly at the horizon
  /// belongs to the *next* window, after cross-shard messages for that
  /// instant have been injected.  Returns the number of events executed.
  std::uint64_t run_before(SimTime t_end);

  /// Request that the current run() / run_until() return after the current
  /// event completes.
  void stop() noexcept { stopping_ = true; }

  /// True if no live events remain.
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Live events currently pending.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Attach (or detach, with nullptr) a trace sink.  When attached, the
  /// engine records one span per executed event on obs::kEngineTrack; the
  /// span extends to the next event's execution time, so the spans tile the
  /// simulated timeline.  Disabled tracing costs one branch per event.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  void trace_event_executed();
  void trace_flush();

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
  bool stopping_ = false;
  obs::Tracer* tracer_ = nullptr;
  SimTime span_start_ = 0.0;
  bool span_open_ = false;
};

}  // namespace paradyn::des
