// Pending-event set for the discrete-event engine.
//
// A binary min-heap ordered by (time, insertion sequence).  The sequence
// tie-break makes execution order fully deterministic: two events scheduled
// for the same instant fire in the order they were scheduled.  Cancellation
// is lazy — a cancelled event stays in the heap but its control block is
// marked dead and it is skipped on pop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "des/time.hpp"

namespace paradyn::des {

/// Handle to a scheduled event; allows cancellation.  Default-constructed
/// handles refer to no event and are safe to cancel (a no-op).
class EventHandle {
 public:
  EventHandle() noexcept = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) noexcept : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of timestamped callbacks with deterministic tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Insert an event; returns a handle usable for cancellation.
  EventHandle push(SimTime time, Callback cb);

  /// Cancel a pending event.  Safe on empty/fired/cancelled handles.
  void cancel(EventHandle& handle) noexcept;

  /// Remove and return the earliest live event, or nullopt if none remain.
  struct Fired {
    SimTime time = 0;
    Callback callback;
  };
  [[nodiscard]] std::optional<Fired> pop();

  /// Time of the earliest live event, if any.
  [[nodiscard]] std::optional<SimTime> peek_time();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

 private:
  struct Node {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback callback;
    std::shared_ptr<bool> alive;
  };
  struct Earlier {
    bool operator()(const Node& a, const Node& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  void drop_dead_top();

  std::vector<Node> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace paradyn::des
