// Pending-event set for the discrete-event engine.
//
// A two-tier calendar queue over slab-pooled event records, tuned for the
// engine's strongly time-clustered workload:
//
//  * Near tier — a window of `kNumBuckets` buckets, each `width` of
//    simulated time wide.  An event whose time falls inside the window is
//    insertion-sorted into its bucket's intrusive list; with the width
//    adapted to roughly one live event per bucket, push and pop are O(1)
//    amortized.  A cursor sweeps the window monotonically, so pop never
//    rescans drained buckets.
//  * Far tier — events beyond the window land in an unsorted staging
//    buffer of (time, seq, slot) tuples.  When the near tier drains, the
//    window advances: the staging buffer is sorted and merged into the
//    sorted ladder (one linear, cache-friendly pass over inline keys — the
//    comparator never touches per-slot storage), a fresh window is placed
//    at the ladder's earliest time with a width derived from the event
//    density near its head, and the leading run is migrated into buckets.
//
// Storage is structure-of-arrays: the hot traversal keys — (time, seq)
// ordering fields, intrusive links, lifecycle state, ABA generations —
// live in dense per-slot vectors, so bucket walks, sweeps, and ladder
// checks touch only packed key lines instead of dragging each record's
// callback bytes through the cache (the AoS record was ~128 bytes, of
// which a traversal used 21).  Callbacks alone stay in fixed slabs with
// stable addresses: fire() runs a callback in place while that callback
// may push new events and grow the key vectors, so callback storage must
// never move.  Slots are recycled through a free list; steady-state
// scheduling does not allocate.
//
// A record's (slot, generation) pair doubles as the cancellation handle;
// the generation counter is bumped on every recycle so a stale handle can
// never cancel the slot's next tenant (ABA protection).
//
// Ordering contract (identical to the binary-heap implementation this
// replaced, bit-for-bit — see tests/des/event_queue_diff_test.cpp): events
// pop in (time, insertion sequence) order, so two events scheduled for the
// same instant fire in the order they were scheduled.  Cancellation is
// lazy: a cancelled record stays linked but is skipped and recycled when
// the sweep reaches it.
//
// Event lifecycle: Pending (scheduled, cancellable) -> Firing (popped, its
// callback is executing; pending() is false and cancel() is a no-op) ->
// recycled.  cancel() moves Pending -> recycled directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "des/inline_function.hpp"
#include "des/time.hpp"

namespace paradyn::des {

class EventQueue;

/// Handle to a scheduled event; allows cancellation.  Default-constructed
/// handles refer to no event and are safe to cancel (a no-op).  A handle is
/// a (queue, slot, generation) triple — copying is trivial, and a handle
/// must not outlive its queue.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  /// True if the event is still pending (not firing, not fired, not
  /// cancelled).  A stale handle whose slot was recycled reports false.
  [[nodiscard]] bool pending() const noexcept;

 private:
  friend class EventQueue;
  EventHandle(const EventQueue* queue, std::uint32_t slot, std::uint32_t generation) noexcept
      : queue_(queue), slot_(slot), generation_(generation) {}

  const EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  /// Inline capture budget per event.  Sized to hold a moved-in
  /// rocc::SmallCallback (itself a 64-byte-capture InlineFunction) with
  /// room to spare; larger captures are a compile error, not a heap
  /// allocation.
  static constexpr std::size_t kCallbackCapacity = 96;
  using Callback = InlineFunction<kCallbackCapacity>;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Insert an event; returns a handle usable for cancellation.
  template <typename F>
  EventHandle push(SimTime time, F&& callback) {
    const std::uint32_t slot = acquire_slot();
    time_[slot] = time;
    seq_[slot] = next_seq_++;
    callback_of(slot).emplace(std::forward<F>(callback));
    state_[slot] = State::Pending;
    const std::uint32_t generation = generation_[slot];
    link(slot, time);
    ++live_;
    return EventHandle{this, slot, generation};
  }

  /// Cancel a pending event.  Safe on empty/stale/fired handles and on an
  /// event that is currently firing (no-op in all those cases).
  void cancel(EventHandle& handle) noexcept;

  /// The earliest live event, removed from the pending set and marked
  /// Firing.  Pass it to fire() to run the callback and recycle the slot,
  /// or discard() to recycle without running.
  struct Fired {
    SimTime time = 0;
    std::uint32_t slot = 0;
  };
  [[nodiscard]] std::optional<Fired> pop();

  /// Invoke the popped event's callback, then recycle its record.
  void fire(const Fired& fired);

  /// Recycle a popped event's record without invoking the callback.
  void discard(const Fired& fired) noexcept;

  /// Time of the earliest live event, if any.
  [[nodiscard]] std::optional<SimTime> peek_time();

  /// Number of live (pending, non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Slots ever allocated (slab pool footprint; for tests and metrics —
  /// steady-state workloads should see this plateau while events churn).
  [[nodiscard]] std::size_t allocated_slots() const noexcept { return allocated_; }

 private:
  friend class EventHandle;

  enum class State : std::uint8_t { Free, Pending, Firing, Cancelled };

  static constexpr std::uint32_t kNpos = 0xffffffffu;
  /// Window size: more buckets means rarer (amortized-cheaper) ladder
  /// merges for large queues at 32 KiB of bucket heads; empty buckets cost
  /// nothing to skip because the sweep short-circuits on in_buckets_ == 0.
  static constexpr std::size_t kNumBuckets = 8192;
  static constexpr std::size_t kSlabShift = 8;  ///< 256 callbacks per slab.
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;

  /// Callback storage is the one column that must not move: fire() runs it
  /// in place while the callback may push events and grow the key vectors.
  [[nodiscard]] Callback& callback_of(std::uint32_t slot) noexcept {
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
  }

  static void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  std::uint32_t acquire_slot();
  void recycle(std::uint32_t slot) noexcept;

  /// Route a record into its bucket or the far tier.
  void link(std::uint32_t slot, SimTime time);
  void insert_bucket(std::size_t index, std::uint32_t slot) noexcept;
  [[nodiscard]] std::size_t bucket_index(SimTime time) const noexcept;

  /// Advance the window over the far tier.  Returns false when the far
  /// tier is empty (the queue holds no more events).
  bool advance_window();

  /// First pending record in the near tier, recycling cancelled records
  /// encountered on the way.  kNpos when the near tier is drained.
  std::uint32_t sweep_to_head() noexcept;

  // Per-slot key columns (SoA), indexed by slot id; grown only in
  // acquire_slot.  Traversals touch these and never the callback slabs.
  std::vector<SimTime> time_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint32_t> next_;        ///< Intrusive link: bucket or free list.
  std::vector<std::uint32_t> generation_;  ///< Bumped on recycle (ABA guard).
  std::vector<State> state_;

  // Callback slabs (stable addresses) + free list.
  std::vector<std::unique_ptr<Callback[]>> slabs_;
  std::uint32_t free_head_ = kNpos;
  std::size_t allocated_ = 0;

  // Near tier.
  std::vector<std::uint32_t> bucket_head_;
  std::size_t cursor_ = 0;          ///< First bucket that may hold records.
  std::size_t in_buckets_ = 0;      ///< Records linked in buckets (any state).
  bool window_valid_ = false;
  SimTime win_lo_ = 0.0;
  SimTime win_hi_ = 0.0;
  SimTime width_ = 1.0;
  SimTime inv_width_ = 1.0;  ///< 1/width_: bucket mapping multiplies, never divides.

  // Far tier.  The sort keys are carried inline so sorting and merging are
  // sequential over 24-byte tuples instead of chasing per-slot columns.
  struct FarEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Sorted by (time, seq) ascending; [0, ladder_head_) is consumed.
  std::vector<FarEntry> ladder_;
  std::size_t ladder_head_ = 0;
  /// Unsorted arrivals since the last window advance.
  std::vector<FarEntry> staging_;
  std::vector<FarEntry> scratch_;  ///< Merge target, kept to reuse capacity.

  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

inline bool EventHandle::pending() const noexcept {
  if (queue_ == nullptr) return false;
  return queue_->generation_[slot_] == generation_ &&
         queue_->state_[slot_] == EventQueue::State::Pending;
}

}  // namespace paradyn::des
