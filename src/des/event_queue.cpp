#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace paradyn::des {

EventQueue::EventQueue() : bucket_head_(kNumBuckets, kNpos) {}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = next_[slot];
    return slot;
  }
  const std::size_t slot = allocated_;
  if ((slot & (kSlabSize - 1)) == 0) {
    slabs_.push_back(std::make_unique<Callback[]>(kSlabSize));
  }
  time_.push_back(0.0);
  seq_.push_back(0);
  next_.push_back(kNpos);
  generation_.push_back(0);
  state_.push_back(State::Free);
  ++allocated_;
  return static_cast<std::uint32_t>(slot);
}

void EventQueue::recycle(std::uint32_t slot) noexcept {
  callback_of(slot).reset();
  state_[slot] = State::Free;
  ++generation_[slot];
  next_[slot] = free_head_;
  free_head_ = slot;
}

std::size_t EventQueue::bucket_index(SimTime time) const noexcept {
  // floor((t - lo) * (1/w)), computed in floating point and clamped: times
  // before the window (possible after a drain/re-push) collapse into
  // bucket 0, and rounding stragglers at the upper edge collapse into the
  // last bucket.  Both clamps keep the time -> bucket map monotone, which
  // together with sorted buckets preserves global (time, seq) order.
  const double rel = (time - win_lo_) * inv_width_;
  if (!(rel > 0.0)) return 0;
  const auto index = static_cast<std::size_t>(rel);
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

void EventQueue::insert_bucket(std::size_t index, std::uint32_t slot) noexcept {
  const SimTime time = time_[slot];
  const std::uint64_t seq = seq_[slot];
  std::uint32_t* head = &bucket_head_[index];
  // Insertion sort by (time, seq): bucket lists hold ~1 live record at the
  // adapted width, so the walk is short — and it reads only the packed key
  // columns, never the callback slabs.
  while (*head != kNpos) {
    const std::uint32_t other = *head;
    if (time < time_[other] || (time == time_[other] && seq < seq_[other])) break;
    head = &next_[other];
  }
  next_[slot] = *head;
  *head = slot;
  ++in_buckets_;
  if (index < cursor_) cursor_ = index;
}

void EventQueue::link(std::uint32_t slot, SimTime time) {
  if (!window_valid_ || time >= win_hi_) {
    staging_.push_back(FarEntry{time, seq_[slot], slot});
    return;
  }
  insert_bucket(bucket_index(time), slot);
}

bool EventQueue::advance_window() {
  constexpr auto by_time_seq = [](const FarEntry& a, const FarEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };

  if (!staging_.empty()) {
    // Fold the arrivals since the last advance into the ladder: sort just
    // the new entries, then one linear merge over inline keys.  The old
    // design re-sorted the whole far tier here, which turned large steady
    // queues into O(n log n) per window and sank the hold benchmark.
    std::sort(staging_.begin(), staging_.end(), by_time_seq);
    scratch_.clear();
    scratch_.reserve(ladder_.size() - ladder_head_ + staging_.size());
    std::merge(ladder_.begin() + static_cast<std::ptrdiff_t>(ladder_head_), ladder_.end(),
               staging_.begin(), staging_.end(), std::back_inserter(scratch_), by_time_seq);
    ladder_.swap(scratch_);
    ladder_head_ = 0;
    staging_.clear();
  }
  // Drop cancelled records from the ladder prefix.
  while (ladder_head_ < ladder_.size() &&
         state_[ladder_[ladder_head_].slot] == State::Cancelled) {
    recycle(ladder_[ladder_head_].slot);
    ++ladder_head_;
  }
  if (ladder_head_ == ladder_.size()) {
    ladder_.clear();
    ladder_head_ = 0;
    return false;
  }

  // Place the window at the earliest remaining time and match its width to
  // the event density *near the head* (~1 event per bucket).  A full-span
  // average would be skewed by a few far-future timers into a width that
  // piles every near event into bucket 0, degrading pushes to O(n)
  // insertion sort; only the head run's density determines pop cost.
  const std::size_t remaining = ladder_.size() - ladder_head_;
  const SimTime t_min = ladder_[ladder_head_].time;
  const std::size_t lead = std::min(remaining, kNumBuckets);
  const std::size_t sample = std::min<std::size_t>(lead, 32);
  SimTime width = 0.0;
  if (sample > 1) {
    width = (ladder_[ladder_head_ + sample - 1].time - t_min) /
            static_cast<SimTime>(sample - 1);
  }
  if (!(width > 0.0) && lead > 1) {
    // Same-time burst at the head: fall back to the whole leading run.
    width = (ladder_[ladder_head_ + lead - 1].time - t_min) /
            static_cast<SimTime>(lead - 1);
  }
  width_ = width;
  if (!(width_ > 0.0) || !std::isfinite(width_)) width_ = 1.0;
  inv_width_ = 1.0 / width_;
  win_lo_ = t_min;
  win_hi_ = win_lo_ + static_cast<SimTime>(kNumBuckets) * width_;
  window_valid_ = true;
  cursor_ = 0;

  // Migration visits slots in ascending (time, seq), so a record landing in
  // the same bucket as its predecessor appends at the tail; the hint makes
  // that O(1) instead of re-walking the bucket list per record.  The
  // per-slot state/link lookups are data-dependent loads off the ladder,
  // so prefetch the columns a few entries ahead of the scan.
  constexpr std::size_t kPrefetchAhead = 8;
  std::size_t last_index = kNumBuckets;
  std::uint32_t last_slot = kNpos;
  while (ladder_head_ < ladder_.size()) {
    if (ladder_head_ + kPrefetchAhead < ladder_.size()) {
      const std::uint32_t ahead = ladder_[ladder_head_ + kPrefetchAhead].slot;
      prefetch(&state_[ahead]);
      prefetch(&next_[ahead]);
    }
    const FarEntry& entry = ladder_[ladder_head_];
    if (entry.time >= win_hi_) break;
    if (state_[entry.slot] == State::Cancelled) {
      recycle(entry.slot);
      ++ladder_head_;
      continue;
    }
    const std::size_t index = bucket_index(entry.time);
    if (index == last_index) {
      next_[last_slot] = entry.slot;
      next_[entry.slot] = kNpos;
      ++in_buckets_;
    } else {
      insert_bucket(index, entry.slot);
    }
    last_index = index;
    last_slot = entry.slot;
    ++ladder_head_;
  }
  if (ladder_head_ == ladder_.size()) {
    ladder_.clear();
    ladder_head_ = 0;
  }
  return in_buckets_ > 0 || ladder_head_ < ladder_.size();
}

std::uint32_t EventQueue::sweep_to_head() noexcept {
  while (in_buckets_ > 0) {
    while (bucket_head_[cursor_] == kNpos) ++cursor_;
    const std::uint32_t slot = bucket_head_[cursor_];
    if (state_[slot] == State::Cancelled) {
      bucket_head_[cursor_] = next_[slot];
      --in_buckets_;
      recycle(slot);
      continue;
    }
    return slot;
  }
  return kNpos;
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  for (;;) {
    const std::uint32_t slot = sweep_to_head();
    if (slot == kNpos) {
      if (!advance_window()) return std::nullopt;
      continue;
    }
    bucket_head_[cursor_] = next_[slot];
    --in_buckets_;
    state_[slot] = State::Firing;
    --live_;
    // The caller's next step is fire() — touch its callback line now — and
    // after that the drain revisits this bucket's successor's keys.
    prefetch(&callback_of(slot));
    if (next_[slot] != kNpos) prefetch(&time_[next_[slot]]);
    return Fired{time_[slot], slot};
  }
}

void EventQueue::fire(const Fired& fired) {
  // Invoke in place: the callback's slab address is stable even if the
  // callback pushes new events (which may grow the key columns), and the
  // slot is not recycled until the callback returns.  While state ==
  // Firing, pending() is false and cancel() is a no-op, so a self-cancel
  // from inside the callback is safe.
  callback_of(fired.slot)();
  recycle(fired.slot);
}

void EventQueue::discard(const Fired& fired) noexcept { recycle(fired.slot); }

std::optional<SimTime> EventQueue::peek_time() {
  for (;;) {
    const std::uint32_t slot = sweep_to_head();
    if (slot == kNpos) {
      if (!advance_window()) return std::nullopt;
      continue;
    }
    return time_[slot];
  }
}

void EventQueue::cancel(EventHandle& handle) noexcept {
  // A handle issued by a different queue is left untouched: resetting it
  // here would silently detach a still-live event.
  if (handle.queue_ != this) return;
  const std::uint32_t slot = handle.slot_;
  if (generation_[slot] == handle.generation_ && state_[slot] == State::Pending) {
    // Lazy cancellation: the record stays linked (bucket or overflow) and
    // is recycled when the sweep reaches it.  The callback is destroyed
    // now so captured resources are released promptly.
    state_[slot] = State::Cancelled;
    callback_of(slot).reset();
    --live_;
  }
  handle = EventHandle{};
}

}  // namespace paradyn::des
