#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace paradyn::des {

EventQueue::EventQueue() : bucket_head_(kNumBuckets, kNpos) {}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next;
    return slot;
  }
  const std::size_t slot = allocated_;
  if ((slot & (kSlabSize - 1)) == 0) {
    slabs_.push_back(std::make_unique<Record[]>(kSlabSize));
  }
  ++allocated_;
  return static_cast<std::uint32_t>(slot);
}

void EventQueue::recycle(std::uint32_t slot) noexcept {
  Record& r = record(slot);
  r.callback.reset();
  r.state = State::Free;
  ++r.generation;
  r.next = free_head_;
  free_head_ = slot;
}

std::size_t EventQueue::bucket_index(SimTime time) const noexcept {
  // floor((t - lo) * (1/w)), computed in floating point and clamped: times
  // before the window (possible after a drain/re-push) collapse into
  // bucket 0, and rounding stragglers at the upper edge collapse into the
  // last bucket.  Both clamps keep the time -> bucket map monotone, which
  // together with sorted buckets preserves global (time, seq) order.
  const double rel = (time - win_lo_) * inv_width_;
  if (!(rel > 0.0)) return 0;
  const auto index = static_cast<std::size_t>(rel);
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

void EventQueue::insert_bucket(std::size_t index, std::uint32_t slot) noexcept {
  Record& r = record(slot);
  std::uint32_t* head = &bucket_head_[index];
  // Insertion sort by (time, seq): bucket lists hold ~1 live record at the
  // adapted width, so the walk is short.
  while (*head != kNpos) {
    const Record& other = record(*head);
    if (r.time < other.time || (r.time == other.time && r.seq < other.seq)) break;
    head = &record(*head).next;
  }
  r.next = *head;
  *head = slot;
  ++in_buckets_;
  if (index < cursor_) cursor_ = index;
}

void EventQueue::link(std::uint32_t slot, SimTime time) {
  if (!window_valid_ || time >= win_hi_) {
    staging_.push_back(FarEntry{time, record(slot).seq, slot});
    return;
  }
  insert_bucket(bucket_index(time), slot);
}

bool EventQueue::advance_window() {
  constexpr auto by_time_seq = [](const FarEntry& a, const FarEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };

  if (!staging_.empty()) {
    // Fold the arrivals since the last advance into the ladder: sort just
    // the new entries, then one linear merge over inline keys.  The old
    // design re-sorted the whole far tier here, which turned large steady
    // queues into O(n log n) per window and sank the hold benchmark.
    std::sort(staging_.begin(), staging_.end(), by_time_seq);
    scratch_.clear();
    scratch_.reserve(ladder_.size() - ladder_head_ + staging_.size());
    std::merge(ladder_.begin() + static_cast<std::ptrdiff_t>(ladder_head_), ladder_.end(),
               staging_.begin(), staging_.end(), std::back_inserter(scratch_), by_time_seq);
    ladder_.swap(scratch_);
    ladder_head_ = 0;
    staging_.clear();
  }
  // Drop cancelled records from the ladder prefix.
  while (ladder_head_ < ladder_.size() &&
         record(ladder_[ladder_head_].slot).state == State::Cancelled) {
    recycle(ladder_[ladder_head_].slot);
    ++ladder_head_;
  }
  if (ladder_head_ == ladder_.size()) {
    ladder_.clear();
    ladder_head_ = 0;
    return false;
  }

  // Place the window at the earliest remaining time and match its width to
  // the event density *near the head* (~1 event per bucket).  A full-span
  // average would be skewed by a few far-future timers into a width that
  // piles every near event into bucket 0, degrading pushes to O(n)
  // insertion sort; only the head run's density determines pop cost.
  const std::size_t remaining = ladder_.size() - ladder_head_;
  const SimTime t_min = ladder_[ladder_head_].time;
  const std::size_t lead = std::min(remaining, kNumBuckets);
  const std::size_t sample = std::min<std::size_t>(lead, 32);
  SimTime width = 0.0;
  if (sample > 1) {
    width = (ladder_[ladder_head_ + sample - 1].time - t_min) /
            static_cast<SimTime>(sample - 1);
  }
  if (!(width > 0.0) && lead > 1) {
    // Same-time burst at the head: fall back to the whole leading run.
    width = (ladder_[ladder_head_ + lead - 1].time - t_min) /
            static_cast<SimTime>(lead - 1);
  }
  width_ = width;
  if (!(width_ > 0.0) || !std::isfinite(width_)) width_ = 1.0;
  inv_width_ = 1.0 / width_;
  win_lo_ = t_min;
  win_hi_ = win_lo_ + static_cast<SimTime>(kNumBuckets) * width_;
  window_valid_ = true;
  cursor_ = 0;

  // Migration visits slots in ascending (time, seq), so a record landing in
  // the same bucket as its predecessor appends at the tail; the hint makes
  // that O(1) instead of re-walking the bucket list per record.
  std::size_t last_index = kNumBuckets;
  std::uint32_t last_slot = kNpos;
  while (ladder_head_ < ladder_.size()) {
    const FarEntry& entry = ladder_[ladder_head_];
    if (entry.time >= win_hi_) break;
    Record& r = record(entry.slot);
    if (r.state == State::Cancelled) {
      recycle(entry.slot);
      ++ladder_head_;
      continue;
    }
    const std::size_t index = bucket_index(entry.time);
    if (index == last_index) {
      record(last_slot).next = entry.slot;
      r.next = kNpos;
      ++in_buckets_;
    } else {
      insert_bucket(index, entry.slot);
    }
    last_index = index;
    last_slot = entry.slot;
    ++ladder_head_;
  }
  if (ladder_head_ == ladder_.size()) {
    ladder_.clear();
    ladder_head_ = 0;
  }
  return in_buckets_ > 0 || ladder_head_ < ladder_.size();
}

std::uint32_t EventQueue::sweep_to_head() noexcept {
  while (in_buckets_ > 0) {
    while (bucket_head_[cursor_] == kNpos) ++cursor_;
    const std::uint32_t slot = bucket_head_[cursor_];
    Record& r = record(slot);
    if (r.state == State::Cancelled) {
      bucket_head_[cursor_] = r.next;
      --in_buckets_;
      recycle(slot);
      continue;
    }
    return slot;
  }
  return kNpos;
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  for (;;) {
    const std::uint32_t slot = sweep_to_head();
    if (slot == kNpos) {
      if (!advance_window()) return std::nullopt;
      continue;
    }
    Record& r = record(slot);
    bucket_head_[cursor_] = r.next;
    --in_buckets_;
    r.state = State::Firing;
    --live_;
    return Fired{r.time, slot};
  }
}

void EventQueue::fire(const Fired& fired) {
  // Invoke in place: the record's address is slab-stable even if the
  // callback pushes new events, and the slot is not recycled until the
  // callback returns.  While state == Firing, pending() is false and
  // cancel() is a no-op, so a self-cancel from inside the callback is safe.
  record(fired.slot).callback();
  recycle(fired.slot);
}

void EventQueue::discard(const Fired& fired) noexcept { recycle(fired.slot); }

std::optional<SimTime> EventQueue::peek_time() {
  for (;;) {
    const std::uint32_t slot = sweep_to_head();
    if (slot == kNpos) {
      if (!advance_window()) return std::nullopt;
      continue;
    }
    return record(slot).time;
  }
}

void EventQueue::cancel(EventHandle& handle) noexcept {
  // A handle issued by a different queue is left untouched: resetting it
  // here would silently detach a still-live event.
  if (handle.queue_ != this) return;
  Record& r = record(handle.slot_);
  if (r.generation == handle.generation_ && r.state == State::Pending) {
    // Lazy cancellation: the record stays linked (bucket or overflow) and
    // is recycled when the sweep reaches it.  The callback is destroyed
    // now so captured resources are released promptly.
    r.state = State::Cancelled;
    r.callback.reset();
    --live_;
  }
  handle = EventHandle{};
}

}  // namespace paradyn::des
