// Fixed-capacity, allocation-free `void()` callable.
//
// The DES hot path fires millions of callbacks per simulated second; a
// `std::function` per event costs a heap allocation whenever the capture
// exceeds its small-buffer size, and that allocation dominated the event
// loop profile.  InlineFunction stores the callable in place, always: a
// capture that does not fit the slot is a compile error (static_assert),
// never a silent fallback to the heap.  That keeps every event record in
// the queue's slab pool exactly one cache-line-friendly block with no
// pointer chasing to reach the closure state.
//
// Move-only.  The stored callable must be nothrow-move-constructible so
// records can be relocated without an exception path.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace paradyn::des {

template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                            !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  /// Construct a callable in place, destroying any previous one.
  template <typename F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    static_assert(sizeof(D) <= Capacity,
                  "callback capture exceeds the inline slot: shrink the capture "
                  "(pool the state and capture an index) or grow the slot");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callback capture is over-aligned for the inline slot");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callback must be nothrow-move-constructible for slab relocation");
    reset();
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    vtable_ = &kVTable<D>;
  }

  /// Invoke the stored callable.  Undefined on an empty InlineFunction
  /// (same contract as dereferencing an empty std::function).
  void operator()() { vtable_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  /// Bytes available for the capture (for static_asserts at call sites).
  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  struct Ops {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
  };

  // A null destroy marks a trivially destructible capture, so the hot
  // recycle path (reset after every fired event) skips the indirect call.
  template <typename D>
  static inline const VTable kVTable{
      &Ops<D>::invoke, &Ops<D>::relocate,
      std::is_trivially_destructible_v<D> ? nullptr : &Ops<D>::destroy};

  void move_from(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace paradyn::des
