#include "des/random.hpp"

namespace paradyn::des {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 mix(base ^ (a * 0x9E3779B97F4A7C15ULL) ^ (b * 0xC2B2AE3D27D4EB4FULL));
  (void)mix.next();
  return mix.next();
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0U - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32U);
}

}  // namespace paradyn::des
