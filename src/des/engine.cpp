#include "des/engine.hpp"

namespace paradyn::des {

std::uint64_t Engine::run() {
  stopping_ = false;
  std::uint64_t executed = 0;
  while (!stopping_) {
    auto fired = queue_.pop();
    if (!fired) break;
    now_ = fired->time;
    fired->callback();
    ++executed;
    ++processed_;
  }
  return executed;
}

std::uint64_t Engine::run_until(SimTime t_end) {
  stopping_ = false;
  std::uint64_t executed = 0;
  while (!stopping_) {
    auto next = queue_.peek_time();
    if (!next || *next > t_end) break;
    auto fired = queue_.pop();
    now_ = fired->time;
    fired->callback();
    ++executed;
    ++processed_;
  }
  if (!stopping_ && now_ < t_end) now_ = t_end;
  return executed;
}

}  // namespace paradyn::des
