#include "des/engine.hpp"

#include "obs/trace.hpp"

namespace paradyn::des {

std::uint64_t Engine::run() {
  stopping_ = false;
  std::uint64_t executed = 0;
  while (!stopping_) {
    auto fired = queue_.pop();
    if (!fired) break;
    now_ = fired->time;
    if (tracer_ != nullptr) trace_event_executed();
    queue_.fire(*fired);
    ++executed;
    ++processed_;
  }
  if (tracer_ != nullptr) trace_flush();
  return executed;
}

std::uint64_t Engine::run_until(SimTime t_end) {
  stopping_ = false;
  std::uint64_t executed = 0;
  while (!stopping_) {
    auto next = queue_.peek_time();
    if (!next || *next > t_end) break;
    auto fired = queue_.pop();
    now_ = fired->time;
    if (tracer_ != nullptr) trace_event_executed();
    queue_.fire(*fired);
    ++executed;
    ++processed_;
  }
  if (!stopping_ && now_ < t_end) now_ = t_end;
  if (tracer_ != nullptr) trace_flush();
  return executed;
}

std::uint64_t Engine::run_before(SimTime t_end) {
  stopping_ = false;
  std::uint64_t executed = 0;
  while (!stopping_) {
    auto next = queue_.peek_time();
    if (!next || *next >= t_end) break;
    auto fired = queue_.pop();
    now_ = fired->time;
    if (tracer_ != nullptr) trace_event_executed();
    queue_.fire(*fired);
    ++executed;
    ++processed_;
  }
  if (!stopping_ && now_ < t_end) now_ = t_end;
  if (tracer_ != nullptr) trace_flush();
  return executed;
}

void Engine::trace_event_executed() {
  // Each executed event owns the engine track until the next one fires, so
  // the spans tile the timeline and their density shows where simulated
  // time is spent dispatching.
  if (span_open_) {
    tracer_->complete("des", "event", obs::kEngineTrack, span_start_, now_ - span_start_,
                      "pending", static_cast<double>(queue_.size()));
  }
  span_open_ = true;
  span_start_ = now_;
}

void Engine::trace_flush() {
  if (span_open_) {
    tracer_->complete("des", "event", obs::kEngineTrack, span_start_,
                      now_ > span_start_ ? now_ - span_start_ : 0.0, "pending",
                      static_cast<double>(queue_.size()));
    span_open_ = false;
  }
}

}  // namespace paradyn::des
