// Simulation time base for the Paradyn ROCC simulator.
//
// All model parameters in the paper (Table 2) are expressed in microseconds,
// so the simulator uses a double-precision microsecond clock.  Helpers are
// provided to convert to/from the other units used in the paper's figures
// (milliseconds for sampling/barrier periods, seconds for CPU-time totals).
#pragma once

namespace paradyn::des {

/// Simulation time in microseconds.
using SimTime = double;

/// One microsecond (the base unit).
inline constexpr SimTime kMicrosecond = 1.0;
/// One millisecond expressed in the base unit.
inline constexpr SimTime kMillisecond = 1'000.0;
/// One second expressed in the base unit.
inline constexpr SimTime kSecond = 1'000'000.0;

/// Convert microseconds to seconds (for reporting, e.g. "Pd CPU time (sec)").
[[nodiscard]] constexpr double to_seconds(SimTime t) { return t / kSecond; }

/// Convert microseconds to milliseconds (for reporting latency per sample).
[[nodiscard]] constexpr double to_milliseconds(SimTime t) { return t / kMillisecond; }

/// Convert milliseconds to the simulator's microsecond base.
[[nodiscard]] constexpr SimTime from_milliseconds(double ms) { return ms * kMillisecond; }

/// Convert seconds to the simulator's microsecond base.
[[nodiscard]] constexpr SimTime from_seconds(double s) { return s * kSecond; }

}  // namespace paradyn::des
