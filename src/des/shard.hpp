// Conservative time-window PDES: a set of independent engines synchronized
// at fixed window boundaries.
//
// Each shard owns a full Engine (calendar queue, clock, trace sink).  The
// model guarantees a minimum cross-shard latency L — the *lookahead* — so a
// message sent at time t is never delivered before t + L.  Running every
// shard through the window [k*W, (k+1)*W) with W <= L is therefore safe:
// no message produced inside the window can be due inside it.  At each
// barrier the accumulated cross-shard messages are injected into their
// destination queues in a canonical order, making results independent of
// how many shards the model is cut into and of which thread runs which
// shard.
//
// Determinism contract:
//  * post() may only be called from the sending shard's own event context
//    (one writer per outbox, no locks needed).
//  * A message's window membership depends only on the *sender's* clock, so
//    the batch an injection lands in is identical for every shard count.
//  * Injections are sorted by (delivery_time, sender_key, per-sender seq)
//    before scheduling; destination queues break remaining ties by
//    insertion order, so locally-scheduled events at the same timestamp run
//    before injected ones — also a shard-count-invariant rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "des/engine.hpp"
#include "des/time.hpp"

namespace paradyn::des {

struct ShardSetConfig {
  std::size_t shards = 1;
  /// Window length == conservative lookahead, in microseconds.  Must be > 0:
  /// zero lookahead would admit a message due at the current instant, which
  /// the barrier could only honor by running the shards in lockstep.
  SimTime window_us = 0.0;
  /// Optional warm-up checkpoint (0 = none).  The run() loop stops every
  /// shard exactly at this time (inclusive semantics, like
  /// Engine::run_until) and invokes the checkpoint callback once.
  SimTime warmup_us = 0.0;
  /// End of simulated time (inclusive, like Engine::run_until).
  SimTime duration_us = 0.0;
};

class ShardSet {
 public:
  /// Runs `body(i)` for every i in [0, count).  The default executor is a
  /// serial loop; a thread-pool adapter may be injected with set_executor().
  /// Shards share no mutable state during a window, so any executor that
  /// completes all bodies before returning (and establishes happens-before
  /// edges on completion, as futures do) preserves bit-identical results.
  using Executor = std::function<void(std::size_t count, const std::function<void(std::size_t)>& body)>;

  explicit ShardSet(const ShardSetConfig& config);

  [[nodiscard]] std::size_t size() const noexcept { return engines_.size(); }
  [[nodiscard]] Engine& engine(std::size_t shard) { return engines_[shard]; }
  [[nodiscard]] const Engine& engine(std::size_t shard) const { return engines_[shard]; }

  /// Inject an executor (empty std::function restores the serial loop).
  void set_executor(Executor executor) { executor_ = std::move(executor); }

  /// Queue a cross-shard message.  Must be called from shard `from`'s event
  /// context while run() is inside a window.  `delivery_time` must be at or
  /// after the current window horizon — i.e. at least lookahead away — or
  /// the conservative contract is broken and this throws.  `sender_key`
  /// identifies the logical sender (e.g. a daemon index); together with a
  /// per-sender sequence number it gives injections a canonical total order.
  void post(std::size_t from, std::size_t to, SimTime delivery_time, std::uint64_t sender_key,
            std::function<void()> deliver);

  /// Run all shards to duration_us, synchronizing every window boundary.
  /// `checkpoint` (optional) fires once with the warm-up time after every
  /// shard has reached warmup_us and that boundary's messages have been
  /// injected.
  void run(const std::function<void(SimTime)>& checkpoint = {});

  /// Sum of events executed across all shard engines.
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  /// Cross-shard messages delivered so far.
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }

 private:
  struct Message {
    std::size_t to = 0;
    SimTime delivery_time = 0.0;
    std::uint64_t sender_key = 0;
    std::uint64_t seq = 0;
    std::function<void()> deliver;
  };

  void flush_outboxes();

  ShardSetConfig config_;
  std::deque<Engine> engines_;  // deque: stable addresses, Engine is not movable
  std::vector<std::vector<Message>> outboxes_;  // one per source shard
  std::vector<std::uint64_t> seq_;              // one per source shard: per-sender ordering
  Executor executor_;
  SimTime horizon_ = 0.0;  // end of the window currently executing
  std::uint64_t delivered_ = 0;
};

}  // namespace paradyn::des
