// Shared clause/position-aware parsing for CLI spec grammars of the form
// TYPE:key=value,...;... (the --fault and --repair payloads).
//
// Both parsers report errors that cite the offending clause, the token's
// character position within the full payload, and — via util/suggest.hpp —
// the nearest known name for misspelled types and keys.  Header-only so
// rocc and consultant share it without a new link edge.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace paradyn::util {

/// Where a clause sits inside the full spec payload, for error messages
/// that cite the clause and the offending token's position.
struct SpecCtx {
  const char* prefix;       ///< Error prefix, e.g. "FaultPlan".
  const std::string& spec;  ///< The clause text (one TYPE:k=v,... entry).
  std::size_t clause_no;    ///< 1-based clause index within the payload.
  std::size_t base;         ///< Clause offset within the full payload.
};

[[noreturn]] inline void bad_spec(const SpecCtx& c, std::size_t local_pos,
                                  const std::string& why) {
  throw std::invalid_argument(std::string(c.prefix) + ": bad spec \"" + c.spec + "\" (clause " +
                              std::to_string(c.clause_no) + ", char " +
                              std::to_string(c.base + local_pos) + "): " + why);
}

/// "500ms" -> 500'000; "2s" -> 2'000'000; "750" / "750us" -> 750.
inline double parse_time_us(const SpecCtx& c, std::size_t pos, const std::string& text) {
  if (text.empty()) bad_spec(c, pos, "empty time value");
  std::size_t parsed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &parsed);
  } catch (const std::exception&) {
    bad_spec(c, pos, "not a number: " + text);
  }
  const std::string unit = text.substr(parsed);
  if (unit.empty() || unit == "us") return value;
  if (unit == "ms") return value * 1e3;
  if (unit == "s") return value * 1e6;
  bad_spec(c, pos + parsed, "unknown time unit: " + unit);
}

inline double parse_number(const SpecCtx& c, std::size_t pos, const std::string& text) {
  std::size_t parsed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &parsed);
  } catch (const std::exception&) {
    bad_spec(c, pos, "not a number: " + text);
  }
  if (parsed != text.size()) bad_spec(c, pos + parsed, "trailing characters in: " + text);
  return value;
}

}  // namespace paradyn::util
