// Did-you-mean suggestions for CLI flags and spec grammars.
//
// Factored out of tools/cli_args.cpp (PR 3's unknown-flag rejection) so the
// --fault / --repair spec parsers can point at the nearest known type or
// key instead of just rejecting the token.  Header-only: both the tools
// layer and the rocc/consultant libraries use it without a new link edge.
#pragma once

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace paradyn::util {

/// Levenshtein distance, small-string edition (flag names and spec keys
/// are short, so the O(|a|·|b|) two-row form is plenty).
[[nodiscard]] inline std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Closest known string within an edit distance of 2, or empty when
/// nothing is close enough to be a plausible typo.
[[nodiscard]] inline std::string suggestion(const std::string& word,
                                            const std::set<std::string>& known) {
  std::string best;
  std::size_t best_dist = 3;  // only suggest close matches
  for (const std::string& k : known) {
    const std::size_t d = edit_distance(word, k);
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return best;
}

/// " (did you mean X?)" suffix, or "" when there is no good candidate —
/// append directly to an error message.
[[nodiscard]] inline std::string did_you_mean(const std::string& word,
                                              const std::set<std::string>& known) {
  const std::string best = suggestion(word, known);
  return best.empty() ? std::string{} : " (did you mean '" + best + "'?)";
}

}  // namespace paradyn::util
