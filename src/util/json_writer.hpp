// Small shared JSON-writing helpers.
//
// Factored out of experiments/report_json.cpp so every layer that emits
// machine-readable JSON (--report-json, --metrics-json, roccprof --json)
// produces numbers and strings with identical formatting: doubles use the
// shortest representation that round-trips, non-finite values become null,
// and control characters are escaped.  Header-only so the obs layer can use
// it without a link edge onto the experiments library.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace paradyn::util::json {

/// Shortest round-trip-safe representation; non-finite values (possible in
/// degenerate configs) become null so the document stays valid JSON.
inline void number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    // Try progressively shorter forms for readability.
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) {
        os << shorter;
        return;
      }
    }
  }
  os << buf;
}

/// `s` as a JSON string literal with the required escapes.
inline void quoted(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Indented-object helper: `key()` emits the separating comma/newline and
/// the quoted key, `close()` the trailing brace.  Values are written by the
/// caller through the returned stream.
struct Obj {
  std::ostream& os;
  std::string pad;
  bool first = true;

  Obj(std::ostream& s, int indent) : os(s), pad(static_cast<std::size_t>(indent), ' ') {
    os << "{";
  }
  std::ostream& key(const char* name) {
    os << (first ? "\n" : ",\n") << pad << "  \"" << name << "\": ";
    first = false;
    return os;
  }
  void close() { os << '\n' << pad << '}'; }
};

}  // namespace paradyn::util::json
