#include "analytic/operational.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace paradyn::analytic {
namespace {

void validate(const Scenario& s) {
  if (!(s.sampling_period_us > 0.0)) {
    throw std::invalid_argument("Scenario: sampling_period_us must be > 0");
  }
  if (s.batch_size <= 0) throw std::invalid_argument("Scenario: batch_size must be > 0");
  if (s.nodes <= 0) throw std::invalid_argument("Scenario: nodes must be > 0");
  if (s.app_processes <= 0) throw std::invalid_argument("Scenario: app_processes must be > 0");
  if (s.daemons <= 0) throw std::invalid_argument("Scenario: daemons must be > 0");
}

/// Clamp a utilization into [0, 1] and flag saturation.
double clamp_util(double u, bool& saturated) {
  if (u >= 1.0) {
    saturated = true;
    return 1.0;
  }
  return std::max(u, 0.0);
}

/// Residence time D / (1 - U) of one queueing station; infinite when that
/// station is saturated (flow balance no longer holds there).
double residence(double demand, double util) {
  if (util >= 1.0) return std::numeric_limits<double>::infinity();
  return demand / (1.0 - util);
}

}  // namespace

double arrival_rate_per_node(const Scenario& s) {
  validate(s);
  // Equation (1): one sample per app process per sampling period, delivered
  // in units of `batch_size` samples.
  return static_cast<double>(s.app_processes) /
         (s.sampling_period_us * static_cast<double>(s.batch_size));
}

Metrics now_metrics(const Scenario& s, const Demands& d) {
  validate(s);
  Metrics m;
  const double lambda = arrival_rate_per_node(s);
  const double n = static_cast<double>(s.nodes);

  // Equation (2): utilization law, mu = lambda * D_{Pd,CPU}.  lambda
  // already contains the 1/batch factor (equation (1)), so the analytic
  // model predicts the full hyperbolic overhead reduction with batch size
  // that Figure 10 shows; the simulator refines this with the explicit
  // collect/forward cost split.
  m.pd_cpu_utilization = clamp_util(lambda * d.pd_cpu_us, m.saturated);

  // Equation (3): network utilization of Pd traffic, all nodes share it.
  m.network_utilization = clamp_util(n * lambda * d.pd_net_us, m.saturated);

  // Equation (5): main Paradyn CPU utilization.
  m.main_cpu_utilization = clamp_util(n * lambda * d.main_cpu_us, m.saturated);

  // Equation (4): monitoring latency = CPU residence + network residence.
  m.monitoring_latency_us = residence(d.pd_cpu_us, m.pd_cpu_utilization) +
                            residence(d.pd_net_us, m.network_utilization);

  // Equation (6): application CPU utilization (indirect).
  m.app_cpu_utilization = 1.0 - m.pd_cpu_utilization;
  m.is_cpu_utilization = m.pd_cpu_utilization;
  return m;
}

Metrics smp_metrics(const Scenario& s, const Demands& d) {
  validate(s);
  Metrics m;
  // SMP arrival rate includes the daemon factor (Section 3.2).
  const double lambda = arrival_rate_per_node(s) * static_cast<double>(s.daemons);
  const double n = static_cast<double>(s.nodes);  // CPUs in the pool
  const double daemons = static_cast<double>(s.daemons);

  // Equations (7)-(8): demands divided by the CPU count.
  m.pd_cpu_utilization = clamp_util(lambda * d.pd_cpu_us / n, m.saturated);
  m.main_cpu_utilization = clamp_util(lambda * d.main_cpu_us / n, m.saturated);

  // Equation (9): pooled IS utilization.
  m.is_cpu_utilization =
      (daemons * m.pd_cpu_utilization + m.main_cpu_utilization) / (daemons + 1.0);

  // Equation (10).
  m.app_cpu_utilization = 1.0 - m.is_cpu_utilization;

  // Equation (11): bus utilization.
  m.network_utilization = clamp_util(lambda * d.pd_net_us, m.saturated);

  // Equation (12).
  m.monitoring_latency_us = residence(d.pd_cpu_us / n, m.pd_cpu_utilization) +
                            residence(d.pd_net_us, m.network_utilization);
  return m;
}

Metrics mpp_tree_metrics(const Scenario& s, const Demands& d) {
  validate(s);
  Metrics m;
  const double lambda = arrival_rate_per_node(s);
  const double n = static_cast<double>(s.nodes);

  // Equation (13): average Pd CPU utilization over leaf nodes (lambda *
  // D_pd), interior nodes (local + two children merges), and the one node
  // with a single child.
  const double leaf = lambda * d.pd_cpu_us;
  const double interior = lambda * d.pd_cpu_us + 2.0 * lambda * d.pdm_cpu_us;
  const double single = lambda * d.pdm_cpu_us;
  const double pd_util =
      ((n / 2.0) * leaf + (n / 2.0 - 1.0) * interior + single) / n;
  m.pd_cpu_utilization = clamp_util(pd_util, m.saturated);

  // Equation (14): the root's two children deliver to the main process.
  m.main_cpu_utilization = clamp_util(2.0 * lambda * d.main_cpu_us, m.saturated);

  // Equation (15): network utilization with en-route forwarding.
  const double net =
      ((n / 2.0) * lambda * d.pd_net_us +
       (n / 2.0 - 1.0) * (lambda * d.pd_cpu_us + 2.0 * lambda * d.pd_net_us) +
       lambda * d.pd_net_us) /
      n;
  m.network_utilization = clamp_util(net, m.saturated);

  // Equation (16): per-hop CPU (collect + merge) residence plus network
  // residence.
  m.monitoring_latency_us =
      residence(d.pd_cpu_us + d.pdm_cpu_us, m.pd_cpu_utilization) +
      residence(d.pd_net_us, m.network_utilization);

  m.app_cpu_utilization = 1.0 - m.pd_cpu_utilization;
  m.is_cpu_utilization = m.pd_cpu_utilization;
  return m;
}

MvaResult mva_closed(const std::vector<MvaStation>& stations, std::int32_t customers) {
  if (stations.empty()) throw std::invalid_argument("mva_closed: need at least one station");
  if (customers <= 0) throw std::invalid_argument("mva_closed: customers must be > 0");
  for (const auto& st : stations) {
    if (st.demand_us < 0.0) throw std::invalid_argument("mva_closed: negative demand");
  }

  const std::size_t k = stations.size();
  std::vector<double> queue(k, 0.0);  // Q_i(n - 1)
  MvaResult result;
  result.residence_time_us.assign(k, 0.0);

  for (std::int32_t n = 1; n <= customers; ++n) {
    double cycle = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      // Exact MVA: R_i(n) = D_i (delay) or D_i (1 + Q_i(n-1)) (queueing).
      result.residence_time_us[i] = stations[i].delay_center
                                        ? stations[i].demand_us
                                        : stations[i].demand_us * (1.0 + queue[i]);
      cycle += result.residence_time_us[i];
    }
    const double x = static_cast<double>(n) / cycle;
    for (std::size_t i = 0; i < k; ++i) queue[i] = x * result.residence_time_us[i];
    result.cycle_time_us = cycle;
    result.throughput_per_us = x;
  }

  result.mean_queue_length = queue;
  result.utilization.reserve(k);
  for (const auto& st : stations) {
    result.utilization.push_back(result.throughput_per_us * st.demand_us);
  }
  return result;
}

MvaResult application_mva(std::int32_t app_processes, const Demands& d) {
  // Two stations per node: the CPU (queueing) and the contention-free
  // network modeled as a delay center, visited once per cycle each.
  const std::vector<MvaStation> stations{
      {d.app_cpu_us, false},
      {d.app_net_us, true},
  };
  return mva_closed(stations, app_processes);
}

}  // namespace paradyn::analytic
