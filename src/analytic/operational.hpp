// Operational analysis of the ROCC model (Section 3 of the paper).
//
// "Back-of-the-envelope" predictions of four IS performance metrics under a
// flow-balance assumption, for the NOW, SMP, and MPP cases — equations
// (1)-(16).  As in the paper, these are deliberately approximate: they
// ignore the dependence between the Paradyn-daemon (open/transaction)
// workload and the application (closed/batch) workload, and are meant to
// show gross trends that the simulator then models in detail.
#pragma once

#include <cstdint>
#include <vector>

namespace paradyn::analytic {

/// Mean resource demands (microseconds) shared by all three models.
/// Defaults are the paper's Table 2 means.
struct Demands {
  double pd_cpu_us = 267.0;       ///< D_{Pd,CPU}: Pd CPU per sample.
  double pd_net_us = 71.0;        ///< D_{Pd,Network}: Pd network per forwarding op.
  double pdm_cpu_us = 89.0;       ///< D_{Pdm,CPU}: merge CPU per en-route batch (tree).
  double main_cpu_us = 3'208.0;   ///< D_{Paradyn,CPU}: main process CPU per unit.
  double app_cpu_us = 2'213.0;    ///< Application CPU burst mean.
  double app_net_us = 223.0;      ///< Application network burst mean.
};

/// Inputs that the paper varies ("four parameters", Section 3).
struct Scenario {
  double sampling_period_us = 40'000.0;
  std::int32_t batch_size = 1;       ///< 1 == CF.
  std::int32_t nodes = 8;            ///< NOW/MPP: workstations; SMP: CPUs.
  std::int32_t app_processes = 1;    ///< Per node (NOW/MPP) or total (SMP).
  std::int32_t daemons = 1;          ///< SMP only.
};

/// The four metrics of Section 3.  Utilizations are fractions in [0, 1]
/// (clamped); latency is in microseconds.
struct Metrics {
  double pd_cpu_utilization = 0.0;      ///< Per node.
  double main_cpu_utilization = 0.0;    ///< Main Paradyn process.
  double is_cpu_utilization = 0.0;      ///< SMP only: pooled IS utilization (eq. 9).
  double app_cpu_utilization = 0.0;     ///< Per node (eq. 6 / 10).
  double network_utilization = 0.0;     ///< Shared network / bus by Pd traffic.
  double monitoring_latency_us = 0.0;   ///< Per sample (eq. 4 / 12 / 16).
  bool saturated = false;               ///< Some utilization reached 1: latency unbounded.
};

/// Equation (1): arrival rate of Pd forwarding units per node,
/// lambda = app_processes / (sampling_period * batch_size), extended with
/// the SMP daemon factor when `daemons > 1` callers pass it explicitly.
[[nodiscard]] double arrival_rate_per_node(const Scenario& s);

/// NOW case, equations (1)-(6) — also the MPP direct-forwarding case.
[[nodiscard]] Metrics now_metrics(const Scenario& s, const Demands& d = {});

/// SMP case, equations (7)-(12): `s.nodes` is the number of CPUs in the
/// pool; demands are divided by the CPU count.
[[nodiscard]] Metrics smp_metrics(const Scenario& s, const Demands& d = {});

/// MPP case with binary-tree forwarding, equations (13)-(16).
[[nodiscard]] Metrics mpp_tree_metrics(const Scenario& s, const Demands& d = {});

/// MPP case with direct forwarding (identical to the NOW equations).
[[nodiscard]] inline Metrics mpp_direct_metrics(const Scenario& s, const Demands& d = {}) {
  return now_metrics(s, d);
}

// ---------------------------------------------------------------------------
// Exact Mean Value Analysis for the closed (batch) application workload.
//
// Section 3 notes that the application side of the ROCC model is a closed
// queueing network that MVA could solve, then rejects the approach because
// (1) the resulting utilization would not vary with the IS parameters and
// (2) it cannot capture the IS/application CPU contention.  We implement
// exact single-class MVA anyway: it demonstrates both limitations
// quantitatively and provides the textbook baseline the indirect
// calculation (equation (6)) is checked against.

/// One service station of a closed product-form network.
struct MvaStation {
  double demand_us = 0.0;  ///< Total service demand per customer cycle.
  bool delay_center = false;  ///< True for think/delay stations (no queueing).
};

struct MvaResult {
  double throughput_per_us = 0.0;           ///< System throughput X(N).
  double cycle_time_us = 0.0;               ///< Mean cycle (response) time.
  std::vector<double> utilization;          ///< Per station, X * D (queueing only).
  std::vector<double> mean_queue_length;    ///< Per station.
  std::vector<double> residence_time_us;    ///< Per station.
};

/// Exact MVA recursion for `customers` statistically identical customers
/// over `stations`.  Throws on empty stations / zero customers.
[[nodiscard]] MvaResult mva_closed(const std::vector<MvaStation>& stations,
                                   std::int32_t customers);

/// The paper's closed application model on one node: CPU demand + network
/// demand per computation/communication cycle, `app_processes` customers
/// sharing them.  Returns the MVA application CPU utilization — which, as
/// the paper observes, is blind to every IS parameter.
[[nodiscard]] MvaResult application_mva(std::int32_t app_processes, const Demands& d = {});

}  // namespace paradyn::analytic
