// Metric collection for the ROCC simulator.
//
// The paper's metrics (Section 2.1, "Metrics"): average direct IS overhead
// (CPU occupancy of IS modules), monitoring latency of data forwarding,
// per-node direct overhead, and data-forwarding throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "rocc/faults.hpp"
#include "rocc/types.hpp"
#include "stats/summary.hpp"

namespace paradyn::rocc {

/// Counters shared by the process models during a run.
struct MetricsCollector {
  /// Per-sample monitoring latency: forwarding-path residence from the
  /// start of the forwarding operation at the (leaf) daemon to receipt at
  /// the main Paradyn process, in microseconds.  Batching wait is excluded,
  /// matching the operational definition behind equation (4).
  stats::SummaryStats latency_us;
  std::uint64_t samples_generated = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t batches_delivered = 0;
  /// Raw per-sample latencies in delivery order; only populated when
  /// SystemConfig::record_latency_series is set (feeds the batch-means
  /// steady-state analysis in stats/timeseries.hpp).
  std::vector<double> latency_series_us;
  bool record_latency_series = false;
  /// Samples lost to injected faults: the sample_drop gate plus in-memory
  /// batches destroyed by a daemon crash.
  std::uint64_t samples_dropped = 0;
};

/// One adaptive-cost-model decision (see rocc/cost_model.hpp).
struct CostModelAdjustment {
  SimTime at_us = 0.0;
  double observed_overhead_pct = 0.0;
  SimTime new_period_us = 0.0;
};

/// CPU-occupancy breakdown of one node.
struct NodeBreakdown {
  std::int32_t node = 0;
  double app_cpu_us = 0.0;
  double pd_cpu_us = 0.0;
  double pvmd_cpu_us = 0.0;
  double other_cpu_us = 0.0;
  double main_cpu_us = 0.0;
};

/// Final report of one simulation run.  All "per node" values are per
/// CPU-equivalent node: for NOW/MPP a physical node, for SMP one processor
/// of the shared pool (the paper's SMP "number of nodes" is the CPU count).
struct SimulationResult {
  SimTime duration_us = 0.0;
  std::int32_t nodes = 0;
  std::int32_t cpus_per_node = 0;

  /// Per-node occupancy (includes the dedicated main host as an extra
  /// trailing entry when main_on_dedicated_host is set).
  std::vector<NodeBreakdown> per_node;

  // --- CPU occupancy time (microseconds) ---
  double app_cpu_time_per_node_us = 0.0;
  double pd_cpu_time_per_node_us = 0.0;
  double pvmd_cpu_time_per_node_us = 0.0;
  double other_cpu_time_per_node_us = 0.0;
  double main_cpu_time_us = 0.0;

  // --- CPU utilization (percent) ---
  double app_cpu_util_pct = 0.0;
  double pd_cpu_util_pct = 0.0;
  double main_cpu_util_pct = 0.0;
  /// (all daemons + main) busy time over all CPUs — the SMP "IS CPU
  /// utilization per node" metric.
  double is_cpu_util_pct = 0.0;
  /// Pd share of *occupied* CPU time (Pd busy / total busy) — the
  /// contention-relative overhead view used for the barrier study.
  double pd_busy_share_pct = 0.0;

  // --- Network ---
  double network_util_pct = 0.0;  ///< Of the shared server; aggregate occupancy if contention-free.

  // --- Forwarding ---
  stats::SummaryStats latency_us;
  /// Per-sample latencies in delivery order (empty unless
  /// SystemConfig::record_latency_series was set).
  std::vector<double> latency_series_us;
  std::uint64_t samples_generated = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t batches_delivered = 0;
  double throughput_samples_per_sec = 0.0;

  // --- Simulator self-observation ---
  /// Discrete events executed by the engine over the whole run (includes
  /// warm-up; feeds the sweep progress meter's events/sec rate).
  std::uint64_t events_processed = 0;

  // --- Barrier ---
  std::uint64_t barrier_rounds = 0;
  double barrier_wait_us = 0.0;

  // --- Adaptive cost model (empty/0 when not enabled) ---
  double final_sampling_period_us = 0.0;
  std::vector<CostModelAdjustment> cost_adjustments;

  // --- Fault injection (empty/0 when no fault plan) ---
  /// Samples lost to injected faults (drop gate + crash-destroyed batches).
  std::uint64_t samples_dropped = 0;
  /// One record per injected fault.  Simulation fills the injection side;
  /// detection/recovery latencies are filled by the consultant's
  /// FaultDetector when one is attached (negative = not observed).
  std::vector<FaultOutcome> fault_outcomes;

  // --- Per-daemon adaptive throttle (empty/1 when not enabled) ---
  /// Final per-domain sampling-period multipliers (one per daemon).
  std::vector<double> throttle_factors;
  /// Largest multiplier any domain reached during the run.
  double max_throttle_factor = 1.0;
  std::uint64_t throttle_adjustments = 0;

  /// Monitoring latency per received sample, in seconds (figure units).
  [[nodiscard]] double latency_sec() const {
    return latency_us.count() ? latency_us.mean() / 1e6 : 0.0;
  }
  /// Pd CPU time per node in seconds (figure units).
  [[nodiscard]] double pd_cpu_time_sec() const { return pd_cpu_time_per_node_us / 1e6; }
  /// Application CPU time per node in seconds.
  [[nodiscard]] double app_cpu_time_sec() const { return app_cpu_time_per_node_us / 1e6; }
  /// Main Paradyn CPU time in seconds.
  [[nodiscard]] double main_cpu_time_sec() const { return main_cpu_time_us / 1e6; }
};

}  // namespace paradyn::rocc
