// Finite-capacity sample buffer between an application process and its
// Paradyn daemon — the "instrumentation data buffers provided by the kernel
// (Unix pipes)" of Figure 2.
//
// A full pipe rejects try_put; the producer registers a space callback and
// blocks, reproducing the behavior the paper observes at small sampling
// periods: "When the pipe is full, the application process that generates a
// sample is blocked until the daemon is able to forward outstanding data
// samples" (Section 4.3.3).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "rocc/types.hpp"

namespace paradyn::rocc {

class Pipe {
 public:
  explicit Pipe(std::int32_t capacity);

  /// Append a sample.  Returns false (and does not store) when full.
  [[nodiscard]] bool try_put(const Sample& sample);

  /// Remove the oldest sample, or nullopt when empty.  Frees space: a
  /// registered producer callback fires (once) after a successful get.
  [[nodiscard]] std::optional<Sample> try_get();

  /// Register a one-shot callback invoked the next time a sample arrives.
  /// Used by an idle daemon to sleep until data is available.
  void notify_on_data(SmallCallback cb);

  /// Register a one-shot callback invoked the next time space frees up.
  /// Used by a blocked producer.
  void notify_on_space(SmallCallback cb);

  /// Fault injection: clamp the effective capacity to `limit` samples
  /// (already-buffered samples stay; new puts see the clamp).  Raising the
  /// limit back fires a pending space callback if room appeared.
  void set_capacity_limit(std::int32_t limit);
  void clear_capacity_limit();

  /// Fault repair (reset_pipe): discard every buffered sample and fire a
  /// pending space callback — flushing a wedged kernel buffer loses its
  /// contents.  Returns the number of samples discarded so the caller can
  /// account them as dropped.
  std::size_t drain();

  [[nodiscard]] std::int32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int32_t effective_capacity() const noexcept {
    return limit_ < capacity_ ? limit_ : capacity_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return buffer_.size() >= static_cast<std::size_t>(effective_capacity());
  }

  /// Total samples ever accepted (for accounting/tests).
  [[nodiscard]] std::uint64_t total_accepted() const noexcept { return accepted_; }
  /// Total put attempts rejected because the pipe was full.
  [[nodiscard]] std::uint64_t total_rejected() const noexcept { return rejected_; }

 private:
  std::int32_t capacity_;
  /// Fault clamp; effective capacity is min(capacity_, limit_).
  std::int32_t limit_ = INT32_MAX;
  std::deque<Sample> buffer_;
  SmallCallback on_data_;
  SmallCallback on_space_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace paradyn::rocc
