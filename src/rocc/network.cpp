#include "rocc/network.hpp"

#include <stdexcept>
#include <utility>

namespace paradyn::rocc {

NetworkResource::NetworkResource(des::Engine& engine, NetworkContention contention)
    : engine_(engine), contention_(contention) {}

SimTime NetworkResource::busy_time_total() const noexcept {
  SimTime total = 0.0;
  for (const SimTime t : busy_) total += t;
  return total;
}

void NetworkResource::submit(NetRequest request) {
  if (request.duration < 0.0) throw std::invalid_argument("NetworkResource: negative duration");
  request.duration *= slowdown_;
  busy_[static_cast<std::size_t>(request.pclass)] += request.duration;
  if (request.node >= 0 && static_cast<std::size_t>(request.node) < busy_node_.size()) {
    busy_node_[static_cast<std::size_t>(request.node)][static_cast<std::size_t>(request.pclass)] +=
        request.duration;
  }

  if (contention_ == NetworkContention::ContentionFree) {
    if (tracer_ != nullptr) {
      tracer_->complete("net", to_cstr(request.pclass), track_, engine_.now(), request.duration);
    }
    // Pure delay: park the completion in a reusable slot.  An event is
    // scheduled even for an empty callback so the event sequence (and thus
    // deterministic tie-breaking downstream) is unchanged from the
    // std::function implementation.
    std::uint32_t slot;
    if (!inflight_free_.empty()) {
      slot = inflight_free_.back();
      inflight_free_.pop_back();
      inflight_[slot] = std::move(request.on_complete);
    } else {
      slot = static_cast<std::uint32_t>(inflight_.size());
      inflight_.push_back(std::move(request.on_complete));
    }
    engine_.schedule_after(request.duration, [this, slot] { on_cf_done(slot); });
    return;
  }

  queue_.push_back(std::move(request));
  if (!server_busy_) start_next();
}

void NetworkResource::on_cf_done(std::uint32_t slot) {
  SmallCallback cb = std::move(inflight_[slot]);
  inflight_free_.push_back(slot);
  if (cb) cb();
}

void NetworkResource::start_next() {
  if (queue_.empty()) {
    server_busy_ = false;
    return;
  }
  server_busy_ = true;
  NetRequest req = std::move(queue_.front());
  queue_.pop_front();
  if (tracer_ != nullptr) {
    tracer_->complete("net", to_cstr(req.pclass), track_, engine_.now(), req.duration, "queued",
                      static_cast<double>(queue_.size()));
  }
  in_service_ = std::move(req.on_complete);
  engine_.schedule_after(req.duration, [this] { on_service_done(); });
}

void NetworkResource::on_service_done() {
  SmallCallback cb = std::move(in_service_);
  if (cb) cb();
  start_next();
}

}  // namespace paradyn::rocc
