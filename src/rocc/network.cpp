#include "rocc/network.hpp"

#include <stdexcept>
#include <utility>

namespace paradyn::rocc {

NetworkResource::NetworkResource(des::Engine& engine, NetworkContention contention)
    : engine_(engine), contention_(contention) {}

SimTime NetworkResource::busy_time_total() const noexcept {
  SimTime total = 0.0;
  for (const SimTime t : busy_) total += t;
  return total;
}

void NetworkResource::submit(NetRequest request) {
  if (request.duration < 0.0) throw std::invalid_argument("NetworkResource: negative duration");
  busy_[static_cast<std::size_t>(request.pclass)] += request.duration;

  if (contention_ == NetworkContention::ContentionFree) {
    if (tracer_ != nullptr) {
      tracer_->complete("net", to_cstr(request.pclass), track_, engine_.now(), request.duration);
    }
    engine_.schedule_after(request.duration, [cb = std::move(request.on_complete)]() {
      if (cb) cb();
    });
    return;
  }

  queue_.push_back(std::move(request));
  if (!server_busy_) start_next();
}

void NetworkResource::start_next() {
  if (queue_.empty()) {
    server_busy_ = false;
    return;
  }
  server_busy_ = true;
  NetRequest req = std::move(queue_.front());
  queue_.pop_front();
  if (tracer_ != nullptr) {
    tracer_->complete("net", to_cstr(req.pclass), track_, engine_.now(), req.duration, "queued",
                      static_cast<double>(queue_.size()));
  }
  engine_.schedule_after(req.duration, [this, cb = std::move(req.on_complete)]() {
    if (cb) cb();
    start_next();
  });
}

}  // namespace paradyn::rocc
