// Network resource.
//
// Two contention models (Section 2.1 / Section 4):
//  * SharedSingleServer — one FIFO server for the whole system: the shared
//    Ethernet of a NOW or the shared bus of an SMP.  "Network delays are
//    represented by the arrivals to a single server buffer" (Figure 2).
//  * ContentionFree — a high-speed dedicated MPP interconnect: every
//    occupancy request is served immediately (pure delay / infinite-server
//    station), as assumed in Section 4.4.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "des/engine.hpp"
#include "obs/trace.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

/// One network occupancy request.
struct NetRequest {
  SimTime duration = 0.0;
  ProcessClass pclass = ProcessClass::Application;
  /// Originating node, for the optional per-node busy accounting (-1 =
  /// unattributed; only counted when enable_node_accounting() was called).
  std::int32_t node = -1;
  /// Invoked when the occupancy completes (message delivered).  May be
  /// empty for fire-and-forget background traffic.
  SmallCallback on_complete;
};

class NetworkResource {
 public:
  NetworkResource(des::Engine& engine, NetworkContention contention);

  NetworkResource(const NetworkResource&) = delete;
  NetworkResource& operator=(const NetworkResource&) = delete;

  void submit(NetRequest request);

  /// Total network busy time accumulated by a process class.  For the
  /// contention-free model this is the summed occupancy (utilization of an
  /// infinitely wide resource).
  [[nodiscard]] SimTime busy_time(ProcessClass c) const noexcept {
    return busy_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] SimTime busy_time_total() const noexcept;

  /// Zero the per-class busy-time accounting (warm-up deletion).
  void reset_accounting() noexcept {
    busy_.fill(0.0);
    for (auto& per_node : busy_node_) per_node.fill(0.0);
  }

  /// Opt into per-originating-node busy accounting for `nodes` nodes.  The
  /// PDES partitioned build needs it: each shard owns a replica of the
  /// contention-free network, and the global per-class totals are rebuilt
  /// by summing per-node contributions in node order — a canonical
  /// floating-point order independent of the shard count.
  void enable_node_accounting(std::int32_t nodes) {
    busy_node_.assign(static_cast<std::size_t>(nodes), {});
  }

  /// Busy time attributed to `node` for class `c` (0 if accounting is off
  /// or the request carried no node).
  [[nodiscard]] SimTime busy_time_node(std::int32_t node, ProcessClass c) const noexcept {
    const auto n = static_cast<std::size_t>(node);
    if (n >= busy_node_.size()) return 0.0;
    return busy_node_[n][static_cast<std::size_t>(c)];
  }

  /// Fault injection: stretch every subsequently submitted occupancy by
  /// `factor` (a degraded link).  In-flight occupancies are unaffected;
  /// restore with factor 1.
  void set_slowdown(double factor) noexcept { slowdown_ = factor; }
  [[nodiscard]] double slowdown() const noexcept { return slowdown_; }

  [[nodiscard]] NetworkContention contention() const noexcept { return contention_; }
  /// Requests waiting or in service (shared mode only; 0 when idle).
  [[nodiscard]] std::size_t backlog() const noexcept {
    return queue_.size() + (server_busy_ ? 1 : 0);
  }

  /// Observability: record every occupancy interval as a span (named by
  /// process class) on `track`.  Spans start at service start, so queueing
  /// delay on the shared server is visible as the gap after submit.
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  void start_next();
  void on_service_done();
  void on_cf_done(std::uint32_t slot);

  des::Engine& engine_;
  NetworkContention contention_;
  bool server_busy_ = false;
  std::deque<NetRequest> queue_;
  /// Shared server: completion callback of the request in service (at most
  /// one); the completion event captures only {this}.
  SmallCallback in_service_;
  /// Contention-free (infinite-server): completion callbacks of in-flight
  /// occupancies in reusable slots, so each delay event captures only
  /// {this, slot}.
  std::vector<SmallCallback> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  double slowdown_ = 1.0;
  std::array<SimTime, trace::kNumProcessClasses> busy_{};
  std::vector<std::array<SimTime, trace::kNumProcessClasses>> busy_node_;
  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;
};

}  // namespace paradyn::rocc
