// Network resource.
//
// Two contention models (Section 2.1 / Section 4):
//  * SharedSingleServer — one FIFO server for the whole system: the shared
//    Ethernet of a NOW or the shared bus of an SMP.  "Network delays are
//    represented by the arrivals to a single server buffer" (Figure 2).
//  * ContentionFree — a high-speed dedicated MPP interconnect: every
//    occupancy request is served immediately (pure delay / infinite-server
//    station), as assumed in Section 4.4.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "des/engine.hpp"
#include "obs/trace.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

/// One network occupancy request.
struct NetRequest {
  SimTime duration = 0.0;
  ProcessClass pclass = ProcessClass::Application;
  /// Invoked when the occupancy completes (message delivered).  May be
  /// empty for fire-and-forget background traffic.
  SmallCallback on_complete;
};

class NetworkResource {
 public:
  NetworkResource(des::Engine& engine, NetworkContention contention);

  NetworkResource(const NetworkResource&) = delete;
  NetworkResource& operator=(const NetworkResource&) = delete;

  void submit(NetRequest request);

  /// Total network busy time accumulated by a process class.  For the
  /// contention-free model this is the summed occupancy (utilization of an
  /// infinitely wide resource).
  [[nodiscard]] SimTime busy_time(ProcessClass c) const noexcept {
    return busy_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] SimTime busy_time_total() const noexcept;

  /// Zero the per-class busy-time accounting (warm-up deletion).
  void reset_accounting() noexcept { busy_.fill(0.0); }

  /// Fault injection: stretch every subsequently submitted occupancy by
  /// `factor` (a degraded link).  In-flight occupancies are unaffected;
  /// restore with factor 1.
  void set_slowdown(double factor) noexcept { slowdown_ = factor; }
  [[nodiscard]] double slowdown() const noexcept { return slowdown_; }

  [[nodiscard]] NetworkContention contention() const noexcept { return contention_; }
  /// Requests waiting or in service (shared mode only; 0 when idle).
  [[nodiscard]] std::size_t backlog() const noexcept {
    return queue_.size() + (server_busy_ ? 1 : 0);
  }

  /// Observability: record every occupancy interval as a span (named by
  /// process class) on `track`.  Spans start at service start, so queueing
  /// delay on the shared server is visible as the gap after submit.
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  void start_next();
  void on_service_done();
  void on_cf_done(std::uint32_t slot);

  des::Engine& engine_;
  NetworkContention contention_;
  bool server_busy_ = false;
  std::deque<NetRequest> queue_;
  /// Shared server: completion callback of the request in service (at most
  /// one); the completion event captures only {this}.
  SmallCallback in_service_;
  /// Contention-free (infinite-server): completion callbacks of in-flight
  /// occupancies in reusable slots, so each delay event captures only
  /// {this, slot}.
  std::vector<SmallCallback> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  double slowdown_ = 1.0;
  std::array<SimTime, trace::kNumProcessClasses> busy_{};
  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;
};

}  // namespace paradyn::rocc
