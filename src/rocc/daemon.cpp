#include "rocc/daemon.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rocc/main_paradyn.hpp"

namespace paradyn::rocc {

ParadynDaemon::ParadynDaemon(des::Engine& engine, const SystemConfig& config, CpuResource& cpu,
                             NetworkResource& network, MetricsCollector& metrics,
                             des::RngStream rng, std::int32_t node, stats::BatchSpec batch)
    : engine_(engine),
      config_(config),
      cpu_(cpu),
      network_(network),
      metrics_(metrics),
      collect_cpu_(stats::FrozenSampler::compile(config.pd.collect_cpu,
                                                 config.sampler_backend()),
                   batch.at(0)),
      forward_cpu_(stats::FrozenSampler::compile(config.pd.forward_cpu,
                                                 config.sampler_backend()),
                   batch.at(1)),
      net_occupancy_(stats::FrozenSampler::compile(config.pd.net_occupancy,
                                                   config.sampler_backend()),
                     batch.at(2)),
      merge_cpu_(stats::FrozenSampler::compile(config.pd.merge_cpu, config.sampler_backend()),
                 batch.at(3)),
      rng_(rng),
      node_(node) {}

void ParadynDaemon::attach_pipe(Pipe& pipe) { pipes_.push_back(&pipe); }

void ParadynDaemon::set_destination_main(MainParadyn& main) {
  main_ = &main;
  parent_ = nullptr;
}

void ParadynDaemon::set_destination_parent(ParadynDaemon& parent) {
  parent_ = &parent;
  main_ = nullptr;
}

void ParadynDaemon::start() {
  if (main_ == nullptr && parent_ == nullptr && !forward_sink_) {
    throw std::logic_error("ParadynDaemon: no forwarding destination configured");
  }
  try_start();
}

void ParadynDaemon::receive_from_child(Batch batch) {
  merge_queue_.push_back(batch);
  try_start();
}

void ParadynDaemon::stall_until(SimTime until) {
  // Overlapping windows extend, never shrink: a second stall ending before
  // an active one must not wake the daemon early (commutative overlap).
  stalled_until_ = std::max(stalled_until_, until);
  engine_.schedule_at(until, [this] { try_start(); });
}

bool ParadynDaemon::stalled() const noexcept { return engine_.now() < stalled_until_; }

std::uint64_t ParadynDaemon::kill_buffers() {
  std::uint64_t lost = pending_batch_.size() + merged_pending_.size();
  for (const Batch& b : merge_queue_) lost += b.sample_count();
  metrics_.samples_dropped += lost;
  pending_batch_.clear();
  merged_pending_.clear();
  merge_queue_.clear();
  flush_due_ = false;
  engine_.cancel(flush_timer_);
  return lost;
}

void ParadynDaemon::crash_until(SimTime until) {
  kill_buffers();
  stall_until(until);
}

std::uint64_t ParadynDaemon::restart_now() {
  const std::uint64_t lost = kill_buffers();
  stalled_until_ = engine_.now();
  try_start();  // no-op if an in-flight operation still holds busy_
  return lost;
}

void ParadynDaemon::try_start() {
  if (busy_ || stalled()) return;

  // A due flush outranks new work: en-route samples must not age more than
  // one sampling period per hop waiting for the local batch to fill.
  if (flush_due_ && !(merged_pending_.empty() && pending_batch_.empty())) {
    begin_forward_local();
    return;
  }

  // Merged traffic first: en-route samples have already paid latency.
  if (!merge_queue_.empty()) {
    Batch batch = merge_queue_.front();
    merge_queue_.pop_front();
    start_merge(batch);
    return;
  }

  // Round-robin over the pipes of the local application processes.
  for (std::size_t scanned = 0; scanned < pipes_.size(); ++scanned) {
    Pipe& pipe = *pipes_[next_pipe_];
    next_pipe_ = (next_pipe_ + 1) % pipes_.size();
    if (auto sample = pipe.try_get()) {
      if (tracer_ != nullptr) {
        tracer_->instant("pipe", "dequeue", track_, engine_.now(), "depth",
                         static_cast<double>(pipe.size()));
        // Hop boundary for the profiler: the sample left the pipe.
        tracer_->async_instant("sample", "lifecycle", sample->id, track_, engine_.now(), "deq",
                               static_cast<double>(pipe.size()));
      }
      start_collect(*sample);
      return;
    }
  }

  // Nothing to do: sleep until any pipe signals data.
  for (Pipe* pipe : pipes_) {
    pipe->notify_on_data([this] { try_start(); });
  }
}

void ParadynDaemon::start_collect(const Sample& sample) {
  busy_ = true;
  const SimTime t0 = engine_.now();
  // Stash the drawn service time for the profiler marker: busy_ serializes
  // collects, so the member survives until the completion callback without
  // growing the 64-byte inline capture.  Draw order is unchanged.
  last_collect_cpu_us_ = collect_cpu_(rng_);
  cpu_.submit(CpuRequest{last_collect_cpu_us_, ProcessClass::ParadynDaemon,
                         [this, sample, t0] {
                           ++samples_collected_;
                           if (tracer_ != nullptr) {
                             tracer_->complete("daemon", "collect", track_, t0,
                                               engine_.now() - t0);
                             tracer_->async_instant("sample", "lifecycle", sample.id, track_,
                                                    engine_.now(), "collect",
                                                    last_collect_cpu_us_);
                           }
                           pending_batch_.push_back(sample);
                           if (static_cast<std::int32_t>(pending_batch_.size()) >=
                               config_.batch_size) {
                             begin_forward_local();
                           } else {
                             busy_ = false;
                             try_start();
                           }
                         }});
}

void ParadynDaemon::begin_forward_local() {
  // The outgoing unit carries the local batch plus everything merged from
  // the children since the last forward: tree aggregation keeps every
  // daemon's outgoing unit rate at its own lambda (equation (14)) instead
  // of multiplying units along the path to the root.
  Batch batch;
  batch.forward_started_at = engine_.now();
  batch.origin_node = node_;
  batch.samples = std::move(pending_batch_);
  pending_batch_.clear();
  if (!merged_pending_.empty()) {
    batch.forward_started_at = std::min(batch.forward_started_at, merged_pending_earliest_);
    batch.samples.insert(batch.samples.end(), merged_pending_.begin(), merged_pending_.end());
    merged_pending_.clear();
  }
  flush_due_ = false;
  engine_.cancel(flush_timer_);
  forward_batch(std::move(batch));
}

void ParadynDaemon::start_merge(Batch batch) {
  busy_ = true;
  const SimTime t0 = engine_.now();
  cpu_.submit(CpuRequest{merge_cpu_(rng_), ProcessClass::ParadynDaemon,
                         [this, batch = std::move(batch), t0] {
                           ++batches_merged_;
                           if (tracer_ != nullptr) {
                             tracer_->complete("daemon", "merge", track_, t0, engine_.now() - t0,
                                               "samples",
                                               static_cast<double>(batch.sample_count()));
                           }
                           // Fold the child's samples into the next local
                           // forwarding unit; keep the earliest forwarding
                           // start so monitoring latency accumulates across
                           // tree hops (equation (16)).
                           const bool was_empty = merged_pending_.empty();
                           if (was_empty ||
                               batch.forward_started_at < merged_pending_earliest_) {
                             merged_pending_earliest_ = batch.forward_started_at;
                           }
                           merged_pending_.insert(merged_pending_.end(), batch.samples.begin(),
                                                  batch.samples.end());
                           if (was_empty && !flush_timer_.pending() && !flush_due_) {
                             flush_timer_ = engine_.schedule_after(
                                 config_.sampling_period_us, [this] { on_flush_due(); });
                           }
                           busy_ = false;
                           try_start();
                         }});
}

void ParadynDaemon::forward_batch(Batch batch) {
  busy_ = true;
  const SimTime t0 = engine_.now();
  if (tracer_ != nullptr) {
    // Hop boundary for the profiler: each rider leaves the daemon stage.
    for (const Sample& s : batch.samples) {
      tracer_->async_instant("sample", "lifecycle", s.id, track_, t0, "fwd",
                             static_cast<double>(batch.sample_count()));
    }
  }
  cpu_.submit(CpuRequest{
      forward_cpu_(rng_), ProcessClass::ParadynDaemon,
      [this, batch = std::move(batch), t0]() mutable {
        // The paper assumes a merged/batched unit occupies the network like
        // a single sample; net_per_extra_sample_us generalizes that.
        // net_penalty_ is exactly 1.0 outside cascade windows, so the
        // multiply is bit-neutral for cascade-free runs.
        const double occupancy =
            (net_occupancy_(rng_) +
             config_.pd.net_per_extra_sample_us * static_cast<double>(batch.sample_count() - 1)) *
            net_penalty_;
        // One forward is in flight at a time (busy_), so the member carries
        // the occupancy to the completion callback for the profiler marker.
        last_net_occupancy_us_ = occupancy;
        network_.submit(NetRequest{occupancy, ProcessClass::ParadynDaemon, node_,
                                   [this, batch = std::move(batch), t0] {
                                     ++batches_forwarded_;
                                     if (tracer_ != nullptr) {
                                       // Spans CPU(forward) + blocking send.
                                       tracer_->complete(
                                           "daemon", "forward", track_, t0, engine_.now() - t0,
                                           "samples", static_cast<double>(batch.sample_count()));
                                       // Hop boundary: the batch cleared the
                                       // network; arg is the batch occupancy
                                       // the sample rode on.
                                       for (const Sample& s : batch.samples) {
                                         tracer_->async_instant("sample", "lifecycle", s.id,
                                                                track_, engine_.now(), "net",
                                                                last_net_occupancy_us_);
                                       }
                                     }
                                     deliver(batch);
                                     busy_ = false;
                                     try_start();
                                   }});
      }});
}

void ParadynDaemon::on_flush_due() {
  flush_due_ = true;
  try_start();
}

void ParadynDaemon::deliver(const Batch& batch) {
  if (forward_sink_) {
    // PDES: the router stamps the delivery time (now + uplink latency) and
    // injects the batch into the destination shard at a window boundary.
    forward_sink_(batch);
    return;
  }
  if (config_.uplink_latency_us > 0.0) {
    // Modeled uplink delivery latency: the batch cleared this daemon's
    // network occupancy at `now` and reaches the destination L later.  The
    // default of 0 keeps the historical synchronous hand-off bit-for-bit.
    // Init-capture: copy-capturing the const& parameter directly would give
    // the closure a const member, whose "move" is a throwing copy — and the
    // event slab requires nothrow moves.
    engine_.schedule_after(config_.uplink_latency_us,
                           [this, b = batch] { deliver_direct(b); });
    return;
  }
  deliver_direct(batch);
}

void ParadynDaemon::deliver_direct(const Batch& batch) {
  if (parent_ != nullptr) {
    parent_->receive_from_child(batch);
  } else {
    main_->receive(batch);
  }
}

}  // namespace paradyn::rocc
