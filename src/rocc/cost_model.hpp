// Adaptive instrumentation cost model (Paradyn's dynamic cost model,
// Hollingsworth & Miller, EuroPar'96 — reference [12] of the paper).
//
// Paradyn regulates its own perturbation: it observes the CPU the IS is
// consuming and adapts the data-collection rate to keep the direct
// overhead under a user-specified budget (the "tolerable limits" the
// paper's Section 7 wants users to express).  This controller implements
// that loop inside the ROCC model: every adjustment interval it measures
// the IS's CPU occupancy over the window and scales the sampling period
// multiplicatively — up when over budget, down when comfortably under.
#pragma once

#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/metrics.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

/// On-line overhead regulator.  Owns the current sampling period; the
/// application processes read it when arming their next sampling timer.
class SamplingController {
 public:
  SamplingController(des::Engine& engine, const AdaptiveSamplingConfig& config,
                     SimTime initial_period_us, std::vector<const CpuResource*> cpus,
                     double total_cpu_capacity_per_us);

  SamplingController(const SamplingController&) = delete;
  SamplingController& operator=(const SamplingController&) = delete;

  /// Begin the periodic adjustment loop.
  void start();

  /// The sampling period the instrumentation should currently use.
  [[nodiscard]] SimTime current_period_us() const noexcept { return period_us_; }

  /// Decision log (one entry per adjustment interval).
  [[nodiscard]] const std::vector<CostModelAdjustment>& adjustments() const noexcept {
    return adjustments_;
  }

 private:
  void on_adjust();
  [[nodiscard]] double is_busy_time_us() const;

  des::Engine& engine_;
  AdaptiveSamplingConfig config_;
  SimTime period_us_;
  std::vector<const CpuResource*> cpus_;
  double capacity_per_us_;
  double last_is_busy_us_ = 0.0;
  SimTime last_adjust_at_ = 0.0;
  std::vector<CostModelAdjustment> adjustments_;
};

}  // namespace paradyn::rocc
