// Adaptive instrumentation cost model (Paradyn's dynamic cost model,
// Hollingsworth & Miller, EuroPar'96 — reference [12] of the paper).
//
// Paradyn regulates its own perturbation: it observes the CPU the IS is
// consuming and adapts the data-collection rate to keep the direct
// overhead under a user-specified budget (the "tolerable limits" the
// paper's Section 7 wants users to express).  This controller implements
// that loop inside the ROCC model: every adjustment interval it measures
// the IS's CPU occupancy over the window and scales the sampling period
// multiplicatively — up when over budget, down when comfortably under.
#pragma once

#include <cstdint>
#include <vector>

#include "des/engine.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/metrics.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

/// On-line overhead regulator.  Owns the current sampling period; the
/// application processes read it when arming their next sampling timer.
class SamplingController {
 public:
  SamplingController(des::Engine& engine, const AdaptiveSamplingConfig& config,
                     SimTime initial_period_us, std::vector<const CpuResource*> cpus,
                     double total_cpu_capacity_per_us);

  SamplingController(const SamplingController&) = delete;
  SamplingController& operator=(const SamplingController&) = delete;

  /// Begin the periodic adjustment loop.
  void start();

  /// The sampling period the instrumentation should currently use.
  [[nodiscard]] SimTime current_period_us() const noexcept { return period_us_; }

  /// Decision log (one entry per adjustment interval).
  [[nodiscard]] const std::vector<CostModelAdjustment>& adjustments() const noexcept {
    return adjustments_;
  }

 private:
  void on_adjust();
  [[nodiscard]] double is_busy_time_us() const;

  des::Engine& engine_;
  AdaptiveSamplingConfig config_;
  SimTime period_us_;
  std::vector<const CpuResource*> cpus_;
  double capacity_per_us_;
  double last_is_busy_us_ = 0.0;
  SimTime last_adjust_at_ = 0.0;
  std::vector<CostModelAdjustment> adjustments_;
};

class ApplicationProcess;

/// Per-daemon perturbation throttle (--adaptive-sampling): where the
/// SamplingController regulates one global period against direct IS CPU
/// cost, this controller regulates each daemon *domain* (the daemon plus
/// the application processes it instruments) against its own perturbation —
/// daemon CPU occupancy plus application pipe-blocked time, the two paths
/// by which the IS perturbs the paper's workload.  The measured fraction is
/// linearly extrapolated one interval ahead; a domain whose *predicted*
/// perturbation exceeds the budget gets its sampling period stretched
/// (factor *= grow, capped at max_slowdown), and recovers multiplicatively
/// once the prediction falls under half the budget.
class PerDaemonThrottle {
 public:
  PerDaemonThrottle(des::Engine& engine, const AdaptiveThrottleConfig& config);

  PerDaemonThrottle(const PerDaemonThrottle&) = delete;
  PerDaemonThrottle& operator=(const PerDaemonThrottle&) = delete;

  /// Register one daemon domain.  `cpu_share` is the fraction of the host
  /// CPU's ParadynDaemon-class busy time attributable to this daemon (1 on
  /// NOW/MPP; 1/daemons-per-host on SMP, an even-split approximation since
  /// per-class CPU accounting is shared).  Returns the domain index.
  std::int32_t add_domain(const CpuResource* cpu, double cpu_share, double capacity_per_us);

  /// Register an application process whose sampling the domain throttles.
  void add_app(std::int32_t domain, const ApplicationProcess* app);

  /// Begin the periodic adjustment loop.
  void start();

  /// Current sampling-period multiplier of a domain (>= 1).
  [[nodiscard]] double factor(std::int32_t domain) const noexcept {
    return domains_[static_cast<std::size_t>(domain)].factor;
  }
  [[nodiscard]] std::vector<double> factors() const;
  [[nodiscard]] double max_factor() const noexcept { return max_factor_; }
  [[nodiscard]] std::uint64_t adjustments() const noexcept { return adjustments_; }
  /// Adjustment-interval events this instance fired (whether or not any
  /// factor moved).  The partitioned Simulation subtracts replica control
  /// events so `events_processed` stays shard-count-invariant.
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  struct Domain {
    const CpuResource* cpu = nullptr;
    double cpu_share = 1.0;
    double capacity_per_us = 1.0;
    std::vector<const ApplicationProcess*> apps;
    double factor = 1.0;
    double current_pct = 0.0;  ///< Perturbation over the last window.
    double last_busy_us = 0.0;
    double last_blocked_us = 0.0;
  };

  void on_adjust();

  des::Engine& engine_;
  AdaptiveThrottleConfig config_;
  std::vector<Domain> domains_;
  SimTime last_adjust_at_ = 0.0;
  double max_factor_ = 1.0;
  std::uint64_t adjustments_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace paradyn::rocc
