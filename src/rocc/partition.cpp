#include "rocc/partition.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "des/random.hpp"

namespace paradyn::rocc {

PartitionPlan PartitionPlan::build(std::int32_t nodes, std::int32_t shards) {
  if (nodes <= 0 || shards <= 0 || shards > nodes) {
    throw std::invalid_argument("PartitionPlan: need 1 <= shards <= nodes");
  }
  PartitionPlan plan;
  plan.shards = static_cast<std::size_t>(shards);
  plan.node_shard.reserve(static_cast<std::size_t>(nodes));
  const std::int32_t base = nodes / shards;
  const std::int32_t extra = nodes % shards;
  for (std::int32_t s = 0; s < shards; ++s) {
    const std::int32_t count = base + (s < extra ? 1 : 0);
    for (std::int32_t i = 0; i < count; ++i) plan.node_shard.push_back(static_cast<std::size_t>(s));
  }
  return plan;
}

namespace {

/// Daemon indices adjacent to `d` — must mirror
/// Simulation::topology_neighbors exactly (tree: parent + children; direct:
/// the index chain), ascending.
std::vector<std::size_t> neighbors(std::size_t d, std::size_t daemon_count,
                                   ForwardingTopology topology) {
  std::vector<std::size_t> out;
  if (topology == ForwardingTopology::BinaryTree) {
    if (d > 0) out.push_back((d - 1) / 2);
    if (2 * d + 1 < daemon_count) out.push_back(2 * d + 1);
    if (2 * d + 2 < daemon_count) out.push_back(2 * d + 2);
  } else {
    if (d > 0) out.push_back(d - 1);
    if (d + 1 < daemon_count) out.push_back(d + 1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct CascadeEvent {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  // engine insertion order within the cascade subset
  enum : std::uint8_t { kApply, kHit } kind = kApply;
  std::size_t fault_index = 0;
  std::size_t daemon = 0;  // origin (kApply) or hit target (kHit)
  std::int32_t hop = 0;
};

struct LaterEvent {
  bool operator()(const CascadeEvent& a, const CascadeEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

std::vector<CascadeHit> resolve_cascades(const FaultPlan& plan, std::size_t daemon_count,
                                         ForwardingTopology topology, std::uint64_t seed,
                                         SimTime horizon_us) {
  std::vector<CascadeHit> hits;
  if (daemon_count == 0) return hits;
  bool any = false;
  for (const FaultSpec& f : plan.faults) any |= f.cascade_p > 0.0;
  if (!any) return hits;

  // The cascade events form a closed subsystem of the real engine's queue:
  // model events neither produce them nor consume the cascade stream, so
  // executing just this subset in (time, insertion-seq) order reproduces
  // both the draw order and the hit times of the legacy runtime BFS.
  des::RngStream rng(seed, 0, kCascadeRngTag);
  std::priority_queue<CascadeEvent, std::vector<CascadeEvent>, LaterEvent> queue;
  std::uint64_t seq = 0;
  // apply_fault events are scheduled at build time in plan order — before
  // any hit event exists — so they take the lowest sequence numbers.
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& f = plan.faults[i];
    const bool cascading = f.cascade_p > 0.0 && f.target >= 0 &&
                           (f.type == FaultType::DaemonStall || f.type == FaultType::DaemonCrash);
    if (!cascading) continue;
    queue.push(CascadeEvent{f.start_us, seq++, CascadeEvent::kApply, i,
                            static_cast<std::size_t>(f.target), 0});
  }

  std::vector<std::vector<char>> visited(plan.faults.size());
  const auto propagate = [&](std::size_t fault_index, std::size_t from, std::int32_t hop,
                             SimTime now) {
    const FaultSpec& f = plan.faults[fault_index];
    for (const std::size_t nb : neighbors(from, daemon_count, topology)) {
      if (visited[fault_index][nb] != 0) continue;
      visited[fault_index][nb] = 1;
      if (rng.next_double() >= f.cascade_p) continue;
      queue.push(
          CascadeEvent{now + f.cascade_delay_us, seq++, CascadeEvent::kHit, fault_index, nb, hop});
    }
  };

  while (!queue.empty()) {
    const CascadeEvent ev = queue.top();
    // Time-ordered heap: once the next event lies beyond the run length,
    // everything remaining does too — none of it would have executed (or
    // drawn) in the legacy engine.
    if (ev.time > horizon_us) break;
    queue.pop();
    const FaultSpec& f = plan.faults[ev.fault_index];
    if (ev.kind == CascadeEvent::kApply) {
      visited[ev.fault_index].assign(daemon_count, 0);
      visited[ev.fault_index][ev.daemon] = 1;
      propagate(ev.fault_index, ev.daemon, 1, ev.time);
      continue;
    }
    if (ev.time >= f.end_us()) continue;  // parent window already lifted
    hits.push_back(CascadeHit{ev.time, ev.fault_index, ev.daemon});
    if (ev.hop < f.cascade_hops) propagate(ev.fault_index, ev.daemon, ev.hop + 1, ev.time);
  }
  return hits;
}

}  // namespace paradyn::rocc
