// Background load: the PVM daemon and "other user/system processes" of
// Table 2, modeled as open arrival streams of CPU and network occupancy
// requests (they contend for resources but carry no instrumentation data).
#pragma once

#include "des/engine.hpp"
#include "des/random.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/network.hpp"

namespace paradyn::rocc {

/// An open Poisson-like stream: every `interarrival` draw, submit one
/// occupancy request of `length` to a resource.  Fire-and-forget — requests
/// queue and complete without feedback to the arrival process.
class OpenArrivalStream {
 public:
  /// Exactly one of `cpu` / `network` must be non-null.  Both distributions
  /// are frozen into inline samplers compiled for `backend`.  `node` tags
  /// network requests for the optional per-node busy accounting.  `batch`
  /// (default: disabled) moves the interarrival/length draws onto per-site
  /// prefill buffers (--batch-sampling); the spec's site must already be
  /// unique to this stream (simulation.cpp spaces streams two sites apart).
  OpenArrivalStream(des::Engine& engine, stats::DistributionPtr interarrival,
                    stats::DistributionPtr length, ProcessClass pclass, CpuResource* cpu,
                    NetworkResource* network, des::RngStream rng,
                    stats::SamplerBackend backend = stats::SamplerBackend::Ziggurat,
                    std::int32_t node = -1, stats::BatchSpec batch = {});

  OpenArrivalStream(const OpenArrivalStream&) = delete;
  OpenArrivalStream& operator=(const OpenArrivalStream&) = delete;

  void start();

 private:
  void on_arrival();

  des::Engine& engine_;
  stats::BufferedSampler interarrival_;
  stats::BufferedSampler length_;
  ProcessClass pclass_;
  CpuResource* cpu_;
  NetworkResource* network_;
  des::RngStream rng_;
  std::int32_t node_;
};

}  // namespace paradyn::rocc
