// Instrumented application process model.
//
// Implements the simplified two-state behavior of Figure 7: alternating
// Computation (CPU occupancy) and Communication (network occupancy) states.
// When instrumented, a wall-clock sampling timer deposits one sample per
// sampling period into the process's pipe; a full pipe blocks the process
// (it finishes its in-flight resource request, then stops progressing until
// the daemon drains the pipe).  Optionally the process joins a global
// barrier every `barrier_period` (Figure 28).
#pragma once

#include <optional>

#include "des/engine.hpp"
#include "des/random.hpp"
#include "obs/trace.hpp"
#include "rocc/barrier.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/cost_model.hpp"
#include "rocc/metrics.hpp"
#include "rocc/network.hpp"
#include "rocc/pipe.hpp"

namespace paradyn::rocc {

class ApplicationProcess {
 public:
  /// `pipe` may be null (uninstrumented run); `barrier` may be null (no
  /// barrier synchronization).  `model` is this process's resolved workload
  /// (the global config's AppModel or a per-node override).  `controller`
  /// (nullable) supplies the adaptive sampling period.
  /// `batch` (default: disabled) moves the burst/IO-duration draws onto
  /// per-site prefill buffers (--batch-sampling); the I/O-branch Bernoulli
  /// stays on `rng` either way.
  ApplicationProcess(des::Engine& engine, const SystemConfig& config, AppModel model,
                     CpuResource& cpu, NetworkResource& network, Pipe* pipe,
                     BarrierManager* barrier, const SamplingController* controller,
                     MetricsCollector& metrics, des::RngStream rng, std::int32_t node,
                     std::int32_t index, stats::BatchSpec batch = {});

  ApplicationProcess(const ApplicationProcess&) = delete;
  ApplicationProcess& operator=(const ApplicationProcess&) = delete;

  /// Begin the computation/communication loop and the sampling timer.
  void start();

  /// Fault injection: samples consult `gate` at emission and may be lost
  /// before reaching the pipe.  Call before start(); may be null.
  void set_fault_gate(FaultGate* gate) noexcept { fault_gate_ = gate; }

  /// Adaptive throttle: the sampling period is multiplied by the factor of
  /// `domain` (this process's daemon).  Call before start(); may be null.
  void set_throttle(const PerDaemonThrottle* throttle, std::int32_t domain) noexcept {
    throttle_ = throttle;
    throttle_domain_ = domain;
  }

  /// Give this process a private sample-id namespace (ids become base+1,
  /// base+2, ...).  The partitioned PDES build uses disjoint bases so ids
  /// stay run-unique without a shared counter; 0 (default) keeps the legacy
  /// shared-counter numbering.  Call before start().
  void set_sample_id_base(std::uint64_t base) noexcept { sample_id_base_ = base; }

  [[nodiscard]] std::int32_t node() const noexcept { return node_; }
  [[nodiscard]] std::int32_t index() const noexcept { return index_; }
  [[nodiscard]] bool blocked_on_pipe() const noexcept { return blocked_on_pipe_; }
  /// Cumulative simulated time spent blocked on a full pipe, including the
  /// in-progress block (the throttle's perturbation input).
  [[nodiscard]] SimTime pipe_blocked_time_us(SimTime now) const noexcept {
    return blocked_total_us_ + (blocked_on_pipe_ ? now - blocked_since_ : 0.0);
  }
  /// Completed computation+communication cycles.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

  /// Observability: sample-lifecycle begins, pipe enqueue/full instants on
  /// `track`.
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  void begin_cycle();
  void on_cpu_done();
  void on_cpu_done_resume();
  void on_net_done();
  void end_of_cycle();
  void after_io_block();

  void on_sample_timer();
  /// Read the counters and deposit one sample (blocking on a full pipe).
  void emit_sample();
  void on_pipe_space();
  /// Arm the next sampling timer using the (possibly adaptive) period.
  void schedule_next_sample();
  [[nodiscard]] SimTime sampling_period() const;

  /// True (and remembers how to resume) if the process is blocked on a full
  /// pipe and must not progress.
  bool yield_if_blocked(SmallCallback resume_point);

  des::Engine& engine_;
  const SystemConfig& config_;
  AppModel model_;
  // The workload distributions frozen into inline samplers (the per-cycle
  // hot path; see stats/sampler.hpp), optionally behind prefill buffers
  // (stats/variate_buffer.hpp).
  stats::BufferedSampler cpu_burst_;
  stats::BufferedSampler net_burst_;
  stats::BufferedSampler io_block_duration_;
  CpuResource& cpu_;
  NetworkResource& network_;
  Pipe* pipe_;
  BarrierManager* barrier_;
  const SamplingController* controller_;
  const PerDaemonThrottle* throttle_ = nullptr;
  std::int32_t throttle_domain_ = 0;
  FaultGate* fault_gate_ = nullptr;
  std::uint64_t sample_id_base_ = 0;
  std::uint64_t sample_seq_ = 0;
  MetricsCollector& metrics_;
  des::RngStream rng_;
  std::int32_t node_;
  std::int32_t index_;

  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;

  bool blocked_on_pipe_ = false;
  SimTime blocked_since_ = 0.0;
  SimTime blocked_total_us_ = 0.0;
  std::optional<Sample> pending_sample_;
  SmallCallback resume_point_;
  SimTime last_barrier_ = 0.0;
  std::uint64_t cycles_ = 0;

  // Metric accounting for the samples' cpu/comm fractions (the counters
  // Paradyn's instrumentation reads at each sampling tick).
  SimTime cpu_time_used_ = 0.0;
  SimTime comm_time_used_ = 0.0;
  SimTime current_burst_ = 0.0;
  SimTime last_sample_time_ = 0.0;
  SimTime last_sample_cpu_ = 0.0;
  SimTime last_sample_comm_ = 0.0;
};

}  // namespace paradyn::rocc
