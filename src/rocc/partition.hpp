// PDES partitioning of the ROCC model.
//
// Two pieces the sharded Simulation build needs:
//
//  * PartitionPlan — the node -> shard map.  Nodes are cut into contiguous
//    blocks so shard 0 always owns node 0 (and with it the main Paradyn
//    process and, when configured, the dedicated main host CPU).
//
//  * resolve_cascades — build-time resolution of cascade faults.  Cascade
//    propagation is fully plan-determined: no model event ever schedules a
//    cascade event or draws from the cascade stream, so the whole BFS —
//    which neighbors are hit, and when — can be replayed before the run
//    starts by a miniature event loop that reproduces the engine's
//    (time, insertion-seq) execution order of the cascade events exactly,
//    consuming the kCascadeRngTag stream in the same order the legacy
//    runtime BFS does.  The partitioned build then compiles the precomputed
//    hits into per-shard timed events; the legacy single-engine path keeps
//    its original runtime BFS untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "rocc/faults.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

struct PartitionPlan {
  std::size_t shards = 1;
  std::vector<std::size_t> node_shard;  // node index -> owning shard

  /// Contiguous blocks of ceil/floor(nodes/shards) nodes; the first
  /// `nodes % shards` blocks take the extra node.  Requires
  /// 1 <= shards <= nodes.
  [[nodiscard]] static PartitionPlan build(std::int32_t nodes, std::int32_t shards);

  [[nodiscard]] std::size_t shard_of(std::int32_t node) const {
    return node_shard[static_cast<std::size_t>(node)];
  }
};

/// One precomputed cascade hit: at `at_us` the cascade of plan fault
/// `fault_index` lands on `daemon` (an uplink penalty of
/// plan.faults[fault_index].cascade_factor until the parent window ends).
/// Hits are returned in engine execution order — the order the legacy
/// runtime appends induced FaultOutcome rows.
struct CascadeHit {
  SimTime at_us = 0.0;
  std::size_t fault_index = 0;
  std::size_t daemon = 0;
};

/// Replay the cascade BFS of every cascade-bearing fault in `plan` against
/// the forwarding topology, drawing from RngStream(seed, 0, kCascadeRngTag)
/// in exactly the legacy runtime order.  Hits at or after the parent
/// window's end are filtered (the runtime check `now >= end`), matching the
/// legacy behavior including its RNG consumption: a filtered hit still
/// propagated no further, and its Bernoulli draw already happened at its
/// parent's propagation step.  `horizon_us` is the run length: the engine
/// executes events at times <= horizon (run_until is inclusive), so the
/// replay stops — recording nothing and drawing nothing further — once the
/// next pending event lies strictly beyond it, exactly like events left
/// pending in the legacy queue at the end of the run.
[[nodiscard]] std::vector<CascadeHit> resolve_cascades(const FaultPlan& plan,
                                                       std::size_t daemon_count,
                                                       ForwardingTopology topology,
                                                       std::uint64_t seed, SimTime horizon_us);

}  // namespace paradyn::rocc
