#include "rocc/app_process.hpp"

#include <utility>

namespace paradyn::rocc {

ApplicationProcess::ApplicationProcess(des::Engine& engine, const SystemConfig& config,
                                       AppModel model, CpuResource& cpu,
                                       NetworkResource& network, Pipe* pipe,
                                       BarrierManager* barrier,
                                       const SamplingController* controller,
                                       MetricsCollector& metrics, des::RngStream rng,
                                       std::int32_t node, std::int32_t index,
                                       stats::BatchSpec batch)
    : engine_(engine),
      config_(config),
      model_(std::move(model)),
      cpu_burst_(stats::FrozenSampler::compile(model_.cpu_burst, config.sampler_backend()),
                 batch.at(0)),
      net_burst_(stats::FrozenSampler::compile(model_.net_burst, config.sampler_backend()),
                 batch.at(1)),
      io_block_duration_(model_.io_block_duration
                             ? stats::FrozenSampler::compile(model_.io_block_duration,
                                                             config.sampler_backend())
                             : stats::FrozenSampler{},
                         batch.at(2)),
      cpu_(cpu),
      network_(network),
      pipe_(pipe),
      barrier_(barrier),
      controller_(controller),
      metrics_(metrics),
      rng_(rng),
      node_(node),
      index_(index) {}

void ApplicationProcess::start() {
  last_barrier_ = engine_.now();
  last_sample_time_ = engine_.now();
  if (pipe_ != nullptr && config_.instrumentation_mode == InstrumentationMode::Sampling) {
    schedule_next_sample();
  }
  begin_cycle();
}

bool ApplicationProcess::yield_if_blocked(SmallCallback resume_point) {
  if (!blocked_on_pipe_) return false;
  resume_point_ = std::move(resume_point);
  return true;
}

void ApplicationProcess::begin_cycle() {
  if (yield_if_blocked([this] { begin_cycle(); })) return;
  current_burst_ = cpu_burst_(rng_);
  cpu_.submit(CpuRequest{current_burst_, ProcessClass::Application, [this] { on_cpu_done(); }});
}

void ApplicationProcess::on_cpu_done() {
  cpu_time_used_ += current_burst_;
  if (yield_if_blocked([this] { on_cpu_done_resume(); })) return;
  on_cpu_done_resume();
}

void ApplicationProcess::on_cpu_done_resume() {
  current_burst_ = net_burst_(rng_);
  network_.submit(
      NetRequest{current_burst_, ProcessClass::Application, node_, [this] { on_net_done(); }});
}

void ApplicationProcess::on_net_done() {
  comm_time_used_ += current_burst_;
  ++cycles_;
  // Event tracing: each completed cycle is an "event of interest" that
  // produces one instrumentation record (Figure 6's data-collection arcs).
  if (pipe_ != nullptr && config_.instrumentation_mode == InstrumentationMode::Tracing) {
    emit_sample();
  }
  // The cycle count is incremented exactly once; if the process is blocked
  // it resumes at end_of_cycle without recounting.
  if (yield_if_blocked([this] { end_of_cycle(); })) return;
  end_of_cycle();
}

void ApplicationProcess::end_of_cycle() {
  // Figure 6's Blocked state: some cycles wait for I/O (e.g. NFS) without
  // occupying the CPU or network.
  if (model_.io_block_probability > 0.0 &&
      rng_.next_double() < model_.io_block_probability) {
    engine_.schedule_after(io_block_duration_(rng_), [this] { after_io_block(); });
    return;
  }
  after_io_block();
}

void ApplicationProcess::after_io_block() {
  const bool time_due = config_.barrier_period_us > 0.0 &&
                        engine_.now() - last_barrier_ >= config_.barrier_period_us;
  const bool work_due =
      config_.barrier_every_cycles > 0 &&
      cycles_ % static_cast<std::uint64_t>(config_.barrier_every_cycles) == 0;
  if (barrier_ != nullptr && (time_due || work_due)) {
    barrier_->arrive([this] {
      last_barrier_ = engine_.now();
      begin_cycle();
    });
    return;
  }
  begin_cycle();
}

SimTime ApplicationProcess::sampling_period() const {
  SimTime period = controller_ != nullptr ? controller_->current_period_us()
                                          : config_.sampling_period_us;
  if (throttle_ != nullptr) period *= throttle_->factor(throttle_domain_);
  return period;
}

void ApplicationProcess::schedule_next_sample() {
  engine_.schedule_after(sampling_period(), [this] { on_sample_timer(); });
}

void ApplicationProcess::on_sample_timer() {
  emit_sample();
  if (!blocked_on_pipe_) {
    schedule_next_sample();
  }
}

void ApplicationProcess::emit_sample() {
  // Read the instrumentation counters: fractions of the elapsed interval
  // spent computing / communicating since the previous sample.
  Sample sample;
  sample.generated_at = engine_.now();
  sample.node = node_;
  sample.app_index = index_;
  const SimTime interval = engine_.now() - last_sample_time_;
  if (interval > 0.0) {
    sample.cpu_fraction = (cpu_time_used_ - last_sample_cpu_) / interval;
    sample.comm_fraction = (comm_time_used_ - last_sample_comm_) / interval;
  }
  last_sample_time_ = engine_.now();
  last_sample_cpu_ = cpu_time_used_;
  last_sample_comm_ = comm_time_used_;
  ++metrics_.samples_generated;
  // Run-unique id.  The legacy path numbers samples off the shared
  // generated-counter; the partitioned path gives every process its own id
  // namespace, since shards each own a metrics collector and a shared
  // counter would order ids by shard layout.
  sample.id = sample_id_base_ != 0 ? sample_id_base_ + ++sample_seq_ : metrics_.samples_generated;
  // Fault injection: the counters were read, but the write to the pipe is
  // lost (a lossy /proc read or dropped trace record).
  if (fault_gate_ != nullptr && fault_gate_->active() && fault_gate_->should_drop(node_)) {
    ++metrics_.samples_dropped;
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->async_begin("sample", "lifecycle", sample.id, track_, engine_.now());
  }
  if (pipe_->try_put(sample)) {
    if (tracer_ != nullptr) {
      tracer_->instant("pipe", "enqueue", track_, engine_.now(), "depth",
                       static_cast<double>(pipe_->size()));
      // Hop boundary for the profiler: the sample entered the pipe.
      tracer_->async_instant("sample", "lifecycle", sample.id, track_, engine_.now(), "enq",
                             static_cast<double>(pipe_->size()));
    }
    return;
  }
  // Pipe full: block.  The in-flight resource request (if any) completes,
  // then the process parks at its next step until the daemon drains the
  // pipe.  No further samples are generated while blocked (Section 4.3.3).
  if (tracer_ != nullptr) {
    tracer_->instant("pipe", "full", track_, engine_.now(), "capacity",
                     static_cast<double>(pipe_->capacity()));
  }
  blocked_on_pipe_ = true;
  blocked_since_ = engine_.now();
  pending_sample_ = sample;
  pipe_->notify_on_space([this] { on_pipe_space(); });
}

void ApplicationProcess::on_pipe_space() {
  if (!blocked_on_pipe_) return;
  if (pending_sample_) {
    // Space freed: deposit the sample that caused the block.
    if (!pipe_->try_put(*pending_sample_)) {
      // Still full (should not happen with a one-shot space callback, but
      // stay robust): keep waiting.
      pipe_->notify_on_space([this] { on_pipe_space(); });
      return;
    }
    if (tracer_ != nullptr) {
      tracer_->instant("pipe", "enqueue", track_, engine_.now(), "depth",
                       static_cast<double>(pipe_->size()));
      // Hop boundary after a pipe-full block: enq is the deposit time, so
      // the app hop absorbs the whole blocked wait.
      tracer_->async_instant("sample", "lifecycle", pending_sample_->id, track_, engine_.now(),
                             "enq", static_cast<double>(pipe_->size()));
    }
    pending_sample_.reset();
  }
  blocked_on_pipe_ = false;
  blocked_total_us_ += engine_.now() - blocked_since_;
  if (config_.instrumentation_mode == InstrumentationMode::Sampling) {
    schedule_next_sample();
  }
  if (resume_point_) {
    auto resume = std::exchange(resume_point_, nullptr);
    resume();
  }
}

}  // namespace paradyn::rocc
