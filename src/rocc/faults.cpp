#include "rocc/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>

#include "util/spec_grammar.hpp"
#include "util/suggest.hpp"

namespace paradyn::rocc {
namespace {

using util::SpecCtx;
using util::parse_number;
using util::parse_time_us;

[[noreturn]] void bad(const SpecCtx& c, std::size_t local_pos, const std::string& why) {
  util::bad_spec(c, local_pos, why);
}

std::int32_t parse_target(const SpecCtx& c, std::size_t pos, const std::string& text) {
  if (text == "all" || text == "-1") return -1;
  const double v = parse_number(c, pos, text);
  const auto i = static_cast<std::int32_t>(v);
  if (static_cast<double>(i) != v || i < 0) bad(c, pos, "target must be 'all' or >= 0");
  return i;
}

std::int32_t parse_count(const SpecCtx& c, std::size_t pos, const std::string& text) {
  const double v = parse_number(c, pos, text);
  const auto i = static_cast<std::int32_t>(v);
  if (static_cast<double>(i) != v || i < 1) bad(c, pos, "expected an integer >= 1: " + text);
  return i;
}

const std::set<std::string>& known_dist_names() {
  static const std::set<std::string> names = {"exp", "exponential", "uniform", "lognormal",
                                              "weibull"};
  return names;
}

/// "exp:1s" / "uniform:200ms:800ms" / "lognormal:300ms:100ms" /
/// "weibull:2:300ms" — parameters are times (weibull's SHAPE is bare).
stats::DistributionPtr parse_dist(const SpecCtx& c, std::size_t pos, const std::string& text) {
  std::vector<std::string> parts;
  std::vector<std::size_t> offsets;
  std::size_t at = 0;
  while (at <= text.size()) {
    const auto colon = text.find(':', at);
    const std::size_t end = colon == std::string::npos ? text.size() : colon;
    parts.push_back(text.substr(at, end - at));
    offsets.push_back(at);
    if (colon == std::string::npos) break;
    at = colon + 1;
  }
  const std::string& name = parts[0];
  const auto need = [&](std::size_t n) {
    if (parts.size() != n + 1) {
      bad(c, pos, name + " takes " + std::to_string(n) + " ':'-separated parameter(s), got " +
                      std::to_string(parts.size() - 1));
    }
  };
  try {
    if (name == "exp" || name == "exponential") {
      need(1);
      return std::make_shared<stats::Exponential>(parse_time_us(c, pos + offsets[1], parts[1]));
    }
    if (name == "uniform") {
      need(2);
      const double lo = parse_time_us(c, pos + offsets[1], parts[1]);
      const double hi = parse_time_us(c, pos + offsets[2], parts[2]);
      return std::make_shared<stats::Uniform>(lo, hi);
    }
    if (name == "lognormal") {
      need(2);
      const double mean = parse_time_us(c, pos + offsets[1], parts[1]);
      const double stddev = parse_time_us(c, pos + offsets[2], parts[2]);
      return std::make_shared<stats::Lognormal>(stats::Lognormal::from_mean_stddev(mean, stddev));
    }
    if (name == "weibull") {
      need(2);
      const double shape = parse_number(c, pos + offsets[1], parts[1]);
      const double scale = parse_time_us(c, pos + offsets[2], parts[2]);
      return std::make_shared<stats::Weibull>(shape, scale);
    }
  } catch (const std::invalid_argument& e) {
    // Distribution constructors validate their parameters; re-cite the
    // clause position so the shell error still points at the token.
    const std::string what = e.what();
    if (what.rfind("FaultPlan:", 0) == 0) throw;
    bad(c, pos, what);
  }
  bad(c, pos, "unknown distribution: " + name + util::did_you_mean(name, known_dist_names()));
}

const std::set<std::string>& known_fault_types() {
  static const std::set<std::string> names = {"daemon_stall", "daemon_crash", "link_slow",
                                              "sample_drop", "pipe_backpressure"};
  return names;
}

const std::set<std::string>& known_fault_keys() {
  static const std::set<std::string> names = {
      "start",   "dur",     "duration",      "daemon",        "node",
      "factor",  "p",       "capacity",      "cascade",       "cascade_delay",
      "cascade_hops", "cascade_factor"};
  return names;
}

FaultSpec parse_spec_impl(const SpecCtx& c) {
  const std::string& spec = c.spec;
  const auto colon = spec.find(':');
  if (colon == std::string::npos) bad(c, 0, "expected TYPE:key=value,...");
  const std::string type_name = spec.substr(0, colon);

  FaultSpec f;
  if (type_name == "daemon_stall") {
    f.type = FaultType::DaemonStall;
  } else if (type_name == "daemon_crash") {
    f.type = FaultType::DaemonCrash;
  } else if (type_name == "link_slow") {
    f.type = FaultType::LinkSlowdown;
  } else if (type_name == "sample_drop") {
    f.type = FaultType::SampleDrop;
  } else if (type_name == "pipe_backpressure") {
    f.type = FaultType::PipeBackpressure;
  } else {
    bad(c, 0,
        "unknown fault type: " + type_name + util::did_you_mean(type_name, known_fault_types()));
  }

  bool saw_start = false;
  bool saw_duration = false;
  std::size_t pos = colon + 1;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string kv = spec.substr(pos, end - pos);
    const std::size_t kv_pos = pos;
    pos = end + 1;
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) bad(c, kv_pos, "expected key=value, got: " + kv);
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    const std::size_t value_pos = kv_pos + eq + 1;
    // `start` / `dur` values containing ':' are distribution specs.
    if (key == "start") {
      if (value.find(':') != std::string::npos) {
        f.start_dist = parse_dist(c, value_pos, value);
      } else {
        f.start_us = parse_time_us(c, value_pos, value);
      }
      saw_start = true;
    } else if (key == "dur" || key == "duration") {
      if (value.find(':') != std::string::npos) {
        f.duration_dist = parse_dist(c, value_pos, value);
      } else {
        f.duration_us = parse_time_us(c, value_pos, value);
      }
      saw_duration = true;
    } else if (key == "daemon" || key == "node") {
      f.target = parse_target(c, value_pos, value);
    } else if (key == "factor" || key == "p" || key == "capacity") {
      f.magnitude = parse_number(c, value_pos, value);
    } else if (key == "cascade") {
      f.cascade_p = parse_number(c, value_pos, value);
    } else if (key == "cascade_delay") {
      f.cascade_delay_us = parse_time_us(c, value_pos, value);
    } else if (key == "cascade_hops") {
      f.cascade_hops = parse_count(c, value_pos, value);
    } else if (key == "cascade_factor") {
      f.cascade_factor = parse_number(c, value_pos, value);
    } else {
      bad(c, kv_pos, "unknown key: " + key + util::did_you_mean(key, known_fault_keys()));
    }
  }
  if (!saw_start || !saw_duration) bad(c, 0, "start and dur are required");
  return f;
}

}  // namespace

const char* to_string(FaultType t) noexcept {
  switch (t) {
    case FaultType::DaemonStall:
      return "daemon_stall";
    case FaultType::DaemonCrash:
      return "daemon_crash";
    case FaultType::LinkSlowdown:
      return "link_slow";
    case FaultType::SampleDrop:
      return "sample_drop";
    case FaultType::PipeBackpressure:
      return "pipe_backpressure";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  char buf[160];
  std::string out;
  if (type == FaultType::LinkSlowdown) {
    std::snprintf(buf, sizeof(buf), "%s x%g @ [%g, %g) us", to_string(type), magnitude, start_us,
                  end_us());
    out = buf;
  } else {
    const char* target_kind = type == FaultType::SampleDrop ? "node" : "daemon";
    char who[32];
    if (target < 0) {
      std::snprintf(who, sizeof(who), "%s all", target_kind);
    } else {
      std::snprintf(who, sizeof(who), "%s %d", target_kind, target);
    }
    // Stall/crash carry no magnitude; drop shows p, backpressure the clamp.
    if (type == FaultType::SampleDrop) {
      std::snprintf(buf, sizeof(buf), "%s %s p=%g @ [%g, %g) us", to_string(type), who, magnitude,
                    start_us, end_us());
    } else if (type == FaultType::PipeBackpressure) {
      std::snprintf(buf, sizeof(buf), "%s %s cap=%g @ [%g, %g) us", to_string(type), who,
                    magnitude, start_us, end_us());
    } else {
      std::snprintf(buf, sizeof(buf), "%s %s @ [%g, %g) us", to_string(type), who, start_us,
                    end_us());
    }
    out = buf;
  }
  if (cascade_p > 0.0) {
    std::snprintf(buf, sizeof(buf), " +cascade(p=%g, x%g, %d hop(s))", cascade_p, cascade_factor,
                  cascade_hops);
    out += buf;
  }
  if (stochastic()) out += " [stochastic window]";
  return out;
}

FaultSpec FaultPlan::parse_spec(const std::string& spec) {
  return parse_spec_impl(SpecCtx{"FaultPlan", spec, 1, 0});
}

FaultPlan FaultPlan::parse(const std::string& specs) {
  FaultPlan plan;
  std::size_t at = 0;
  std::size_t clause_no = 0;
  while (at <= specs.size()) {
    const auto semi = specs.find(';', at);
    const std::size_t end = semi == std::string::npos ? specs.size() : semi;
    const std::string one = specs.substr(at, end - at);
    if (!one.empty()) {
      ++clause_no;
      plan.faults.push_back(parse_spec_impl(SpecCtx{"FaultPlan", one, clause_no, at}));
    }
    if (semi == std::string::npos) break;
    at = semi + 1;
  }
  if (plan.faults.empty()) {
    throw std::invalid_argument("FaultPlan: no fault specs in \"" + specs + "\"");
  }
  return plan;
}

void FaultPlan::validate(std::int32_t daemon_count, std::int32_t nodes,
                         SimTime sim_duration_us, std::int32_t pipe_capacity) const {
  for (const FaultSpec& f : faults) {
    const std::string what = f.describe();
    // Stochastic windows are drawn (and clamped) at resolve time; only
    // fixed values can be range-checked here.
    if (f.start_dist == nullptr) {
      if (f.start_us < 0.0) {
        throw std::invalid_argument("FaultPlan: start must be >= 0: " + what);
      }
      if (f.start_us >= sim_duration_us) {
        throw std::invalid_argument("FaultPlan: window starts after sim end: " + what);
      }
    }
    if (f.duration_dist == nullptr && !(f.duration_us > 0.0)) {
      throw std::invalid_argument("FaultPlan: duration must be > 0: " + what);
    }
    switch (f.type) {
      case FaultType::DaemonStall:
      case FaultType::DaemonCrash:
      case FaultType::PipeBackpressure:
        if (daemon_count <= 0) {
          throw std::invalid_argument(
              "FaultPlan: daemon fault requires instrumentation enabled: " + what);
        }
        if (f.target >= daemon_count) {
          throw std::invalid_argument("FaultPlan: daemon index out of range: " + what);
        }
        break;
      case FaultType::SampleDrop:
        if (daemon_count <= 0) {
          throw std::invalid_argument(
              "FaultPlan: sample_drop requires instrumentation enabled: " + what);
        }
        if (f.target >= nodes) {
          throw std::invalid_argument("FaultPlan: node index out of range: " + what);
        }
        break;
      case FaultType::LinkSlowdown:
        break;
    }
    switch (f.type) {
      case FaultType::LinkSlowdown:
        if (!(f.magnitude >= 1.0)) {
          throw std::invalid_argument("FaultPlan: link_slow factor must be >= 1: " + what);
        }
        break;
      case FaultType::SampleDrop:
        if (!(f.magnitude > 0.0) || f.magnitude > 1.0) {
          throw std::invalid_argument("FaultPlan: sample_drop p must be in (0, 1]: " + what);
        }
        break;
      case FaultType::PipeBackpressure:
        if (!(f.magnitude >= 1.0) || f.magnitude >= static_cast<double>(pipe_capacity)) {
          throw std::invalid_argument(
              "FaultPlan: pipe_backpressure capacity must be in [1, pipe_capacity): " + what);
        }
        break;
      case FaultType::DaemonStall:
      case FaultType::DaemonCrash:
        break;
    }
    if (f.cascade_p != 0.0) {
      if (f.type != FaultType::DaemonStall && f.type != FaultType::DaemonCrash) {
        throw std::invalid_argument(
            "FaultPlan: cascade requires daemon_stall or daemon_crash: " + what);
      }
      if (f.target < 0) {
        throw std::invalid_argument(
            "FaultPlan: cascade requires a concrete daemon target (not 'all'): " + what);
      }
      if (!(f.cascade_p > 0.0) || f.cascade_p > 1.0) {
        throw std::invalid_argument("FaultPlan: cascade p must be in (0, 1]: " + what);
      }
      if (!(f.cascade_delay_us > 0.0)) {
        throw std::invalid_argument("FaultPlan: cascade_delay must be > 0: " + what);
      }
      if (!(f.cascade_factor >= 1.0)) {
        throw std::invalid_argument("FaultPlan: cascade_factor must be >= 1: " + what);
      }
    }
  }
}

bool FaultPlan::any_stochastic() const noexcept {
  for (const FaultSpec& f : faults) {
    if (f.stochastic()) return true;
  }
  return false;
}

void FaultPlan::resolve(des::Pcg32& rng, stats::SamplerBackend backend) {
  for (FaultSpec& f : faults) {
    if (f.start_dist != nullptr) {
      const auto sampler = stats::FrozenSampler::compile(f.start_dist, backend);
      f.start_us = std::max(0.0, sampler(rng));
      f.start_dist = nullptr;
    }
    if (f.duration_dist != nullptr) {
      const auto sampler = stats::FrozenSampler::compile(f.duration_dist, backend);
      f.duration_us = std::max(1.0, sampler(rng));
      f.duration_dist = nullptr;
    }
  }
}

void FaultGate::add_drop(std::int32_t node, double probability) {
  windows_.emplace_back(node, probability);
}

void FaultGate::remove_drop(std::int32_t node, double probability) {
  for (auto it = windows_.begin(); it != windows_.end(); ++it) {
    if (it->first == node && it->second == probability) {
      windows_.erase(it);
      return;
    }
  }
}

des::RngStream& FaultGate::stream_for(std::int32_t node) {
  if (!per_node_) return rng_;
  auto it = node_rngs_.find(node);
  if (it == node_rngs_.end()) {
    it = node_rngs_
             .emplace(node, des::RngStream(per_node_seed_, static_cast<std::uint64_t>(node),
                                           kFaultDropRngTag))
             .first;
  }
  return it->second;
}

bool FaultGate::should_drop(std::int32_t node) {
  bool drop = false;
  des::RngStream& rng = stream_for(node);
  for (const auto& [target, p] : windows_) {
    if ((target < 0 || target == node) && rng.next_double() < p) drop = true;
  }
  return drop;
}

std::vector<SimTime> FaultPlan::schedule_points() const {
  std::vector<SimTime> points;
  points.reserve(faults.size() * 2);
  for (const FaultSpec& f : faults) {
    points.push_back(f.start_us);
    points.push_back(f.end_us());
  }
  return points;
}

}  // namespace paradyn::rocc
