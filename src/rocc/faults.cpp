#include "rocc/faults.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace paradyn::rocc {
namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad spec \"" + spec + "\": " + why);
}

/// "500ms" -> 500'000; "2s" -> 2'000'000; "750" / "750us" -> 750.
double parse_time_us(const std::string& spec, const std::string& text) {
  if (text.empty()) bad_spec(spec, "empty time value");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "not a number: " + text);
  }
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "us") return value;
  if (unit == "ms") return value * 1e3;
  if (unit == "s") return value * 1e6;
  bad_spec(spec, "unknown time unit: " + unit);
}

double parse_number(const std::string& spec, const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "not a number: " + text);
  }
  if (pos != text.size()) bad_spec(spec, "trailing characters in: " + text);
  return value;
}

std::int32_t parse_target(const std::string& spec, const std::string& text) {
  if (text == "all" || text == "-1") return -1;
  const double v = parse_number(spec, text);
  const auto i = static_cast<std::int32_t>(v);
  if (static_cast<double>(i) != v || i < 0) bad_spec(spec, "target must be 'all' or >= 0");
  return i;
}

}  // namespace

const char* to_string(FaultType t) noexcept {
  switch (t) {
    case FaultType::DaemonStall:
      return "daemon_stall";
    case FaultType::DaemonCrash:
      return "daemon_crash";
    case FaultType::LinkSlowdown:
      return "link_slow";
    case FaultType::SampleDrop:
      return "sample_drop";
    case FaultType::PipeBackpressure:
      return "pipe_backpressure";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  char buf[160];
  if (type == FaultType::LinkSlowdown) {
    std::snprintf(buf, sizeof(buf), "%s x%g @ [%g, %g) us", to_string(type), magnitude, start_us,
                  end_us());
    return buf;
  }
  const char* target_kind = type == FaultType::SampleDrop ? "node" : "daemon";
  char who[32];
  if (target < 0) {
    std::snprintf(who, sizeof(who), "%s all", target_kind);
  } else {
    std::snprintf(who, sizeof(who), "%s %d", target_kind, target);
  }
  // Stall/crash carry no magnitude; drop shows p, backpressure the clamp.
  if (type == FaultType::SampleDrop) {
    std::snprintf(buf, sizeof(buf), "%s %s p=%g @ [%g, %g) us", to_string(type), who, magnitude,
                  start_us, end_us());
  } else if (type == FaultType::PipeBackpressure) {
    std::snprintf(buf, sizeof(buf), "%s %s cap=%g @ [%g, %g) us", to_string(type), who, magnitude,
                  start_us, end_us());
  } else {
    std::snprintf(buf, sizeof(buf), "%s %s @ [%g, %g) us", to_string(type), who, start_us,
                  end_us());
  }
  return buf;
}

FaultSpec FaultPlan::parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) bad_spec(spec, "expected TYPE:key=value,...");
  const std::string type_name = spec.substr(0, colon);

  FaultSpec f;
  if (type_name == "daemon_stall") {
    f.type = FaultType::DaemonStall;
  } else if (type_name == "daemon_crash") {
    f.type = FaultType::DaemonCrash;
  } else if (type_name == "link_slow") {
    f.type = FaultType::LinkSlowdown;
  } else if (type_name == "sample_drop") {
    f.type = FaultType::SampleDrop;
  } else if (type_name == "pipe_backpressure") {
    f.type = FaultType::PipeBackpressure;
  } else {
    bad_spec(spec, "unknown fault type: " + type_name);
  }

  bool saw_start = false;
  bool saw_duration = false;
  std::string rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string kv = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string{} : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) bad_spec(spec, "expected key=value, got: " + kv);
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "start") {
      f.start_us = parse_time_us(spec, value);
      saw_start = true;
    } else if (key == "dur" || key == "duration") {
      f.duration_us = parse_time_us(spec, value);
      saw_duration = true;
    } else if (key == "daemon" || key == "node") {
      f.target = parse_target(spec, value);
    } else if (key == "factor" || key == "p" || key == "capacity") {
      f.magnitude = parse_number(spec, value);
    } else {
      bad_spec(spec, "unknown key: " + key);
    }
  }
  if (!saw_start || !saw_duration) bad_spec(spec, "start and dur are required");
  return f;
}

FaultPlan FaultPlan::parse(const std::string& specs) {
  FaultPlan plan;
  std::string rest = specs;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string one = rest.substr(0, semi);
    rest = semi == std::string::npos ? std::string{} : rest.substr(semi + 1);
    if (one.empty()) continue;
    plan.faults.push_back(parse_spec(one));
  }
  if (plan.faults.empty()) {
    throw std::invalid_argument("FaultPlan: no fault specs in \"" + specs + "\"");
  }
  return plan;
}

void FaultPlan::validate(std::int32_t daemon_count, std::int32_t nodes,
                         SimTime sim_duration_us, std::int32_t pipe_capacity) const {
  for (const FaultSpec& f : faults) {
    const std::string what = f.describe();
    if (f.start_us < 0.0) {
      throw std::invalid_argument("FaultPlan: start must be >= 0: " + what);
    }
    if (!(f.duration_us > 0.0)) {
      throw std::invalid_argument("FaultPlan: duration must be > 0: " + what);
    }
    if (f.start_us >= sim_duration_us) {
      throw std::invalid_argument("FaultPlan: window starts after sim end: " + what);
    }
    switch (f.type) {
      case FaultType::DaemonStall:
      case FaultType::DaemonCrash:
      case FaultType::PipeBackpressure:
        if (daemon_count <= 0) {
          throw std::invalid_argument(
              "FaultPlan: daemon fault requires instrumentation enabled: " + what);
        }
        if (f.target >= daemon_count) {
          throw std::invalid_argument("FaultPlan: daemon index out of range: " + what);
        }
        break;
      case FaultType::SampleDrop:
        if (daemon_count <= 0) {
          throw std::invalid_argument(
              "FaultPlan: sample_drop requires instrumentation enabled: " + what);
        }
        if (f.target >= nodes) {
          throw std::invalid_argument("FaultPlan: node index out of range: " + what);
        }
        break;
      case FaultType::LinkSlowdown:
        break;
    }
    switch (f.type) {
      case FaultType::LinkSlowdown:
        if (!(f.magnitude >= 1.0)) {
          throw std::invalid_argument("FaultPlan: link_slow factor must be >= 1: " + what);
        }
        break;
      case FaultType::SampleDrop:
        if (!(f.magnitude > 0.0) || f.magnitude > 1.0) {
          throw std::invalid_argument("FaultPlan: sample_drop p must be in (0, 1]: " + what);
        }
        break;
      case FaultType::PipeBackpressure:
        if (!(f.magnitude >= 1.0) || f.magnitude >= static_cast<double>(pipe_capacity)) {
          throw std::invalid_argument(
              "FaultPlan: pipe_backpressure capacity must be in [1, pipe_capacity): " + what);
        }
        break;
      case FaultType::DaemonStall:
      case FaultType::DaemonCrash:
        break;
    }
  }
}

void FaultGate::add_drop(std::int32_t node, double probability) {
  windows_.emplace_back(node, probability);
}

void FaultGate::remove_drop(std::int32_t node, double probability) {
  for (auto it = windows_.begin(); it != windows_.end(); ++it) {
    if (it->first == node && it->second == probability) {
      windows_.erase(it);
      return;
    }
  }
}

bool FaultGate::should_drop(std::int32_t node) {
  bool drop = false;
  for (const auto& [target, p] : windows_) {
    if ((target < 0 || target == node) && rng_.next_double() < p) drop = true;
  }
  return drop;
}

std::vector<SimTime> FaultPlan::schedule_points() const {
  std::vector<SimTime> points;
  points.reserve(faults.size() * 2);
  for (const FaultSpec& f : faults) {
    points.push_back(f.start_us);
    points.push_back(f.end_us());
  }
  return points;
}

}  // namespace paradyn::rocc
