#include "rocc/pipe.hpp"

#include <stdexcept>
#include <utility>

namespace paradyn::rocc {

Pipe::Pipe(std::int32_t capacity) : capacity_(capacity) {
  if (capacity <= 0) throw std::invalid_argument("Pipe: capacity must be > 0");
}

bool Pipe::try_put(const Sample& sample) {
  if (full()) {
    ++rejected_;
    return false;
  }
  buffer_.push_back(sample);
  ++accepted_;
  if (on_data_) {
    // Move out first: the callback may re-register.
    auto cb = std::exchange(on_data_, nullptr);
    cb();
  }
  return true;
}

std::optional<Sample> Pipe::try_get() {
  if (buffer_.empty()) return std::nullopt;
  Sample s = buffer_.front();
  buffer_.pop_front();
  if (on_space_) {
    auto cb = std::exchange(on_space_, nullptr);
    cb();
  }
  return s;
}

void Pipe::set_capacity_limit(std::int32_t limit) {
  if (limit <= 0) throw std::invalid_argument("Pipe: capacity limit must be > 0");
  limit_ = limit;
  if (!full() && on_space_) {
    auto cb = std::exchange(on_space_, nullptr);
    cb();
  }
}

void Pipe::clear_capacity_limit() {
  limit_ = INT32_MAX;
  if (!full() && on_space_) {
    auto cb = std::exchange(on_space_, nullptr);
    cb();
  }
}

std::size_t Pipe::drain() {
  const std::size_t discarded = buffer_.size();
  buffer_.clear();
  if (discarded != 0 && on_space_) {
    auto cb = std::exchange(on_space_, nullptr);
    cb();
  }
  return discarded;
}

void Pipe::notify_on_data(SmallCallback cb) { on_data_ = std::move(cb); }

void Pipe::notify_on_space(SmallCallback cb) { on_space_ = std::move(cb); }

}  // namespace paradyn::rocc
