#include "rocc/barrier.hpp"

#include <stdexcept>
#include <utility>

namespace paradyn::rocc {

BarrierManager::BarrierManager(des::Engine& engine, std::int32_t participants)
    : engine_(engine), participants_(participants) {
  if (participants <= 0) throw std::invalid_argument("BarrierManager: participants must be > 0");
  waiters_.reserve(static_cast<std::size_t>(participants));
  arrival_times_.reserve(static_cast<std::size_t>(participants));
}

void BarrierManager::arrive(std::function<void()> resume) {
  if (waiting() >= participants_) {
    throw std::logic_error("BarrierManager: more arrivals than participants");
  }
  waiters_.push_back(std::move(resume));
  arrival_times_.push_back(engine_.now());

  if (waiting() == participants_) {
    const SimTime release = engine_.now();
    for (const SimTime arrived : arrival_times_) total_wait_ += release - arrived;
    ++rounds_;
    // Move the waiters out before scheduling: a resumed process may arrive
    // at the next barrier round synchronously.
    std::vector<std::function<void()>> to_release = std::move(waiters_);
    waiters_.clear();
    arrival_times_.clear();
    for (auto& w : to_release) {
      engine_.schedule_after(0.0, std::move(w));
    }
  }
}

}  // namespace paradyn::rocc
