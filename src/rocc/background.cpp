#include "rocc/background.hpp"

#include <stdexcept>

namespace paradyn::rocc {

OpenArrivalStream::OpenArrivalStream(des::Engine& engine, stats::DistributionPtr interarrival,
                                     stats::DistributionPtr length, ProcessClass pclass,
                                     CpuResource* cpu, NetworkResource* network,
                                     des::RngStream rng, stats::SamplerBackend backend,
                                     std::int32_t node, stats::BatchSpec batch)
    : engine_(engine), pclass_(pclass), cpu_(cpu), network_(network), rng_(rng), node_(node) {
  if ((cpu_ == nullptr) == (network_ == nullptr)) {
    throw std::invalid_argument("OpenArrivalStream: exactly one target resource required");
  }
  if (!interarrival || !length) {
    throw std::invalid_argument("OpenArrivalStream: distributions required");
  }
  interarrival_ = stats::BufferedSampler(stats::FrozenSampler::compile(interarrival, backend),
                                         batch.at(0));
  length_ = stats::BufferedSampler(stats::FrozenSampler::compile(length, backend), batch.at(1));
}

void OpenArrivalStream::start() {
  engine_.schedule_after(interarrival_(rng_), [this] { on_arrival(); });
}

void OpenArrivalStream::on_arrival() {
  const double len = length_(rng_);
  if (cpu_ != nullptr) {
    cpu_->submit(CpuRequest{len, pclass_, nullptr});
  } else {
    network_->submit(NetRequest{len, pclass_, node_, nullptr});
  }
  engine_.schedule_after(interarrival_(rng_), [this] { on_arrival(); });
}

}  // namespace paradyn::rocc
