// Main Paradyn process model.
//
// The logically central collection facility: receives forwarding units from
// the daemons, records monitoring latency (time since the forwarding
// operation started — equation (4)'s residence-time view), and spends CPU
// on its host node per received unit (Data Manager / Performance Consultant
// work, Table 1's main-process occupancy statistics).
#pragma once

#include <cstdint>
#include <functional>

#include "des/engine.hpp"
#include "des/random.hpp"
#include "obs/trace.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/metrics.hpp"

namespace paradyn::rocc {

class MainParadyn {
 public:
  MainParadyn(des::Engine& engine, const SystemConfig& config, CpuResource& host_cpu,
              MetricsCollector& metrics, des::RngStream rng,
              stats::BatchSpec batch = {});

  MainParadyn(const MainParadyn&) = delete;
  MainParadyn& operator=(const MainParadyn&) = delete;

  /// Accept a delivered forwarding unit.
  void receive(const Batch& batch);

  /// Register a consumer for every delivered sample (the Data Manager
  /// "distributes performance metrics" to other threads — here to the
  /// Performance Consultant).
  void set_sample_sink(std::function<void(const Sample&)> sink) {
    sample_sink_ = std::move(sink);
  }

  [[nodiscard]] std::uint64_t batches_received() const noexcept { return batches_received_; }
  [[nodiscard]] std::uint64_t samples_received() const noexcept { return samples_received_; }
  /// Units delivered but not yet consumed by the Data Manager.
  [[nodiscard]] std::size_t backlog() const noexcept { return pending_ + (busy_ ? 1u : 0u); }

  /// Observability: delivery instants, per-sample lifecycle ends, consume
  /// spans, and a backlog counter series on `track`.
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  void consume_next();

  des::Engine& engine_;
  const SystemConfig& config_;
  CpuResource& host_cpu_;
  MetricsCollector& metrics_;
  // Per-unit Data Manager CPU demand frozen into an inline sampler.
  stats::BufferedSampler main_cpu_;
  des::RngStream rng_;
  std::uint64_t batches_received_ = 0;
  std::uint64_t samples_received_ = 0;
  std::function<void(const Sample&)> sample_sink_;
  std::size_t pending_ = 0;
  bool busy_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;
};

}  // namespace paradyn::rocc
