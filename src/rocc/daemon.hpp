// Paradyn daemon (Pd) model.
//
// A serial server that drains samples from the pipes of the application
// processes it instruments.  Per sample it spends *collect* CPU; per
// forwarding operation it spends *forward* CPU followed by a network
// occupancy (a blocking send).  Under CF every sample is forwarded
// immediately (batch size 1); under BF samples accumulate until the batch
// is full (Figure 3).  In the MPP binary-tree configuration a non-leaf
// daemon additionally receives batches from its children, spends *merge*
// CPU per received batch, and forwards the merged unit to its parent
// (Figure 4b, Section 3.3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "des/engine.hpp"
#include "des/random.hpp"
#include "obs/trace.hpp"
#include "rocc/config.hpp"
#include "rocc/cpu.hpp"
#include "rocc/metrics.hpp"
#include "rocc/network.hpp"
#include "rocc/pipe.hpp"

namespace paradyn::rocc {

class MainParadyn;

class ParadynDaemon {
 public:
  /// `batch` (default: disabled) moves the collect/forward/net/merge cost
  /// draws onto per-site prefill buffers (--batch-sampling).
  ParadynDaemon(des::Engine& engine, const SystemConfig& config, CpuResource& cpu,
                NetworkResource& network, MetricsCollector& metrics, des::RngStream rng,
                std::int32_t node, stats::BatchSpec batch = {});

  ParadynDaemon(const ParadynDaemon&) = delete;
  ParadynDaemon& operator=(const ParadynDaemon&) = delete;

  /// Register a pipe this daemon drains (one per instrumented process).
  void attach_pipe(Pipe& pipe);

  /// Direct configuration: deliver to the main process.  Exactly one of
  /// set_destination_main / set_destination_parent / set_forward_sink must
  /// be called.
  void set_destination_main(MainParadyn& main);
  /// Tree configuration: deliver to the parent daemon.
  void set_destination_parent(ParadynDaemon& parent);
  /// PDES configuration: hand completed forwards to an external router
  /// (which turns them into timestamped cross-shard messages).  Overrides
  /// both destinations and the uplink-latency scheduling — the router owns
  /// delivery timing.
  void set_forward_sink(std::function<void(const Batch&)> sink) {
    forward_sink_ = std::move(sink);
  }

  /// Begin draining pipes.
  void start();

  /// Tree configuration: accept a batch forwarded by a child daemon.
  void receive_from_child(Batch batch);

  /// Fault injection: stop draining/forwarding until `until` (simulated
  /// time).  An in-flight operation completes; new work waits.  The daemon
  /// resumes automatically.  Overlapping stalls extend to the latest
  /// deadline (max), so same-target windows compose order-independently.
  void stall_until(SimTime until);
  [[nodiscard]] bool stalled() const noexcept;

  /// Fault injection: the daemon process dies and restarts at `until`.
  /// Unlike a stall, all in-memory state — the accumulating batch, merged
  /// child samples, and queued child batches — is destroyed (counted into
  /// MetricsCollector::samples_dropped); pipes survive (kernel buffers).
  void crash_until(SimTime until);

  /// Fault repair (restart_daemon): kill and re-warm the process *now* —
  /// buffered in-memory samples are lost exactly as in crash_until, any
  /// pending stall/crash deadline is cleared, and draining resumes
  /// immediately.  Returns the number of buffered samples lost.
  std::uint64_t restart_now();

  /// Cascade fault: multiply this daemon's forwarding network occupancy by
  /// `factor` (1 = nominal).  Models a stalled neighbor degrading this
  /// daemon's uplink without touching the shared interconnect resource.
  void set_net_penalty(double factor) noexcept { net_penalty_ = factor; }
  [[nodiscard]] double net_penalty() const noexcept { return net_penalty_; }

  [[nodiscard]] std::int32_t node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t samples_collected() const noexcept { return samples_collected_; }
  [[nodiscard]] std::uint64_t batches_forwarded() const noexcept { return batches_forwarded_; }
  [[nodiscard]] std::uint64_t batches_merged() const noexcept { return batches_merged_; }

  /// Observability: collect/merge/forward spans plus pipe-dequeue instants
  /// on `track`, and per-sample lifecycle progress marks.
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  /// Kill the process image: count and discard all buffered in-memory
  /// samples, cancel the flush timer.  Shared by crash_until/restart_now.
  std::uint64_t kill_buffers();
  /// Pick the next piece of work if idle: a due flush of en-route data, a
  /// child batch to merge, else a sample from the pipes (round-robin),
  /// else go idle.
  void try_start();
  /// The flush timer fired: merged child content must not wait longer than
  /// one sampling period for the local batch to fill.
  void on_flush_due();
  void start_collect(const Sample& sample);
  void start_merge(Batch batch);
  /// Forward the current local batch (CF: single sample) to the destination.
  void begin_forward_local();
  /// CPU(forward) then network occupancy then delivery.
  void forward_batch(Batch batch);
  void deliver(const Batch& batch);
  /// Hand the batch to the configured destination at the current instant.
  void deliver_direct(const Batch& batch);

  des::Engine& engine_;
  const SystemConfig& config_;
  CpuResource& cpu_;
  NetworkResource& network_;
  MetricsCollector& metrics_;
  // Per-sample cost distributions frozen into inline samplers (hot path).
  stats::BufferedSampler collect_cpu_;
  stats::BufferedSampler forward_cpu_;
  stats::BufferedSampler net_occupancy_;
  stats::BufferedSampler merge_cpu_;
  des::RngStream rng_;
  std::int32_t node_;

  std::vector<Pipe*> pipes_;
  std::size_t next_pipe_ = 0;
  std::deque<Batch> merge_queue_;
  std::vector<Sample> pending_batch_;
  /// Samples merged from children, waiting to ride the next local forward.
  std::vector<Sample> merged_pending_;
  SimTime merged_pending_earliest_ = 0.0;
  des::EventHandle flush_timer_;
  bool flush_due_ = false;
  bool busy_ = false;
  SimTime stalled_until_ = 0.0;
  double net_penalty_ = 1.0;

  MainParadyn* main_ = nullptr;
  ParadynDaemon* parent_ = nullptr;
  std::function<void(const Batch&)> forward_sink_;

  std::uint64_t samples_collected_ = 0;
  std::uint64_t batches_forwarded_ = 0;
  std::uint64_t batches_merged_ = 0;

  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;
  /// Scratch for profiler hop markers: the service time drawn for the
  /// in-flight collect / forward (busy_ serializes both, so one slot each
  /// suffices and the 64-byte inline callback captures stay unchanged).
  SimTime last_collect_cpu_us_ = 0.0;
  double last_net_occupancy_us_ = 0.0;
};

}  // namespace paradyn::rocc
