#include "rocc/cpu.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace paradyn::rocc {

CpuResource::CpuResource(des::Engine& engine, std::int32_t num_cpus, SimTime quantum)
    : engine_(engine), num_cpus_(num_cpus), quantum_(quantum), idle_cpus_(num_cpus) {
  if (num_cpus <= 0) throw std::invalid_argument("CpuResource: num_cpus must be > 0");
  if (!(quantum > 0.0)) throw std::invalid_argument("CpuResource: quantum must be > 0");
}

void CpuResource::submit(CpuRequest request) {
  if (request.duration < 0.0) throw std::invalid_argument("CpuResource: negative duration");
  if (request.duration == 0.0) {
    // Zero-length requests complete immediately without occupying a CPU.
    if (request.on_complete) {
      engine_.schedule_after(0.0, std::move(request.on_complete));
    }
    return;
  }
  ready_.push_back(Job{request.duration, std::move(request)});
  dispatch();
}

SimTime CpuResource::busy_time_total() const noexcept {
  SimTime total = 0.0;
  for (const SimTime t : busy_) total += t;
  return total;
}

void CpuResource::dispatch() {
  while (idle_cpus_ > 0 && !ready_.empty()) {
    Job job = std::move(ready_.front());
    ready_.pop_front();
    --idle_cpus_;

    const SimTime slice = std::min(quantum_, job.remaining);
    job.remaining -= slice;
    busy_[static_cast<std::size_t>(job.request.pclass)] += slice;
    if (tracer_ != nullptr) {
      tracer_->complete("cpu", to_cstr(job.request.pclass), track_, engine_.now(), slice,
                        "remaining_us", job.remaining, "ready", static_cast<double>(ready_.size()));
    }

    // Park the job in a reusable slot; the completion event carries only
    // {this, slot} through the queue's inline callback storage.
    std::uint32_t slot;
    if (!running_free_.empty()) {
      slot = running_free_.back();
      running_free_.pop_back();
      running_[slot] = std::move(job);
    } else {
      slot = static_cast<std::uint32_t>(running_.size());
      running_.push_back(std::move(job));
    }
    engine_.schedule_after(slice, [this, slot] { on_slice_done(slot); });
  }
}

void CpuResource::on_slice_done(std::uint32_t slot) {
  Job job = std::move(running_[slot]);
  running_free_.push_back(slot);
  ++idle_cpus_;
  if (job.remaining > 0.0) {
    ready_.push_back(std::move(job));  // preempted: back of the queue
  } else if (job.request.on_complete) {
    job.request.on_complete();
  }
  dispatch();
}

}  // namespace paradyn::rocc
