// Global synchronization barrier for the application processes.
//
// The SPMD applications the paper models synchronize on barriers; Figure 28
// sweeps the barrier frequency and observes that application CPU occupancy
// drops (processes idle at the barrier) while the Paradyn daemon contends
// less for the CPU.  Participants call arrive(); when the last participant
// arrives, every waiter's continuation is scheduled (at the current time)
// and the barrier resets for the next round.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/engine.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

class BarrierManager {
 public:
  BarrierManager(des::Engine& engine, std::int32_t participants);

  BarrierManager(const BarrierManager&) = delete;
  BarrierManager& operator=(const BarrierManager&) = delete;

  /// Register arrival; `resume` runs when all participants have arrived.
  void arrive(std::function<void()> resume);

  [[nodiscard]] std::int32_t participants() const noexcept { return participants_; }
  [[nodiscard]] std::int32_t waiting() const noexcept {
    return static_cast<std::int32_t>(waiters_.size());
  }
  /// Zero the round/wait accounting (warm-up deletion); waiters persist.
  void reset_accounting() noexcept {
    rounds_ = 0;
    total_wait_ = 0.0;
  }

  /// Completed barrier rounds.
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  /// Cumulative time participants spent waiting at the barrier.
  [[nodiscard]] SimTime total_wait_time() const noexcept { return total_wait_; }

 private:
  des::Engine& engine_;
  std::int32_t participants_;
  std::vector<std::function<void()>> waiters_;
  std::vector<SimTime> arrival_times_;
  std::uint64_t rounds_ = 0;
  SimTime total_wait_ = 0.0;
};

}  // namespace paradyn::rocc
