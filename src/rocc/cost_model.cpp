#include "rocc/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace paradyn::rocc {

SamplingController::SamplingController(des::Engine& engine,
                                       const AdaptiveSamplingConfig& config,
                                       SimTime initial_period_us,
                                       std::vector<const CpuResource*> cpus,
                                       double total_cpu_capacity_per_us)
    : engine_(engine),
      config_(config),
      period_us_(initial_period_us),
      cpus_(std::move(cpus)),
      capacity_per_us_(total_cpu_capacity_per_us) {
  if (!(config_.overhead_budget_pct > 0.0)) {
    throw std::invalid_argument("SamplingController: overhead budget must be > 0");
  }
  if (!(config_.adjust_interval_us > 0.0)) {
    throw std::invalid_argument("SamplingController: adjust interval must be > 0");
  }
  if (!(config_.min_period_us > 0.0) || config_.max_period_us < config_.min_period_us) {
    throw std::invalid_argument("SamplingController: bad period bounds");
  }
  if (!(config_.grow > 1.0) || !(config_.shrink > 0.0) || !(config_.shrink < 1.0)) {
    throw std::invalid_argument("SamplingController: grow must be > 1 and shrink in (0,1)");
  }
  if (cpus_.empty() || !(capacity_per_us_ > 0.0)) {
    throw std::invalid_argument("SamplingController: need CPUs and positive capacity");
  }
  period_us_ = std::clamp(period_us_, config_.min_period_us, config_.max_period_us);
}

double SamplingController::is_busy_time_us() const {
  double busy = 0.0;
  for (const CpuResource* cpu : cpus_) {
    busy += cpu->busy_time(ProcessClass::ParadynDaemon) +
            cpu->busy_time(ProcessClass::MainParadyn);
  }
  return busy;
}

void SamplingController::start() {
  last_is_busy_us_ = is_busy_time_us();
  last_adjust_at_ = engine_.now();
  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

void SamplingController::on_adjust() {
  const double busy = is_busy_time_us();
  const SimTime now = engine_.now();
  const double window = now - last_adjust_at_;
  // max(0, ...): a warm-up reset can rewind the busy counters mid-window.
  const double overhead_pct =
      (window > 0.0)
          ? std::max(0.0, 100.0 * (busy - last_is_busy_us_) / (capacity_per_us_ * window))
          : 0.0;
  last_is_busy_us_ = busy;
  last_adjust_at_ = now;

  // Multiplicative increase of the period (rate back-off) when over
  // budget; gentle speed-up only when comfortably under half the budget
  // (hysteresis keeps the controller from oscillating at the boundary).
  if (overhead_pct > config_.overhead_budget_pct) {
    period_us_ = std::min(period_us_ * config_.grow, config_.max_period_us);
  } else if (overhead_pct < 0.5 * config_.overhead_budget_pct) {
    period_us_ = std::max(period_us_ * config_.shrink, config_.min_period_us);
  }
  adjustments_.push_back({now, overhead_pct, period_us_});

  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

}  // namespace paradyn::rocc
