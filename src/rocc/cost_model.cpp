#include "rocc/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "rocc/app_process.hpp"

namespace paradyn::rocc {

SamplingController::SamplingController(des::Engine& engine,
                                       const AdaptiveSamplingConfig& config,
                                       SimTime initial_period_us,
                                       std::vector<const CpuResource*> cpus,
                                       double total_cpu_capacity_per_us)
    : engine_(engine),
      config_(config),
      period_us_(initial_period_us),
      cpus_(std::move(cpus)),
      capacity_per_us_(total_cpu_capacity_per_us) {
  if (!(config_.overhead_budget_pct > 0.0)) {
    throw std::invalid_argument("SamplingController: overhead budget must be > 0");
  }
  if (!(config_.adjust_interval_us > 0.0)) {
    throw std::invalid_argument("SamplingController: adjust interval must be > 0");
  }
  if (!(config_.min_period_us > 0.0) || config_.max_period_us < config_.min_period_us) {
    throw std::invalid_argument("SamplingController: bad period bounds");
  }
  if (!(config_.grow > 1.0) || !(config_.shrink > 0.0) || !(config_.shrink < 1.0)) {
    throw std::invalid_argument("SamplingController: grow must be > 1 and shrink in (0,1)");
  }
  if (cpus_.empty() || !(capacity_per_us_ > 0.0)) {
    throw std::invalid_argument("SamplingController: need CPUs and positive capacity");
  }
  period_us_ = std::clamp(period_us_, config_.min_period_us, config_.max_period_us);
}

double SamplingController::is_busy_time_us() const {
  double busy = 0.0;
  for (const CpuResource* cpu : cpus_) {
    busy += cpu->busy_time(ProcessClass::ParadynDaemon) +
            cpu->busy_time(ProcessClass::MainParadyn);
  }
  return busy;
}

void SamplingController::start() {
  last_is_busy_us_ = is_busy_time_us();
  last_adjust_at_ = engine_.now();
  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

void SamplingController::on_adjust() {
  const double busy = is_busy_time_us();
  const SimTime now = engine_.now();
  const double window = now - last_adjust_at_;
  // max(0, ...): a warm-up reset can rewind the busy counters mid-window.
  const double overhead_pct =
      (window > 0.0)
          ? std::max(0.0, 100.0 * (busy - last_is_busy_us_) / (capacity_per_us_ * window))
          : 0.0;
  last_is_busy_us_ = busy;
  last_adjust_at_ = now;

  // Multiplicative increase of the period (rate back-off) when over
  // budget; gentle speed-up only when comfortably under half the budget
  // (hysteresis keeps the controller from oscillating at the boundary).
  if (overhead_pct > config_.overhead_budget_pct) {
    period_us_ = std::min(period_us_ * config_.grow, config_.max_period_us);
  } else if (overhead_pct < 0.5 * config_.overhead_budget_pct) {
    period_us_ = std::max(period_us_ * config_.shrink, config_.min_period_us);
  }
  adjustments_.push_back({now, overhead_pct, period_us_});

  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

PerDaemonThrottle::PerDaemonThrottle(des::Engine& engine, const AdaptiveThrottleConfig& config)
    : engine_(engine), config_(config) {
  if (!(config_.perturbation_budget_pct > 0.0)) {
    throw std::invalid_argument("PerDaemonThrottle: perturbation budget must be > 0");
  }
  if (!(config_.adjust_interval_us > 0.0)) {
    throw std::invalid_argument("PerDaemonThrottle: adjust interval must be > 0");
  }
  if (!(config_.max_slowdown >= 1.0)) {
    throw std::invalid_argument("PerDaemonThrottle: max_slowdown must be >= 1");
  }
  if (!(config_.grow > 1.0) || !(config_.shrink > 0.0) || !(config_.shrink < 1.0)) {
    throw std::invalid_argument("PerDaemonThrottle: grow must be > 1 and shrink in (0,1)");
  }
}

std::int32_t PerDaemonThrottle::add_domain(const CpuResource* cpu, double cpu_share,
                                           double capacity_per_us) {
  if (cpu == nullptr || !(cpu_share > 0.0) || !(capacity_per_us > 0.0)) {
    throw std::invalid_argument("PerDaemonThrottle: bad domain parameters");
  }
  Domain d;
  d.cpu = cpu;
  d.cpu_share = cpu_share;
  d.capacity_per_us = capacity_per_us;
  domains_.push_back(std::move(d));
  return static_cast<std::int32_t>(domains_.size()) - 1;
}

void PerDaemonThrottle::add_app(std::int32_t domain, const ApplicationProcess* app) {
  domains_.at(static_cast<std::size_t>(domain)).apps.push_back(app);
}

std::vector<double> PerDaemonThrottle::factors() const {
  std::vector<double> out;
  out.reserve(domains_.size());
  for (const Domain& d : domains_) out.push_back(d.factor);
  return out;
}

void PerDaemonThrottle::start() {
  last_adjust_at_ = engine_.now();
  for (Domain& d : domains_) {
    d.last_busy_us = d.cpu->busy_time(ProcessClass::ParadynDaemon) * d.cpu_share;
    d.last_blocked_us = 0.0;
    for (const ApplicationProcess* app : d.apps) {
      d.last_blocked_us += app->pipe_blocked_time_us(engine_.now());
    }
  }
  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

void PerDaemonThrottle::on_adjust() {
  const SimTime now = engine_.now();
  const double window = now - last_adjust_at_;
  last_adjust_at_ = now;
  ++ticks_;
  for (Domain& d : domains_) {
    const double busy = d.cpu->busy_time(ProcessClass::ParadynDaemon) * d.cpu_share;
    double blocked = 0.0;
    for (const ApplicationProcess* app : d.apps) blocked += app->pipe_blocked_time_us(now);
    // max(0, ...): a warm-up reset can rewind the busy counters mid-window.
    const double pct =
        (window > 0.0)
            ? std::max(0.0, 100.0 * ((busy - d.last_busy_us) + (blocked - d.last_blocked_us)) /
                                (d.capacity_per_us * window))
            : 0.0;
    d.last_busy_us = busy;
    d.last_blocked_us = blocked;
    // Linear extrapolation one interval ahead: throttle on the *predicted*
    // perturbation, so a rising transient is damped before it crosses the
    // budget rather than after.
    const double predicted = pct + (pct - d.current_pct);
    d.current_pct = pct;
    if (predicted > config_.perturbation_budget_pct) {
      const double next = std::min(d.factor * config_.grow, config_.max_slowdown);
      if (next != d.factor) {
        d.factor = next;
        ++adjustments_;
        max_factor_ = std::max(max_factor_, d.factor);
      }
    } else if (predicted < 0.5 * config_.perturbation_budget_pct && d.factor > 1.0) {
      const double next = std::max(d.factor * config_.shrink, 1.0);
      if (next != d.factor) {
        d.factor = next;
        ++adjustments_;
      }
    }
  }
  engine_.schedule_after(config_.adjust_interval_us, [this] { on_adjust(); });
}

}  // namespace paradyn::rocc
