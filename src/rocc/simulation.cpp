#include "rocc/simulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace paradyn::rocc {
namespace {

/// Mailbox sender keys for cross-shard messages (des/shard.hpp sorts
/// injections by (delivery time, sender key, seq)).  Daemon forwards use the
/// daemon index directly; the repair dispatcher's keys live far above any
/// daemon index so control messages never collide with data traffic.
constexpr std::uint64_t kRepairRestartKeyBase = std::uint64_t{1} << 20;
constexpr std::uint64_t kRepairEffectKeyBase = std::uint64_t{1} << 21;

/// Role tags for RNG stream derivation — keep stable so results are
/// reproducible across code changes that add entities.  The fault/repair
/// machinery tags (8..11) are defined in faults.hpp (kFaultDropRngTag and
/// friends) so the consultant's RepairEngine derives from the same table;
/// kTagFault must equal kFaultDropRngTag.
enum RoleTag : std::uint64_t {
  kTagApp = 1,
  kTagDaemon = 2,
  kTagMain = 3,
  kTagPvmdCpu = 4,
  kTagPvmdNet = 5,
  kTagOtherCpu = 6,
  kTagOtherNet = 7,
  kTagFault = kFaultDropRngTag,
};

}  // namespace

Simulation::Simulation(SystemConfig config) : config_(std::move(config)) {
  config_.validate();
  metrics_.record_latency_series = config_.record_latency_series;
  build();
}

void Simulation::build() {
  const std::int32_t nodes = config_.nodes;
  const bool pdes = config_.shards > 0;

  // Partitioned (PDES) mode: the node groups are cut into contiguous shard
  // blocks, each owning its own engine (calendar queue, clock) plus replicas
  // of the shared resources; the minimum cross-shard network latency
  // (config.uplink_latency_us) is the conservative lookahead window.
  if (pdes) {
    partition_ = PartitionPlan::build(nodes, config_.shards);
    des::ShardSetConfig sc;
    sc.shards = partition_.shards;
    sc.window_us = config_.uplink_latency_us;
    sc.warmup_us = config_.warmup_us;
    sc.duration_us = config_.duration_us;
    shards_ = std::make_unique<des::ShardSet>(sc);
    for (std::size_t s = 1; s < partition_.shards; ++s) {
      extra_metrics_.push_back(std::make_unique<MetricsCollector>());
    }
    shard_networks_.reserve(partition_.shards);
    for (std::size_t s = 0; s < partition_.shards; ++s) {
      auto net = std::make_unique<NetworkResource>(shards_->engine(s), config_.contention);
      // Per-node busy attribution lets collect() rebuild the global
      // per-class totals in canonical node order, independent of sharding.
      net->enable_node_accounting(nodes);
      shard_networks_.push_back(std::move(net));
    }
    shard_slowdowns_.assign(partition_.shards, {});
    shard_clamps_.assign(partition_.shards, {});
    shard_control_fired_.assign(partition_.shards, 0);
  }
  // Where a node-bound entity lives: its shard's engine/network/collector in
  // partitioned mode, the single global instances otherwise.
  const auto node_engine = [&](std::int32_t n) -> des::Engine& {
    return pdes ? shards_->engine(partition_.shard_of(n)) : engine_;
  };
  const auto node_network = [&](std::int32_t n) -> NetworkResource& {
    return pdes ? *shard_networks_[partition_.shard_of(n)] : *network_;
  };
  const auto node_collector = [&](std::int32_t n) -> MetricsCollector& {
    return pdes ? shard_collector(partition_.shard_of(n)) : metrics_;
  };

  // Resources.  An optional extra CPU at the end hosts the main Paradyn
  // process when it runs on a dedicated workstation (Figure 29 setup); that
  // host rides on shard 0 with the main process itself.
  const bool dedicated_main = config_.instrumentation_enabled && config_.main_on_dedicated_host;
  const std::int32_t cpu_groups = nodes + (dedicated_main ? 1 : 0);
  node_cpus_.reserve(static_cast<std::size_t>(cpu_groups));
  for (std::int32_t n = 0; n < cpu_groups; ++n) {
    des::Engine& cpu_engine =
        n < nodes ? node_engine(n) : (pdes ? shards_->engine(0) : engine_);
    node_cpus_.push_back(
        std::make_unique<CpuResource>(cpu_engine, config_.cpus_per_node, config_.cpu_quantum_us));
  }
  if (!pdes) network_ = std::make_unique<NetworkResource>(engine_, config_.contention);

  const std::int32_t total_apps = nodes * config_.app_processes_per_node;
  if ((config_.barrier_period_us > 0.0 || config_.barrier_every_cycles > 0) && total_apps > 0) {
    barrier_ = std::make_unique<BarrierManager>(engine_, total_apps);
  }

  // Main Paradyn process lives on node 0's CPU(s), or on the dedicated
  // host CPU when main_on_dedicated_host is set.
  if (config_.instrumentation_enabled) {
    CpuResource& main_cpu = dedicated_main ? *node_cpus_.back() : *node_cpus_[0];
    // Partitioned: main lives on shard 0 (which owns node 0 and the
    // dedicated host CPU), writing into metrics_ — the shard-0 collector.
    main_ = std::make_unique<MainParadyn>(pdes ? shards_->engine(0) : engine_, config_, main_cpu,
                                          metrics_, des::RngStream(config_.seed, 0, kTagMain),
                                          config_.batch_spec(0, kBatchSiteMain));
  }

  // Daemons: one per node (NOW/MPP) or `daemons` sharing the pool (SMP).
  if (config_.instrumentation_enabled) {
    const std::int32_t daemon_count =
        (config_.arch == Architecture::Smp) ? config_.daemons : nodes;
    daemons_.reserve(static_cast<std::size_t>(daemon_count));
    for (std::int32_t d = 0; d < daemon_count; ++d) {
      const std::int32_t host_node = (config_.arch == Architecture::Smp) ? 0 : d;
      daemons_.push_back(std::make_unique<ParadynDaemon>(
          node_engine(host_node), config_, *node_cpus_[host_node], node_network(host_node),
          node_collector(host_node),
          des::RngStream(config_.seed, static_cast<std::uint64_t>(d), kTagDaemon), host_node,
          config_.batch_spec(static_cast<std::uint64_t>(d), kBatchSiteDaemon)));
      if (pdes) daemon_shard_.push_back(partition_.shard_of(host_node));
    }
    // Forwarding destinations.
    if (pdes) {
      // Every forward — even one whose destination happens to share the
      // sender's shard — becomes an explicit timestamped message routed
      // through the ShardSet mailbox, delivered L = uplink_latency_us after
      // the batch clears the sender's network.  Routing all traffic one way
      // keeps the receiver-side event order identical for every shard
      // count, which is what the bit-identity gate relies on.
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        const std::size_t src = daemon_shard_[d];
        ParadynDaemon* parent = nullptr;
        std::size_t dst = 0;  // main lives on shard 0
        if (config_.topology == ForwardingTopology::BinaryTree && d > 0) {
          parent = daemons_[(d - 1) / 2].get();
          dst = daemon_shard_[(d - 1) / 2];
        }
        des::Engine* src_engine = &shards_->engine(src);
        MainParadyn* main = main_.get();
        daemons_[d]->set_forward_sink(
            [this, d, src, dst, parent, src_engine, main](const Batch& batch) {
              const SimTime deliver_at = src_engine->now() + config_.uplink_latency_us;
              if (parent != nullptr) {
                shards_->post(src, dst, deliver_at, d,
                              [parent, batch] { parent->receive_from_child(batch); });
              } else {
                shards_->post(src, dst, deliver_at, d, [main, batch] { main->receive(batch); });
              }
            });
      }
    } else if (config_.topology == ForwardingTopology::BinaryTree) {
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        if (d == 0) {
          daemons_[d]->set_destination_main(*main_);
        } else {
          daemons_[d]->set_destination_parent(*daemons_[(d - 1) / 2]);
        }
      }
    } else {
      for (auto& daemon : daemons_) daemon->set_destination_main(*main_);
    }
  }

  // Adaptive cost model: the controller watches every CPU's IS occupancy
  // and owns the live sampling period.
  if (config_.instrumentation_enabled && config_.adaptive.enabled) {
    std::vector<const CpuResource*> cpu_views;
    cpu_views.reserve(node_cpus_.size());
    for (const auto& cpu : node_cpus_) cpu_views.push_back(cpu.get());
    const double capacity =
        static_cast<double>(node_cpus_.size()) * static_cast<double>(config_.cpus_per_node);
    controller_ = std::make_unique<SamplingController>(
        engine_, config_.adaptive, config_.sampling_period_us, std::move(cpu_views), capacity);
  }

  // Application processes and their pipes.
  for (std::int32_t n = 0; n < nodes; ++n) {
    for (std::int32_t a = 0; a < config_.app_processes_per_node; ++a) {
      Pipe* pipe = nullptr;
      const std::size_t app_global =
          static_cast<std::size_t>(n) * static_cast<std::size_t>(config_.app_processes_per_node) +
          static_cast<std::size_t>(a);
      if (config_.instrumentation_enabled) {
        pipes_.push_back(std::make_unique<Pipe>(config_.pipe_capacity));
        pipe = pipes_.back().get();
        // NOW/MPP: the node's own daemon.  SMP: apps assigned round-robin
        // over the daemon pool.
        const std::size_t daemon_idx = (config_.arch == Architecture::Smp)
                                           ? app_global % daemons_.size()
                                           : static_cast<std::size_t>(n);
        daemons_[daemon_idx]->attach_pipe(*pipe);
        pipe_daemon_.push_back(daemon_idx);
      }
      const std::uint64_t app_tag = app_entity_tag(n, a);
      const auto override_it = config_.app_overrides.find(n);
      const AppModel& model =
          override_it != config_.app_overrides.end() ? override_it->second : config_.app;
      apps_.push_back(std::make_unique<ApplicationProcess>(
          node_engine(n), config_, model, *node_cpus_[n], node_network(n), pipe, barrier_.get(),
          controller_.get(), node_collector(n), des::RngStream(config_.seed, app_tag, kTagApp),
          n, a, config_.batch_spec(app_tag, kBatchSiteApp)));
      if (pdes) {
        // Legacy ids come from the shared samples_generated counter, whose
        // interleaving depends on the sharding; give every app a disjoint
        // id block instead so ids are shard-count-invariant.
        apps_.back()->set_sample_id_base((static_cast<std::uint64_t>(app_global) + 1) << 40);
      }
    }
  }

  // Background load (PVM daemon + other processes) on every node.
  if (config_.background.enabled) {
    const auto& bg = config_.background;
    const stats::SamplerBackend backend = config_.sampler_backend();
    for (std::int32_t n = 0; n < nodes; ++n) {
      const auto node_tag = static_cast<std::uint64_t>(n);
      background_.push_back(std::make_unique<OpenArrivalStream>(
          node_engine(n), bg.pvmd_interarrival, bg.pvmd_cpu_length, ProcessClass::PvmDaemon,
          node_cpus_[n].get(), nullptr, des::RngStream(config_.seed, node_tag, kTagPvmdCpu),
          backend, n, config_.batch_spec(node_tag, kBatchSiteBackground)));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          node_engine(n), bg.pvmd_interarrival, bg.pvmd_net_length, ProcessClass::PvmDaemon,
          nullptr, &node_network(n), des::RngStream(config_.seed, node_tag, kTagPvmdNet),
          backend, n, config_.batch_spec(node_tag, kBatchSiteBackground + 2)));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          node_engine(n), bg.other_cpu_interarrival, bg.other_cpu_length, ProcessClass::Other,
          node_cpus_[n].get(), nullptr, des::RngStream(config_.seed, node_tag, kTagOtherCpu),
          backend, n, config_.batch_spec(node_tag, kBatchSiteBackground + 4)));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          node_engine(n), bg.other_net_interarrival, bg.other_net_length, ProcessClass::Other,
          nullptr, &node_network(n), des::RngStream(config_.seed, node_tag, kTagOtherNet),
          backend, n, config_.batch_spec(node_tag, kBatchSiteBackground + 6)));
    }
  }

  // Per-daemon adaptive throttle: one domain per daemon (its host CPU plus
  // the application processes whose pipes it drains).
  if (config_.instrumentation_enabled && config_.adaptive_throttle.enabled &&
      !daemons_.empty()) {
    std::vector<std::int32_t> daemons_on_host(node_cpus_.size(), 0);
    for (const auto& daemon : daemons_) {
      ++daemons_on_host[static_cast<std::size_t>(daemon->node())];
    }
    if (pdes) {
      // Domains are node-local (host CPU + the apps the daemon drains), so
      // the throttle shards cleanly: one instance per shard, each ticking on
      // its own engine with identical interval times.  Domain indices are
      // per instance; daemon_throttle_domain_ maps daemon -> local domain.
      shard_throttles_.resize(partition_.shards);
      daemon_throttle_domain_.resize(daemons_.size());
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        const auto host = static_cast<std::size_t>(daemons_[d]->node());
        const std::size_t s = daemon_shard_[d];
        if (!shard_throttles_[s]) {
          shard_throttles_[s] = std::make_unique<PerDaemonThrottle>(shards_->engine(s),
                                                                    config_.adaptive_throttle);
        }
        daemon_throttle_domain_[d] = shard_throttles_[s]->add_domain(
            node_cpus_[host].get(), 1.0 / static_cast<double>(daemons_on_host[host]),
            static_cast<double>(config_.cpus_per_node));
      }
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        const std::size_t d = pipe_daemon_[i];
        const std::size_t s = daemon_shard_[d];
        shard_throttles_[s]->add_app(daemon_throttle_domain_[d], apps_[i].get());
        apps_[i]->set_throttle(shard_throttles_[s].get(), daemon_throttle_domain_[d]);
      }
    } else {
      throttle_ = std::make_unique<PerDaemonThrottle>(engine_, config_.adaptive_throttle);
      for (const auto& daemon : daemons_) {
        const auto host = static_cast<std::size_t>(daemon->node());
        throttle_->add_domain(node_cpus_[host].get(),
                              1.0 / static_cast<double>(daemons_on_host[host]),
                              static_cast<double>(config_.cpus_per_node));
      }
      // Instrumented apps and pipes are created pairwise, so apps_[i]'s pipe
      // is pipes_[i] and its daemon is pipe_daemon_[i].
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        const auto domain = static_cast<std::int32_t>(pipe_daemon_[i]);
        throttle_->add_app(domain, apps_[i].get());
        apps_[i]->set_throttle(throttle_.get(), domain);
      }
    }
  }

  // Fault plan: resolved once at build time.  Every auxiliary stream (drop
  // gate, stochastic windows, cascade Bernoulli) is derived only when the
  // matching feature appears in the plan, so fault-free runs — and runs
  // without that feature — touch no extra randomness.
  plan_ = compose_fault_plan();
  if (plan_.any_stochastic()) {
    des::RngStream window_rng(config_.seed, 0, kFaultWindowRngTag);
    plan_.resolve(window_rng, config_.sampler_backend());
  }
  bool any_drop = false;
  bool any_cascade = false;
  for (const FaultSpec& f : plan_.faults) {
    any_drop |= f.type == FaultType::SampleDrop;
    any_cascade |= f.cascade_p > 0.0;
  }
  if (any_drop) {
    if (pdes) {
      // One gate replica per shard, in per-node-stream mode: each node's
      // drop draws come from its own RngStream(seed, node, drop tag), so a
      // node's decisions depend only on its own emission history and never
      // on how other nodes' emissions interleave across shards.
      shard_gates_.reserve(partition_.shards);
      for (std::size_t s = 0; s < partition_.shards; ++s) {
        shard_gates_.push_back(std::make_unique<FaultGate>(FaultGate::per_node(config_.seed)));
      }
      for (auto& app : apps_) {
        app->set_fault_gate(shard_gates_[partition_.shard_of(app->node())].get());
      }
    } else {
      fault_gate_ = std::make_unique<FaultGate>(des::RngStream(config_.seed, 0, kTagFault));
      for (auto& app : apps_) app->set_fault_gate(fault_gate_.get());
    }
  }
  if (any_cascade && !daemons_.empty()) {
    if (pdes) {
      // Cascade propagation is plan-determined (no model event feeds the
      // BFS), so the whole thing resolves at build time into per-shard
      // timed events — see rocc/partition.hpp for the replay argument.
      cascade_hits_ = resolve_cascades(plan_, daemons_.size(), config_.topology, config_.seed,
                                       config_.duration_us);
      daemon_net_penalties_.assign(daemons_.size(), {});
    } else {
      cascade_rng_ = std::make_unique<des::RngStream>(config_.seed, 0, kCascadeRngTag);
      cascade_visited_.assign(plan_.faults.size(), {});
      daemon_net_penalties_.assign(daemons_.size(), {});
    }
  }
  if (pdes && !plan_.empty()) {
    restart_dispatches_.assign(daemons_.size(), {});
    reset_dispatched_.assign(plan_.faults.size(), 0);
  }
}

FaultPlan Simulation::compose_fault_plan() const {
  FaultPlan plan = config_.faults;
  const auto& stall = config_.fault_daemon_stall;
  if (stall.duration_us > 0.0) {
    FaultSpec f;
    f.type = FaultType::DaemonStall;
    f.target = stall.daemon_index;
    f.start_us = stall.start_us;
    f.duration_us = stall.duration_us;
    plan.faults.push_back(f);
  }
  return plan;
}

void Simulation::schedule_faults() {
  if (plan_.empty()) return;
  fault_outcomes_.clear();
  fault_outcomes_.reserve(plan_.faults.size());
  for (const FaultSpec& f : plan_.faults) {
    FaultOutcome outcome;
    outcome.spec = f;
    fault_outcomes_.push_back(outcome);
  }
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    engine_.schedule_at(plan_.faults[i].start_us, [this, i] { apply_fault(i); });
    engine_.schedule_at(plan_.faults[i].end_us(), [this, i] { revert_fault(i); });
  }
}

void Simulation::recompute_slowdown_shard(std::size_t shard) {
  double factor = 1.0;
  for (const auto& [fault_index, f] : shard_slowdowns_[shard]) factor *= f;
  shard_networks_[shard]->set_slowdown(factor);
}

void Simulation::recompute_pipe_clamps_shard(std::size_t shard) {
  // Same min-over-clamps rule as the legacy recompute, restricted to the
  // pipes this shard owns: capacity changes fire producer wake-ups, which
  // must stay on the owner shard's engine.
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    if (partition_.shard_of(apps_[p]->node()) != shard) continue;
    std::int32_t limit = INT32_MAX;
    for (const auto& [fault_index, cap] : shard_clamps_[shard]) {
      const FaultSpec& f = plan_.faults[fault_index];
      if (f.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(f.target)) continue;
      limit = std::min(limit, cap);
    }
    const std::int32_t desired = std::min(pipes_[p]->capacity(), limit);
    if (desired == pipes_[p]->effective_capacity()) continue;
    if (limit == INT32_MAX) {
      pipes_[p]->clear_capacity_limit();
    } else {
      pipes_[p]->set_capacity_limit(limit);
    }
  }
}

void Simulation::schedule_faults_partitioned() {
  if (plan_.empty()) return;
  fault_outcomes_.clear();
  fault_outcomes_.reserve(plan_.faults.size() + cascade_hits_.size());
  for (const FaultSpec& f : plan_.faults) {
    FaultOutcome outcome;
    outcome.spec = f;
    fault_outcomes_.push_back(outcome);
  }
  // Induced cascade rows are pre-appended in hit order — the order the
  // legacy runtime appends them — with disjoint writer shards; the owner
  // shard's hit event flips `injected` when it fires.
  for (const CascadeHit& h : cascade_hits_) {
    const FaultSpec& parent = plan_.faults[h.fault_index];
    FaultOutcome induced;
    induced.spec.type = FaultType::LinkSlowdown;
    induced.spec.target = static_cast<std::int32_t>(h.daemon);
    induced.spec.start_us = h.at_us;
    induced.spec.duration_us = parent.end_us() - h.at_us;
    induced.spec.magnitude = parent.cascade_factor;
    induced.cascaded_from = static_cast<std::int32_t>(h.fault_index);
    fault_outcomes_.push_back(induced);
  }

  // Every fault compiles to shard-local events.  Effects on replicated
  // resources (link slowdown, drop gates, pipe clamps) fire on every shard
  // and count as control events so events_processed stays invariant;
  // per-daemon effects fire once, on the owner shard.
  const auto tracer_at = [this](std::size_t shard) -> obs::Tracer* {
    return shard_tracers_.empty() ? nullptr : &shard_tracers_[shard];
  };
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    switch (f.type) {
      case FaultType::DaemonStall:
      case FaultType::DaemonCrash: {
        std::vector<std::size_t> covered;
        for (std::size_t d = 0; d < daemons_.size(); ++d) {
          if (f.target < 0 || static_cast<std::size_t>(f.target) == d) covered.push_back(d);
        }
        for (std::size_t k = 0; k < covered.size(); ++k) {
          const std::size_t d = covered[k];
          const std::size_t s = daemon_shard_[d];
          const bool mark = k == 0;
          shards_->engine(s).schedule_at(f.start_us, [this, i, d, s, mark, tracer_at] {
            const FaultSpec& spec = plan_.faults[i];
            if (spec.type == FaultType::DaemonStall) {
              daemons_[d]->stall_until(spec.end_us());
            } else {
              daemons_[d]->crash_until(spec.end_us());
            }
            if (mark) {
              fault_outcomes_[i].injected = true;
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(spec.type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 1.0);
              }
            }
          });
        }
        if (!covered.empty()) {
          // Window-close marker (trace parity with the legacy revert
          // instant); scheduled unconditionally so the event count never
          // depends on whether a tracer is attached.
          const std::size_t s0 = daemon_shard_[covered.front()];
          shards_->engine(s0).schedule_at(f.end_us(), [this, i, s0, tracer_at] {
            if (obs::Tracer* tr = tracer_at(s0)) {
              tr->instant("fault", to_string(plan_.faults[i].type), obs::kEngineTrack,
                          shards_->engine(s0).now(), "window", 0.0);
            }
          });
        }
        break;
      }
      case FaultType::LinkSlowdown:
        for (std::size_t s = 0; s < partition_.shards; ++s) {
          shards_->engine(s).schedule_at(f.start_us, [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            shard_slowdowns_[s].emplace_back(i, plan_.faults[i].magnitude);
            recompute_slowdown_shard(s);
            if (s == 0) {
              fault_outcomes_[i].injected = true;
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(plan_.faults[i].type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 1.0);
              }
            }
          });
          shards_->engine(s).schedule_at(f.end_us(), [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            auto& slowdowns = shard_slowdowns_[s];
            for (auto it = slowdowns.begin(); it != slowdowns.end(); ++it) {
              if (it->first == i) {
                slowdowns.erase(it);
                break;
              }
            }
            recompute_slowdown_shard(s);
            if (s == 0) {
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(plan_.faults[i].type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 0.0);
              }
            }
          });
        }
        break;
      case FaultType::SampleDrop:
        for (std::size_t s = 0; s < partition_.shards; ++s) {
          shards_->engine(s).schedule_at(f.start_us, [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            const FaultSpec& spec = plan_.faults[i];
            shard_gates_[s]->add_drop(spec.target, spec.magnitude);
            if (s == 0) {
              fault_outcomes_[i].injected = true;
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(spec.type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 1.0);
              }
            }
          });
          shards_->engine(s).schedule_at(f.end_us(), [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            const FaultSpec& spec = plan_.faults[i];
            shard_gates_[s]->remove_drop(spec.target, spec.magnitude);
            if (s == 0) {
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(spec.type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 0.0);
              }
            }
          });
        }
        break;
      case FaultType::PipeBackpressure:
        for (std::size_t s = 0; s < partition_.shards; ++s) {
          shards_->engine(s).schedule_at(f.start_us, [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            shard_clamps_[s].emplace_back(i,
                                          static_cast<std::int32_t>(plan_.faults[i].magnitude));
            recompute_pipe_clamps_shard(s);
            if (s == 0) {
              fault_outcomes_[i].injected = true;
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(plan_.faults[i].type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 1.0);
              }
            }
          });
          shards_->engine(s).schedule_at(f.end_us(), [this, i, s, tracer_at] {
            ++shard_control_fired_[s];
            auto& clamps = shard_clamps_[s];
            bool removed = false;
            for (auto it = clamps.begin(); it != clamps.end(); ++it) {
              if (it->first == i) {
                clamps.erase(it);
                removed = true;
                break;
              }
            }
            // A reset_pipe repair may have lifted the clamp already.
            if (removed) recompute_pipe_clamps_shard(s);
            if (s == 0) {
              if (obs::Tracer* tr = tracer_at(s)) {
                tr->instant("fault", to_string(plan_.faults[i].type), obs::kEngineTrack,
                            shards_->engine(s).now(), "window", 0.0);
              }
            }
          });
        }
        break;
    }
  }

  // Precomputed cascade hits: the penalty applies on the hit daemon's owner
  // shard at the resolved time, and lifts when the parent window ends.
  for (std::size_t k = 0; k < cascade_hits_.size(); ++k) {
    const CascadeHit h = cascade_hits_[k];
    const std::size_t row = plan_.faults.size() + k;
    const std::size_t s = daemon_shard_[h.daemon];
    shards_->engine(s).schedule_at(h.at_us, [this, h, row, s, tracer_at] {
      daemon_net_penalties_[h.daemon].emplace_back(h.fault_index,
                                                   plan_.faults[h.fault_index].cascade_factor);
      recompute_net_penalty(h.daemon);
      fault_outcomes_[row].injected = true;
      if (obs::Tracer* tr = tracer_at(s)) {
        tr->instant("fault", "cascade", obs::kEngineTrack, shards_->engine(s).now(), "daemon",
                    static_cast<double>(h.daemon));
      }
    });
    shards_->engine(s).schedule_at(plan_.faults[h.fault_index].end_us(), [this, h] {
      auto& penalties = daemon_net_penalties_[h.daemon];
      const std::size_t before = penalties.size();
      penalties.erase(std::remove_if(penalties.begin(), penalties.end(),
                                     [&h](const auto& entry) {
                                       return entry.first == h.fault_index;
                                     }),
                      penalties.end());
      if (penalties.size() != before) recompute_net_penalty(h.daemon);
    });
  }
}

SimTime Simulation::mirror_stalled_until(std::size_t daemon, SimTime t) const {
  struct Edge {
    SimTime time;
    int kind;  // 0 = stall/crash window start, 1 = restart delivery
    SimTime value;
  };
  std::vector<Edge> edges;
  for (const FaultSpec& f : plan_.faults) {
    if (f.type != FaultType::DaemonStall && f.type != FaultType::DaemonCrash) continue;
    if (f.target >= 0 && static_cast<std::size_t>(f.target) != daemon) continue;
    if (f.start_us > t) continue;
    edges.push_back(Edge{f.start_us, 0, f.end_us()});
  }
  for (const SimTime r : restart_dispatches_[daemon]) {
    if (r <= t) edges.push_back(Edge{r, 1, r});
  }
  // Window starts win same-time ties (they are build-scheduled, so they run
  // before an injected restart at the same instant on the owner shard);
  // overlapping windows fold commutatively via max, matching stall_until.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.kind < b.kind;
  });
  SimTime until = 0.0;
  for (const Edge& e : edges) {
    until = e.kind == 0 ? std::max(until, e.value) : e.value;
  }
  return until;
}

void Simulation::recompute_slowdown() {
  // Factors multiply in insertion order, so reverting one fault leaves the
  // exact double the remaining set would have produced on its own.
  double factor = 1.0;
  for (const auto& [fault_index, f] : active_slowdowns_) factor *= f;
  network_->set_slowdown(factor);
}

void Simulation::recompute_pipe_clamps() {
  // Per-pipe limit = min over active clamps covering it.  Only touch pipes
  // whose effective capacity actually changes: set/clear fire a pending
  // space callback unconditionally, so a redundant call would inject a
  // spurious wake-up event and shift the stream.
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    std::int32_t limit = INT32_MAX;
    for (const auto& [fault_index, cap] : active_clamps_) {
      const FaultSpec& f = plan_.faults[fault_index];
      if (f.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(f.target)) continue;
      limit = std::min(limit, cap);
    }
    const std::int32_t desired = std::min(pipes_[p]->capacity(), limit);
    if (desired == pipes_[p]->effective_capacity()) continue;
    if (limit == INT32_MAX) {
      pipes_[p]->clear_capacity_limit();
    } else {
      pipes_[p]->set_capacity_limit(limit);
    }
  }
}

std::vector<std::size_t> Simulation::topology_neighbors(std::size_t d) const {
  std::vector<std::size_t> out;
  if (config_.topology == ForwardingTopology::BinaryTree) {
    if (d > 0) out.push_back((d - 1) / 2);
    if (2 * d + 1 < daemons_.size()) out.push_back(2 * d + 1);
    if (2 * d + 2 < daemons_.size()) out.push_back(2 * d + 2);
  } else {
    // Direct forwarding has no daemon-to-daemon edges; treat the index
    // chain as adjacency (d-1, d+1) so cascades still have a topology.
    if (d > 0) out.push_back(d - 1);
    if (d + 1 < daemons_.size()) out.push_back(d + 1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Simulation::propagate_cascade(std::size_t fault_index, std::size_t from,
                                   std::int32_t hop) {
  const FaultSpec& f = plan_.faults[fault_index];
  // Each neighbor is tested at most once per cascade, in ascending index
  // order, from the dedicated cascade stream — deterministic regardless of
  // how the BFS frontier interleaves with model events.
  for (const std::size_t nb : topology_neighbors(from)) {
    if (cascade_visited_[fault_index][nb] != 0) continue;
    cascade_visited_[fault_index][nb] = 1;
    if (cascade_rng_->next_double() >= f.cascade_p) continue;
    engine_.schedule_after(f.cascade_delay_us,
                           [this, fault_index, nb, hop] { apply_cascade_hit(fault_index, nb, hop); });
  }
}

void Simulation::apply_cascade_hit(std::size_t fault_index, std::size_t daemon,
                                   std::int32_t hop) {
  const FaultSpec& f = plan_.faults[fault_index];
  const SimTime end = f.end_us();
  if (engine_.now() >= end) return;  // parent window already lifted
  daemon_net_penalties_[daemon].emplace_back(fault_index, f.cascade_factor);
  recompute_net_penalty(daemon);
  if (tracer_ != nullptr) {
    tracer_->instant("fault", "cascade", obs::kEngineTrack, engine_.now(), "daemon",
                     static_cast<double>(daemon));
  }
  // Record the induced effect as its own outcome row: an uplink slowdown
  // on the hit daemon for the remainder of the parent window.
  FaultOutcome induced;
  induced.spec.type = FaultType::LinkSlowdown;
  induced.spec.target = static_cast<std::int32_t>(daemon);
  induced.spec.start_us = engine_.now();
  induced.spec.duration_us = end - engine_.now();
  induced.spec.magnitude = f.cascade_factor;
  induced.injected = true;
  induced.cascaded_from = static_cast<std::int32_t>(fault_index);
  fault_outcomes_.push_back(induced);
  if (hop < f.cascade_hops) propagate_cascade(fault_index, daemon, hop + 1);
}

void Simulation::recompute_net_penalty(std::size_t daemon) {
  double factor = 1.0;
  for (const auto& [fault_index, f] : daemon_net_penalties_[daemon]) factor *= f;
  daemons_[daemon]->set_net_penalty(factor);
}

void Simulation::apply_fault(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  fault_outcomes_[fault_index].injected = true;
  if (tracer_ != nullptr) {
    tracer_->instant("fault", to_string(f.type), obs::kEngineTrack, engine_.now(), "window",
                     1.0);
  }
  switch (f.type) {
    case FaultType::DaemonStall:
    case FaultType::DaemonCrash:
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        if (f.target >= 0 && static_cast<std::size_t>(f.target) != d) continue;
        if (f.type == FaultType::DaemonStall) {
          daemons_[d]->stall_until(f.end_us());
        } else {
          daemons_[d]->crash_until(f.end_us());
        }
      }
      if (f.cascade_p > 0.0 && cascade_rng_ != nullptr) {
        const auto origin = static_cast<std::size_t>(f.target);
        cascade_visited_[fault_index].assign(daemons_.size(), 0);
        cascade_visited_[fault_index][origin] = 1;
        propagate_cascade(fault_index, origin, 1);
      }
      break;
    case FaultType::LinkSlowdown:
      active_slowdowns_.emplace_back(fault_index, f.magnitude);
      recompute_slowdown();
      break;
    case FaultType::SampleDrop:
      fault_gate_->add_drop(f.target, f.magnitude);
      break;
    case FaultType::PipeBackpressure:
      active_clamps_.emplace_back(fault_index, static_cast<std::int32_t>(f.magnitude));
      recompute_pipe_clamps();
      break;
  }
}

void Simulation::revert_fault(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  if (tracer_ != nullptr) {
    tracer_->instant("fault", to_string(f.type), obs::kEngineTrack, engine_.now(), "window",
                     0.0);
  }
  switch (f.type) {
    case FaultType::DaemonStall:
    case FaultType::DaemonCrash:
      // stall_until / crash_until resume on their own; lift any uplink
      // penalties this fault's cascade applied.
      if (f.cascade_p > 0.0 && cascade_rng_ != nullptr) {
        for (std::size_t d = 0; d < daemons_.size(); ++d) {
          auto& penalties = daemon_net_penalties_[d];
          const std::size_t before = penalties.size();
          penalties.erase(std::remove_if(penalties.begin(), penalties.end(),
                                         [fault_index](const auto& entry) {
                                           return entry.first == fault_index;
                                         }),
                          penalties.end());
          if (penalties.size() != before) recompute_net_penalty(d);
        }
      }
      break;
    case FaultType::LinkSlowdown:
      for (auto it = active_slowdowns_.begin(); it != active_slowdowns_.end(); ++it) {
        if (it->first == fault_index) {
          active_slowdowns_.erase(it);
          break;
        }
      }
      recompute_slowdown();
      break;
    case FaultType::SampleDrop:
      fault_gate_->remove_drop(f.target, f.magnitude);
      break;
    case FaultType::PipeBackpressure: {
      bool removed = false;
      for (auto it = active_clamps_.begin(); it != active_clamps_.end(); ++it) {
        if (it->first == fault_index) {
          active_clamps_.erase(it);
          removed = true;
          break;
        }
      }
      // A reset_pipe repair may have lifted the clamp already; the window
      // end is then a no-op (no spurious pipe callbacks).
      if (removed) recompute_pipe_clamps();
      break;
    }
  }
}

bool Simulation::repair_restart_daemon(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  if (shards_) {
    // The covered daemons live on their owner shards, whose clocks may be up
    // to one window away.  Decide from the deterministic mirror (plan
    // windows + restarts already dispatched) instead of peeking at
    // cross-shard daemon state, then deliver restart_now as a timestamped
    // message one lookahead out — same transport as sample forwarding.
    const SimTime now = shards_->engine(0).now();
    bool any = false;
    for (std::size_t d = 0; d < daemons_.size(); ++d) {
      if (f.target >= 0 && static_cast<std::size_t>(f.target) != d) continue;
      if (mirror_stalled_until(d, now) <= now) continue;
      const SimTime deliver_at = now + config_.uplink_latency_us;
      ParadynDaemon* daemon = daemons_[d].get();
      shards_->post(0, daemon_shard_[d], deliver_at, kRepairRestartKeyBase + d,
                    [daemon] { daemon->restart_now(); });
      restart_dispatches_[d].push_back(deliver_at);
      any = true;
    }
    if (any && !shard_tracers_.empty()) {
      shard_tracers_[0].instant("repair", "restart_daemon", obs::kEngineTrack, now, "fault",
                                static_cast<double>(fault_index));
    }
    return any;
  }
  bool any = false;
  for (std::size_t d = 0; d < daemons_.size(); ++d) {
    if (f.target >= 0 && static_cast<std::size_t>(f.target) != d) continue;
    if (!daemons_[d]->stalled()) continue;
    daemons_[d]->restart_now();
    any = true;
  }
  if (any && tracer_ != nullptr) {
    tracer_->instant("repair", "restart_daemon", obs::kEngineTrack, engine_.now(), "fault",
                     static_cast<double>(fault_index));
  }
  return any;
}

bool Simulation::repair_reroute_link(std::size_t fault_index, double penalty_factor) {
  if (shards_) {
    // The slowdown lists are replicated per shard; the factor swap is
    // broadcast to every replica at +lookahead.  The decision ("window still
    // active?") mirrors the legacy membership test from the plan alone.
    const FaultSpec& f = plan_.faults[fault_index];
    const SimTime now = shards_->engine(0).now();
    if (f.type != FaultType::LinkSlowdown) return false;
    if (!(f.start_us <= now && now < f.end_us())) return false;
    const SimTime deliver_at = now + config_.uplink_latency_us;
    for (std::size_t s = 0; s < partition_.shards; ++s) {
      shards_->post(0, s, deliver_at, kRepairEffectKeyBase + fault_index,
                    [this, s, fault_index, penalty_factor] {
                      ++shard_control_fired_[s];
                      for (auto& [index, factor] : shard_slowdowns_[s]) {
                        if (index != fault_index) continue;
                        factor = penalty_factor;
                        recompute_slowdown_shard(s);
                        break;
                      }
                    });
    }
    if (!shard_tracers_.empty()) {
      shard_tracers_[0].instant("repair", "reroute_link", obs::kEngineTrack, now, "fault",
                                static_cast<double>(fault_index));
    }
    return true;
  }
  for (auto& [index, factor] : active_slowdowns_) {
    if (index != fault_index) continue;
    factor = penalty_factor;
    recompute_slowdown();
    if (tracer_ != nullptr) {
      tracer_->instant("repair", "reroute_link", obs::kEngineTrack, engine_.now(), "fault",
                       static_cast<double>(fault_index));
    }
    return true;
  }
  return false;  // window already ended
}

bool Simulation::repair_reset_pipe(std::size_t fault_index) {
  if (shards_) {
    const FaultSpec& f = plan_.faults[fault_index];
    const SimTime now = shards_->engine(0).now();
    if (f.type != FaultType::PipeBackpressure) return false;
    if (reset_dispatched_[fault_index] != 0) return false;  // one-shot per fault
    if (!(f.start_us <= now && now < f.end_us())) return false;
    reset_dispatched_[fault_index] = 1;
    const SimTime deliver_at = now + config_.uplink_latency_us;
    for (std::size_t s = 0; s < partition_.shards; ++s) {
      shards_->post(0, s, deliver_at, kRepairEffectKeyBase + fault_index, [this, s, fault_index] {
        ++shard_control_fired_[s];
        auto& clamps = shard_clamps_[s];
        bool removed = false;
        for (auto it = clamps.begin(); it != clamps.end(); ++it) {
          if (it->first == fault_index) {
            clamps.erase(it);
            removed = true;
            break;
          }
        }
        if (removed) recompute_pipe_clamps_shard(s);
        const FaultSpec& spec = plan_.faults[fault_index];
        std::uint64_t drained = 0;
        for (std::size_t p = 0; p < pipes_.size(); ++p) {
          if (partition_.shard_of(apps_[p]->node()) != s) continue;
          if (spec.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(spec.target)) {
            continue;
          }
          drained += pipes_[p]->drain();
        }
        shard_collector(s).samples_dropped += drained;
      });
    }
    if (!shard_tracers_.empty()) {
      shard_tracers_[0].instant("repair", "reset_pipe", obs::kEngineTrack, now, "fault",
                                static_cast<double>(fault_index));
    }
    return true;
  }
  bool removed = false;
  for (auto it = active_clamps_.begin(); it != active_clamps_.end(); ++it) {
    if (it->first == fault_index) {
      active_clamps_.erase(it);
      removed = true;
      break;
    }
  }
  if (!removed) return false;
  recompute_pipe_clamps();
  const FaultSpec& f = plan_.faults[fault_index];
  std::uint64_t drained = 0;
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    if (f.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(f.target)) continue;
    drained += pipes_[p]->drain();
  }
  metrics_.samples_dropped += drained;
  if (tracer_ != nullptr) {
    tracer_->instant("repair", "reset_pipe", obs::kEngineTrack, engine_.now(), "fault",
                     static_cast<double>(fault_index));
  }
  return true;
}

void Simulation::set_tracer(obs::Tracer* tracer) {
  if (shards_) {
    throw std::logic_error(
        "Simulation::set_tracer: a partitioned run has one tracer per shard — attach via "
        "set_trace_recorder");
  }
  tracer_ = tracer;
  // Fixed track ids: 0 = engine, 1 = network, 2 = main, then one per CPU
  // resource, daemon, and application process.  Labels become Perfetto
  // thread names via trace metadata.
  constexpr std::int32_t kNetworkTrack = 1;
  constexpr std::int32_t kMainTrack = 2;

  engine_.set_tracer(tracer);
  network_->set_tracer(tracer, kNetworkTrack);
  if (main_) main_->set_tracer(tracer, kMainTrack);

  std::int32_t next = 3;
  const std::int32_t first_cpu_track = next;
  for (auto& cpu : node_cpus_) cpu->set_tracer(tracer, next++);
  const std::int32_t first_daemon_track = next;
  for (auto& daemon : daemons_) daemon->set_tracer(tracer, next++);
  const std::int32_t first_app_track = next;
  for (auto& app : apps_) app->set_tracer(tracer, next++);

  if (tracer == nullptr) return;
  tracer->set_track_name(obs::kEngineTrack, "engine");
  tracer->set_track_name(kNetworkTrack, "network");
  if (main_) tracer->set_track_name(kMainTrack, "main paradyn");
  const bool dedicated_main = config_.instrumentation_enabled && config_.main_on_dedicated_host;
  for (std::size_t n = 0; n < node_cpus_.size(); ++n) {
    const bool is_main_host = dedicated_main && n + 1 == node_cpus_.size();
    tracer->set_track_name(first_cpu_track + static_cast<std::int32_t>(n),
                           is_main_host ? std::string("cpu main-host")
                                        : "cpu node " + std::to_string(n));
  }
  for (std::size_t d = 0; d < daemons_.size(); ++d) {
    tracer->set_track_name(first_daemon_track + static_cast<std::int32_t>(d),
                           "daemon " + std::to_string(d) + " (node " +
                               std::to_string(daemons_[d]->node()) + ")");
  }
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    tracer->set_track_name(first_app_track + static_cast<std::int32_t>(a),
                           "app n" + std::to_string(apps_[a]->node()) + "." +
                               std::to_string(apps_[a]->index()));
  }
}

void Simulation::set_trace_recorder(obs::TraceRecorder& recorder) {
  trace_recorder_ = &recorder;
  if (!shards_) {
    shard_tracers_.clear();
    shard_tracers_.push_back(recorder.create_tracer("rocc"));
    set_tracer(&shard_tracers_.front());
    return;
  }

  // One tracer (= one recorder process) per shard.  Entities keep the same
  // global track numbering as set_tracer — 0 engine, 1 network, 2 main, then
  // CPUs, daemons, apps — each registered on its owner shard's tracer, so a
  // merged view lays out exactly like a legacy trace split across shard
  // swimlanes.
  constexpr std::int32_t kNetworkTrack = 1;
  constexpr std::int32_t kMainTrack = 2;
  shard_tracers_.clear();
  shard_tracers_.reserve(partition_.shards);
  for (std::size_t s = 0; s < partition_.shards; ++s) {
    shard_tracers_.push_back(recorder.create_tracer("shard " + std::to_string(s)));
  }
  for (std::size_t s = 0; s < partition_.shards; ++s) {
    obs::Tracer* tr = &shard_tracers_[s];
    shards_->engine(s).set_tracer(tr);
    shard_networks_[s]->set_tracer(tr, kNetworkTrack);
    tr->set_track_name(obs::kEngineTrack, "engine");
    tr->set_track_name(kNetworkTrack, "network");
  }
  if (main_) {
    main_->set_tracer(&shard_tracers_[0], kMainTrack);
    shard_tracers_[0].set_track_name(kMainTrack, "main paradyn");
  }

  std::int32_t next = 3;
  const bool dedicated_main = config_.instrumentation_enabled && config_.main_on_dedicated_host;
  for (std::size_t n = 0; n < node_cpus_.size(); ++n) {
    const bool is_main_host = dedicated_main && n + 1 == node_cpus_.size();
    const std::size_t s =
        is_main_host ? 0 : partition_.shard_of(static_cast<std::int32_t>(n));
    node_cpus_[n]->set_tracer(&shard_tracers_[s], next);
    shard_tracers_[s].set_track_name(next, is_main_host
                                               ? std::string("cpu main-host")
                                               : "cpu node " + std::to_string(n));
    ++next;
  }
  for (std::size_t d = 0; d < daemons_.size(); ++d) {
    const std::size_t s = daemon_shard_[d];
    daemons_[d]->set_tracer(&shard_tracers_[s], next);
    shard_tracers_[s].set_track_name(next, "daemon " + std::to_string(d) + " (node " +
                                               std::to_string(daemons_[d]->node()) + ")");
    ++next;
  }
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    const std::size_t s = partition_.shard_of(apps_[a]->node());
    apps_[a]->set_tracer(&shard_tracers_[s], next);
    shard_tracers_[s].set_track_name(next, "app n" + std::to_string(apps_[a]->node()) + "." +
                                               std::to_string(apps_[a]->index()));
    ++next;
  }
}

void Simulation::set_shard_executor(des::ShardSet::Executor executor) {
  if (shards_) shards_->set_executor(std::move(executor));
}

void Simulation::enable_metrics(obs::MetricsRegistry& registry, SimTime tick_us) {
  if (shards_) {
    throw std::logic_error(
        "Simulation::enable_metrics: unsupported in partitioned mode — the probes read "
        "cross-shard state mid-run");
  }
  if (!(tick_us > 0.0)) {
    throw std::invalid_argument("Simulation::enable_metrics: tick_us must be > 0");
  }
  registry_ = &registry;
  metrics_tick_us_ = tick_us;

  registry.add_probe("engine.pending_events",
                     [this] { return static_cast<double>(engine_.pending_events()); });
  registry.add_probe("engine.events_processed",
                     [this] { return static_cast<double>(engine_.events_processed()); });
  registry.add_probe("samples.generated",
                     [this] { return static_cast<double>(metrics_.samples_generated); });
  registry.add_probe("samples.delivered",
                     [this] { return static_cast<double>(metrics_.samples_delivered); });
  registry.add_probe("batches.delivered",
                     [this] { return static_cast<double>(metrics_.batches_delivered); });
  if (!plan_.empty()) {
    registry.add_probe("samples.dropped",
                       [this] { return static_cast<double>(metrics_.samples_dropped); });
    registry.add_probe("net.slowdown", [this] { return network_->slowdown(); });
  }
  if (throttle_) {
    registry.add_probe("throttle.max_factor", [this] { return throttle_->max_factor(); });
  }

  // Busy fraction of the whole CPU pool per process class: accumulated busy
  // time over elapsed capacity.  Warm-up deletion resets the numerator, so
  // the fraction dips at the warm-up boundary by design.
  const double total_cpus =
      static_cast<double>(node_cpus_.size()) * static_cast<double>(config_.cpus_per_node);
  const auto busy_fraction = [this, total_cpus](ProcessClass c) {
    const double elapsed = engine_.now();
    if (elapsed <= 0.0) return 0.0;
    double busy = 0.0;
    for (const auto& cpu : node_cpus_) busy += cpu->busy_time(c);
    return busy / (elapsed * total_cpus);
  };
  registry.add_probe("cpu.app_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::Application); });
  registry.add_probe("cpu.pd_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::ParadynDaemon); });
  registry.add_probe("cpu.main_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::MainParadyn); });
  registry.add_probe("cpu.background_busy_frac", [busy_fraction] {
    return busy_fraction(ProcessClass::PvmDaemon) + busy_fraction(ProcessClass::Other);
  });
  registry.add_probe("net.busy_frac", [this] {
    const double elapsed = engine_.now();
    return elapsed > 0.0 ? network_->busy_time_total() / elapsed : 0.0;
  });
  registry.add_probe("net.backlog",
                     [this] { return static_cast<double>(network_->backlog()); });

  registry.add_probe("pipe.occupancy_total", [this] {
    double total = 0.0;
    for (const auto& pipe : pipes_) total += static_cast<double>(pipe->size());
    return total;
  });
  registry.add_probe("pipe.occupancy_max", [this] {
    std::size_t max_depth = 0;
    for (const auto& pipe : pipes_) max_depth = std::max(max_depth, pipe->size());
    return static_cast<double>(max_depth);
  });
  registry.add_probe("main.backlog", [this] {
    return main_ ? static_cast<double>(main_->backlog()) : 0.0;
  });
}

void Simulation::schedule_metrics_tick() {
  registry_->sample(engine_.now());
  engine_.schedule_after(metrics_tick_us_, [this] { schedule_metrics_tick(); });
}

SimulationResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run: already ran");
  ran_ = true;

  if (shards_) {
    // Same start order as the legacy path; each entity schedules onto its
    // owner shard's engine.  The controller/barrier/probe features are
    // rejected at config validation, so only the sharded throttles remain.
    for (auto& stream : background_) stream->start();
    for (auto& daemon : daemons_) daemon->start();
    for (auto& app : apps_) app->start();
    for (auto& throttle : shard_throttles_) {
      if (throttle) throttle->start();
    }
    schedule_faults_partitioned();
    shards_->run([this](SimTime) {
      // Transient deletion at the warm-up boundary (every shard stopped at
      // exactly warmup_us; the boundary's messages are already injected).
      for (auto& cpu : node_cpus_) cpu->reset_accounting();
      for (auto& net : shard_networks_) net->reset_accounting();
      for (std::size_t s = 0; s < partition_.shards; ++s) {
        shard_collector(s) = MetricsCollector{};
      }
      // (shard_control_fired_ is deliberately not reset: events_processed
      // spans the whole run, warm-up included, exactly like the legacy
      // engine counter.)
      metrics_.record_latency_series = config_.record_latency_series;
    });
    return collect();
  }

  for (auto& stream : background_) stream->start();
  for (auto& daemon : daemons_) daemon->start();
  for (auto& app : apps_) app->start();
  if (controller_) controller_->start();
  if (throttle_) throttle_->start();
  // First probe row at t = 0, then one every tick of simulated time.
  if (registry_ != nullptr) schedule_metrics_tick();

  // Fault injection: compile the plan (config.faults + the legacy stall
  // shorthand) into ordinary timed events.
  schedule_faults();

  if (config_.warmup_us > 0.0) {
    // Transient deletion: run the warm-up, then zero every accumulator so
    // the reported metrics cover only the (closer-to-)steady-state window.
    engine_.run_until(config_.warmup_us);
    for (auto& cpu : node_cpus_) cpu->reset_accounting();
    network_->reset_accounting();
    if (barrier_) barrier_->reset_accounting();
    metrics_ = MetricsCollector{};
    metrics_.record_latency_series = config_.record_latency_series;
  }
  engine_.run_until(config_.duration_us);
  return collect();
}

SimulationResult Simulation::collect() const {
  SimulationResult r;
  // The measurement window excludes the warm-up (all accounting was reset
  // at its end).
  const SimTime window_us = config_.duration_us - config_.warmup_us;
  r.duration_us = window_us;
  r.nodes = config_.nodes;
  r.cpus_per_node = config_.cpus_per_node;

  const double total_cpus =
      static_cast<double>(config_.nodes) * static_cast<double>(config_.cpus_per_node);
  const double cpu_time_denominator = total_cpus;  // "per node" == per CPU-equivalent

  double app_busy = 0.0;
  double pd_busy = 0.0;
  double pvmd_busy = 0.0;
  double other_busy = 0.0;
  double main_busy = 0.0;
  double all_busy = 0.0;
  for (const auto& cpu : node_cpus_) {
    app_busy += cpu->busy_time(ProcessClass::Application);
    pd_busy += cpu->busy_time(ProcessClass::ParadynDaemon);
    pvmd_busy += cpu->busy_time(ProcessClass::PvmDaemon);
    other_busy += cpu->busy_time(ProcessClass::Other);
    main_busy += cpu->busy_time(ProcessClass::MainParadyn);
    all_busy += cpu->busy_time_total();
  }

  r.app_cpu_time_per_node_us = app_busy / cpu_time_denominator;
  r.pd_cpu_time_per_node_us = pd_busy / cpu_time_denominator;
  r.pvmd_cpu_time_per_node_us = pvmd_busy / cpu_time_denominator;
  r.other_cpu_time_per_node_us = other_busy / cpu_time_denominator;
  r.main_cpu_time_us = main_busy;

  const double capacity = total_cpus * window_us;
  r.app_cpu_util_pct = 100.0 * app_busy / capacity;
  r.pd_cpu_util_pct = 100.0 * pd_busy / capacity;
  r.main_cpu_util_pct = 100.0 * main_busy / window_us;
  r.is_cpu_util_pct = 100.0 * (pd_busy + main_busy) / capacity;
  r.pd_busy_share_pct = (all_busy > 0.0) ? 100.0 * pd_busy / all_busy : 0.0;

  if (shards_) {
    // Rebuild the global busy time from the per-node attribution of each
    // shard network: summing in canonical node order keeps the figure
    // independent of how the nodes were cut into shards.
    double net_busy = 0.0;
    for (std::int32_t n = 0; n < config_.nodes; ++n) {
      const NetworkResource& net = *shard_networks_[partition_.shard_of(n)];
      for (int c = 0; c < trace::kNumProcessClasses; ++c) {
        net_busy += net.busy_time_node(n, static_cast<ProcessClass>(c));
      }
    }
    r.network_util_pct = 100.0 * net_busy / window_us;
  } else {
    r.network_util_pct = 100.0 * network_->busy_time_total() / window_us;
  }

  r.latency_us = metrics_.latency_us;
  r.latency_series_us = metrics_.latency_series_us;

  // Per-node occupancy breakdown.
  r.per_node.reserve(node_cpus_.size());
  for (std::size_t n = 0; n < node_cpus_.size(); ++n) {
    NodeBreakdown nb;
    nb.node = static_cast<std::int32_t>(n);
    nb.app_cpu_us = node_cpus_[n]->busy_time(ProcessClass::Application);
    nb.pd_cpu_us = node_cpus_[n]->busy_time(ProcessClass::ParadynDaemon);
    nb.pvmd_cpu_us = node_cpus_[n]->busy_time(ProcessClass::PvmDaemon);
    nb.other_cpu_us = node_cpus_[n]->busy_time(ProcessClass::Other);
    nb.main_cpu_us = node_cpus_[n]->busy_time(ProcessClass::MainParadyn);
    r.per_node.push_back(nb);
  }
  // Delivery-side counters (delivered, batches, latency) are main-owned and
  // live in metrics_ — shard 0's collector — in both modes.  Generation-side
  // counters are written where the emitting entity lives, so the partitioned
  // path sums the shard collectors.
  r.samples_generated = metrics_.samples_generated;
  r.samples_delivered = metrics_.samples_delivered;
  r.batches_delivered = metrics_.batches_delivered;
  if (shards_) {
    for (std::size_t s = 1; s < partition_.shards; ++s) {
      r.samples_generated += shard_collector(s).samples_generated;
    }
    // Replicated control events (fault edges, repair broadcasts, throttle
    // tick chains) fire once per shard; report the model events plus a
    // single replica's worth so the count is shard-count-invariant.
    std::uint64_t control_total = 0;
    std::uint64_t control_zero = 0;
    for (std::size_t s = 0; s < partition_.shards; ++s) {
      std::uint64_t control = shard_control_fired_[s];
      if (s < shard_throttles_.size() && shard_throttles_[s]) {
        control += shard_throttles_[s]->ticks();
      }
      control_total += control;
      if (s == 0) control_zero = control;
    }
    r.events_processed = shards_->events_processed() - control_total + control_zero;
  } else {
    r.events_processed = engine_.events_processed();
  }
  r.throughput_samples_per_sec =
      static_cast<double>(metrics_.samples_delivered) / des::to_seconds(window_us);

  if (barrier_) {
    r.barrier_rounds = barrier_->rounds();
    r.barrier_wait_us = barrier_->total_wait_time();
  }
  if (controller_) {
    r.final_sampling_period_us = controller_->current_period_us();
    r.cost_adjustments = controller_->adjustments();
  }
  r.samples_dropped = metrics_.samples_dropped;
  if (shards_) {
    for (std::size_t s = 1; s < partition_.shards; ++s) {
      r.samples_dropped += shard_collector(s).samples_dropped;
    }
  }
  r.fault_outcomes = fault_outcomes_;
  if (throttle_) {
    r.throttle_factors = throttle_->factors();
    r.max_throttle_factor = throttle_->max_factor();
    r.throttle_adjustments = throttle_->adjustments();
  } else if (!shard_throttles_.empty()) {
    // Stitch the per-shard instances back into the legacy layout: factors in
    // daemon order (the order the single instance added its domains).
    r.throttle_factors.reserve(daemons_.size());
    for (std::size_t d = 0; d < daemons_.size(); ++d) {
      const auto& inst = *shard_throttles_[daemon_shard_[d]];
      r.throttle_factors.push_back(
          inst.factors()[static_cast<std::size_t>(daemon_throttle_domain_[d])]);
    }
    for (const auto& inst : shard_throttles_) {
      if (!inst) continue;
      r.max_throttle_factor = std::max(r.max_throttle_factor, inst->max_factor());
      r.throttle_adjustments += inst->adjustments();
    }
  }
  return r;
}

SimulationResult run_simulation(const SystemConfig& config) { return Simulation(config).run(); }

std::vector<SimulationResult> run_replications(SystemConfig config, std::size_t replications) {
  std::vector<SimulationResult> results;
  results.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    SystemConfig c = config;
    c.seed = config.seed + i;
    results.push_back(run_simulation(c));
  }
  return results;
}

}  // namespace paradyn::rocc
