#include "rocc/simulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace paradyn::rocc {
namespace {

/// Role tags for RNG stream derivation — keep stable so results are
/// reproducible across code changes that add entities.  The fault/repair
/// machinery tags (8..11) are defined in faults.hpp (kFaultDropRngTag and
/// friends) so the consultant's RepairEngine derives from the same table;
/// kTagFault must equal kFaultDropRngTag.
enum RoleTag : std::uint64_t {
  kTagApp = 1,
  kTagDaemon = 2,
  kTagMain = 3,
  kTagPvmdCpu = 4,
  kTagPvmdNet = 5,
  kTagOtherCpu = 6,
  kTagOtherNet = 7,
  kTagFault = kFaultDropRngTag,
};

}  // namespace

Simulation::Simulation(SystemConfig config) : config_(std::move(config)) {
  config_.validate();
  metrics_.record_latency_series = config_.record_latency_series;
  build();
}

void Simulation::build() {
  const std::int32_t nodes = config_.nodes;

  // Resources.  An optional extra CPU at the end hosts the main Paradyn
  // process when it runs on a dedicated workstation (Figure 29 setup).
  const bool dedicated_main = config_.instrumentation_enabled && config_.main_on_dedicated_host;
  const std::int32_t cpu_groups = nodes + (dedicated_main ? 1 : 0);
  node_cpus_.reserve(static_cast<std::size_t>(cpu_groups));
  for (std::int32_t n = 0; n < cpu_groups; ++n) {
    node_cpus_.push_back(
        std::make_unique<CpuResource>(engine_, config_.cpus_per_node, config_.cpu_quantum_us));
  }
  network_ = std::make_unique<NetworkResource>(engine_, config_.contention);

  const std::int32_t total_apps = nodes * config_.app_processes_per_node;
  if ((config_.barrier_period_us > 0.0 || config_.barrier_every_cycles > 0) && total_apps > 0) {
    barrier_ = std::make_unique<BarrierManager>(engine_, total_apps);
  }

  // Main Paradyn process lives on node 0's CPU(s), or on the dedicated
  // host CPU when main_on_dedicated_host is set.
  if (config_.instrumentation_enabled) {
    CpuResource& main_cpu = dedicated_main ? *node_cpus_.back() : *node_cpus_[0];
    main_ = std::make_unique<MainParadyn>(engine_, config_, main_cpu, metrics_,
                                          des::RngStream(config_.seed, 0, kTagMain));
  }

  // Daemons: one per node (NOW/MPP) or `daemons` sharing the pool (SMP).
  if (config_.instrumentation_enabled) {
    const std::int32_t daemon_count =
        (config_.arch == Architecture::Smp) ? config_.daemons : nodes;
    daemons_.reserve(static_cast<std::size_t>(daemon_count));
    for (std::int32_t d = 0; d < daemon_count; ++d) {
      const std::int32_t host_node = (config_.arch == Architecture::Smp) ? 0 : d;
      daemons_.push_back(std::make_unique<ParadynDaemon>(
          engine_, config_, *node_cpus_[host_node], *network_, metrics_,
          des::RngStream(config_.seed, static_cast<std::uint64_t>(d), kTagDaemon), host_node));
    }
    // Forwarding destinations.
    if (config_.topology == ForwardingTopology::BinaryTree) {
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        if (d == 0) {
          daemons_[d]->set_destination_main(*main_);
        } else {
          daemons_[d]->set_destination_parent(*daemons_[(d - 1) / 2]);
        }
      }
    } else {
      for (auto& daemon : daemons_) daemon->set_destination_main(*main_);
    }
  }

  // Adaptive cost model: the controller watches every CPU's IS occupancy
  // and owns the live sampling period.
  if (config_.instrumentation_enabled && config_.adaptive.enabled) {
    std::vector<const CpuResource*> cpu_views;
    cpu_views.reserve(node_cpus_.size());
    for (const auto& cpu : node_cpus_) cpu_views.push_back(cpu.get());
    const double capacity =
        static_cast<double>(node_cpus_.size()) * static_cast<double>(config_.cpus_per_node);
    controller_ = std::make_unique<SamplingController>(
        engine_, config_.adaptive, config_.sampling_period_us, std::move(cpu_views), capacity);
  }

  // Application processes and their pipes.
  for (std::int32_t n = 0; n < nodes; ++n) {
    for (std::int32_t a = 0; a < config_.app_processes_per_node; ++a) {
      Pipe* pipe = nullptr;
      if (config_.instrumentation_enabled) {
        pipes_.push_back(std::make_unique<Pipe>(config_.pipe_capacity));
        pipe = pipes_.back().get();
        // NOW/MPP: the node's own daemon.  SMP: apps assigned round-robin
        // over the daemon pool.
        const std::size_t app_global =
            static_cast<std::size_t>(n) * static_cast<std::size_t>(config_.app_processes_per_node) +
            static_cast<std::size_t>(a);
        const std::size_t daemon_idx = (config_.arch == Architecture::Smp)
                                           ? app_global % daemons_.size()
                                           : static_cast<std::size_t>(n);
        daemons_[daemon_idx]->attach_pipe(*pipe);
        pipe_daemon_.push_back(daemon_idx);
      }
      const auto app_tag =
          static_cast<std::uint64_t>(n) * 4096 + static_cast<std::uint64_t>(a);
      const auto override_it = config_.app_overrides.find(n);
      const AppModel& model =
          override_it != config_.app_overrides.end() ? override_it->second : config_.app;
      apps_.push_back(std::make_unique<ApplicationProcess>(
          engine_, config_, model, *node_cpus_[n], *network_, pipe, barrier_.get(),
          controller_.get(), metrics_, des::RngStream(config_.seed, app_tag, kTagApp), n, a));
    }
  }

  // Background load (PVM daemon + other processes) on every node.
  if (config_.background.enabled) {
    const auto& bg = config_.background;
    const stats::SamplerBackend backend = config_.sampler_backend();
    for (std::int32_t n = 0; n < nodes; ++n) {
      const auto node_tag = static_cast<std::uint64_t>(n);
      background_.push_back(std::make_unique<OpenArrivalStream>(
          engine_, bg.pvmd_interarrival, bg.pvmd_cpu_length, ProcessClass::PvmDaemon,
          node_cpus_[n].get(), nullptr, des::RngStream(config_.seed, node_tag, kTagPvmdCpu),
          backend));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          engine_, bg.pvmd_interarrival, bg.pvmd_net_length, ProcessClass::PvmDaemon, nullptr,
          network_.get(), des::RngStream(config_.seed, node_tag, kTagPvmdNet), backend));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          engine_, bg.other_cpu_interarrival, bg.other_cpu_length, ProcessClass::Other,
          node_cpus_[n].get(), nullptr, des::RngStream(config_.seed, node_tag, kTagOtherCpu),
          backend));
      background_.push_back(std::make_unique<OpenArrivalStream>(
          engine_, bg.other_net_interarrival, bg.other_net_length, ProcessClass::Other, nullptr,
          network_.get(), des::RngStream(config_.seed, node_tag, kTagOtherNet), backend));
    }
  }

  // Per-daemon adaptive throttle: one domain per daemon (its host CPU plus
  // the application processes whose pipes it drains).
  if (config_.instrumentation_enabled && config_.adaptive_throttle.enabled &&
      !daemons_.empty()) {
    throttle_ = std::make_unique<PerDaemonThrottle>(engine_, config_.adaptive_throttle);
    std::vector<std::int32_t> daemons_on_host(node_cpus_.size(), 0);
    for (const auto& daemon : daemons_) {
      ++daemons_on_host[static_cast<std::size_t>(daemon->node())];
    }
    for (const auto& daemon : daemons_) {
      const auto host = static_cast<std::size_t>(daemon->node());
      throttle_->add_domain(node_cpus_[host].get(),
                            1.0 / static_cast<double>(daemons_on_host[host]),
                            static_cast<double>(config_.cpus_per_node));
    }
    // Instrumented apps and pipes are created pairwise, so apps_[i]'s pipe
    // is pipes_[i] and its daemon is pipe_daemon_[i].
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      const auto domain = static_cast<std::int32_t>(pipe_daemon_[i]);
      throttle_->add_app(domain, apps_[i].get());
      apps_[i]->set_throttle(throttle_.get(), domain);
    }
  }

  // Fault plan: resolved once at build time.  Every auxiliary stream (drop
  // gate, stochastic windows, cascade Bernoulli) is derived only when the
  // matching feature appears in the plan, so fault-free runs — and runs
  // without that feature — touch no extra randomness.
  plan_ = compose_fault_plan();
  if (plan_.any_stochastic()) {
    des::RngStream window_rng(config_.seed, 0, kFaultWindowRngTag);
    plan_.resolve(window_rng, config_.sampler_backend());
  }
  bool any_drop = false;
  bool any_cascade = false;
  for (const FaultSpec& f : plan_.faults) {
    any_drop |= f.type == FaultType::SampleDrop;
    any_cascade |= f.cascade_p > 0.0;
  }
  if (any_drop) {
    fault_gate_ = std::make_unique<FaultGate>(des::RngStream(config_.seed, 0, kTagFault));
    for (auto& app : apps_) app->set_fault_gate(fault_gate_.get());
  }
  if (any_cascade && !daemons_.empty()) {
    cascade_rng_ =
        std::make_unique<des::RngStream>(config_.seed, 0, kCascadeRngTag);
    cascade_visited_.assign(plan_.faults.size(), {});
    daemon_net_penalties_.assign(daemons_.size(), {});
  }
}

FaultPlan Simulation::compose_fault_plan() const {
  FaultPlan plan = config_.faults;
  const auto& stall = config_.fault_daemon_stall;
  if (stall.duration_us > 0.0) {
    FaultSpec f;
    f.type = FaultType::DaemonStall;
    f.target = stall.daemon_index;
    f.start_us = stall.start_us;
    f.duration_us = stall.duration_us;
    plan.faults.push_back(f);
  }
  return plan;
}

void Simulation::schedule_faults() {
  if (plan_.empty()) return;
  fault_outcomes_.clear();
  fault_outcomes_.reserve(plan_.faults.size());
  for (const FaultSpec& f : plan_.faults) {
    FaultOutcome outcome;
    outcome.spec = f;
    fault_outcomes_.push_back(outcome);
  }
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    engine_.schedule_at(plan_.faults[i].start_us, [this, i] { apply_fault(i); });
    engine_.schedule_at(plan_.faults[i].end_us(), [this, i] { revert_fault(i); });
  }
}

void Simulation::recompute_slowdown() {
  // Factors multiply in insertion order, so reverting one fault leaves the
  // exact double the remaining set would have produced on its own.
  double factor = 1.0;
  for (const auto& [fault_index, f] : active_slowdowns_) factor *= f;
  network_->set_slowdown(factor);
}

void Simulation::recompute_pipe_clamps() {
  // Per-pipe limit = min over active clamps covering it.  Only touch pipes
  // whose effective capacity actually changes: set/clear fire a pending
  // space callback unconditionally, so a redundant call would inject a
  // spurious wake-up event and shift the stream.
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    std::int32_t limit = INT32_MAX;
    for (const auto& [fault_index, cap] : active_clamps_) {
      const FaultSpec& f = plan_.faults[fault_index];
      if (f.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(f.target)) continue;
      limit = std::min(limit, cap);
    }
    const std::int32_t desired = std::min(pipes_[p]->capacity(), limit);
    if (desired == pipes_[p]->effective_capacity()) continue;
    if (limit == INT32_MAX) {
      pipes_[p]->clear_capacity_limit();
    } else {
      pipes_[p]->set_capacity_limit(limit);
    }
  }
}

std::vector<std::size_t> Simulation::topology_neighbors(std::size_t d) const {
  std::vector<std::size_t> out;
  if (config_.topology == ForwardingTopology::BinaryTree) {
    if (d > 0) out.push_back((d - 1) / 2);
    if (2 * d + 1 < daemons_.size()) out.push_back(2 * d + 1);
    if (2 * d + 2 < daemons_.size()) out.push_back(2 * d + 2);
  } else {
    // Direct forwarding has no daemon-to-daemon edges; treat the index
    // chain as adjacency (d-1, d+1) so cascades still have a topology.
    if (d > 0) out.push_back(d - 1);
    if (d + 1 < daemons_.size()) out.push_back(d + 1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Simulation::propagate_cascade(std::size_t fault_index, std::size_t from,
                                   std::int32_t hop) {
  const FaultSpec& f = plan_.faults[fault_index];
  // Each neighbor is tested at most once per cascade, in ascending index
  // order, from the dedicated cascade stream — deterministic regardless of
  // how the BFS frontier interleaves with model events.
  for (const std::size_t nb : topology_neighbors(from)) {
    if (cascade_visited_[fault_index][nb] != 0) continue;
    cascade_visited_[fault_index][nb] = 1;
    if (cascade_rng_->next_double() >= f.cascade_p) continue;
    engine_.schedule_after(f.cascade_delay_us,
                           [this, fault_index, nb, hop] { apply_cascade_hit(fault_index, nb, hop); });
  }
}

void Simulation::apply_cascade_hit(std::size_t fault_index, std::size_t daemon,
                                   std::int32_t hop) {
  const FaultSpec& f = plan_.faults[fault_index];
  const SimTime end = f.end_us();
  if (engine_.now() >= end) return;  // parent window already lifted
  daemon_net_penalties_[daemon].emplace_back(fault_index, f.cascade_factor);
  recompute_net_penalty(daemon);
  if (tracer_ != nullptr) {
    tracer_->instant("fault", "cascade", obs::kEngineTrack, engine_.now(), "daemon",
                     static_cast<double>(daemon));
  }
  // Record the induced effect as its own outcome row: an uplink slowdown
  // on the hit daemon for the remainder of the parent window.
  FaultOutcome induced;
  induced.spec.type = FaultType::LinkSlowdown;
  induced.spec.target = static_cast<std::int32_t>(daemon);
  induced.spec.start_us = engine_.now();
  induced.spec.duration_us = end - engine_.now();
  induced.spec.magnitude = f.cascade_factor;
  induced.injected = true;
  induced.cascaded_from = static_cast<std::int32_t>(fault_index);
  fault_outcomes_.push_back(induced);
  if (hop < f.cascade_hops) propagate_cascade(fault_index, daemon, hop + 1);
}

void Simulation::recompute_net_penalty(std::size_t daemon) {
  double factor = 1.0;
  for (const auto& [fault_index, f] : daemon_net_penalties_[daemon]) factor *= f;
  daemons_[daemon]->set_net_penalty(factor);
}

void Simulation::apply_fault(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  fault_outcomes_[fault_index].injected = true;
  if (tracer_ != nullptr) {
    tracer_->instant("fault", to_string(f.type), obs::kEngineTrack, engine_.now(), "window",
                     1.0);
  }
  switch (f.type) {
    case FaultType::DaemonStall:
    case FaultType::DaemonCrash:
      for (std::size_t d = 0; d < daemons_.size(); ++d) {
        if (f.target >= 0 && static_cast<std::size_t>(f.target) != d) continue;
        if (f.type == FaultType::DaemonStall) {
          daemons_[d]->stall_until(f.end_us());
        } else {
          daemons_[d]->crash_until(f.end_us());
        }
      }
      if (f.cascade_p > 0.0 && cascade_rng_ != nullptr) {
        const auto origin = static_cast<std::size_t>(f.target);
        cascade_visited_[fault_index].assign(daemons_.size(), 0);
        cascade_visited_[fault_index][origin] = 1;
        propagate_cascade(fault_index, origin, 1);
      }
      break;
    case FaultType::LinkSlowdown:
      active_slowdowns_.emplace_back(fault_index, f.magnitude);
      recompute_slowdown();
      break;
    case FaultType::SampleDrop:
      fault_gate_->add_drop(f.target, f.magnitude);
      break;
    case FaultType::PipeBackpressure:
      active_clamps_.emplace_back(fault_index, static_cast<std::int32_t>(f.magnitude));
      recompute_pipe_clamps();
      break;
  }
}

void Simulation::revert_fault(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  if (tracer_ != nullptr) {
    tracer_->instant("fault", to_string(f.type), obs::kEngineTrack, engine_.now(), "window",
                     0.0);
  }
  switch (f.type) {
    case FaultType::DaemonStall:
    case FaultType::DaemonCrash:
      // stall_until / crash_until resume on their own; lift any uplink
      // penalties this fault's cascade applied.
      if (f.cascade_p > 0.0 && cascade_rng_ != nullptr) {
        for (std::size_t d = 0; d < daemons_.size(); ++d) {
          auto& penalties = daemon_net_penalties_[d];
          const std::size_t before = penalties.size();
          penalties.erase(std::remove_if(penalties.begin(), penalties.end(),
                                         [fault_index](const auto& entry) {
                                           return entry.first == fault_index;
                                         }),
                          penalties.end());
          if (penalties.size() != before) recompute_net_penalty(d);
        }
      }
      break;
    case FaultType::LinkSlowdown:
      for (auto it = active_slowdowns_.begin(); it != active_slowdowns_.end(); ++it) {
        if (it->first == fault_index) {
          active_slowdowns_.erase(it);
          break;
        }
      }
      recompute_slowdown();
      break;
    case FaultType::SampleDrop:
      fault_gate_->remove_drop(f.target, f.magnitude);
      break;
    case FaultType::PipeBackpressure: {
      bool removed = false;
      for (auto it = active_clamps_.begin(); it != active_clamps_.end(); ++it) {
        if (it->first == fault_index) {
          active_clamps_.erase(it);
          removed = true;
          break;
        }
      }
      // A reset_pipe repair may have lifted the clamp already; the window
      // end is then a no-op (no spurious pipe callbacks).
      if (removed) recompute_pipe_clamps();
      break;
    }
  }
}

bool Simulation::repair_restart_daemon(std::size_t fault_index) {
  const FaultSpec& f = plan_.faults[fault_index];
  bool any = false;
  for (std::size_t d = 0; d < daemons_.size(); ++d) {
    if (f.target >= 0 && static_cast<std::size_t>(f.target) != d) continue;
    if (!daemons_[d]->stalled()) continue;
    daemons_[d]->restart_now();
    any = true;
  }
  if (any && tracer_ != nullptr) {
    tracer_->instant("repair", "restart_daemon", obs::kEngineTrack, engine_.now(), "fault",
                     static_cast<double>(fault_index));
  }
  return any;
}

bool Simulation::repair_reroute_link(std::size_t fault_index, double penalty_factor) {
  for (auto& [index, factor] : active_slowdowns_) {
    if (index != fault_index) continue;
    factor = penalty_factor;
    recompute_slowdown();
    if (tracer_ != nullptr) {
      tracer_->instant("repair", "reroute_link", obs::kEngineTrack, engine_.now(), "fault",
                       static_cast<double>(fault_index));
    }
    return true;
  }
  return false;  // window already ended
}

bool Simulation::repair_reset_pipe(std::size_t fault_index) {
  bool removed = false;
  for (auto it = active_clamps_.begin(); it != active_clamps_.end(); ++it) {
    if (it->first == fault_index) {
      active_clamps_.erase(it);
      removed = true;
      break;
    }
  }
  if (!removed) return false;
  recompute_pipe_clamps();
  const FaultSpec& f = plan_.faults[fault_index];
  std::uint64_t drained = 0;
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    if (f.target >= 0 && pipe_daemon_[p] != static_cast<std::size_t>(f.target)) continue;
    drained += pipes_[p]->drain();
  }
  metrics_.samples_dropped += drained;
  if (tracer_ != nullptr) {
    tracer_->instant("repair", "reset_pipe", obs::kEngineTrack, engine_.now(), "fault",
                     static_cast<double>(fault_index));
  }
  return true;
}

void Simulation::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  // Fixed track ids: 0 = engine, 1 = network, 2 = main, then one per CPU
  // resource, daemon, and application process.  Labels become Perfetto
  // thread names via trace metadata.
  constexpr std::int32_t kNetworkTrack = 1;
  constexpr std::int32_t kMainTrack = 2;

  engine_.set_tracer(tracer);
  network_->set_tracer(tracer, kNetworkTrack);
  if (main_) main_->set_tracer(tracer, kMainTrack);

  std::int32_t next = 3;
  const std::int32_t first_cpu_track = next;
  for (auto& cpu : node_cpus_) cpu->set_tracer(tracer, next++);
  const std::int32_t first_daemon_track = next;
  for (auto& daemon : daemons_) daemon->set_tracer(tracer, next++);
  const std::int32_t first_app_track = next;
  for (auto& app : apps_) app->set_tracer(tracer, next++);

  if (tracer == nullptr) return;
  tracer->set_track_name(obs::kEngineTrack, "engine");
  tracer->set_track_name(kNetworkTrack, "network");
  if (main_) tracer->set_track_name(kMainTrack, "main paradyn");
  const bool dedicated_main = config_.instrumentation_enabled && config_.main_on_dedicated_host;
  for (std::size_t n = 0; n < node_cpus_.size(); ++n) {
    const bool is_main_host = dedicated_main && n + 1 == node_cpus_.size();
    tracer->set_track_name(first_cpu_track + static_cast<std::int32_t>(n),
                           is_main_host ? std::string("cpu main-host")
                                        : "cpu node " + std::to_string(n));
  }
  for (std::size_t d = 0; d < daemons_.size(); ++d) {
    tracer->set_track_name(first_daemon_track + static_cast<std::int32_t>(d),
                           "daemon " + std::to_string(d) + " (node " +
                               std::to_string(daemons_[d]->node()) + ")");
  }
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    tracer->set_track_name(first_app_track + static_cast<std::int32_t>(a),
                           "app n" + std::to_string(apps_[a]->node()) + "." +
                               std::to_string(apps_[a]->index()));
  }
}

void Simulation::enable_metrics(obs::MetricsRegistry& registry, SimTime tick_us) {
  if (!(tick_us > 0.0)) {
    throw std::invalid_argument("Simulation::enable_metrics: tick_us must be > 0");
  }
  registry_ = &registry;
  metrics_tick_us_ = tick_us;

  registry.add_probe("engine.pending_events",
                     [this] { return static_cast<double>(engine_.pending_events()); });
  registry.add_probe("engine.events_processed",
                     [this] { return static_cast<double>(engine_.events_processed()); });
  registry.add_probe("samples.generated",
                     [this] { return static_cast<double>(metrics_.samples_generated); });
  registry.add_probe("samples.delivered",
                     [this] { return static_cast<double>(metrics_.samples_delivered); });
  registry.add_probe("batches.delivered",
                     [this] { return static_cast<double>(metrics_.batches_delivered); });
  if (!plan_.empty()) {
    registry.add_probe("samples.dropped",
                       [this] { return static_cast<double>(metrics_.samples_dropped); });
    registry.add_probe("net.slowdown", [this] { return network_->slowdown(); });
  }
  if (throttle_) {
    registry.add_probe("throttle.max_factor", [this] { return throttle_->max_factor(); });
  }

  // Busy fraction of the whole CPU pool per process class: accumulated busy
  // time over elapsed capacity.  Warm-up deletion resets the numerator, so
  // the fraction dips at the warm-up boundary by design.
  const double total_cpus =
      static_cast<double>(node_cpus_.size()) * static_cast<double>(config_.cpus_per_node);
  const auto busy_fraction = [this, total_cpus](ProcessClass c) {
    const double elapsed = engine_.now();
    if (elapsed <= 0.0) return 0.0;
    double busy = 0.0;
    for (const auto& cpu : node_cpus_) busy += cpu->busy_time(c);
    return busy / (elapsed * total_cpus);
  };
  registry.add_probe("cpu.app_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::Application); });
  registry.add_probe("cpu.pd_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::ParadynDaemon); });
  registry.add_probe("cpu.main_busy_frac",
                     [busy_fraction] { return busy_fraction(ProcessClass::MainParadyn); });
  registry.add_probe("cpu.background_busy_frac", [busy_fraction] {
    return busy_fraction(ProcessClass::PvmDaemon) + busy_fraction(ProcessClass::Other);
  });
  registry.add_probe("net.busy_frac", [this] {
    const double elapsed = engine_.now();
    return elapsed > 0.0 ? network_->busy_time_total() / elapsed : 0.0;
  });
  registry.add_probe("net.backlog",
                     [this] { return static_cast<double>(network_->backlog()); });

  registry.add_probe("pipe.occupancy_total", [this] {
    double total = 0.0;
    for (const auto& pipe : pipes_) total += static_cast<double>(pipe->size());
    return total;
  });
  registry.add_probe("pipe.occupancy_max", [this] {
    std::size_t max_depth = 0;
    for (const auto& pipe : pipes_) max_depth = std::max(max_depth, pipe->size());
    return static_cast<double>(max_depth);
  });
  registry.add_probe("main.backlog", [this] {
    return main_ ? static_cast<double>(main_->backlog()) : 0.0;
  });
}

void Simulation::schedule_metrics_tick() {
  registry_->sample(engine_.now());
  engine_.schedule_after(metrics_tick_us_, [this] { schedule_metrics_tick(); });
}

SimulationResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run: already ran");
  ran_ = true;

  for (auto& stream : background_) stream->start();
  for (auto& daemon : daemons_) daemon->start();
  for (auto& app : apps_) app->start();
  if (controller_) controller_->start();
  if (throttle_) throttle_->start();
  // First probe row at t = 0, then one every tick of simulated time.
  if (registry_ != nullptr) schedule_metrics_tick();

  // Fault injection: compile the plan (config.faults + the legacy stall
  // shorthand) into ordinary timed events.
  schedule_faults();

  if (config_.warmup_us > 0.0) {
    // Transient deletion: run the warm-up, then zero every accumulator so
    // the reported metrics cover only the (closer-to-)steady-state window.
    engine_.run_until(config_.warmup_us);
    for (auto& cpu : node_cpus_) cpu->reset_accounting();
    network_->reset_accounting();
    if (barrier_) barrier_->reset_accounting();
    metrics_ = MetricsCollector{};
    metrics_.record_latency_series = config_.record_latency_series;
  }
  engine_.run_until(config_.duration_us);
  return collect();
}

SimulationResult Simulation::collect() const {
  SimulationResult r;
  // The measurement window excludes the warm-up (all accounting was reset
  // at its end).
  const SimTime window_us = config_.duration_us - config_.warmup_us;
  r.duration_us = window_us;
  r.nodes = config_.nodes;
  r.cpus_per_node = config_.cpus_per_node;

  const double total_cpus =
      static_cast<double>(config_.nodes) * static_cast<double>(config_.cpus_per_node);
  const double cpu_time_denominator = total_cpus;  // "per node" == per CPU-equivalent

  double app_busy = 0.0;
  double pd_busy = 0.0;
  double pvmd_busy = 0.0;
  double other_busy = 0.0;
  double main_busy = 0.0;
  double all_busy = 0.0;
  for (const auto& cpu : node_cpus_) {
    app_busy += cpu->busy_time(ProcessClass::Application);
    pd_busy += cpu->busy_time(ProcessClass::ParadynDaemon);
    pvmd_busy += cpu->busy_time(ProcessClass::PvmDaemon);
    other_busy += cpu->busy_time(ProcessClass::Other);
    main_busy += cpu->busy_time(ProcessClass::MainParadyn);
    all_busy += cpu->busy_time_total();
  }

  r.app_cpu_time_per_node_us = app_busy / cpu_time_denominator;
  r.pd_cpu_time_per_node_us = pd_busy / cpu_time_denominator;
  r.pvmd_cpu_time_per_node_us = pvmd_busy / cpu_time_denominator;
  r.other_cpu_time_per_node_us = other_busy / cpu_time_denominator;
  r.main_cpu_time_us = main_busy;

  const double capacity = total_cpus * window_us;
  r.app_cpu_util_pct = 100.0 * app_busy / capacity;
  r.pd_cpu_util_pct = 100.0 * pd_busy / capacity;
  r.main_cpu_util_pct = 100.0 * main_busy / window_us;
  r.is_cpu_util_pct = 100.0 * (pd_busy + main_busy) / capacity;
  r.pd_busy_share_pct = (all_busy > 0.0) ? 100.0 * pd_busy / all_busy : 0.0;

  r.network_util_pct = 100.0 * network_->busy_time_total() / window_us;

  r.latency_us = metrics_.latency_us;
  r.latency_series_us = metrics_.latency_series_us;

  // Per-node occupancy breakdown.
  r.per_node.reserve(node_cpus_.size());
  for (std::size_t n = 0; n < node_cpus_.size(); ++n) {
    NodeBreakdown nb;
    nb.node = static_cast<std::int32_t>(n);
    nb.app_cpu_us = node_cpus_[n]->busy_time(ProcessClass::Application);
    nb.pd_cpu_us = node_cpus_[n]->busy_time(ProcessClass::ParadynDaemon);
    nb.pvmd_cpu_us = node_cpus_[n]->busy_time(ProcessClass::PvmDaemon);
    nb.other_cpu_us = node_cpus_[n]->busy_time(ProcessClass::Other);
    nb.main_cpu_us = node_cpus_[n]->busy_time(ProcessClass::MainParadyn);
    r.per_node.push_back(nb);
  }
  r.samples_generated = metrics_.samples_generated;
  r.samples_delivered = metrics_.samples_delivered;
  r.batches_delivered = metrics_.batches_delivered;
  r.events_processed = engine_.events_processed();
  r.throughput_samples_per_sec =
      static_cast<double>(metrics_.samples_delivered) / des::to_seconds(window_us);

  if (barrier_) {
    r.barrier_rounds = barrier_->rounds();
    r.barrier_wait_us = barrier_->total_wait_time();
  }
  if (controller_) {
    r.final_sampling_period_us = controller_->current_period_us();
    r.cost_adjustments = controller_->adjustments();
  }
  r.samples_dropped = metrics_.samples_dropped;
  r.fault_outcomes = fault_outcomes_;
  if (throttle_) {
    r.throttle_factors = throttle_->factors();
    r.max_throttle_factor = throttle_->max_factor();
    r.throttle_adjustments = throttle_->adjustments();
  }
  return r;
}

SimulationResult run_simulation(const SystemConfig& config) { return Simulation(config).run(); }

std::vector<SimulationResult> run_replications(SystemConfig config, std::size_t replications) {
  std::vector<SimulationResult> results;
  results.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    SystemConfig c = config;
    c.seed = config.seed + i;
    results.push_back(run_simulation(c));
  }
  return results;
}

}  // namespace paradyn::rocc
