// Fault / perturbation injection subsystem.
//
// The paper measures monitoring latency and perturbation under nominal
// operation; this module injects *off-nominal* behavior — stalled or
// crashed daemons, degraded links, lossy sampling, shrunken pipes — so the
// instrumentation system's detection latency and recovery behavior become
// measurable outputs (in the spirit of ParaVerser's fault-detection
// evaluation, DSN'25).  A FaultPlan is a list of typed, scheduled
// perturbations validated at configuration time and compiled into ordinary
// calendar-queue events at simulation start, so fault runs are
// deterministic across --jobs values and bit-identical under both event
// queue implementations (the schedule is plain (time, seq) events; the
// only fault RNG is a dedicated stream independent of every model stream).
//
// Spec grammar (one fault; join several with ';'):
//
//   daemon_stall:daemon=0,start=1s,dur=500ms
//   daemon_crash:daemon=0,start=1s,dur=250ms
//   link_slow:start=2s,dur=1s,factor=8
//   sample_drop:node=all,start=1s,dur=2s,p=0.25
//   pipe_backpressure:daemon=0,start=1s,dur=1s,capacity=2
//
// Durations accept us / ms / s suffixes (bare numbers are microseconds).
// `daemon=all` / `node=all` (or -1) targets every daemon / node.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "des/random.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

enum class FaultType : std::uint8_t {
  DaemonStall,       ///< Daemon stops draining/forwarding for the window.
  DaemonCrash,       ///< Daemon dies (in-memory batches lost), restarts after.
  LinkSlowdown,      ///< Network occupancies stretched by `magnitude`.
  SampleDrop,        ///< Samples dropped at pipe ingress with prob `magnitude`.
  PipeBackpressure,  ///< Pipe capacity clamped to `magnitude` samples.
};

[[nodiscard]] const char* to_string(FaultType t) noexcept;

/// One scheduled perturbation.
struct FaultSpec {
  FaultType type = FaultType::DaemonStall;
  /// Target daemon (stall/crash/backpressure) or node (sample_drop); -1 =
  /// all.  Ignored by link_slow (the interconnect is a shared resource).
  std::int32_t target = -1;
  SimTime start_us = 0.0;
  SimTime duration_us = 0.0;
  /// Type-dependent: slowdown factor (>= 1), drop probability (0, 1], or
  /// clamped pipe capacity (>= 1).  Unused for stall/crash.
  double magnitude = 0.0;

  [[nodiscard]] SimTime end_us() const noexcept { return start_us + duration_us; }
  /// "daemon_stall daemon 0 @ [1e+06, 1.5e+06) us" — for stamps and tables.
  [[nodiscard]] std::string describe() const;
};

/// Scheduled set of perturbations for one run.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }

  /// Parse one spec (the grammar above, without ';').  Throws
  /// std::invalid_argument with the offending token on malformed input.
  [[nodiscard]] static FaultSpec parse_spec(const std::string& spec);

  /// Parse a ';'-joined spec list (the --fault flag payload).
  [[nodiscard]] static FaultPlan parse(const std::string& specs);

  /// Structural validation against the static shape of the system:
  /// windows must be non-degenerate, start inside [0, sim_duration), and
  /// target an existing daemon/node.  Throws std::invalid_argument.
  /// `daemon_count` is the number of daemons the architecture will build
  /// (0 when instrumentation is disabled).
  void validate(std::int32_t daemon_count, std::int32_t nodes, SimTime sim_duration_us,
                std::int32_t pipe_capacity) const;

  /// Injection schedule boundaries (start and end of every window) in
  /// declaration order — what Simulation compiles into events, and what the
  /// differential queue tests replay against both queue implementations.
  [[nodiscard]] std::vector<SimTime> schedule_points() const;
};

/// Runtime sample-drop gate shared by one run's application processes:
/// the currently active drop windows plus the dedicated fault RNG stream.
/// Bernoulli draws happen only while a window covers the emitting node, so
/// a fault-free run consumes no randomness and every model entity's stream
/// is untouched by the presence of this object.
class FaultGate {
 public:
  explicit FaultGate(des::RngStream rng) noexcept : rng_(rng) {}

  /// Activate / deactivate a drop window (node -1 = all nodes).
  void add_drop(std::int32_t node, double probability);
  void remove_drop(std::int32_t node, double probability);

  [[nodiscard]] bool active() const noexcept { return !windows_.empty(); }

  /// One Bernoulli draw per active window covering `node`; true if any
  /// window claims the sample.
  [[nodiscard]] bool should_drop(std::int32_t node);

 private:
  des::RngStream rng_;
  std::vector<std::pair<std::int32_t, double>> windows_;
};

/// Post-run record of one injected fault.  Simulation fills the injection
/// side; the consultant's FaultDetector fills detection/recovery (negative
/// latency = not observed within the run).
struct FaultOutcome {
  FaultSpec spec;
  bool injected = false;
  bool detected = false;
  SimTime detection_latency_us = -1.0;
  bool recovered = false;
  SimTime recovery_latency_us = -1.0;
};

}  // namespace paradyn::rocc
