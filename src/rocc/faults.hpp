// Fault / perturbation injection subsystem.
//
// The paper measures monitoring latency and perturbation under nominal
// operation; this module injects *off-nominal* behavior — stalled or
// crashed daemons, degraded links, lossy sampling, shrunken pipes — so the
// instrumentation system's detection latency and recovery behavior become
// measurable outputs (in the spirit of ParaVerser's fault-detection
// evaluation, DSN'25).  A FaultPlan is a list of typed, scheduled
// perturbations validated at configuration time and compiled into ordinary
// calendar-queue events at simulation start, so fault runs are
// deterministic across --jobs values and bit-identical under both event
// queue implementations (the schedule is plain (time, seq) events; every
// fault RNG is a dedicated stream independent of every model stream).
//
// Spec grammar (one fault; join several with ';'):
//
//   daemon_stall:daemon=0,start=1s,dur=500ms
//   daemon_crash:daemon=0,start=1s,dur=250ms
//   link_slow:start=2s,dur=1s,factor=8
//   sample_drop:node=all,start=1s,dur=2s,p=0.25
//   pipe_backpressure:daemon=0,start=1s,dur=1s,capacity=2
//
// Durations accept us / ms / s suffixes (bare numbers are microseconds).
// `daemon=all` / `node=all` (or -1) targets every daemon / node.
//
// Stochastic windows: `start` and `dur` also accept a distribution spec
// `exp:MEAN`, `uniform:LO:HI`, `lognormal:MEAN:STDDEV`, or
// `weibull:SHAPE:SCALE` (parameters take the same time suffixes; weibull's
// SHAPE is a bare number).  Drawn once per run at build time from a
// dedicated RNG stream (kFaultWindowRngTag), so fixed-window plans consume
// zero extra randomness and model streams never shift.
//
//   daemon_stall:daemon=0,start=exp:1s,dur=uniform:200ms:800ms
//
// Cascading faults: a daemon_stall / daemon_crash with a concrete target
// may carry `cascade=P` (per-hop propagation probability), plus optional
// `cascade_delay` (per hop, default 50ms), `cascade_hops` (default 1), and
// `cascade_factor` (neighbor uplink penalty, default 4).  When the fault
// fires, each topology neighbor (tree: parent and children; direct: the
// adjacent daemon indices) is tested once per cascade with probability P
// after the hop delay; a hit multiplies that daemon's forwarding-network
// occupancy by cascade_factor until the parent window ends, and appends an
// induced FaultOutcome with `cascaded_from` set to the parent's plan index.
//
// Overlap semantics (deterministic application order): windows apply in
// declaration order at their start times (same-time edges keep the plan's
// FIFO event order), and overlapping same-target effects are commutative —
// stalls extend to the max deadline, slowdown factors multiply, capacity
// clamps take the min, drop windows each draw independently — so reordering
// clauses never changes the modeled behavior, only RNG-stream-free event
// ordering.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "des/random.hpp"
#include "rocc/types.hpp"
#include "stats/distributions.hpp"
#include "stats/sampler.hpp"

namespace paradyn::rocc {

/// Dedicated RNG stream tags (the role slot of RngStream(seed, entity,
/// role)) for the fault/repair machinery.  Derived only when the matching
/// feature is active, so feature-free runs consume zero extra randomness.
/// kFaultDropRngTag must stay 8 — the PR-6 value — for stream stability.
inline constexpr std::uint64_t kFaultDropRngTag = 8;
inline constexpr std::uint64_t kFaultWindowRngTag = 9;
inline constexpr std::uint64_t kCascadeRngTag = 10;
inline constexpr std::uint64_t kRepairRngTag = 11;

enum class FaultType : std::uint8_t {
  DaemonStall,       ///< Daemon stops draining/forwarding for the window.
  DaemonCrash,       ///< Daemon dies (in-memory batches lost), restarts after.
  LinkSlowdown,      ///< Network occupancies stretched by `magnitude`.
  SampleDrop,        ///< Samples dropped at pipe ingress with prob `magnitude`.
  PipeBackpressure,  ///< Pipe capacity clamped to `magnitude` samples.
};

[[nodiscard]] const char* to_string(FaultType t) noexcept;

/// One scheduled perturbation.
struct FaultSpec {
  FaultType type = FaultType::DaemonStall;
  /// Target daemon (stall/crash/backpressure) or node (sample_drop); -1 =
  /// all.  Ignored by link_slow (the interconnect is a shared resource).
  std::int32_t target = -1;
  SimTime start_us = 0.0;
  SimTime duration_us = 0.0;
  /// Type-dependent: slowdown factor (>= 1), drop probability (0, 1], or
  /// clamped pipe capacity (>= 1).  Unused for stall/crash.
  double magnitude = 0.0;

  /// Stochastic window: when set, start_us / duration_us are drawn once at
  /// simulation build time (FaultPlan::resolve) and the concrete values
  /// replace the placeholders above.
  stats::DistributionPtr start_dist;
  stats::DistributionPtr duration_dist;

  /// Cascade clause (stall/crash with a concrete target only); 0 = off.
  double cascade_p = 0.0;
  SimTime cascade_delay_us = 50'000.0;
  std::int32_t cascade_hops = 1;
  double cascade_factor = 4.0;

  [[nodiscard]] SimTime end_us() const noexcept { return start_us + duration_us; }
  [[nodiscard]] bool stochastic() const noexcept {
    return start_dist != nullptr || duration_dist != nullptr;
  }
  /// "daemon_stall daemon 0 @ [1e+06, 1.5e+06) us" — for stamps and tables.
  [[nodiscard]] std::string describe() const;
};

/// Scheduled set of perturbations for one run.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }

  /// Parse one spec (the grammar above, without ';').  Throws
  /// std::invalid_argument naming the offending token, its character
  /// position, and — for misspelled types/keys — the nearest known name.
  [[nodiscard]] static FaultSpec parse_spec(const std::string& spec);

  /// Parse a ';'-joined spec list (the --fault flag payload).  Errors cite
  /// the clause number and the token's position within the full string.
  [[nodiscard]] static FaultPlan parse(const std::string& specs);

  /// Structural validation against the static shape of the system:
  /// windows must be non-degenerate, start inside [0, sim_duration), and
  /// target an existing daemon/node.  Stochastic windows skip the timing
  /// checks (the drawn values are clamped at resolve time instead).
  /// Throws std::invalid_argument.  `daemon_count` is the number of
  /// daemons the architecture will build (0 when instrumentation is
  /// disabled).
  void validate(std::int32_t daemon_count, std::int32_t nodes, SimTime sim_duration_us,
                std::int32_t pipe_capacity) const;

  /// True when any spec draws its window from a distribution.
  [[nodiscard]] bool any_stochastic() const noexcept;

  /// Draw every stochastic window (declaration order; start before
  /// duration) and replace the placeholders with concrete clamped values:
  /// start >= 0, duration >= 1 us.  A drawn start at/past the run length
  /// leaves a window that never fires (outcome stays `injected = false`).
  void resolve(des::Pcg32& rng, stats::SamplerBackend backend);

  /// Injection schedule boundaries (start and end of every window) in
  /// declaration order — what Simulation compiles into events, and what the
  /// differential queue tests replay against both queue implementations.
  [[nodiscard]] std::vector<SimTime> schedule_points() const;
};

/// Runtime sample-drop gate shared by one run's application processes:
/// the currently active drop windows plus the dedicated fault RNG stream.
/// Bernoulli draws happen only while a window covers the emitting node, so
/// a fault-free run consumes no randomness and every model entity's stream
/// is untouched by the presence of this object.
class FaultGate {
 public:
  explicit FaultGate(des::RngStream rng) noexcept : rng_(rng) {}

  /// Per-node-stream mode, for the PDES partitioned build: each emitting
  /// node draws from its own RngStream(seed, node, kFaultDropRngTag), so a
  /// node's drop decisions depend only on its own emission history — never
  /// on the interleaving of other nodes' emissions across shard replicas.
  /// The legacy single-stream constructor above stays bit-identical for the
  /// single-engine path.
  [[nodiscard]] static FaultGate per_node(std::uint64_t seed) noexcept {
    FaultGate gate{des::RngStream(seed, 0, kFaultDropRngTag)};
    gate.per_node_seed_ = seed;
    gate.per_node_ = true;
    return gate;
  }

  /// Activate / deactivate a drop window (node -1 = all nodes).
  void add_drop(std::int32_t node, double probability);
  void remove_drop(std::int32_t node, double probability);

  [[nodiscard]] bool active() const noexcept { return !windows_.empty(); }

  /// One Bernoulli draw per active window covering `node`; true if any
  /// window claims the sample.
  [[nodiscard]] bool should_drop(std::int32_t node);

 private:
  [[nodiscard]] des::RngStream& stream_for(std::int32_t node);

  des::RngStream rng_;
  bool per_node_ = false;
  std::uint64_t per_node_seed_ = 0;
  /// Lazily materialized per-node streams (per-node mode only).  Ordered
  /// map: iteration order never matters, but a deterministic container
  /// keeps the gate's behavior auditable.
  std::map<std::int32_t, des::RngStream> node_rngs_;
  std::vector<std::pair<std::int32_t, double>> windows_;
};

/// Post-run record of one injected fault.  Simulation fills the injection
/// side (plus cascade-induced entries, appended after the plan's in
/// declaration order); the consultant's FaultDetector fills
/// detection/recovery and its RepairEngine the repair block (negative
/// latency = not observed within the run).
struct FaultOutcome {
  FaultSpec spec;
  bool injected = false;
  bool detected = false;
  SimTime detection_latency_us = -1.0;
  bool recovered = false;
  SimTime recovery_latency_us = -1.0;

  /// Repair block (consultant/repair.hpp; all-defaults when no --repair
  /// policy was active or no action matched this fault type).
  bool repair_attempted = false;
  std::uint32_t repair_attempts = 0;
  bool repaired = false;
  bool gave_up = false;
  /// Injection -> successful repair completion (MTTR numerator); -1 when
  /// the fault was never repaired.
  SimTime time_to_repair_us = -1.0;
  /// Total simulated time spent backing off between failed attempts.
  SimTime repair_backoff_us = 0.0;

  /// Plan index of the fault whose cascade induced this one; -1 = a
  /// primary (planned) fault.
  std::int32_t cascaded_from = -1;
};

}  // namespace paradyn::rocc
