#include "rocc/main_paradyn.hpp"

namespace paradyn::rocc {

MainParadyn::MainParadyn(des::Engine& engine, const SystemConfig& config, CpuResource& host_cpu,
                         MetricsCollector& metrics, des::RngStream rng,
                         stats::BatchSpec batch)
    : engine_(engine),
      config_(config),
      host_cpu_(host_cpu),
      metrics_(metrics),
      main_cpu_(stats::FrozenSampler::compile(config.main_cpu, config.sampler_backend()),
                batch.at(0)),
      rng_(rng) {}

void MainParadyn::receive(const Batch& batch) {
  const SimTime latency = engine_.now() - batch.forward_started_at;
  for (std::int32_t i = 0; i < batch.sample_count(); ++i) {
    metrics_.latency_us.add(latency);
    if (metrics_.record_latency_series) metrics_.latency_series_us.push_back(latency);
  }
  ++batches_received_;
  samples_received_ += static_cast<std::uint64_t>(batch.sample_count());
  metrics_.samples_delivered += static_cast<std::uint64_t>(batch.sample_count());
  ++metrics_.batches_delivered;

  if (tracer_ != nullptr) {
    tracer_->instant("main", "deliver", track_, engine_.now(), "samples",
                     static_cast<double>(batch.sample_count()), "latency_us", latency);
    for (const Sample& s : batch.samples) {
      tracer_->async_end("sample", "lifecycle", s.id, track_, engine_.now());
    }
  }

  // Hand the metric values to the Data Manager's consumers (e.g. the
  // Performance Consultant's bottleneck search).
  if (sample_sink_) {
    for (const Sample& s : batch.samples) sample_sink_(s);
  }

  // The Data Manager consumes the unit: one CPU occupancy request on the
  // host node per delivery.  Consumption is serialized — the main process
  // handles one unit at a time, so its CPU occupancy cannot exceed one
  // processor even on an SMP pool.
  ++pending_;
  consume_next();
}

void MainParadyn::consume_next() {
  if (busy_ || pending_ == 0) return;
  busy_ = true;
  --pending_;
  const SimTime t0 = engine_.now();
  host_cpu_.submit(
      CpuRequest{main_cpu_(rng_), ProcessClass::MainParadyn, [this, t0] {
                   if (tracer_ != nullptr) {
                     tracer_->complete("main", "consume", track_, t0, engine_.now() - t0);
                     tracer_->counter("main.backlog", engine_.now(),
                                      static_cast<double>(pending_));
                   }
                   busy_ = false;
                   consume_next();
                 }});
}

}  // namespace paradyn::rocc
