// Simulation façade: builds the ROCC queueing network for a SystemConfig
// (Figure 2 / Figure 5), runs it, and reports the paper's metrics.
//
// Typical use:
//   auto cfg = rocc::SystemConfig::now(8);
//   cfg.sampling_period_us = 40'000;
//   cfg.batch_size = 32;                       // BF policy
//   cfg.warmup_us = 1e6;                       // optional transient deletion
//   rocc::SimulationResult r = rocc::Simulation(cfg).run();
//
// To consume delivered samples (e.g. with the Performance Consultant),
// construct the Simulation, attach a sink via main_process(), then run:
//   rocc::Simulation sim(cfg);
//   sim.main_process()->set_sample_sink([&](const rocc::Sample& s) { ... });
//   auto r = sim.run();
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "des/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rocc/app_process.hpp"
#include "rocc/background.hpp"
#include "rocc/barrier.hpp"
#include "rocc/config.hpp"
#include "rocc/cost_model.hpp"
#include "rocc/cpu.hpp"
#include "rocc/daemon.hpp"
#include "rocc/faults.hpp"
#include "rocc/main_paradyn.hpp"
#include "rocc/metrics.hpp"
#include "rocc/network.hpp"
#include "rocc/partition.hpp"
#include "rocc/pipe.hpp"

namespace paradyn::rocc {

class Simulation {
 public:
  /// Validates and captures the configuration, then builds the model.
  explicit Simulation(SystemConfig config);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run to config.duration_us and collect the metrics.  May be called once.
  [[nodiscard]] SimulationResult run();

  /// Accessors for tests and custom drivers (valid after construction).
  /// Partitioned runs (config.shards > 0) expose shard 0's engine — the one
  /// hosting the main Paradyn process, so detection/repair machinery that
  /// schedules against "the" engine lands on the shard whose clock governs
  /// sample delivery.
  [[nodiscard]] des::Engine& engine() noexcept {
    return shards_ ? shards_->engine(0) : engine_;
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::size_t num_daemons() const noexcept { return daemons_.size(); }
  [[nodiscard]] std::size_t num_apps() const noexcept { return apps_.size(); }
  /// The main Paradyn process, for attaching sample consumers (null when
  /// instrumentation is disabled).  Call before run().
  [[nodiscard]] MainParadyn* main_process() noexcept { return main_.get(); }

  /// The fault plan this run will inject: config.faults plus the legacy
  /// fault_daemon_stall shorthand folded in as a DaemonStall spec, with
  /// stochastic windows already resolved to concrete values (drawn once at
  /// construction from the dedicated kFaultWindowRngTag stream).  Empty
  /// when no faults are configured (or instrumentation is disabled).
  [[nodiscard]] const FaultPlan& effective_fault_plan() const noexcept { return plan_; }

  // --- Consultant-driven repair actions (consultant/repair.hpp).  Each
  // returns true when the fault's effect was actually lifted; callable only
  // from inside the run (they schedule follow-up events). ---

  /// restart_daemon: kill + re-warm the daemons covered by plan fault
  /// `fault_index` (stall/crash) — buffered samples are lost (counted as
  /// dropped) and draining resumes now, pre-empting the rest of the fault
  /// window.  False when no covered daemon was still stalled.
  bool repair_restart_daemon(std::size_t fault_index);
  /// reroute_link: replace the fault's active slowdown factor with the
  /// fallback path's capacity penalty (>= 1).  False when the window
  /// already ended.
  bool repair_reroute_link(std::size_t fault_index, double penalty_factor);
  /// reset_pipe: lift the fault's capacity clamp and drain the covered
  /// pipes (drained samples count as dropped).  False when the clamp is
  /// no longer active.
  bool repair_reset_pipe(std::size_t fault_index);

  /// Attach a trace recorder handle: engine spans, CPU/network occupancy
  /// intervals, daemon/main activity, and sample lifecycles all record into
  /// it on fixed tracks (0 = engine, 1 = network, 2 = main, then CPUs,
  /// daemons, application processes — labeled via track metadata).  Call
  /// before run(); pass nullptr to detach.  The Tracer must outlive run().
  void set_tracer(obs::Tracer* tracer);

  /// Tracing entry point that works in both modes: legacy runs get one
  /// tracer; partitioned runs get one tracer (= one recorder shard) per DES
  /// shard, with entities keeping the same global track numbering as
  /// set_tracer so cross-shard traces merge into the familiar layout.  Call
  /// before run(); the recorder must outlive it.
  void set_trace_recorder(obs::TraceRecorder& recorder);

  /// Executor for the partitioned window loop (see des::ShardSet): absent,
  /// shards run serially in index order; tools install a ThreadPool-backed
  /// executor when hardware allows.  Results are bit-identical either way.
  void set_shard_executor(des::ShardSet::Executor executor);

  /// Register the standard probes (event-queue depth, pipe occupancy,
  /// per-class CPU busy fraction, main backlog, sample counters) on
  /// `registry` and sample them every `tick_us` of simulated time during
  /// run().  Call before run(); the registry must outlive it.  Rejected in
  /// partitioned mode (the probes read cross-shard state mid-run).
  void enable_metrics(obs::MetricsRegistry& registry, SimTime tick_us);

 private:
  void build();
  /// config.faults + the legacy stall shorthand, before resolution.
  [[nodiscard]] FaultPlan compose_fault_plan() const;
  void schedule_metrics_tick();
  void schedule_faults();
  void apply_fault(std::size_t fault_index);
  void revert_fault(std::size_t fault_index);
  void recompute_slowdown();
  void recompute_pipe_clamps();
  /// Daemon indices adjacent to `d` under the forwarding topology (tree:
  /// parent + children; direct: d-1 and d+1), ascending.
  [[nodiscard]] std::vector<std::size_t> topology_neighbors(std::size_t d) const;
  void propagate_cascade(std::size_t fault_index, std::size_t from, std::int32_t hop);
  void apply_cascade_hit(std::size_t fault_index, std::size_t daemon, std::int32_t hop);
  void recompute_net_penalty(std::size_t daemon);
  [[nodiscard]] SimulationResult collect() const;

  // --- Partitioned (PDES) mode helpers; active iff shards_ != nullptr ---
  [[nodiscard]] MetricsCollector& shard_collector(std::size_t shard) noexcept {
    return shard == 0 ? metrics_ : *extra_metrics_[shard - 1];
  }
  [[nodiscard]] const MetricsCollector& shard_collector(std::size_t shard) const noexcept {
    return shard == 0 ? metrics_ : *extra_metrics_[shard - 1];
  }
  void schedule_faults_partitioned();
  void recompute_slowdown_shard(std::size_t shard);
  void recompute_pipe_clamps_shard(std::size_t shard);
  /// Deterministic mirror of a daemon's stalled-until deadline as of shard
  /// 0 time `t`, folded from the plan's stall/crash windows and the restart
  /// deliveries this run dispatched (window starts win ties, restarts
  /// override) — the partitioned repair API decides from this instead of
  /// peeking at cross-shard daemon state.
  [[nodiscard]] SimTime mirror_stalled_until(std::size_t daemon, SimTime t) const;

  SystemConfig config_;
  des::Engine engine_;
  MetricsCollector metrics_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  SimTime metrics_tick_us_ = 0.0;

  std::vector<std::unique_ptr<CpuResource>> node_cpus_;
  std::unique_ptr<NetworkResource> network_;
  std::unique_ptr<SamplingController> controller_;
  std::unique_ptr<PerDaemonThrottle> throttle_;
  std::unique_ptr<BarrierManager> barrier_;
  std::vector<std::unique_ptr<Pipe>> pipes_;
  /// Index of the daemon draining pipes_[i] (backpressure targeting).
  std::vector<std::size_t> pipe_daemon_;
  std::vector<std::unique_ptr<ApplicationProcess>> apps_;
  std::vector<std::unique_ptr<ParadynDaemon>> daemons_;
  std::unique_ptr<MainParadyn> main_;
  std::vector<std::unique_ptr<OpenArrivalStream>> background_;
  /// Runtime fault state (allocated only when the plan is non-empty).
  /// Effects are keyed by plan fault index so overlapping same-target
  /// windows revert exactly what they applied (satellite: deterministic
  /// overlap normalization) and repairs can retarget a single fault.
  FaultPlan plan_;
  std::unique_ptr<FaultGate> fault_gate_;
  std::vector<FaultOutcome> fault_outcomes_;
  /// Active link slowdowns as (plan fault index, factor); the factor of a
  /// rerouted fault is replaced by the fallback penalty in place.
  std::vector<std::pair<std::size_t, double>> active_slowdowns_;
  /// Active pipe clamps as (plan fault index, capacity); per-pipe limit is
  /// the min over clamps covering it.
  std::vector<std::pair<std::size_t, std::int32_t>> active_clamps_;
  /// Cascade state: per-fault visited set (each daemon is tested at most
  /// once per cascade) and per-daemon active uplink penalties as
  /// (plan fault index, factor) so the parent window's revert lifts
  /// exactly the penalties its cascade applied.
  std::vector<std::vector<char>> cascade_visited_;
  std::vector<std::vector<std::pair<std::size_t, double>>> daemon_net_penalties_;
  std::unique_ptr<des::RngStream> cascade_rng_;
  bool ran_ = false;

  // --- Partitioned (PDES) state; engaged when config.shards > 0 ---
  std::unique_ptr<des::ShardSet> shards_;
  PartitionPlan partition_;
  /// Collectors for shards 1..N-1; shard 0 writes into metrics_ so the
  /// delivery-side fields (latency, delivered, batches — all main-owned)
  /// live where the legacy collect path already looks.
  std::vector<std::unique_ptr<MetricsCollector>> extra_metrics_;
  std::vector<std::unique_ptr<NetworkResource>> shard_networks_;
  std::vector<std::unique_ptr<FaultGate>> shard_gates_;
  std::vector<std::unique_ptr<PerDaemonThrottle>> shard_throttles_;
  std::vector<std::size_t> daemon_shard_;
  std::vector<std::int32_t> daemon_throttle_domain_;
  /// Per-shard replicas of the link-slowdown / pipe-clamp effect lists
  /// (same (fault index, value) pairs, applied by shard-local events).
  std::vector<std::vector<std::pair<std::size_t, double>>> shard_slowdowns_;
  std::vector<std::vector<std::pair<std::size_t, std::int32_t>>> shard_clamps_;
  /// Build-time resolved cascade hits (partition.hpp), in legacy order.
  std::vector<CascadeHit> cascade_hits_;
  /// Control events that fired per shard: effects replicated onto every
  /// shard (link/drop/clamp edges, repair broadcasts) plus throttle ticks.
  /// collect() reports sum(engines) - sum(control) + control[0], which is
  /// invariant in the shard count.
  std::vector<std::uint64_t> shard_control_fired_;
  /// Repair mirror: restart delivery times dispatched per daemon, and a
  /// one-shot flag per plan fault for reset_pipe.
  std::vector<std::vector<SimTime>> restart_dispatches_;
  std::vector<char> reset_dispatched_;
  std::vector<obs::Tracer> shard_tracers_;
  obs::TraceRecorder* trace_recorder_ = nullptr;
  des::ShardSet::Executor shard_executor_;
};

/// Convenience: build and run in one call.
[[nodiscard]] SimulationResult run_simulation(const SystemConfig& config);

/// Run `replications` simulations with seeds seed, seed+1, ... and return
/// all results (the 2^k r experiment harness builds on this).
[[nodiscard]] std::vector<SimulationResult> run_replications(SystemConfig config,
                                                             std::size_t replications);

}  // namespace paradyn::rocc
