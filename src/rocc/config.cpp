#include "rocc/config.hpp"

#include <cstdio>
#include <memory>

namespace paradyn::rocc {
namespace {

using stats::Exponential;
using stats::Lognormal;

stats::DistributionPtr exponential(double mean) { return std::make_shared<Exponential>(mean); }

stats::DistributionPtr lognormal(double mean, double stddev) {
  return std::make_shared<Lognormal>(Lognormal::from_mean_stddev(mean, stddev));
}

}  // namespace

void SystemConfig::validate() const {
  if (nodes <= 0) throw std::invalid_argument("SystemConfig: nodes must be > 0");
  if (cpus_per_node <= 0) throw std::invalid_argument("SystemConfig: cpus_per_node must be > 0");
  if (app_processes_per_node < 0) {
    throw std::invalid_argument("SystemConfig: app_processes_per_node must be >= 0");
  }
  if (daemons <= 0) throw std::invalid_argument("SystemConfig: daemons must be > 0");
  if (arch != Architecture::Smp && daemons != 1) {
    throw std::invalid_argument("SystemConfig: multiple daemons are an SMP-only option");
  }
  if (!(sampling_period_us > 0.0)) {
    throw std::invalid_argument("SystemConfig: sampling_period_us must be > 0");
  }
  if (batch_size <= 0) throw std::invalid_argument("SystemConfig: batch_size must be > 0");
  if (!(cpu_quantum_us > 0.0)) {
    throw std::invalid_argument("SystemConfig: cpu_quantum_us must be > 0");
  }
  if (barrier_period_us < 0.0) {
    throw std::invalid_argument("SystemConfig: barrier_period_us must be >= 0");
  }
  if (barrier_every_cycles < 0) {
    throw std::invalid_argument("SystemConfig: barrier_every_cycles must be >= 0");
  }
  if (pipe_capacity <= 0) throw std::invalid_argument("SystemConfig: pipe_capacity must be > 0");
  if (!(duration_us > 0.0)) throw std::invalid_argument("SystemConfig: duration_us must be > 0");
  if (warmup_us < 0.0 || warmup_us >= duration_us) {
    throw std::invalid_argument("SystemConfig: warmup_us must be in [0, duration_us)");
  }
  if (topology == ForwardingTopology::BinaryTree && arch != Architecture::Mpp) {
    throw std::invalid_argument("SystemConfig: tree forwarding is an MPP-only option");
  }
  if (!app.cpu_burst || !app.net_burst) {
    throw std::invalid_argument("SystemConfig: application workload distributions missing");
  }
  const auto check_app_model = [](const AppModel& m, const char* what) {
    if (m.io_block_probability < 0.0 || m.io_block_probability > 1.0) {
      throw std::invalid_argument(std::string("SystemConfig: ") + what +
                                  " io_block_probability must be in [0,1]");
    }
    if (m.io_block_probability > 0.0 && !m.io_block_duration) {
      throw std::invalid_argument(std::string("SystemConfig: ") + what +
                                  " io_block_duration missing");
    }
  };
  check_app_model(app, "app");
  for (const auto& [node, model] : app_overrides) {
    if (node < 0 || node >= nodes) {
      throw std::invalid_argument("SystemConfig: app override for nonexistent node");
    }
    if (!model.cpu_burst || !model.net_burst) {
      throw std::invalid_argument("SystemConfig: app override distributions missing");
    }
    check_app_model(model, "app override");
  }
  if (instrumentation_enabled) {
    if (!pd.collect_cpu || !pd.forward_cpu || !pd.net_occupancy || !pd.merge_cpu) {
      throw std::invalid_argument("SystemConfig: Paradyn daemon cost distributions missing");
    }
    if (!main_cpu) throw std::invalid_argument("SystemConfig: main_cpu distribution missing");
  }
  if (fault_daemon_stall.duration_us < 0.0 || fault_daemon_stall.start_us < 0.0) {
    throw std::invalid_argument("SystemConfig: daemon stall times must be >= 0");
  }
  if (fault_daemon_stall.duration_us > 0.0) {
    // Fail at configuration time, not at Simulation construction: the
    // daemon count is statically derivable from the architecture.
    if (fault_daemon_stall.daemon_index < 0 ||
        fault_daemon_stall.daemon_index >= daemon_count()) {
      throw std::invalid_argument("SystemConfig: daemon stall index out of range");
    }
    if (fault_daemon_stall.start_us >= duration_us) {
      throw std::invalid_argument("SystemConfig: daemon stall starts after sim end");
    }
  }
  if (!faults.empty()) {
    faults.validate(daemon_count(), nodes, duration_us, pipe_capacity);
  }
  if (adaptive_throttle.enabled) {
    if (!(adaptive_throttle.perturbation_budget_pct > 0.0)) {
      throw std::invalid_argument("SystemConfig: throttle perturbation budget must be > 0");
    }
    if (!(adaptive_throttle.adjust_interval_us > 0.0)) {
      throw std::invalid_argument("SystemConfig: throttle adjust interval must be > 0");
    }
    if (!(adaptive_throttle.max_slowdown >= 1.0)) {
      throw std::invalid_argument("SystemConfig: throttle max_slowdown must be >= 1");
    }
    if (!(adaptive_throttle.grow > 1.0) || !(adaptive_throttle.shrink > 0.0) ||
        adaptive_throttle.shrink >= 1.0) {
      throw std::invalid_argument("SystemConfig: throttle steps need grow > 1, shrink in (0,1)");
    }
  }
  if (pd.net_per_extra_sample_us < 0.0) {
    throw std::invalid_argument("SystemConfig: net_per_extra_sample_us must be >= 0");
  }
  if (background.enabled) {
    if (!background.pvmd_cpu_length || !background.pvmd_net_length ||
        !background.pvmd_interarrival || !background.other_cpu_length ||
        !background.other_net_length || !background.other_cpu_interarrival ||
        !background.other_net_interarrival) {
      throw std::invalid_argument("SystemConfig: background distributions missing");
    }
  }
  if (uplink_latency_us < 0.0) {
    throw std::invalid_argument("SystemConfig: uplink_latency_us must be >= 0");
  }
  if (shards < 0) throw std::invalid_argument("SystemConfig: shards must be >= 0");
  if (shards > 0) {
    // Conservative-window PDES preconditions.  Each rule names the global
    // coupling that would break the lookahead argument.
    if (!(uplink_latency_us > 0.0)) {
      throw std::invalid_argument(
          "SystemConfig: --shards requires uplink_latency_us > 0 — the minimum cross-shard "
          "network latency is the conservative lookahead, and zero lookahead cannot be "
          "window-synchronized");
    }
    if (shards > nodes) {
      throw std::invalid_argument("SystemConfig: shards must not exceed nodes");
    }
    if (arch == Architecture::Smp) {
      throw std::invalid_argument(
          "SystemConfig: --shards is incompatible with SMP — all processes share one CPU pool");
    }
    if (contention == NetworkContention::SharedSingleServer) {
      throw std::invalid_argument(
          "SystemConfig: --shards requires a contention-free network — a shared single-server "
          "interconnect is a global FIFO with no lookahead");
    }
    if (barrier_period_us > 0.0 || barrier_every_cycles > 0) {
      throw std::invalid_argument(
          "SystemConfig: --shards is incompatible with application barriers — a global barrier "
          "couples all nodes at zero latency");
    }
    if (adaptive.enabled) {
      throw std::invalid_argument(
          "SystemConfig: --shards is incompatible with the global adaptive sampling controller "
          "(it reads every CPU's accounting each interval); use --adaptive-throttle, whose "
          "domains are node-local");
    }
  }
  if (batch.enabled) {
    if (batch.block < 1 || batch.block > 1'048'576) {
      throw std::invalid_argument(
          "SystemConfig: --batch-sampling block must be in [1, 1048576]");
    }
    if (reference_rng) {
      throw std::invalid_argument(
          "SystemConfig: --batch-sampling is incompatible with --reference-rng — reference mode "
          "exists to bit-reproduce historical streams, and prefill buffers move hot sites onto "
          "dedicated batch streams");
    }
  }
}

SystemConfig SystemConfig::paper_defaults() {
  SystemConfig c;

  // Application process (Table 2).
  c.app.cpu_burst = lognormal(2'213.0, 3'034.0);
  c.app.net_burst = exponential(223.0);

  // Paradyn daemon.  Table 2's exponential(267) per-sample CPU request is
  // split 1:2 into collect (89) and forward (178) so that CF's per-sample
  // total matches the measurement while BF amortizes the system call.  The
  // split matches the >60 % Pd overhead reduction the paper measured for BF
  // (Figure 30): 89/267 ~= one third.
  c.pd.collect_cpu = exponential(89.0);
  c.pd.forward_cpu = exponential(178.0);
  c.pd.net_occupancy = exponential(71.0);
  c.pd.merge_cpu = exponential(89.0);
  c.pd.net_per_extra_sample_us = 0.0;

  // Background load (Table 2).
  c.background.enabled = true;
  c.background.pvmd_cpu_length = lognormal(294.0, 206.0);
  c.background.pvmd_net_length = exponential(58.0);
  c.background.pvmd_interarrival = exponential(6'485.0);
  c.background.other_cpu_length = lognormal(367.0, 819.0);
  c.background.other_net_length = exponential(92.0);
  c.background.other_cpu_interarrival = exponential(31'485.0);
  c.background.other_net_interarrival = exponential(5'598'903.0);

  // Main Paradyn process CPU demand (Table 1 statistics).
  c.main_cpu = lognormal(3'208.0, 3'287.0);

  return c;
}

SystemConfig SystemConfig::now(std::int32_t nodes) {
  SystemConfig c = paper_defaults();
  c.arch = Architecture::Now;
  c.nodes = nodes;
  c.cpus_per_node = 1;
  c.app_processes_per_node = 1;
  c.daemons = 1;
  c.contention = NetworkContention::ContentionFree;
  c.topology = ForwardingTopology::Direct;
  return c;
}

SystemConfig SystemConfig::smp(std::int32_t cpus, std::int32_t app_processes,
                               std::int32_t daemons) {
  SystemConfig c = paper_defaults();
  c.arch = Architecture::Smp;
  c.nodes = 1;
  c.cpus_per_node = cpus;
  c.app_processes_per_node = app_processes;
  c.daemons = daemons;
  c.contention = NetworkContention::SharedSingleServer;  // the shared bus
  c.topology = ForwardingTopology::Direct;
  return c;
}

std::string SystemConfig::summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "%s nodes=%d cpus/node=%d apps/node=%d daemons=%d period=%gus batch=%d (%s) topo=%s "
      "net=%s dur=%gus warmup=%gus instr=%s rng=%s",
      to_string(arch), nodes, cpus_per_node, app_processes_per_node, daemons, sampling_period_us,
      batch_size, to_string(policy()), to_string(topology),
      contention == NetworkContention::SharedSingleServer ? "shared" : "contention-free",
      duration_us, warmup_us, instrumentation_enabled ? "on" : "off",
      stats::to_string(sampler_backend()));
  std::string out = buf;
  if (batch.enabled) {
    // Only appended when on: batch sampling changes the consumed streams,
    // so the stamp must distinguish it; default-off summaries stay
    // byte-identical to every prior release.
    std::snprintf(buf, sizeof(buf), " batch-sampling=%d", batch.block);
    out += buf;
  }
  if (shards > 0) {
    // Deliberately *excluded* from the stamp-visible summary when sharding
    // is off, keeping legacy report headers byte-identical.  The shard count
    // itself is also excluded when on: --shards N and --shards 1 produce
    // bit-identical results, and the differential suite compares whole
    // report documents, stamp included.
    std::snprintf(buf, sizeof(buf), " pdes uplink=%gus", uplink_latency_us);
    out += buf;
  }
  return out;
}

SystemConfig SystemConfig::mpp(std::int32_t nodes, ForwardingTopology topology) {
  SystemConfig c = paper_defaults();
  c.arch = Architecture::Mpp;
  c.nodes = nodes;
  c.cpus_per_node = 1;
  c.app_processes_per_node = 1;
  c.daemons = 1;
  c.contention = NetworkContention::ContentionFree;
  c.topology = topology;
  return c;
}

}  // namespace paradyn::rocc
