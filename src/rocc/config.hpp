// Simulation configuration: every knob of the ROCC model, with builders for
// the paper's three architecture cases parameterized per Table 2.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "rocc/faults.hpp"
#include "rocc/types.hpp"
#include "stats/distributions.hpp"
#include "stats/sampler.hpp"
#include "stats/variate_buffer.hpp"

namespace paradyn::rocc {

/// Prefill-buffer batch sampling (--batch-sampling): hot sites draw their
/// variates from per-site buffers refilled through the AVX2 batch kernels
/// instead of calling the RNG per event.  Buffered sites move onto
/// dedicated streams (site tags from kBatchSiteBase, disjoint from every
/// entity/fault/repair tag), so results are deterministic across --jobs,
/// --shards, block sizes, and both event queues — but differ from the
/// default unbuffered streams, which is why this is opt-in.
struct BatchSamplingConfig {
  bool enabled = false;
  /// Variates generated per refill at each site.  The block only sets the
  /// refill amortization; the consumed stream is block-size-invariant
  /// because fill() is bit-identical to scalar draws.
  std::int32_t block = 256;
};

/// Per-site stream tag ranges used by batch prefill buffers.  Entity role
/// tags occupy 1..11 (app/daemon/main/background/fault/repair); site tags
/// start far above so the two spaces can never collide — and each entity
/// *type* gets its own range, because entity ids are only unique within a
/// type (app 3-of-node-0 and daemon 3 share the id 3).
inline constexpr std::uint64_t kBatchSiteApp = 64;         ///< cpu, net, io sites.
inline constexpr std::uint64_t kBatchSiteDaemon = 80;      ///< collect, forward, net, merge.
inline constexpr std::uint64_t kBatchSiteBackground = 96;  ///< per-node stream pairs.
inline constexpr std::uint64_t kBatchSiteMain = 112;       ///< main Paradyn service demand.

/// The globally unique entity tag of application process `index` on
/// `node` — the same composite simulation.cpp derives the app's RNG
/// stream from, reused for its batch-site streams.
[[nodiscard]] constexpr std::uint64_t app_entity_tag(std::int32_t node,
                                                     std::int32_t index) noexcept {
  return static_cast<std::uint64_t>(node) * 4096 + static_cast<std::uint64_t>(index);
}

/// Workload of one (instrumented) application process: alternating
/// computation and communication states (Figure 7), optionally extended
/// with the Blocked-for-I/O state of the detailed model (Figure 6).
struct AppModel {
  /// Length of a CPU occupancy request (computation state).
  stats::DistributionPtr cpu_burst;
  /// Length of a network occupancy request (communication state).
  stats::DistributionPtr net_burst;
  /// Probability that a cycle ends in the Blocked (I/O) state of Figure 6;
  /// 0 reproduces the simplified two-state model of Figure 7.
  double io_block_probability = 0.0;
  /// Duration of an I/O block (required when io_block_probability > 0).
  stats::DistributionPtr io_block_duration;
};

/// Adaptive cost model (Paradyn's dynamic cost model, reference [12]):
/// regulate direct IS overhead against a budget by adapting the sampling
/// period on-line.  See rocc/cost_model.hpp for the controller.
struct AdaptiveSamplingConfig {
  bool enabled = false;
  /// Direct IS overhead budget, percent of total CPU capacity.
  double overhead_budget_pct = 1.0;
  /// How often the controller re-evaluates.
  SimTime adjust_interval_us = 500'000.0;
  /// Sampling-period bounds.
  SimTime min_period_us = 1'000.0;
  SimTime max_period_us = 1'000'000.0;
  /// Multiplicative step: period *= grow when over budget; period *= shrink
  /// when under half the budget.
  double grow = 1.5;
  double shrink = 0.75;
};

/// Closed-loop per-daemon sampling throttle (--adaptive-sampling): the
/// paper's *measured* perturbation metric turned into a control input.
/// Every adjust_interval the controller extrapolates each daemon domain's
/// perturbation (daemon busy time plus application pipe-blocked time, as a
/// fraction of the domain's CPU capacity) one interval ahead; domains whose
/// *predicted* perturbation exceeds the budget get their sampling period
/// stretched, and recover multiplicatively once back under half budget.
/// Orthogonal to AdaptiveSamplingConfig, which regulates one global period
/// against direct IS CPU cost only.
struct AdaptiveThrottleConfig {
  bool enabled = false;
  /// Predicted-perturbation budget, percent of the domain's CPU capacity.
  double perturbation_budget_pct = 5.0;
  /// How often the controller re-evaluates (also the prediction horizon).
  SimTime adjust_interval_us = 250'000.0;
  /// Per-domain sampling-period multiplier bounds: [1, max_slowdown].
  double max_slowdown = 16.0;
  /// Multiplicative steps: factor *= grow when over budget, *= shrink
  /// (floored at 1) when under half budget.
  double grow = 2.0;
  double shrink = 0.5;
};

/// How instrumentation data is produced (Section 2.3.1): periodic sampling
/// ("after specified intervals of time") or event tracing ("after
/// occurrence of an event of interest") — here, one trace record per
/// completed computation/communication cycle.
enum class InstrumentationMode : std::uint8_t { Sampling, Tracing };

/// Cost model of a Paradyn daemon.  The paper's Table 2 gives a single
/// exponential(267) CPU request per collected-and-forwarded sample; we split
/// it into a per-sample *collect* part and a per-forwarding-operation
/// *forward* part (the system call the paper identifies as the CF policy's
/// overhead).  collect+forward defaults sum to the Table 2 mean, so CF
/// reproduces the measured per-sample cost while BF amortizes the forward
/// part across the batch.
struct PdCostModel {
  stats::DistributionPtr collect_cpu;   ///< CPU per collected sample.
  stats::DistributionPtr forward_cpu;   ///< CPU per forwarding operation.
  stats::DistributionPtr net_occupancy; ///< Network per forwarding operation.
  stats::DistributionPtr merge_cpu;     ///< CPU per received batch (tree only).
  /// Extra network occupancy per sample beyond the first in a batch
  /// (payload size effect); 0 reproduces the paper's assumption that a
  /// merged/batched unit costs the same as a single sample.
  double net_per_extra_sample_us = 0.0;
};

/// Background load: the PVM daemon and "other user/system processes" of
/// Table 2, modeled as open arrival streams.
struct BackgroundModel {
  bool enabled = true;
  stats::DistributionPtr pvmd_cpu_length;
  stats::DistributionPtr pvmd_net_length;
  stats::DistributionPtr pvmd_interarrival;
  stats::DistributionPtr other_cpu_length;
  stats::DistributionPtr other_net_length;
  stats::DistributionPtr other_cpu_interarrival;
  stats::DistributionPtr other_net_interarrival;
};

/// Full system configuration.
struct SystemConfig {
  Architecture arch = Architecture::Now;

  /// Number of system nodes.  NOW/MPP: physical nodes, each with
  /// `cpus_per_node` CPUs.  SMP: the paper's "number of nodes" is the
  /// number of CPUs in the shared pool; use the smp() builder.
  std::int32_t nodes = 8;
  std::int32_t cpus_per_node = 1;

  /// Application processes per node (NOW/MPP) or in total (SMP).
  std::int32_t app_processes_per_node = 1;

  /// Paradyn daemons: always 1 per node for NOW/MPP; 1-4 total for SMP.
  std::int32_t daemons = 1;

  /// Sampling period (microseconds): time between successive samples from
  /// each instrumented application process.
  SimTime sampling_period_us = 40'000.0;

  /// Sampling (timer-driven) vs tracing (event-driven) data collection.
  InstrumentationMode instrumentation_mode = InstrumentationMode::Sampling;

  /// Adaptive overhead regulation; sampling_period_us is the initial period.
  AdaptiveSamplingConfig adaptive;

  /// Per-daemon perturbation-driven sampling throttle.
  AdaptiveThrottleConfig adaptive_throttle;

  /// Batch size in samples; 1 == collect-and-forward.
  std::int32_t batch_size = 1;

  ForwardingTopology topology = ForwardingTopology::Direct;
  NetworkContention contention = NetworkContention::ContentionFree;

  /// CPU scheduling quantum (Table 2: 10,000 us).
  SimTime cpu_quantum_us = 10'000.0;

  /// Global barrier period for the application (microseconds); 0 disables
  /// barriers (Figure 28 sweeps this).  Time-based: a process joins the
  /// next barrier once this much time elapsed since its last one.
  SimTime barrier_period_us = 0.0;

  /// Work-based barriers: join the barrier every N computation/
  /// communication cycles (the SPMD iteration structure); 0 disables.
  /// May be combined with barrier_period_us; either trigger joins.
  std::int32_t barrier_every_cycles = 0;

  /// Capacity (in samples) of the Unix pipe between an application process
  /// and its Paradyn daemon.  A full pipe blocks the producer (Section
  /// 4.3.3).
  std::int32_t pipe_capacity = 64;

  /// Master switch for the IS; false simulates the uninstrumented system
  /// (the "Uninstrumented" curves in the figures).
  bool instrumentation_enabled = true;

  /// Host the main Paradyn process on a dedicated extra workstation (the
  /// paper's Figure 29 measurement setup) instead of sharing node 0's CPU
  /// (the Section 4.2 simulation setup).
  bool main_on_dedicated_host = false;

  /// Record every delivered sample's latency in SimulationResult::
  /// latency_series_us (memory ~ one double per sample) for steady-state
  /// time-series analysis.
  bool record_latency_series = false;

  /// Fault injection: stall one Paradyn daemon for a window of simulated
  /// time.  A stalled daemon stops draining pipes and forwarding — the
  /// pipes back up, the instrumented applications block, and the system
  /// must recover when the daemon resumes.  Disabled when duration is 0.
  struct DaemonStall {
    std::int32_t daemon_index = 0;
    SimTime start_us = 0.0;
    SimTime duration_us = 0.0;
  };
  DaemonStall fault_daemon_stall;

  /// General fault plan (--fault): typed, scheduled perturbations compiled
  /// into calendar-queue events at simulation setup.  Subsumes
  /// fault_daemon_stall, which is kept as the legacy single-stall shorthand
  /// and folded into the effective plan by Simulation.
  FaultPlan faults;

  /// Simulated duration and RNG seed.
  SimTime duration_us = 10.0e6;
  std::uint64_t seed = 1;

  /// Conservative-window PDES shard count (--shards).  0 = the classic
  /// single-engine path, byte-identical to every prior release.  N >= 1
  /// partitions the nodes into N contiguous groups, each owning its own
  /// des::Engine; results are bit-identical for every N (the differential
  /// suite gates N vs 1), but the partitioned path inserts explicit
  /// daemon-uplink delivery events, so it is *not* bit-identical to the
  /// legacy path.  Requires uplink_latency_us > 0 (the lookahead).
  std::int32_t shards = 0;

  /// Minimum latency (microseconds) of a daemon's uplink delivery — batch
  /// forwarding completes on the network at t, and the destination (main or
  /// tree parent) receives it at t + uplink_latency_us.  This is the
  /// cross-shard lookahead when shards > 0.  0 keeps the legacy synchronous
  /// delivery (and is then incompatible with sharding).
  SimTime uplink_latency_us = 0.0;

  /// Use the pre-PR-5 reference variate backend (Box-Muller normal,
  /// inverse-CDF exponential/Weibull) instead of the ziggurat fast path.
  /// Reference mode bit-reproduces historical RNG streams; the default
  /// ziggurat backend is statistically equivalent (KS-tested) but draws a
  /// different sequence.  Plumbed from the tools as --reference-rng.
  bool reference_rng = false;

  /// The variate backend every model entity compiles its samplers with.
  [[nodiscard]] stats::SamplerBackend sampler_backend() const noexcept {
    return reference_rng ? stats::SamplerBackend::Reference : stats::SamplerBackend::Ziggurat;
  }

  /// Prefill-buffer batch sampling (off by default; see --batch-sampling).
  BatchSamplingConfig batch;

  /// The BatchSpec an entity hands its hot draw sites: disabled (block 0)
  /// unless batch sampling is on.  `entity` is the entity's id within its
  /// type; `site_base` is the type's kBatchSite* range.  Each site within
  /// the entity uses spec.at(i) for i = 0, 1, ...
  [[nodiscard]] stats::BatchSpec batch_spec(std::uint64_t entity,
                                            std::uint64_t site_base) const noexcept {
    stats::BatchSpec spec;
    spec.seed = seed;
    spec.entity = entity;
    spec.site = site_base;
    spec.block = batch.enabled ? static_cast<std::uint32_t>(batch.block) : 0;
    return spec;
  }

  /// Warm-up (transient-deletion) period: the model runs for this long,
  /// all accounting is reset, and metrics cover only the remaining
  /// duration_us - warmup_us of (closer-to-)steady-state operation.
  SimTime warmup_us = 0.0;

  AppModel app;
  /// Optional per-node application workload overrides (e.g. a skewed node
  /// for bottleneck-search scenarios); nodes not listed use `app`.
  std::map<std::int32_t, AppModel> app_overrides;
  PdCostModel pd;
  BackgroundModel background;
  /// Main Paradyn process CPU demand per received forwarding unit.
  stats::DistributionPtr main_cpu;

  /// Effective scheduling policy implied by batch_size.
  [[nodiscard]] SchedulingPolicy policy() const noexcept {
    return batch_size <= 1 ? SchedulingPolicy::CollectAndForward
                           : SchedulingPolicy::BatchAndForward;
  }

  /// Number of Paradyn daemons the simulation will build — statically
  /// derivable from the architecture, so fault targets can be validated at
  /// configuration time.  0 when instrumentation is disabled.
  [[nodiscard]] std::int32_t daemon_count() const noexcept {
    if (!instrumentation_enabled) return 0;
    return arch == Architecture::Smp ? daemons : nodes;
  }

  /// Throws std::invalid_argument if any knob is out of range or any
  /// required distribution is missing.
  void validate() const;

  /// One-line human-readable summary of the headline knobs, for
  /// reproducibility stamps and report headers.
  [[nodiscard]] std::string summary() const;

  /// Paper-default NOW configuration (Section 4.2): `nodes` workstations,
  /// one app process + one Pd each, contention-free network (per the
  /// captions of Figures 18-19), main Paradyn on node 0.
  [[nodiscard]] static SystemConfig now(std::int32_t nodes);

  /// Paper-default SMP configuration (Section 4.3): `cpus` processors in a
  /// shared pool, `app_processes` application processes, `daemons` Paradyn
  /// daemons, shared-bus interconnect.
  [[nodiscard]] static SystemConfig smp(std::int32_t cpus, std::int32_t app_processes,
                                        std::int32_t daemons);

  /// Paper-default MPP configuration (Section 4.4): `nodes` nodes, one app
  /// + one Pd each, contention-free network, direct or tree forwarding.
  [[nodiscard]] static SystemConfig mpp(std::int32_t nodes,
                                        ForwardingTopology topology = ForwardingTopology::Direct);

  /// The Table 2 workload parameterization shared by all three builders.
  [[nodiscard]] static SystemConfig paper_defaults();
};

}  // namespace paradyn::rocc
