// CPU resource with round-robin time slicing.
//
// Models the node CPU(s) of the ROCC model: occupancy requests from all
// process classes share one ready queue; a request runs for at most one
// scheduling quantum (Table 2: 10 ms) before being requeued at the tail,
// which is how the OS "ensures fair scheduling of multiple processes
// sharing the CPU" (Section 2.3.1).  An SMP node passes num_cpus > 1 and
// the single ready queue feeds all of them.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "des/engine.hpp"
#include "obs/trace.hpp"
#include "rocc/types.hpp"

namespace paradyn::rocc {

/// One CPU occupancy request.
struct CpuRequest {
  SimTime duration = 0.0;
  ProcessClass pclass = ProcessClass::Application;
  /// Invoked when the request has received `duration` of CPU service.
  /// May be empty for fire-and-forget background load.
  SmallCallback on_complete;
};

class CpuResource {
 public:
  CpuResource(des::Engine& engine, std::int32_t num_cpus, SimTime quantum);

  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  /// Enqueue an occupancy request (FIFO behind current ready jobs).
  void submit(CpuRequest request);

  /// Total CPU busy time accumulated by a process class (microseconds,
  /// summed over all CPUs of this resource).
  [[nodiscard]] SimTime busy_time(ProcessClass c) const noexcept {
    return busy_[static_cast<std::size_t>(c)];
  }
  /// Total busy time across all classes.
  [[nodiscard]] SimTime busy_time_total() const noexcept;

  /// Zero the per-class busy-time accounting (warm-up deletion).  Jobs in
  /// flight keep running; only the counters reset.
  void reset_accounting() noexcept { busy_.fill(0.0); }

  [[nodiscard]] std::int32_t num_cpus() const noexcept { return num_cpus_; }
  /// Requests waiting or in service.
  [[nodiscard]] std::size_t backlog() const noexcept {
    return ready_.size() + static_cast<std::size_t>(num_cpus_ - idle_cpus_);
  }

  /// Observability: record every scheduled slice as a span (named by
  /// process class) on `track`.  nullptr disables (the default).
  void set_tracer(obs::Tracer* tracer, std::int32_t track) noexcept {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  struct Job {
    SimTime remaining = 0.0;
    CpuRequest request;
  };

  void dispatch();
  void on_slice_done(std::uint32_t slot);

  des::Engine& engine_;
  std::int32_t num_cpus_;
  SimTime quantum_;
  std::int32_t idle_cpus_;
  std::deque<Job> ready_;
  /// Jobs currently holding a CPU, in reusable slots: the slice-completion
  /// event captures only {this, slot}, so scheduling a slice never copies
  /// the job through the event queue.  At most num_cpus_ slots are ever
  /// allocated.
  std::vector<Job> running_;
  std::vector<std::uint32_t> running_free_;
  std::array<SimTime, trace::kNumProcessClasses> busy_{};
  obs::Tracer* tracer_ = nullptr;
  std::int32_t track_ = 0;
};

}  // namespace paradyn::rocc
